// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Causal-span tracer overhead — the acceptance run for src/obs/span.h.
// Reuses the steady-state table from bench_steady_state (large, mostly
// idle, a small churn fraction between passes) and times the incremental
// detection pass three ways:
//
//   baseline    no tracer attached at all
//   tracer-off  a SpanTracer wired into the lock manager and detector but
//               with no sinks subscribed — every emission call must
//               short-circuit on the active() check, so this overhead is
//               the "zero overhead with no sink" claim and must be ~0
//   tracer-on   the same tracer with a SpanCollectorSink subscribed, i.e.
//               every pass/step1/step2 span is materialised and delivered
//
// Overheads are reported relative to the baseline and written to
// BENCH_trace.json; the CI perf-smoke job gates tracer-on at 3% and
// tracer-off at the noise floor (see .github/workflows/ci.yml).
//
// Usage: bench_trace [resources] [mutations] [passes] [out.json]
//   resources  table size (default 10000)
//   mutations  resources mutated before each pass (default 100, i.e. 1%)
//   passes     timed passes per mode (default 30)
//   out.json   output path (default BENCH_trace.json in the cwd)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/scenarios.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/periodic_detector.h"
#include "obs/span.h"
#include "obs/span_sinks.h"

using namespace twbg;

namespace {

// Times `passes` incremental detection passes, each preceded by
// `mutations` churn mutations (excluded from the timing).  Returns mean
// ns/pass.  When `tracer` is non-null it is wired into both the lock
// manager and the detector, exactly as a host would.
double MeasureMode(size_t resources, size_t mutations, size_t passes,
                   core::ResolutionReport* last,
                   obs::SpanTracer* tracer = nullptr) {
  lock::LockManager manager;
  bench::SteadyState steady =
      bench::BuildSteadyState(manager, resources, /*bulk=*/16);
  TWBG_CHECK(manager.CheckInvariants(/*deep=*/false).ok());
  core::DetectorOptions options;
  options.incremental_build = true;
  options.span_tracer = tracer;
  core::PeriodicDetector detector(options);
  // Attach after the bulk build so setup-phase grants stay untraced; the
  // table never deadlocks, so the timed RunPass window sees exactly the
  // pass/step1/step2 spans (wait spans fire in the untimed churn).
  manager.set_span_tracer(tracer);
  core::CostTable costs;
  detector.RunPass(manager, costs);  // warm the cache / allocations
  size_t cursor = 0;
  int64_t total_ns = 0;
  for (size_t p = 0; p < passes; ++p) {
    for (size_t i = 0; i < mutations; ++i) {
      bench::MutateSteadyState(
          manager, steady,
          static_cast<lock::ResourceId>(cursor % resources + 1));
      ++cursor;
    }
    common::Stopwatch watch;
    *last = detector.RunPass(manager, costs);
    total_ns += watch.ElapsedNanos();
  }
  return static_cast<double>(total_ns) / static_cast<double>(passes);
}

}  // namespace

int main(int argc, char** argv) {
  size_t resources = 10000;
  size_t mutations = 100;
  size_t passes = 30;
  std::string out_path = "BENCH_trace.json";
  if (argc > 1) resources = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) mutations = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) passes = static_cast<size_t>(std::atoll(argv[3]));
  if (argc > 4) out_path = argv[4];
  TWBG_CHECK(resources >= 1 && mutations >= 1 && passes >= 1);
  TWBG_CHECK(mutations <= resources);

  std::printf("span-tracer overhead: %zu resources, %zu mutated between "
              "passes (%.2f%%), %zu passes per mode\n",
              resources, mutations,
              100.0 * static_cast<double>(mutations) /
                  static_cast<double>(resources),
              passes);

  core::ResolutionReport report;
  const double baseline_ns =
      MeasureMode(resources, mutations, passes, &report);
  TWBG_CHECK(report.cycles_detected == 0);

  // Tracer attached, no sinks: active() is false, every Open/Close call
  // short-circuits before allocating a span.
  obs::SpanTracer idle_tracer;
  const double off_ns =
      MeasureMode(resources, mutations, passes, &report, &idle_tracer);
  const double off_overhead = off_ns / baseline_ns - 1.0;

  // Tracer with a collector sink: every span is materialised, delivered
  // and retained (passes * {pass, step1, step2} plus churn wait spans).
  obs::SpanTracer tracer;
  obs::SpanCollectorSink collector;
  tracer.Subscribe(&collector);
  const double on_ns =
      MeasureMode(resources, mutations, passes, &report, &tracer);
  const double on_overhead = on_ns / baseline_ns - 1.0;
  TWBG_CHECK(collector.Count(obs::SpanKind::kPass) >= passes);
  TWBG_CHECK(tracer.dropped_closes() == 0);

  std::printf("  baseline:   %12.0f ns/pass\n", baseline_ns);
  std::printf("  tracer-off: %12.0f ns/pass (overhead=%+.2f%%)\n", off_ns,
              off_overhead * 100.0);
  std::printf("  tracer-on:  %12.0f ns/pass (overhead=%+.2f%%, %zu spans)\n",
              on_ns, on_overhead * 100.0, collector.spans().size());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"span_tracer_overhead\",\n"
               "  \"resources\": %zu,\n"
               "  \"mutations_per_pass\": %zu,\n"
               "  \"passes\": %zu,\n"
               "  \"baseline_ns_per_pass\": %.1f,\n"
               "  \"tracer_off_ns_per_pass\": %.1f,\n"
               "  \"tracer_off_overhead\": %.4f,\n"
               "  \"tracer_on_ns_per_pass\": %.1f,\n"
               "  \"tracer_on_overhead\": %.4f,\n"
               "  \"spans_recorded\": %zu\n"
               "}\n",
               resources, mutations, passes, baseline_ns, off_ns,
               off_overhead, on_ns, on_overhead, collector.spans().size());
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
