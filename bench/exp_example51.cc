// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment F5.2: regenerates Example 5.1 / Figure 5.2 — the two
// overlapping cycles, the walk order (W edges first, so the long cycle is
// found before the inner one), victim selection with the paper's costs
// (6, 4, 1), and the Step 3 sparing of T3.

#include <cstdio>

#include "core/examples_catalog.h"
#include "core/oracle.h"
#include "core/periodic_detector.h"
#include "core/tst.h"
#include "core/twbg.h"
#include "lock/lock_manager.h"

int main() {
  using namespace twbg;

  lock::LockManager manager;
  core::BuildExample51(manager);

  std::printf("=== Example 5.1 lock table ===\n%s\n",
              manager.table().ToString().c_str());

  core::HwTwbg graph = core::HwTwbg::Build(manager.table());
  std::printf("=== Figure 5.2: H/W-TWBG ===\n%s\n", graph.ToString().c_str());
  auto cycles = graph.ElementaryCycles();
  std::printf("Elementary cycles: %zu (paper: {T1,T2,T3} and {T1,T2})\n",
              cycles.size());

  std::printf("\nTST (W edge of T2 precedes its H edge, which makes the\n"
              "walk detect the long cycle first):\n%s\n",
              core::Tst::Build(manager.table()).ToString().c_str());

  core::CostTable costs;
  costs.Set(1, 6.0);
  costs.Set(2, 4.0);
  costs.Set(3, 1.0);
  std::printf("Costs: T1=6, T2=4, T3=1 (the paper's run)\n\n");

  core::PeriodicDetector detector;
  core::ResolutionReport report = detector.RunPass(manager, costs);
  std::printf("=== Detection-resolution pass ===\n%s\n",
              report.ToString().c_str());
  std::printf("(paper: cycle {T1,T2,T3} first -> victim T3; then {T1,T2}\n"
              " -> victim T2; Step 3 aborts T2, grants T3, spares T3;\n"
              " final abortion-list {T2}, grant-list {T3})\n");

  std::printf("\n=== Final lock table ===\n%s\n",
              manager.table().ToString().c_str());
  std::printf("(paper: R1(S) held by T3 and T1; R2(S) held by T3 with T1\n"
              " still queued for X)\n");
  std::printf("\nOracle says deadlocked: %s (expected: no)\n",
              core::AnalyzeByReduction(manager.table()).deadlocked ? "yes"
                                                                   : "no");
  return 0;
}
