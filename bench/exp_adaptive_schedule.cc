// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment P2: closed-loop detection scheduling.  The workload shifts
// through three phases with very different deadlock profiles — a
// contention storm (hot Zipf skew over few resources, X-heavy), a quiet
// spell (many resources, S-heavy, deadlocks near zero) and a mixed
// drift phase between the extremes.  One sched::EwmaRateController is
// carried across the phases (SimConfig::period_controller), retuning the
// detection period from each pass's own cost and cycle counts.
//
// Scoring uses the §5 trade-off directly: per phase,
//
//   cost = blocked_ticks                    (deadlock persistence, w side)
//        + detector_work                    (per-pass graph work, C side)
//        + kCallOverhead * detector_calls   (fixed cost of stopping the
//                                            world for a pass at all)
//
// The claim the CI perf-smoke job gates (BENCH_adaptive.json):
//
//   * the adaptive controller stays within 20% of the best fixed period
//     in EVERY phase, while
//   * every fixed period loses at least one phase by more than 20% —
//     no single setting wins the shifting workload.
//
// Usage: exp_adaptive_schedule [out.json] [-v]
// (default BENCH_adaptive.json; -v prints per-seed adaptive metrics)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "sched/period_controller.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

// Fixed per-invocation overhead charged on top of the graph work: a
// periodic pass stops the world (locks every shard) even when the graph
// is empty, so invocations are not free.
constexpr double kCallOverhead = 25.0;

constexpr size_t kFixedPeriods[] = {2, 8, 32, 128};
constexpr uint64_t kSeeds[] = {11, 12, 13};
constexpr size_t kMinPeriod = 2;
constexpr size_t kMaxPeriod = 128;
constexpr size_t kInitialPeriod = 16;

// The controller's w: what one blocked transaction-tick of deadlock
// staleness costs in the cost model's work units.  Tuned against the
// fixed grid: the EWMA rate estimate systematically undercounts the
// formation rate at long periods (deadlocks that pile up between passes
// merge into fewer, larger cycles), so w must overweight persistence for
// T* to track the empirically best fixed period.  docs/TUNING.md walks
// through this calibration.
constexpr double kPersistenceWeight = 25.0;

struct Phase {
  const char* name;
  sim::WorkloadConfig workload;
};

std::vector<Phase> MakePhases() {
  std::vector<Phase> phases;
  {
    // Contention storm: everyone hammers four hot resources in exclusive
    // mode — deadlocks form constantly and persist until detected.
    Phase storm;
    storm.name = "storm";
    storm.workload.num_transactions = 250;
    storm.workload.concurrency = 10;
    storm.workload.num_resources = 4;
    storm.workload.zipf_theta = 0.9;
    storm.workload.min_ops = 4;
    storm.workload.max_ops = 8;
    storm.workload.mode_weights = {0, 0, 0.2, 0, 0.8};
    phases.push_back(storm);
  }
  {
    // Quiet spell: shared-mode reads spread over many resources —
    // blocking is rare and deadlocks essentially never form, so every
    // detection pass is pure overhead.
    Phase quiet;
    quiet.name = "quiet";
    quiet.workload.num_transactions = 1200;
    quiet.workload.concurrency = 8;
    quiet.workload.num_resources = 64;
    quiet.workload.zipf_theta = 0.2;
    quiet.workload.min_ops = 3;
    quiet.workload.max_ops = 7;
    quiet.workload.mode_weights = {0.7, 0.1, 0.1, 0.05, 0.05};
    phases.push_back(quiet);
  }
  {
    // Drift: moderate skew and a mixed mode profile — occasional
    // deadlocks, neither extreme wins outright.
    Phase drift;
    drift.name = "drift";
    drift.workload.num_transactions = 250;
    drift.workload.concurrency = 10;
    drift.workload.num_resources = 12;
    drift.workload.zipf_theta = 0.7;
    drift.workload.min_ops = 4;
    drift.workload.max_ops = 8;
    drift.workload.mode_weights = {0.25, 0.15, 0.3, 0.05, 0.25};
    phases.push_back(drift);
  }
  return phases;
}

sim::SimConfig MakeConfig(const Phase& phase, uint64_t seed, size_t period) {
  sim::SimConfig config;
  config.workload = phase.workload;
  config.workload.seed = seed;
  config.detection_period = period;
  config.max_ticks = 500'000;
  // Measure the detector's latency, not the driver's safety net.
  config.stall_patience = 4 * kMaxPeriod + 100;
  return config;
}

double Cost(const sim::SimMetrics& metrics) {
  return static_cast<double>(metrics.blocked_ticks) +
         static_cast<double>(metrics.detector_work) +
         kCallOverhead * static_cast<double>(metrics.detector_invocations);
}

struct PhaseResult {
  std::string name;
  std::vector<double> fixed_costs;  // parallel to kFixedPeriods
  double adaptive_cost = 0.0;
  size_t adaptive_retunes = 0;
  size_t adaptive_min_period = 0;
  size_t adaptive_max_period = 0;
  size_t adaptive_final_period = 0;

  double best_fixed() const {
    return *std::min_element(fixed_costs.begin(), fixed_costs.end());
  }
  double adaptive_ratio() const { return adaptive_cost / best_fixed(); }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_adaptive.json";
  const std::vector<Phase> phases = MakePhases();
  const size_t num_fixed = std::size(kFixedPeriods);

  std::vector<PhaseResult> results;
  for (const Phase& phase : phases) {
    PhaseResult result;
    result.name = phase.name;
    result.fixed_costs.assign(num_fixed, 0.0);
    result.adaptive_min_period = kMaxPeriod;
    results.push_back(result);
  }

  // Fixed grid: every period runs every phase (summed over seeds).
  for (size_t p = 0; p < num_fixed; ++p) {
    for (size_t ph = 0; ph < phases.size(); ++ph) {
      for (uint64_t seed : kSeeds) {
        sim::SimConfig config =
            MakeConfig(phases[ph], seed, kFixedPeriods[p]);
        sim::Simulator simulator(config,
                                 baselines::MakeStrategy("hwtwbg-periodic"));
        results[ph].fixed_costs[p] += Cost(simulator.Run());
      }
    }
  }

  // Adaptive: ONE controller per seed, carried across the phase sequence
  // — it has to retune its way out of each regime change.
  for (uint64_t seed : kSeeds) {
    sched::SchedulerOptions options;
    options.policy = sched::SchedulerPolicy::kEwmaRate;
    options.min_period = kMinPeriod;
    options.max_period = kMaxPeriod;
    options.persistence_weight = kPersistenceWeight;
    auto controller = sched::MakePeriodController(options, kInitialPeriod);
    for (size_t ph = 0; ph < phases.size(); ++ph) {
      sim::SimConfig config = MakeConfig(phases[ph], seed, kInitialPeriod);
      config.period_controller = controller.get();
      sim::Simulator simulator(config,
                               baselines::MakeStrategy("hwtwbg-periodic"));
      sim::SimMetrics metrics = simulator.Run();
      if (argc > 2) {
        std::printf("[seed %llu %s] %s\n",
                    static_cast<unsigned long long>(seed),
                    phases[ph].name, metrics.ToString().c_str());
      }
      PhaseResult& result = results[ph];
      result.adaptive_cost += Cost(metrics);
      result.adaptive_retunes += metrics.period_retunes;
      result.adaptive_min_period =
          std::min(result.adaptive_min_period, metrics.min_detection_period);
      result.adaptive_max_period =
          std::max(result.adaptive_max_period, metrics.max_detection_period);
      result.adaptive_final_period = metrics.final_detection_period;
    }
  }

  // Report + acceptance bookkeeping.
  std::printf("Adaptive detection scheduling (%zu seeds per cell; cost = "
              "blocked_ticks + det_work + %.0f*det_calls)\n\n",
              std::size(kSeeds), kCallOverhead);
  std::printf("%8s", "phase");
  for (size_t p = 0; p < num_fixed; ++p) {
    std::printf("   fixed=%-3zu", kFixedPeriods[p]);
  }
  std::printf("   %10s %8s %14s\n", "adaptive", "ratio", "period[min,max]");

  std::vector<bool> fixed_loses(num_fixed, false);
  for (const PhaseResult& result : results) {
    const double best = result.best_fixed();
    std::printf("%8s", result.name.c_str());
    for (size_t p = 0; p < num_fixed; ++p) {
      std::printf(" %10.0f%c", result.fixed_costs[p],
                  result.fixed_costs[p] > 1.2 * best ? '*' : ' ');
      if (result.fixed_costs[p] > 1.2 * best) fixed_loses[p] = true;
    }
    const double ratio = result.adaptive_ratio();
    std::printf("   %10.0f %7.2fx   [%zu, %zu]->%zu\n", result.adaptive_cost,
                ratio, result.adaptive_min_period, result.adaptive_max_period,
                result.adaptive_final_period);
  }
  const bool all_fixed_lose =
      std::all_of(fixed_loses.begin(), fixed_loses.end(),
                  [](bool lost) { return lost; });
  double max_ratio = 0.0;
  size_t retunes = 0;
  for (const PhaseResult& result : results) {
    max_ratio = std::max(max_ratio, result.adaptive_ratio());
    retunes += result.adaptive_retunes;
  }
  std::printf("\n(* = loses the phase by >20%%.)  adaptive max ratio %.2fx; "
              "every fixed period loses a phase: %s\n",
              max_ratio, all_fixed_lose ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"adaptive_schedule\",\n"
               "  \"seeds\": %zu,\n"
               "  \"call_overhead\": %.1f,\n"
               "  \"min_period\": %zu,\n"
               "  \"max_period\": %zu,\n"
               "  \"initial_period\": %zu,\n"
               "  \"phases\": [\n",
               std::size(kSeeds), kCallOverhead, kMinPeriod, kMaxPeriod,
               kInitialPeriod);
  for (size_t ph = 0; ph < results.size(); ++ph) {
    const PhaseResult& result = results[ph];
    std::fprintf(out,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"fixed\": [",
                 result.name.c_str());
    for (size_t p = 0; p < num_fixed; ++p) {
      std::fprintf(out, "%s{\"period\": %zu, \"cost\": %.1f}",
                   p == 0 ? "" : ", ", kFixedPeriods[p],
                   result.fixed_costs[p]);
    }
    std::fprintf(out,
                 "],\n"
                 "      \"best_fixed_cost\": %.1f,\n"
                 "      \"adaptive_cost\": %.1f,\n"
                 "      \"adaptive_ratio\": %.4f,\n"
                 "      \"adaptive_retunes\": %zu,\n"
                 "      \"adaptive_min_period\": %zu,\n"
                 "      \"adaptive_max_period\": %zu,\n"
                 "      \"adaptive_final_period\": %zu\n"
                 "    }%s\n",
                 result.best_fixed(), result.adaptive_cost,
                 result.adaptive_ratio(), result.adaptive_retunes,
                 result.adaptive_min_period, result.adaptive_max_period,
                 result.adaptive_final_period,
                 ph + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"total_retunes\": %zu,\n"
               "  \"max_adaptive_ratio\": %.4f,\n"
               "  \"every_fixed_period_loses_a_phase\": %s\n"
               "}\n",
               retunes, max_ratio, all_fixed_lose ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
