// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiments F4.1 / F4.2 / F5.1: regenerates the paper's Example 4.1 —
// the H/W-TWBG of Figure 4.1 (with its four cycles, TRRP decomposition and
// victim candidates), the RST/TST internal representation of Figure 5.1,
// the TDR-2 resolution that repositions T8, and the acyclic graph of
// Figure 4.2 afterwards.

#include <cstdio>

#include "core/examples_catalog.h"
#include "core/periodic_detector.h"
#include "core/tst.h"
#include "core/twbg.h"
#include "core/victim.h"
#include "lock/lock_manager.h"

int main() {
  using namespace twbg;

  lock::LockManager manager;
  core::BuildExample41(manager);

  std::printf("=== Example 4.1 lock table ===\n%s\n",
              manager.table().ToString().c_str());

  core::HwTwbg graph = core::HwTwbg::Build(manager.table());
  std::printf("=== Figure 4.1: H/W-TWBG ===\n%s\n",
              graph.ToString().c_str());

  auto cycles = graph.ElementaryCycles();
  std::printf("Elementary cycles: %zu (paper: four)\n", cycles.size());
  for (const auto& cycle : cycles) {
    std::printf("  cycle:");
    for (lock::TransactionId tid : cycle) std::printf(" T%u", tid);
    Result<std::vector<core::Trrp>> trrps = graph.DecomposeCycle(cycle);
    if (trrps.ok()) {
      std::printf("   TRRPs:");
      for (const core::Trrp& trrp : *trrps) {
        std::printf(" %s", trrp.ToString().c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\n=== Victim candidates of the four-TRRP cycle ===\n");
  core::CostTable costs;
  core::DetectorOptions options;
  Result<std::vector<core::VictimCandidate>> candidates =
      core::EnumerateCandidates(graph, {1, 2, 5, 6, 7, 8, 9, 3},
                                manager.table(), costs, options);
  if (candidates.ok()) {
    for (const core::VictimCandidate& c : *candidates) {
      std::printf("  %s\n", c.ToString().c_str());
    }
  }
  std::printf("(paper: TDR-1 candidates {T1, T2, T7, T3}, TDR-2 {T8})\n");

  std::printf("\n=== Figure 5.1: RST (above) and TST ===\n%s\n",
              core::Tst::Build(manager.table()).ToString().c_str());

  std::printf("=== Periodic detection-resolution pass (uniform costs) ===\n");
  core::PeriodicDetector detector;
  core::ResolutionReport report = detector.RunPass(manager, costs);
  std::printf("%s\n", report.ToString().c_str());

  std::printf("=== Lock table after TDR-2 + Step 3 ===\n%s\n",
              manager.table().ToString().c_str());
  std::printf(
      "(paper: T8 repositioned after T3; T9 granted, T3 still queued)\n\n");

  core::HwTwbg after = core::HwTwbg::Build(manager.table());
  std::printf("=== Figure 4.2: H/W-TWBG after resolution ===\n%s",
              after.ToString().c_str());
  std::printf("Cycles now: %zu (paper: none)\n",
              after.ElementaryCycles().size());
  std::printf("Deadlock resolved WITHOUT aborting any transaction: %s\n",
              report.aborted.empty() ? "yes" : "NO");

  std::printf("\n=== Graphviz DOT of Figure 4.1 (for the paper's figure) "
              "===\n%s",
              graph.ToDot().c_str());
  return 0;
}
