// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiments B1 / B3: the full scheme comparison on synthetic workloads
// at three contention levels.  Columns echo the paper's qualitative
// claims:
//
//   * missed   — deadlocks the scheme's graph cannot see (ACD/WFG > 0,
//                ours = 0): the §1 critique of Agrawal et al.;
//   * false    — aborts of transactions that were not deadlocked
//                (timeout only);
//   * aborts / wasted — resolution quality (Elmagarmid's abort-the-blocker
//                and timeouts waste the most work);
//   * tdr2     — deadlocks our scheme resolves with NO abort at all;
//   * work     — detector work units (Jiang pays enumeration costs).

#include <cstdio>
#include <string>

#include "baselines/factory.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

sim::SimConfig MakeConfig(uint64_t seed, const char* level) {
  sim::SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 400;
  config.workload.concurrency = 10;
  config.workload.min_ops = 4;
  config.workload.max_ops = 10;
  config.detection_period = 8;
  config.max_ticks = 250'000;
  config.measure_false_aborts = true;
  if (level == std::string_view("low")) {
    config.workload.num_resources = 256;
    config.workload.zipf_theta = 0.4;
    config.workload.conversion_prob = 0.1;
    config.workload.mode_weights = {0.3, 0.2, 0.3, 0.02, 0.18};
  } else if (level == std::string_view("medium")) {
    config.workload.num_resources = 48;
    config.workload.zipf_theta = 0.8;
    config.workload.conversion_prob = 0.2;
    config.workload.mode_weights = {0.25, 0.2, 0.3, 0.05, 0.2};
  } else {  // high
    config.workload.num_resources = 12;
    config.workload.zipf_theta = 0.9;
    config.workload.conversion_prob = 0.3;
    config.workload.mode_weights = {0.2, 0.2, 0.3, 0.05, 0.25};
  }
  return config;
}

void RunLevel(const char* level) {
  std::printf("\n== contention: %s ==\n", level);
  std::printf("%-22s %8s %8s %7s %7s %7s %7s %8s %10s %9s\n", "scheme",
              "ticks", "commits", "aborts", "tdr2", "missed", "false",
              "wasted", "work", "det_ms");
  for (std::string_view name : baselines::AllStrategyNames()) {
    // Aggregate three seeds.
    sim::SimMetrics total;
    for (uint64_t seed : {1u, 2u, 3u}) {
      sim::SimConfig config = MakeConfig(seed, level);
      sim::Simulator simulator(config, baselines::MakeStrategy(name));
      sim::SimMetrics m = simulator.Run();
      total.ticks += m.ticks;
      total.committed += m.committed;
      total.deadlock_aborts += m.deadlock_aborts;
      total.no_abort_resolutions += m.no_abort_resolutions;
      total.missed_deadlocks += m.missed_deadlocks;
      total.false_aborts += m.false_aborts;
      total.wasted_ops += m.wasted_ops;
      total.detector_work += m.detector_work;
      total.detector_seconds += m.detector_seconds;
      total.timed_out |= m.timed_out;
    }
    std::printf("%-22s %8zu %8zu %7zu %7zu %7zu %7zu %8zu %10zu %9.2f%s\n",
                std::string(name).c_str(), total.ticks, total.committed,
                total.deadlock_aborts, total.no_abort_resolutions,
                total.missed_deadlocks, total.false_aborts, total.wasted_ops,
                total.detector_work, total.detector_seconds * 1e3,
                total.timed_out ? "  TIMED-OUT" : "");
  }
}

}  // namespace

int main() {
  std::printf("Scheme comparison, 3 seeds x 400 transactions per cell.\n");
  std::printf("Expected shape: hwtwbg-* have missed=0 and tdr2>0;\n"
              "wfg/acd show missed>0 under conversions and FIFO waits;\n"
              "timeout shows false>0; elmagarmid/timeout waste the most "
              "work.\n");
  RunLevel("low");
  RunLevel("medium");
  RunLevel("high");
  return 0;
}
