// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Steady-state incremental-build experiment — the acceptance run for the
// GraphBuilder edge cache.  Builds a large mostly-idle table, mutates a
// small fraction of the resources between periodic passes, and times the
// pass with the incremental cache against a from-scratch rebuild of the
// same pass.  Results (ns/pass for both modes, the speedup, and the
// cache counters of the final incremental pass) are written as a JSON
// object so CI can archive them.
//
// A third, instrumented run then re-times the incremental mode with an
// event bus and a LatencyObserver attached, yielding the per-pass Step-1 /
// Step-2 breakdown (and the observability overhead, which must stay small).
// A fourth run adds the always-on forensics flight recorder on top and
// reports its marginal overhead (`recorder_overhead`, relative to the
// bare incremental pass) — the CI perf-smoke job gates it at 3%.
//
// Usage: bench_steady_state [resources] [mutations] [passes] [out.json]
//                           [events.jsonl]
//   resources    table size (default 10000)
//   mutations    resources mutated before each pass (default 100, i.e. 1%)
//   passes       timed passes per mode (default 30)
//   out.json     output path (default BENCH_detector.json in the cwd)
//   events.jsonl optional: stream the instrumented run's events as JSONL

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/scenarios.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "core/periodic_detector.h"
#include "obs/flight_recorder.h"
#include "obs/observer.h"
#include "obs/sinks.h"

using namespace twbg;

namespace {

// Times `passes` detection passes, each preceded by `mutations` churn
// mutations (excluded from the timing).  Returns mean ns/pass; the last
// pass's report lands in *last.
double MeasureMode(bool incremental, size_t resources, size_t mutations,
                   size_t passes, core::ResolutionReport* last,
                   obs::EventBus* bus = nullptr,
                   obs::LatencyObserver* observer = nullptr) {
  lock::LockManager manager;
  bench::SteadyState steady =
      bench::BuildSteadyState(manager, resources, /*bulk=*/16);
  // Shallow invariant check only — the deep per-transaction sweep is
  // O(transactions x resources) and would dwarf the benchmark setup.
  TWBG_CHECK(manager.CheckInvariants(/*deep=*/false).ok());
  core::DetectorOptions options;
  options.incremental_build = incremental;
  options.event_bus = bus;
  core::PeriodicDetector detector(options);
  // Attach the bus after the bulk build so the event log records the
  // steady-state churn (grants/releases between passes), not the setup.
  // The table never deadlocks, so no lock events fire inside the timed
  // RunPass window and the overhead measurement stays clean.
  manager.set_event_bus(bus);
  core::CostTable costs;
  detector.RunPass(manager, costs);  // warm the cache / allocations
  // The warm-up pass is a full sweep; keep it out of the histograms so
  // the reported step means describe steady-state passes only.
  if (observer != nullptr) observer->Reset();
  size_t cursor = 0;
  int64_t total_ns = 0;
  for (size_t p = 0; p < passes; ++p) {
    for (size_t i = 0; i < mutations; ++i) {
      bench::MutateSteadyState(
          manager, steady,
          static_cast<lock::ResourceId>(cursor % resources + 1));
      ++cursor;
    }
    common::Stopwatch watch;
    *last = detector.RunPass(manager, costs);
    total_ns += watch.ElapsedNanos();
  }
  return static_cast<double>(total_ns) / static_cast<double>(passes);
}

}  // namespace

int main(int argc, char** argv) {
  size_t resources = 10000;
  size_t mutations = 100;
  size_t passes = 30;
  std::string out_path = "BENCH_detector.json";
  std::string events_path;
  if (argc > 1) resources = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) mutations = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) passes = static_cast<size_t>(std::atoll(argv[3]));
  if (argc > 4) out_path = argv[4];
  if (argc > 5) events_path = argv[5];
  TWBG_CHECK(resources >= 1 && mutations >= 1 && passes >= 1);
  TWBG_CHECK(mutations <= resources);

  std::printf("steady-state detection pass: %zu resources, %zu mutated "
              "between passes (%.2f%%), %zu passes per mode\n",
              resources, mutations,
              100.0 * static_cast<double>(mutations) /
                  static_cast<double>(resources),
              passes);

  core::ResolutionReport incremental_report;
  core::ResolutionReport scratch_report;
  const double incremental_ns = MeasureMode(
      /*incremental=*/true, resources, mutations, passes, &incremental_report);
  const double scratch_ns = MeasureMode(
      /*incremental=*/false, resources, mutations, passes, &scratch_report);
  const double speedup = scratch_ns / incremental_ns;

  // Both modes must agree on what the pass saw — the table has no
  // deadlocks, so any cycle or abort means a build bug.
  TWBG_CHECK(incremental_report.cycles_detected == 0);
  TWBG_CHECK(scratch_report.cycles_detected == 0);

  // Instrumented run: same incremental pass with the event bus, a
  // LatencyObserver and (optionally) a JSONL exporter attached.  The
  // per-pass Step-1/Step-2 breakdown comes from the observer's histograms.
  obs::EventBus bus;
  obs::LatencyObserver observer;
  bus.Subscribe(&observer);
  std::unique_ptr<obs::JsonlSink> jsonl;
  if (!events_path.empty()) {
    Result<std::unique_ptr<obs::JsonlSink>> sink =
        obs::JsonlSink::Open(events_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   events_path.c_str());
      return 1;
    }
    jsonl = std::move(*sink);
    bus.Subscribe(jsonl.get());
  }
  core::ResolutionReport instrumented_report;
  const double instrumented_ns =
      MeasureMode(/*incremental=*/true, resources, mutations, passes,
                  &instrumented_report, &bus, &observer);
  const double step1_ns = observer.step1_ns().mean();
  const double step2_ns = observer.step2_ns().mean();
  const double obs_overhead = instrumented_ns / incremental_ns - 1.0;

  // Flight-recorder run: the forensics ring alone on the bus, as it would
  // ship in production ("always cheap").  Its overhead is measured against
  // the bare incremental pass.
  obs::EventBus recorder_bus;
  obs::FlightRecorder recorder;
  recorder_bus.Subscribe(&recorder);
  core::ResolutionReport recorder_report;
  const double recorder_ns =
      MeasureMode(/*incremental=*/true, resources, mutations, passes,
                  &recorder_report, &recorder_bus);
  const double recorder_overhead = recorder_ns / incremental_ns - 1.0;

  std::printf("  incremental: %12.0f ns/pass (dirty=%zu cached=%zu "
              "edges-rebuilt=%zu edges-reused=%zu)\n",
              incremental_ns, incremental_report.num_dirty_resources,
              incremental_report.num_cached_resources,
              incremental_report.edges_rebuilt,
              incremental_report.edges_reused);
  std::printf("  scratch:     %12.0f ns/pass\n", scratch_ns);
  std::printf("  speedup:     %12.2fx\n", speedup);
  std::printf("  instrumented:%12.0f ns/pass (step1=%.0f step2=%.0f, "
              "overhead=%.1f%%, %llu events)\n",
              instrumented_ns, step1_ns, step2_ns, obs_overhead * 100.0,
              static_cast<unsigned long long>(observer.total()));
  std::printf("  recorder:    %12.0f ns/pass (overhead=%.1f%%, %llu events "
              "in a %zu-slot ring)\n",
              recorder_ns, recorder_overhead * 100.0,
              static_cast<unsigned long long>(recorder.recorded()),
              recorder.capacity());
  if (jsonl != nullptr) {
    jsonl->Flush();
    std::printf("  events:      %llu line(s) -> %s\n",
                static_cast<unsigned long long>(jsonl->lines_written()),
                events_path.c_str());
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"steady_state_detection_pass\",\n"
               "  \"resources\": %zu,\n"
               "  \"mutations_per_pass\": %zu,\n"
               "  \"mutated_fraction\": %.6f,\n"
               "  \"passes\": %zu,\n"
               "  \"incremental_ns_per_pass\": %.1f,\n"
               "  \"scratch_ns_per_pass\": %.1f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"dirty_resources\": %zu,\n"
               "  \"cached_resources\": %zu,\n"
               "  \"edges_rebuilt\": %zu,\n"
               "  \"edges_reused\": %zu,\n"
               "  \"instrumented_ns_per_pass\": %.1f,\n"
               "  \"step1_ns_per_pass\": %.1f,\n"
               "  \"step2_ns_per_pass\": %.1f,\n"
               "  \"observer_overhead\": %.4f,\n"
               "  \"pass_events\": %llu,\n"
               "  \"recorder_ns_per_pass\": %.1f,\n"
               "  \"recorder_overhead\": %.4f\n"
               "}\n",
               resources, mutations,
               static_cast<double>(mutations) / static_cast<double>(resources),
               passes, incremental_ns, scratch_ns, speedup,
               incremental_report.num_dirty_resources,
               incremental_report.num_cached_resources,
               incremental_report.edges_rebuilt,
               incremental_report.edges_reused, instrumented_ns, step1_ns,
               step2_ns, obs_overhead,
               static_cast<unsigned long long>(observer.total()),
               recorder_ns, recorder_overhead);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
