// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment P1: the detection-period trade-off of §5 — "by increasing
// the periodic interval, the cost of deadlock detection decreases but it
// will detect deadlocks late."  Sweeps the period and reports detection
// cost (invocations, work, wall time) against deadlock latency proxies
// (blocked-transaction integral, total run length), with the continuous
// companion as the period->0 limit.

#include <cstdio>

#include "baselines/factory.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

sim::SimConfig MakeConfig(uint64_t seed, size_t period) {
  sim::SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 400;
  config.workload.concurrency = 10;
  config.workload.num_resources = 14;
  config.workload.zipf_theta = 0.85;
  config.workload.min_ops = 4;
  config.workload.max_ops = 9;
  config.workload.conversion_prob = 0.25;
  config.workload.mode_weights = {0.25, 0.2, 0.3, 0.05, 0.2};
  config.detection_period = period;
  config.max_ticks = 500'000;
  // Keep the driver's stall recovery from pre-empting long periods: the
  // sweep should measure the detector's own latency, not the safety net.
  config.stall_patience = 4 * period + 100;
  return config;
}

}  // namespace

int main() {
  std::printf("Detection-period sweep (3 seeds x 400 txns per row)\n\n");
  std::printf("%12s %8s %9s %10s %10s %9s %8s %8s\n", "period", "ticks",
              "blocked", "det_calls", "det_work", "det_ms", "aborts",
              "tdr2");

  // Continuous companion = detect on every block.
  {
    sim::SimMetrics total;
    for (uint64_t seed : {4u, 5u, 6u}) {
      sim::SimConfig config = MakeConfig(seed, 0);
      sim::Simulator simulator(config,
                               baselines::MakeStrategy("hwtwbg-continuous"));
      sim::SimMetrics m = simulator.Run();
      total.ticks += m.ticks;
      total.blocked_ticks += m.blocked_ticks;
      total.detector_invocations += m.detector_invocations;
      total.detector_work += m.detector_work;
      total.detector_seconds += m.detector_seconds;
      total.deadlock_aborts += m.deadlock_aborts;
      total.no_abort_resolutions += m.no_abort_resolutions;
    }
    std::printf("%12s %8zu %9zu %10zu %10zu %9.2f %8zu %8zu\n", "continuous",
                total.ticks, total.blocked_ticks, total.detector_invocations,
                total.detector_work, total.detector_seconds * 1e3,
                total.deadlock_aborts, total.no_abort_resolutions);
  }

  for (size_t period : {1, 2, 4, 8, 16, 32, 64, 128}) {
    sim::SimMetrics total;
    for (uint64_t seed : {4u, 5u, 6u}) {
      sim::SimConfig config = MakeConfig(seed, period);
      sim::Simulator simulator(config,
                               baselines::MakeStrategy("hwtwbg-periodic"));
      sim::SimMetrics m = simulator.Run();
      total.ticks += m.ticks;
      total.blocked_ticks += m.blocked_ticks;
      total.detector_invocations += m.detector_invocations;
      total.detector_work += m.detector_work;
      total.detector_seconds += m.detector_seconds;
      total.deadlock_aborts += m.deadlock_aborts;
      total.no_abort_resolutions += m.no_abort_resolutions;
    }
    std::printf("%12zu %8zu %9zu %10zu %10zu %9.2f %8zu %8zu\n", period,
                total.ticks, total.blocked_ticks, total.detector_invocations,
                total.detector_work, total.detector_seconds * 1e3,
                total.deadlock_aborts, total.no_abort_resolutions);
  }

  std::printf("\nExpected shape: detection cost (det_calls, det_work) falls\n"
              "as the period grows; blocked-ticks and total ticks rise as\n"
              "deadlocks linger longer before being caught.\n");
  return 0;
}
