// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment B1b: the paper's motivation, scenario by scenario.  Four
// canonical deadlock classes are fed to every detection scheme; each cell
// reports whether one pass (periodic) or one on-block call (continuous)
// resolved the deadlock.  The H/W-TWBG column must be all-yes (Theorem 1);
// the misses in the other columns are exactly the §1 critiques.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "core/examples_catalog.h"
#include "core/oracle.h"
#include "lock/lock_manager.h"

using namespace twbg;

namespace {

using enum lock::LockMode;

struct Scenario {
  const char* name;
  /// Builds the deadlock; returns the transaction whose request closed
  /// the cycle (handed to continuous detectors).
  std::function<lock::TransactionId(lock::LockManager&)> build;
};

std::vector<Scenario> Scenarios() {
  return {
      {"classic 2-txn X/X",
       [](lock::LockManager& lm) {
         (void)lm.Acquire(1, 1, kX);
         (void)lm.Acquire(2, 2, kX);
         (void)lm.Acquire(1, 2, kX);
         (void)lm.Acquire(2, 1, kX);
         return 2u;
       }},
      {"conversion deadlock (IS->X)",
       [](lock::LockManager& lm) {
         (void)lm.Acquire(1, 1, kIS);
         (void)lm.Acquire(2, 1, kIS);
         (void)lm.Acquire(1, 1, kX);
         (void)lm.Acquire(2, 1, kX);
         return 2u;
       }},
      {"FIFO queue-order deadlock",
       [](lock::LockManager& lm) {
         core::BuildFifoDeadlock(lm);
         return 1u;
       }},
      {"second-blocker deadlock",
       [](lock::LockManager& lm) {
         (void)lm.Acquire(1, 1, kS);
         (void)lm.Acquire(2, 1, kS);
         (void)lm.Acquire(3, 2, kX);
         (void)lm.Acquire(3, 1, kX);  // waits on T1 AND T2
         (void)lm.Acquire(2, 2, kS);  // closes the cycle through T2
         return 2u;
       }},
      {"paper Example 4.1 (4 cycles)",
       [](lock::LockManager& lm) {
         core::BuildExample41(lm);
         // T3's request on R2 is the one that closed the cycles (T4's
         // later block joins no cycle), so continuous schemes fire there.
         return 3u;
       }},
  };
}

}  // namespace

int main() {
  std::vector<std::string_view> schemes = {
      "hwtwbg-periodic", "hwtwbg-continuous", "wfg-periodic",
      "acd-periodic",    "jiang-continuous",  "elmagarmid-continuous"};

  std::printf("Does one detection invocation resolve the deadlock?\n\n");
  std::printf("%-30s", "scenario \\ scheme");
  for (std::string_view scheme : schemes) {
    // Header: short names.
    std::string short_name(scheme.substr(0, scheme.find('-')));
    std::printf("%12s", short_name.c_str());
  }
  std::printf("\n");

  for (const Scenario& scenario : Scenarios()) {
    std::printf("%-30s", scenario.name);
    for (std::string_view scheme : schemes) {
      lock::LockManager lm;
      lock::TransactionId closer = scenario.build(lm);
      if (!core::AnalyzeByReduction(lm.table()).deadlocked) {
        std::printf("%12s", "(no dl?)");
        continue;
      }
      core::CostTable costs;
      auto strategy = baselines::MakeStrategy(scheme);
      if (strategy->is_continuous()) {
        strategy->OnBlock(lm, costs, closer);
      } else {
        strategy->OnPeriodic(lm, costs);
      }
      const bool resolved =
          !core::AnalyzeByReduction(lm.table()).deadlocked;
      std::printf("%12s", resolved ? "yes" : "MISS");
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: hwtwbg columns all yes (Theorem 1); wfg misses the FIFO\n"
      "deadlock and Example 4.1 (no queue-order edges, granted-mode-only\n"
      "conflicts); acd additionally misses the second-blocker case (single\n"
      "representative edge); jiang and elmagarmid see them (full relation)\n"
      "at enumeration / victim-quality costs shown elsewhere.\n");
  return 0;
}
