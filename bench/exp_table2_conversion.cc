// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment T2: regenerates Table 2 (the lock conversion matrix) and
// verifies it is the least-upper-bound operator of the MGL mode lattice.

#include <cstdio>

#include <string>

#include "lock/lock_mode.h"

int main() {
  using namespace twbg::lock;

  std::printf("Table 2 — conversion matrix Conv(granted, requested)\n\n      ");
  for (LockMode col : kAllModes) {
    std::printf("%-5s", std::string(ToString(col)).c_str());
  }
  std::printf("\n");
  for (LockMode row : kAllModes) {
    std::printf("%-6s", std::string(ToString(row)).c_str());
    for (LockMode col : kAllModes) {
      std::printf("%-5s", std::string(ToString(Convert(row, col))).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nChecks:\n");
  bool commutative = true;
  bool idempotent = true;
  bool associative = true;
  bool lub = true;
  for (LockMode a : kAllModes) {
    idempotent &= Convert(a, a) == a;
    for (LockMode b : kAllModes) {
      commutative &= Convert(a, b) == Convert(b, a);
      lub &= Covers(Convert(a, b), a) && Covers(Convert(a, b), b);
      for (LockMode c : kAllModes) {
        associative &=
            Convert(Convert(a, b), c) == Convert(a, Convert(b, c));
      }
    }
  }
  std::printf("  commutative: %s\n", commutative ? "yes" : "NO");
  std::printf("  idempotent:  %s\n", idempotent ? "yes" : "NO");
  std::printf("  associative: %s\n", associative ? "yes" : "NO");
  std::printf("  upper bound: %s\n", lub ? "yes" : "NO");
  std::printf("  paper example Conv(IX, S) = SIX: %s\n",
              Convert(LockMode::kIX, LockMode::kS) == LockMode::kSIX
                  ? "yes"
                  : "NO");
  return 0;
}
