// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Network lock-service acceptance run: one in-process twbg-serverd core
// (net::Server over a periodic-engine service with a live background
// detector) under an open-loop fleet of TCP clients.
//
// The driver sustains >= 1000 concurrently connected sessions and
// measures *acquire-to-grant* latency — the client-observed time from
// issuing Acquire to knowing the lock is held: the request round-trip
// when the grant is immediate, request + server-side Await when the
// acquire blocks.  Three ingredients stress the daemon the way
// production traffic would:
//
//   * Poisson arrivals — each driver thread schedules transactions on
//     exponential inter-arrival times instead of back-to-back, so
//     request bursts overlap across sessions (open loop: a stalled
//     transaction does not throttle the arrival process);
//   * connection churn — drivers periodically close one of their
//     connections mid-run and reconnect, exercising session teardown
//     and accept under load;
//   * slow clients — a slice of transactions holds an X lock on the hot
//     range for several milliseconds before committing, forcing real
//     server-side parked awaits for everyone behind them.
//
// Deadlocks are part of the workload (two-lock transactions on a small
// hot range); the background detection pass resolves them and a victim's
// Await reporting kDeadlockVictim counts as a completed wait, not an
// error.
//
// Results land in BENCH_service.json: sustained/peak connection counts,
// acquire-to-grant percentiles (immediate / blocked / all), op counts.
// CI's perf-smoke job gates on sustained_connections >= 1000 and on the
// acquire-to-grant p99s (see .github/workflows/ci.yml).
//
// Usage: bench_service [connections] [seconds] [out.json]

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "net/server.h"
#include "net/tcp_client.h"
#include "txn/concurrent_service.h"

using namespace twbg;

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kDrivers = 8;
constexpr lock::ResourceId kHotRange = 16;
constexpr lock::ResourceId kColdRange = 4096;
// 1 in kSlowEvery transactions is a slow client (holds for kSlowHold).
constexpr uint64_t kSlowEvery = 64;
constexpr auto kSlowHold = std::chrono::milliseconds(5);
// Each driver churns one of its connections every kChurnEvery txns.
constexpr uint64_t kChurnEvery = 200;

struct Series {
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  size_t samples = 0;
};

Series Summarize(std::vector<uint64_t> samples) {
  Series series;
  series.samples = samples.size();
  if (samples.empty()) return series;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(index, samples.size() - 1)];
  };
  series.p50 = at(0.50);
  series.p99 = at(0.99);
  series.max = samples.back();
  return series;
}

struct DriverResult {
  std::vector<uint64_t> immediate_ns;  // granted on the request itself
  std::vector<uint64_t> blocked_ns;    // granted after a parked Await
  uint64_t txns = 0;
  uint64_t commits = 0;
  uint64_t victims = 0;
  uint64_t churns = 0;
  uint64_t errors = 0;
};

// One driver thread: owns `count` connections, runs open-loop Poisson
// arrivals across them until `deadline`.  Signals `done` after its last
// transaction but keeps every connection open until `teardown` — so the
// sampler never sees the fleet's own shutdown as a connection dip.
void Driver(uint16_t port, size_t count, double txns_per_sec, uint64_t seed,
            Clock::time_point deadline, std::atomic<size_t>* done,
            std::atomic<bool>* teardown, DriverResult* result) {
  net::ClientOptions options;
  options.port = port;
  std::vector<std::unique_ptr<net::TcpClient>> clients;
  for (size_t i = 0; i < count; ++i) {
    auto client = net::TcpClient::Create(options);
    TWBG_CHECK(client.ok());
    clients.push_back(std::move(*client));
  }

  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> inter_arrival(txns_per_sec);
  std::uniform_int_distribution<lock::ResourceId> hot(1, kHotRange);
  std::uniform_int_distribution<lock::ResourceId> cold(kHotRange + 1,
                                                       kColdRange);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  Clock::time_point next_arrival = Clock::now();
  size_t cursor = 0;
  while (true) {
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(inter_arrival(rng)));
    if (next_arrival >= deadline) break;
    // Open loop: sleep only when ahead of the arrival process.
    std::this_thread::sleep_until(next_arrival);

    net::TcpClient* client = clients[cursor % clients.size()].get();
    ++cursor;
    ++result->txns;
    const bool slow = result->txns % kSlowEvery == 0;

    auto tid = client->Begin();
    if (!tid.ok()) {
      ++result->errors;
      continue;
    }
    bool dead = false;
    const int locks = slow ? 1 : 2;
    for (int k = 0; k < locks && !dead; ++k) {
      // Contention lives on the hot range; the cold range adds breadth.
      const bool on_hot = slow || coin(rng) < 0.25;
      const lock::ResourceId rid = on_hot ? hot(rng) : cold(rng);
      const lock::LockMode mode =
          slow || coin(rng) < 0.5 ? lock::LockMode::kX : lock::LockMode::kS;
      const Clock::time_point t0 = Clock::now();
      auto outcome = client->Acquire(*tid, rid, mode);
      if (!outcome.ok()) {
        ++result->errors;
        dead = true;
        break;
      }
      if (*outcome == lock::RequestOutcome::kBlocked) {
        Status waited = client->Await(*tid);
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
        if (waited.ok()) {
          result->blocked_ns.push_back(ns);
        } else if (waited.IsDeadlockVictim()) {
          ++result->victims;  // resolved wait — the detector chose us
          dead = true;
        } else {
          ++result->errors;
          dead = true;
        }
      } else {
        result->immediate_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count()));
      }
    }
    if (!dead) {
      if (slow) std::this_thread::sleep_for(kSlowHold);
      if (client->Commit(*tid).ok()) {
        ++result->commits;
      } else {
        ++result->victims;  // aborted between grant and commit
      }
    }

    if (result->txns % kChurnEvery == 0) {
      // Churn: retire the connection just used and dial a fresh one.
      const size_t victim_index = (cursor - 1) % clients.size();
      clients[victim_index].reset();
      auto fresh = net::TcpClient::Create(options);
      if (fresh.ok()) {
        clients[victim_index] = std::move(*fresh);
        ++result->churns;
      }
    }
  }

  done->fetch_add(1, std::memory_order_acq_rel);
  while (!teardown->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Lifts RLIMIT_NOFILE towards its hard cap: >= 1000 client sockets plus
// their server-side twins live in this one process.
void RaiseFdLimit(size_t need) {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= need) return;
  limit.rlim_cur = limit.rlim_max == RLIM_INFINITY
                       ? need
                       : std::min<rlim_t>(limit.rlim_max, need);
  setrlimit(RLIMIT_NOFILE, &limit);
}

void WriteSeries(std::FILE* out, const char* name, const Series& series) {
  std::fprintf(out,
               "\"%s\": {\"p50\": %llu, \"p99\": %llu, \"max\": %llu, "
               "\"samples\": %zu}",
               name, static_cast<unsigned long long>(series.p50),
               static_cast<unsigned long long>(series.p99),
               static_cast<unsigned long long>(series.max), series.samples);
}

}  // namespace

int main(int argc, char** argv) {
  size_t connections = 1100;
  size_t seconds = 6;
  std::string out_path = "BENCH_service.json";
  if (argc > 1) connections = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) seconds = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) out_path = argv[3];
  TWBG_CHECK(connections >= kDrivers && seconds >= 1);
  RaiseFdLimit(2 * connections + 256);

  txn::ConcurrentServiceOptions service_options;
  service_options.detection_mode = txn::DetectionMode::kPeriodic;
  service_options.num_shards = 8;
  service_options.detection_period = std::chrono::microseconds(1000);
  service_options.detection_threads = 2;
  auto service = txn::ConcurrentLockService::Create(service_options);
  TWBG_CHECK(service.ok());

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.max_sessions = connections + 256;
  server_options.worker_threads = 4;
  server_options.await_poll = std::chrono::microseconds(500);
  auto server = net::Server::Create(server_options, service->get());
  TWBG_CHECK(server.ok());
  TWBG_CHECK((*server)->Start().ok());
  const uint16_t port = (*server)->port();

  const double txns_per_sec_per_driver = 400.0;
  std::printf(
      "bench_service: %zu connections, %zu drivers, %.0f txns/s/driver "
      "(Poisson), %zus on port %u\n",
      connections, kDrivers, txns_per_sec_per_driver, seconds, port);

  std::vector<DriverResult> results(kDrivers);
  std::vector<std::thread> drivers;
  std::atomic<size_t> drivers_done{0};
  std::atomic<bool> teardown{false};
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(seconds);
  for (size_t d = 0; d < kDrivers; ++d) {
    const size_t share =
        connections / kDrivers + (d < connections % kDrivers ? 1 : 0);
    drivers.emplace_back(Driver, port, share, txns_per_sec_per_driver,
                         0x5eedULL + d, deadline, &drivers_done, &teardown,
                         &results[d]);
  }

  // Sample the daemon's live-session count while the fleet runs.  The
  // first samples race the drivers' connect loops, so `sustained` only
  // starts counting once the full fleet has been seen once.
  uint64_t peak_sessions = 0;
  uint64_t sustained_sessions = 0;
  bool ramped = false;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_acquire)) {
      const uint64_t active = (*server)->stats().sessions_active;
      peak_sessions = std::max(peak_sessions, active);
      if (!ramped && active >= connections) {
        ramped = true;
        sustained_sessions = active;
      } else if (ramped) {
        sustained_sessions = std::min(sustained_sessions, active);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // Stop sampling while every driver still holds its connections, THEN
  // let the fleet tear down.
  while (drivers_done.load(std::memory_order_acquire) < kDrivers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampling.store(false, std::memory_order_release);
  sampler.join();
  teardown.store(true, std::memory_order_release);
  for (std::thread& driver : drivers) driver.join();

  DriverResult total;
  std::vector<uint64_t> all_ns;
  for (const DriverResult& r : results) {
    total.txns += r.txns;
    total.commits += r.commits;
    total.victims += r.victims;
    total.churns += r.churns;
    total.errors += r.errors;
    total.immediate_ns.insert(total.immediate_ns.end(),
                              r.immediate_ns.begin(), r.immediate_ns.end());
    total.blocked_ns.insert(total.blocked_ns.end(), r.blocked_ns.begin(),
                            r.blocked_ns.end());
  }
  all_ns = total.immediate_ns;
  all_ns.insert(all_ns.end(), total.blocked_ns.begin(),
                total.blocked_ns.end());
  const Series immediate = Summarize(std::move(total.immediate_ns));
  const Series blocked = Summarize(std::move(total.blocked_ns));
  const Series all = Summarize(std::move(all_ns));
  const net::ServerStats stats = (*server)->stats();

  std::printf(
      "  sessions: sustained=%llu peak=%llu total=%llu  txns=%llu "
      "commits=%llu victims=%llu churns=%llu errors=%llu\n",
      static_cast<unsigned long long>(sustained_sessions),
      static_cast<unsigned long long>(peak_sessions),
      static_cast<unsigned long long>(stats.sessions_total),
      static_cast<unsigned long long>(total.txns),
      static_cast<unsigned long long>(total.commits),
      static_cast<unsigned long long>(total.victims),
      static_cast<unsigned long long>(total.churns),
      static_cast<unsigned long long>(total.errors));
  std::printf(
      "  acquire-to-grant: immediate p50=%lluus p99=%lluus (%zu)  "
      "blocked p50=%lluus p99=%lluus (%zu)\n",
      static_cast<unsigned long long>(immediate.p50 / 1000),
      static_cast<unsigned long long>(immediate.p99 / 1000),
      immediate.samples, static_cast<unsigned long long>(blocked.p50 / 1000),
      static_cast<unsigned long long>(blocked.p99 / 1000), blocked.samples);

  // Graceful drain on the way out — the same path the daemon's SIGTERM
  // takes; leaves no live transactions behind.
  (*server)->BeginDrain();
  (*server)->Join();
  TWBG_CHECK((*service)->live_transactions() == 0);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"lock_service\",\n"
               "  \"host_cores\": %u,\n"
               "  \"connections\": %zu,\n"
               "  \"drivers\": %zu,\n"
               "  \"seconds\": %zu,\n"
               "  \"sustained_connections\": %llu,\n"
               "  \"peak_connections\": %llu,\n"
               "  \"sessions_total\": %llu,\n"
               "  \"txns\": %llu,\n"
               "  \"commits\": %llu,\n"
               "  \"victims\": %llu,\n"
               "  \"churns\": %llu,\n"
               "  \"errors\": %llu,\n",
               std::thread::hardware_concurrency(), connections, kDrivers,
               seconds, static_cast<unsigned long long>(sustained_sessions),
               static_cast<unsigned long long>(peak_sessions),
               static_cast<unsigned long long>(stats.sessions_total),
               static_cast<unsigned long long>(total.txns),
               static_cast<unsigned long long>(total.commits),
               static_cast<unsigned long long>(total.victims),
               static_cast<unsigned long long>(total.churns),
               static_cast<unsigned long long>(total.errors));
  std::fprintf(out, "  ");
  WriteSeries(out, "acquire_to_grant_immediate_ns", immediate);
  std::fprintf(out, ",\n  ");
  WriteSeries(out, "acquire_to_grant_blocked_ns", blocked);
  std::fprintf(out, ",\n  ");
  WriteSeries(out, "acquire_to_grant_all_ns", all);
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return total.errors == 0 ? 0 : 1;
}
