// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment M1: lock manager micro-benchmarks — the substrate cost the
// detection algorithms sit on (grants, FIFO queueing, conversions with UPR
// repositioning, release cascades).

#include <benchmark/benchmark.h>

#include "lock/lock_manager.h"

namespace twbg {
namespace {

using lock::LockManager;
using lock::LockMode;

// Grant + full release of a single exclusive lock.
void BM_AcquireReleaseUncontended(benchmark::State& state) {
  LockManager manager;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.Acquire(1, 1, LockMode::kX));
    benchmark::DoNotOptimize(manager.ReleaseAll(1));
  }
}
BENCHMARK(BM_AcquireReleaseUncontended);

// N transactions sharing one resource in IS (holder list growth).
void BM_SharedGrants(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LockManager manager;
    for (size_t i = 1; i <= n; ++i) {
      benchmark::DoNotOptimize(
          manager.Acquire(static_cast<lock::TransactionId>(i), 1,
                          LockMode::kIS));
    }
    state.PauseTiming();
    for (size_t i = 1; i <= n; ++i) {
      manager.ReleaseAll(static_cast<lock::TransactionId>(i));
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SharedGrants)->Arg(4)->Arg(16)->Arg(64);

// FIFO queue growth behind an X holder.
void BM_QueueAppend(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LockManager manager;
    benchmark::DoNotOptimize(manager.Acquire(1, 1, LockMode::kX));
    for (size_t i = 2; i <= n + 1; ++i) {
      benchmark::DoNotOptimize(
          manager.Acquire(static_cast<lock::TransactionId>(i), 1,
                          LockMode::kS));
    }
    state.PauseTiming();
    for (size_t i = 1; i <= n + 1; ++i) {
      manager.ReleaseAll(static_cast<lock::TransactionId>(i));
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_QueueAppend)->Arg(8)->Arg(64)->Arg(256);

// Lock conversion granted in place (IS -> IX among IS friends).
void BM_ConversionGranted(benchmark::State& state) {
  LockManager manager;
  benchmark::DoNotOptimize(manager.Acquire(2, 1, LockMode::kIS));
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.Acquire(1, 1, LockMode::kIS));
    benchmark::DoNotOptimize(manager.Acquire(1, 1, LockMode::kIX));
    state.PauseTiming();
    manager.ReleaseAll(1);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ConversionGranted);

// Blocked conversion: UPR repositioning among n blocked upgraders.
void BM_ConversionBlockedUpr(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LockManager manager;
    for (size_t i = 1; i <= n; ++i) {
      benchmark::DoNotOptimize(
          manager.Acquire(static_cast<lock::TransactionId>(i), 1,
                          LockMode::kIS));
    }
    for (size_t i = 1; i <= n; ++i) {
      benchmark::DoNotOptimize(
          manager.Acquire(static_cast<lock::TransactionId>(i), 1,
                          LockMode::kX));
    }
    state.PauseTiming();
    for (size_t i = 1; i <= n; ++i) {
      manager.ReleaseAll(static_cast<lock::TransactionId>(i));
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ConversionBlockedUpr)->Arg(4)->Arg(16)->Arg(64);

// Release that cascades grants down a queue of compatible waiters.
void BM_ReleaseCascade(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    LockManager manager;
    benchmark::DoNotOptimize(manager.Acquire(1, 1, LockMode::kX));
    for (size_t i = 2; i <= n + 1; ++i) {
      benchmark::DoNotOptimize(
          manager.Acquire(static_cast<lock::TransactionId>(i), 1,
                          LockMode::kS));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(manager.ReleaseAll(1));  // grants all n
    state.PauseTiming();
    for (size_t i = 2; i <= n + 1; ++i) {
      manager.ReleaseAll(static_cast<lock::TransactionId>(i));
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ReleaseCascade)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace twbg

BENCHMARK_MAIN();
