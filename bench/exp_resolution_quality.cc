// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment R1: the headline claim — "some deadlocks can be resolved
// without aborting any transaction."  Sweeps the lock-conversion
// probability (TDR-2 opportunities come from queue repositioning, which
// conversions and mixed modes create) and reports the fraction of
// detected deadlock resolutions that aborted nobody, plus the wasted-work
// saving against the abort-only ablation.

#include <cstdio>

#include "baselines/hwtwbg_strategy.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

sim::SimConfig MakeConfig(uint64_t seed, double conversion_prob) {
  sim::SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 400;
  config.workload.concurrency = 10;
  config.workload.num_resources = 16;
  config.workload.zipf_theta = 0.8;
  config.workload.min_ops = 4;
  config.workload.max_ops = 9;
  config.workload.conversion_prob = conversion_prob;
  config.workload.mode_weights = {0.3, 0.2, 0.25, 0.05, 0.2};
  config.detection_period = 8;
  config.max_ticks = 500'000;
  return config;
}

struct Row {
  size_t cycles = 0;
  size_t tdr2 = 0;
  size_t aborts = 0;
  size_t wasted = 0;
  size_t ticks = 0;
};

Row RunCell(double conversion_prob, bool enable_tdr2) {
  Row row;
  core::DetectorOptions options;
  options.enable_tdr2 = enable_tdr2;
  for (uint64_t seed : {11u, 22u, 33u}) {
    sim::SimConfig config = MakeConfig(seed, conversion_prob);
    sim::Simulator simulator(
        config,
        std::make_unique<baselines::HwTwbgPeriodicStrategy>(options));
    sim::SimMetrics m = simulator.Run();
    row.cycles += m.cycles_found;
    row.tdr2 += m.no_abort_resolutions;
    row.aborts += m.deadlock_aborts;
    row.wasted += m.wasted_ops;
    row.ticks += m.ticks;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("TDR-2 resolution quality vs conversion probability\n");
  std::printf("(3 seeds x 400 transactions per cell)\n\n");
  std::printf("%8s | %8s %6s %7s %8s %8s | %7s %8s %8s\n", "conv_p", "cycles",
              "tdr2", "tdr2%%", "aborts", "wasted", "aborts'", "wasted'",
              "saved%%");
  std::printf("%8s | %40s | %25s\n", "", "TDR-2 enabled (paper)",
              "TDR-2 disabled (ablation)");
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    Row with = RunCell(p, /*enable_tdr2=*/true);
    Row without = RunCell(p, /*enable_tdr2=*/false);
    const double tdr2_pct =
        with.cycles == 0 ? 0.0
                         : 100.0 * static_cast<double>(with.tdr2) /
                               static_cast<double>(with.cycles);
    const double saved_pct =
        without.wasted == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(with.wasted) /
                                 static_cast<double>(without.wasted));
    std::printf("%8.1f | %8zu %6zu %6.1f%% %8zu %8zu | %7zu %8zu %7.1f%%\n",
                p, with.cycles, with.tdr2, tdr2_pct, with.aborts, with.wasted,
                without.aborts, without.wasted, saved_pct);
  }
  std::printf(
      "\ntdr2%% = detected deadlocks resolved without any abort.\n"
      "saved%% = wasted-work reduction versus the abort-only ablation.\n");
  return 0;
}
