// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment E3.1: regenerates the paper's Example 3.1 — the §3
// scheduling narrative: a resource held by (T1, IS) and (T2, IX) with
// queue ((T3, S) (T4, X)); T1 re-requests S, which folds to Conv(IS,S)=S,
// conflicts with T2's IX, blocks, and raises the total mode to SIX.

#include <cstdio>

#include "lock/lock_manager.h"

int main() {
  using namespace twbg;
  using enum lock::LockMode;

  lock::LockManager lm;
  (void)lm.Acquire(1, 1, kIS);
  (void)lm.Acquire(2, 1, kIX);
  (void)lm.Acquire(3, 1, kS);  // queued: S vs tm IX
  (void)lm.Acquire(4, 1, kX);  // queued behind

  std::printf("Initial situation (paper: total mode IX):\n  %s\n\n",
              lm.table().Find(1)->ToString().c_str());
  std::printf("T1 re-requests S: Conv(IS, S) = S conflicts with T2's IX\n"
              "-> the conversion blocks and tm becomes Conv(IX, S) = SIX.\n\n");

  Result<lock::RequestOutcome> outcome = lm.Acquire(1, 1, kS);
  std::printf("Outcome: %s\n",
              outcome.ok() && *outcome == lock::RequestOutcome::kBlocked
                  ? "blocked (as the paper describes)"
                  : "UNEXPECTED");
  std::printf("Resulting situation:\n  %s\n",
              lm.table().Find(1)->ToString().c_str());
  std::printf("(paper: R1(SIX): Holder((T1, IS, S) (T2, IX, NL)) "
              "Queue((T3, S) (T4, X)))\n\n");

  std::printf("Why the total mode matters here: a new IX requestor is\n"
              "compatible with the granted group {IS, IX} but conflicts\n"
              "with T1's pending S; checking against tm=SIX queues it:\n");
  Result<lock::RequestOutcome> newcomer = lm.Acquire(5, 1, kIX);
  std::printf("  T5 requests IX: %s\n",
              newcomer.ok() && *newcomer == lock::RequestOutcome::kBlocked
                  ? "blocked (queued behind the upgrade)"
                  : "granted (group-mode behaviour)");
  std::printf("  %s\n", lm.table().Find(1)->ToString().c_str());
  return 0;
}
