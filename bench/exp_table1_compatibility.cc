// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment T1: regenerates Table 1 (the lock compatibility matrix) and
// verifies the properties the paper relies on, including the Comp(S,S)
// OCR correction justified by Example 5.1 (see DESIGN.md).

#include <cstdio>

#include <string>

#include "lock/lock_mode.h"

int main() {
  using namespace twbg::lock;

  std::printf("Table 1 — compatibility matrix Comp(row, column)\n");
  std::printf("(t: grantable concurrently, f: conflict)\n\n      ");
  for (LockMode col : kAllModes) {
    std::printf("%-5s", std::string(ToString(col)).c_str());
  }
  std::printf("\n");
  for (LockMode row : kAllModes) {
    std::printf("%-6s", std::string(ToString(row)).c_str());
    for (LockMode col : kAllModes) {
      std::printf("%-5s", Compatible(row, col) ? "t" : "f");
    }
    std::printf("\n");
  }

  std::printf("\nChecks:\n");
  bool symmetric = true;
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      symmetric &= Compatible(a, b) == Compatible(b, a);
    }
  }
  std::printf("  symmetric:                       %s\n",
              symmetric ? "yes" : "NO");
  std::printf("  paper example Comp(S, IS) = t:   %s\n",
              Compatible(LockMode::kS, LockMode::kIS) ? "yes" : "NO");
  std::printf("  paper example Comp(IX, SIX) = f: %s\n",
              !Compatible(LockMode::kIX, LockMode::kSIX) ? "yes" : "NO");
  std::printf(
      "  Comp(S, S) = t (OCR fix; required by Example 5.1 where T2 and T3\n"
      "  hold S on R2 concurrently): %s\n",
      Compatible(LockMode::kS, LockMode::kS) ? "yes" : "NO");
  return 0;
}
