// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment W1: lock-wait-time distributions per scheme.  Deadlock
// handling quality shows up in the tail of the wait distribution — a
// detector that leaves deadlocks lingering (long periods, misses) or
// aborts eagerly (timeouts) reshapes p95/max waits.  Complements the
// throughput comparison with a latency view.

#include <cstdio>
#include <string>

#include "baselines/factory.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

sim::SimConfig MakeConfig(uint64_t seed) {
  sim::SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 400;
  config.workload.concurrency = 10;
  config.workload.num_resources = 20;
  config.workload.zipf_theta = 0.8;
  config.workload.min_ops = 4;
  config.workload.max_ops = 9;
  config.workload.conversion_prob = 0.2;
  config.workload.mode_weights = {0.25, 0.2, 0.3, 0.05, 0.2};
  config.detection_period = 8;
  config.max_ticks = 250'000;
  return config;
}

}  // namespace

int main() {
  std::printf("Lock-wait distributions (ticks), one seed, 400 txns/run\n\n");
  std::printf("%-22s %8s %8s %8s %8s %8s %8s\n", "scheme", "waits", "mean",
              "p50", "p95", "p99", "max");
  for (std::string_view name : baselines::AllStrategyNames()) {
    sim::SimConfig config = MakeConfig(42);
    sim::Simulator simulator(config, baselines::MakeStrategy(name));
    sim::SimMetrics m = simulator.Run();
    const sim::SampleStats& w = m.wait_ticks;
    std::printf("%-22s %8zu %8.1f %8.1f %8.1f %8.1f %8.1f%s\n",
                std::string(name).c_str(), w.count(), w.mean(),
                w.Percentile(50), w.Percentile(95), w.Percentile(99),
                w.max(), m.timed_out ? "  TIMED-OUT" : "");
  }
  std::printf(
      "\nReading: continuous schemes cut the tail (deadlocks die at the\n"
      "blocking request); long-period or miss-prone schemes stretch it;\n"
      "timeouts truncate waits by killing the waiters instead.\n");
  return 0;
}
