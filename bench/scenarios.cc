// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "bench/scenarios.h"

#include "common/macros.h"

namespace twbg::bench {

using lock::LockMode;

namespace {

void MustAcquire(lock::LockManager& manager, lock::TransactionId tid,
                 lock::ResourceId rid, LockMode mode) {
  Result<lock::RequestOutcome> outcome = manager.Acquire(tid, rid, mode);
  TWBG_CHECK(outcome.ok());
}

}  // namespace

void BuildChain(lock::LockManager& manager, size_t n) {
  TWBG_CHECK(n >= 1);
  for (size_t i = 1; i <= n; ++i) {
    MustAcquire(manager, static_cast<lock::TransactionId>(i),
                static_cast<lock::ResourceId>(i), LockMode::kX);
  }
  for (size_t i = 2; i <= n; ++i) {
    MustAcquire(manager, static_cast<lock::TransactionId>(i),
                static_cast<lock::ResourceId>(i - 1), LockMode::kX);
  }
}

void BuildRing(lock::LockManager& manager, size_t n) {
  BuildChain(manager, n);
  MustAcquire(manager, 1, static_cast<lock::ResourceId>(n), LockMode::kX);
}

void BuildRings(lock::LockManager& manager, size_t k, size_t m) {
  TWBG_CHECK(m >= 2);
  for (size_t ring = 0; ring < k; ++ring) {
    const size_t txn_base = ring * m;
    const size_t rid_base = ring * m;
    for (size_t i = 1; i <= m; ++i) {
      MustAcquire(manager, static_cast<lock::TransactionId>(txn_base + i),
                  static_cast<lock::ResourceId>(rid_base + i), LockMode::kX);
    }
    for (size_t i = 2; i <= m; ++i) {
      MustAcquire(manager, static_cast<lock::TransactionId>(txn_base + i),
                  static_cast<lock::ResourceId>(rid_base + i - 1),
                  LockMode::kX);
    }
    MustAcquire(manager, static_cast<lock::TransactionId>(txn_base + 1),
                static_cast<lock::ResourceId>(rid_base + m), LockMode::kX);
  }
}

void BuildUpgradeCrowd(lock::LockManager& manager, size_t k,
                       lock::ResourceId rid) {
  TWBG_CHECK(k >= 2);
  for (size_t i = 1; i <= k; ++i) {
    MustAcquire(manager, static_cast<lock::TransactionId>(i), rid,
                LockMode::kIS);
  }
  for (size_t i = 1; i <= k; ++i) {
    MustAcquire(manager, static_cast<lock::TransactionId>(i), rid,
                LockMode::kX);
  }
}

void BuildQueueTail(lock::LockManager& manager, size_t q,
                    lock::ResourceId rid) {
  MustAcquire(manager, 1, rid, LockMode::kX);
  for (size_t i = 2; i <= q + 1; ++i) {
    MustAcquire(manager, static_cast<lock::TransactionId>(i), rid,
                LockMode::kX);
  }
}

SteadyState BuildSteadyState(lock::LockManager& manager, size_t num_resources,
                             size_t bulk) {
  TWBG_CHECK(num_resources >= 1);
  for (size_t b = 1; b <= bulk; ++b) {
    for (size_t r = 1; r <= num_resources; ++r) {
      MustAcquire(manager, static_cast<lock::TransactionId>(b),
                  static_cast<lock::ResourceId>(r), LockMode::kIS);
    }
  }
  // Blocked X waiters on every 97th resource (they wait on the IS
  // holders forever; no cycle can form since holders never wait).
  const size_t num_waiters = (num_resources + 96) / 97;
  for (size_t w = 0; w < num_waiters; ++w) {
    MustAcquire(manager, static_cast<lock::TransactionId>(bulk + 1 + w),
                static_cast<lock::ResourceId>(w * 97 + 1), LockMode::kX);
  }
  SteadyState state;
  state.churn.reserve(num_resources);
  const size_t churn_base = bulk + num_waiters;
  for (size_t r = 1; r <= num_resources; ++r) {
    const auto tid = static_cast<lock::TransactionId>(churn_base + r);
    MustAcquire(manager, tid, static_cast<lock::ResourceId>(r), LockMode::kIS);
    state.churn.push_back(tid);
  }
  state.next_tid =
      static_cast<lock::TransactionId>(churn_base + num_resources + 1);
  return state;
}

void MutateSteadyState(lock::LockManager& manager, SteadyState& state,
                       lock::ResourceId rid) {
  TWBG_CHECK(rid >= 1 && rid <= state.churn.size());
  manager.ReleaseAll(state.churn[rid - 1]);
  MustAcquire(manager, state.next_tid, rid, LockMode::kIS);
  state.churn[rid - 1] = state.next_tid++;
}

}  // namespace twbg::bench
