// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Sharded-service scaling experiment — the acceptance run for the
// concurrent lock layer.  A low-contention zipf workload (many resources,
// a mildly hot head) runs on real threads against:
//
//   * the legacy continuous engine (one mutex around the sequential
//     TransactionManager, inline resolution) at each thread count, and
//   * the sharded periodic engine across a threads x shards grid, with a
//     dedicated detector thread sweeping every millisecond.
//
// No event bus is attached: a bus serializes every emission point (by
// design — see txn/concurrent_service.h), which would turn the scaling
// measurement into a measurement of the observability mutex.
//
// Results land in BENCH_concurrent.json: throughput per cell, the
// speedup of each sharded cell over the continuous baseline at the same
// thread count, client-visible pause percentiles of the largest cell
// (the periodic grid runs the default pauseless kEpochDelta strategy,
// so a pause is max(shard publish, validated apply) — bench_pauseless
// measures the pauseless-vs-stop-the-world grid itself), and its
// per-shard contention counters folded into the SimMetrics fields
// (shard_mutex_waits / shard_hold_ns / detector_passes /
// detector_pause_ns / snapshot_*).  Speedups are informational on small hosts —
// `host_cores` is recorded so CI trend lines can be read honestly.
//
// Usage: bench_concurrent [txns_per_thread] [resources] [out.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "sim/metrics.h"
#include "txn/concurrent_service.h"

using namespace twbg;

namespace {

struct CellResult {
  size_t threads = 0;
  size_t shards = 0;  // 0 = continuous baseline
  double txns_per_sec = 0.0;
  size_t committed = 0;
  size_t victims = 0;
};

// Zipf-ish skew: squaring a uniform sample makes low rids hot while the
// long tail keeps the shards spread.
lock::ResourceId PickResource(common::Rng& rng, size_t resources) {
  const double u = rng.NextDouble();
  return static_cast<lock::ResourceId>(
      1 + static_cast<size_t>(u * u * static_cast<double>(resources)));
}

void Worker(txn::ConcurrentLockService& service, uint64_t seed, size_t txns,
            size_t resources, std::atomic<size_t>* committed) {
  common::Rng rng(seed);
  for (size_t i = 0; i < txns; ++i) {
    const lock::TransactionId t = *service.Begin();
    bool dead = false;
    const size_t ops = 1 + rng.NextBelow(4);
    for (size_t k = 0; k < ops && !dead; ++k) {
      const lock::ResourceId rid = PickResource(rng, resources);
      const lock::LockMode mode =
          rng.NextBernoulli(0.25) ? lock::LockMode::kX : lock::LockMode::kS;
      if (service.AcquireBlocking(t, rid, mode).IsAborted()) dead = true;
    }
    if (dead) continue;  // deadlock victim: locks already gone
    if (service.Commit(t).ok()) committed->fetch_add(1);
  }
}

CellResult RunCell(txn::ConcurrentLockService& service, size_t threads,
                   size_t txns_per_thread, size_t resources, uint64_t seed) {
  std::atomic<size_t> committed{0};
  common::Stopwatch watch;
  {
    std::vector<std::thread> workers;
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back(Worker, std::ref(service), seed * 7919 + w,
                           txns_per_thread, resources, &committed);
    }
    for (std::thread& t : workers) t.join();
  }
  const double seconds =
      static_cast<double>(watch.ElapsedNanos()) / 1e9;
  CellResult result;
  result.threads = threads;
  result.txns_per_sec =
      seconds > 0 ? static_cast<double>(committed.load()) / seconds : 0.0;
  result.committed = committed.load();
  result.victims = service.deadlock_victims();
  return result;
}

uint64_t Percentile(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  size_t txns_per_thread = 2000;
  size_t resources = 4096;
  std::string out_path = "BENCH_concurrent.json";
  if (argc > 1) txns_per_thread = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) resources = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) out_path = argv[3];
  TWBG_CHECK(txns_per_thread >= 1 && resources >= 16);

  const unsigned host_cores = std::thread::hardware_concurrency();
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<size_t> shard_counts = {1, 4, 16};
  std::printf("sharded lock service scaling: %zu txns/thread, %zu resources, "
              "%u hardware threads\n",
              txns_per_thread, resources, host_cores);

  // Continuous single-mutex baseline at each thread count.
  std::vector<CellResult> baseline;
  for (size_t threads : thread_counts) {
    Result<std::unique_ptr<txn::ConcurrentLockService>> service =
        txn::ConcurrentLockService::Create(txn::ConcurrentServiceOptions{});
    TWBG_CHECK(service.ok());  // continuous single-mutex engine
    CellResult cell =
        RunCell(**service, threads, txns_per_thread, resources, 11 + threads);
    std::printf("  continuous  threads=%zu            %10.0f txn/s "
                "(%zu committed, %zu victims)\n",
                threads, cell.txns_per_sec, cell.committed, cell.victims);
    baseline.push_back(cell);
  }

  // Sharded periodic grid.  The largest cell keeps its pause/contention
  // telemetry for the report.
  std::vector<CellResult> cells;
  std::vector<uint64_t> pauses;
  sim::SimMetrics largest;
  for (size_t shards : shard_counts) {
    for (size_t threads : thread_counts) {
      txn::ConcurrentServiceOptions options;
      options.num_shards = shards;
      options.detection_mode = txn::DetectionMode::kPeriodic;
      options.detection_period = std::chrono::milliseconds(1);
      options.detection_threads = std::min<size_t>(shards, 4);
      Result<std::unique_ptr<txn::ConcurrentLockService>> service =
          txn::ConcurrentLockService::Create(options);
      TWBG_CHECK(service.ok());
      CellResult cell = RunCell(**service, threads, txns_per_thread,
                                resources, 11 + threads);
      cell.shards = shards;
      std::printf("  periodic    threads=%zu shards=%-3zu %10.0f txn/s "
                  "(%zu committed, %zu victims, %llu passes)\n",
                  threads, shards, cell.txns_per_sec, cell.committed,
                  cell.victims,
                  static_cast<unsigned long long>(
                      (*service)->snapshot_epoch()));
      cells.push_back(cell);
      if (shards == shard_counts.back() && threads == thread_counts.back()) {
        pauses = (*service)->pause_times_ns();
        largest.committed = cell.committed;
        largest.deadlock_aborts = cell.victims;
        largest.detector_passes = (*service)->snapshot_epoch();
        for (uint64_t pause : pauses) largest.detector_pause_ns += pause;
        const std::vector<uint64_t> publishes =
            (*service)->publish_pause_times_ns();
        largest.snapshot_publishes = publishes.size();
        for (uint64_t ns : publishes) largest.snapshot_publish_ns += ns;
        for (uint64_t ns : (*service)->detection_lag_ns()) {
          largest.snapshot_lag_ns += ns;
        }
        largest.resolutions_rejected = (*service)->resolutions_rejected();
        for (size_t s = 0; s < shards; ++s) {
          const txn::ShardStats stats = (*service)->shard_stats(s);
          largest.shard_mutex_waits += stats.acquire_waits;
          largest.shard_hold_ns += stats.hold_ns;
        }
      }
    }
  }

  std::sort(pauses.begin(), pauses.end());
  const uint64_t pause_p50 = Percentile(pauses, 0.50);
  const uint64_t pause_p95 = Percentile(pauses, 0.95);
  const uint64_t pause_p99 = Percentile(pauses, 0.99);
  const uint64_t pause_max = pauses.empty() ? 0 : pauses.back();
  std::printf("  pauses (8 threads, 16 shards): p50=%llu p95=%llu p99=%llu "
              "max=%llu ns over %zu passes\n",
              static_cast<unsigned long long>(pause_p50),
              static_cast<unsigned long long>(pause_p95),
              static_cast<unsigned long long>(pause_p99),
              static_cast<unsigned long long>(pause_max), pauses.size());
  std::printf("  contention (same cell): %zu mutex waits, %zu ns held, "
              "%zu passes, %zu ns paused\n",
              largest.shard_mutex_waits, largest.shard_hold_ns,
              largest.detector_passes, largest.detector_pause_ns);

  // Informational speedup of the biggest sharded cell over the continuous
  // baseline at the same thread count (8).  On single-core CI hosts the
  // sharding cannot beat one mutex — the number is archived, not gated.
  const double continuous_8 = baseline.back().txns_per_sec;
  const double sharded_8x16 = cells.back().txns_per_sec;
  const double speedup =
      continuous_8 > 0 ? sharded_8x16 / continuous_8 : 0.0;
  std::printf("  speedup (8 threads, 16 shards vs continuous): %.2fx\n",
              speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"sharded_lock_service\",\n"
               "  \"host_cores\": %u,\n"
               "  \"txns_per_thread\": %zu,\n"
               "  \"resources\": %zu,\n"
               "  \"baseline\": [",
               host_cores, txns_per_thread, resources);
  for (size_t i = 0; i < baseline.size(); ++i) {
    std::fprintf(out, "%s\n    {\"threads\": %zu, \"txns_per_sec\": %.1f}",
                 i == 0 ? "" : ",", baseline[i].threads,
                 baseline[i].txns_per_sec);
  }
  std::fprintf(out, "\n  ],\n  \"cells\": [");
  for (size_t i = 0; i < cells.size(); ++i) {
    const size_t b =
        i % thread_counts.size();  // baseline with the same thread count
    const double vs = baseline[b].txns_per_sec > 0
                          ? cells[i].txns_per_sec / baseline[b].txns_per_sec
                          : 0.0;
    std::fprintf(out,
                 "%s\n    {\"threads\": %zu, \"shards\": %zu, "
                 "\"txns_per_sec\": %.1f, \"vs_continuous\": %.3f}",
                 i == 0 ? "" : ",", cells[i].threads, cells[i].shards,
                 cells[i].txns_per_sec, vs);
  }
  std::fprintf(out,
               "\n  ],\n"
               "  \"pause_ns\": {\"p50\": %llu, \"p95\": %llu, "
               "\"p99\": %llu, \"max\": %llu, \"passes\": %zu},\n"
               "  \"shard_mutex_waits\": %zu,\n"
               "  \"shard_hold_ns\": %zu,\n"
               "  \"detector_passes\": %zu,\n"
               "  \"detector_pause_ns\": %zu,\n"
               "  \"snapshot_publishes\": %zu,\n"
               "  \"snapshot_publish_ns\": %zu,\n"
               "  \"snapshot_lag_ns\": %zu,\n"
               "  \"resolutions_rejected\": %zu,\n"
               "  \"speedup_8x16\": %.3f\n"
               "}\n",
               static_cast<unsigned long long>(pause_p50),
               static_cast<unsigned long long>(pause_p95),
               static_cast<unsigned long long>(pause_p99),
               static_cast<unsigned long long>(pause_max), pauses.size(),
               largest.shard_mutex_waits, largest.shard_hold_ns,
               largest.detector_passes, largest.detector_pause_ns,
               largest.snapshot_publishes, largest.snapshot_publish_ns,
               largest.snapshot_lag_ns, largest.resolutions_rejected,
               speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
