// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Pauseless-vs-stop-the-world grid — the acceptance run for the
// epoch-snapshot detection pass.  Each cell of a (table size x shards x
// threads) grid pre-pins a table of S locks to the requested size, then
// runs a fixed number of *rounds*: worker threads execute a fixed batch
// of short transactions (S locks on the pinned range plus one X on a
// tiny overflow range), quiesce, and one detection pass runs — once with
// the pauseless kEpochDelta strategy, once with kStopTheWorld.
//
// The round structure is the experiment's control: the mutation delta a
// pass observes is set by the batch size, *not* by the table size, so
// the grid isolates exactly the claim under test — a shard's publish
// pause is O(journal delta) and stays flat as the table grows, while the
// stop-the-world pause (which walks the whole table under every shard
// lock) grows with it.  An open-loop design would conflate the two: the
// detect phase over a bigger sealed mirror takes longer, a longer pass
// interval accumulates a bigger delta, and the publish pause would grow
// with the table for reasons that have nothing to do with the publish
// bound.  (How detection overlaps live traffic under open-loop load is
// bench_concurrent's subject.)
//
// A warm-up pass right after pinning absorbs the initial full-table
// delta; percentiles cover the steady-state rounds only.  No event bus
// is attached (a bus serializes the service; see
// txn/concurrent_service.h).
//
// Results land in BENCH_pauseless.json: per cell, the per-shard publish
// pause percentiles, the client-visible pause percentiles
// (max(publish, apply)), the seal-to-apply detection lag, and the
// stop-the-world pause percentiles of the twin run.  CI's perf-smoke job
// gates on publish p99 at the largest table size and on p99 flatness
// across table sizes.
//
// Usage: bench_pauseless [rounds] [out.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "txn/concurrent_service.h"

using namespace twbg;

namespace {

// Transactions per round across all workers: keeps the per-round journal
// delta (and hence the expected publish pause) identical in every cell.
constexpr size_t kTxnsPerRound = 48;

struct Series {
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  size_t samples = 0;
};

struct CellResult {
  size_t table_size = 0;
  size_t shards = 0;
  size_t threads = 0;
  size_t passes = 0;      // steady-state pauseless passes
  size_t stw_passes = 0;  // steady-state stop-the-world passes
  size_t committed = 0;
  size_t rejected = 0;  // stale commands dropped by stamp validation
  Series publish;       // per-shard publish pauses (pauseless)
  Series client;        // client-visible pauses (pauseless)
  Series lag;           // seal-to-apply detection lag (pauseless)
  Series stw;           // whole-pass pauses (stop-the-world twin)
};

Series Summarize(std::vector<uint64_t> samples) {
  Series series;
  series.samples = samples.size();
  if (samples.empty()) return series;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(index, samples.size() - 1)];
  };
  series.p50 = at(0.50);
  series.p99 = at(0.99);
  series.max = samples.back();
  return series;
}

// Drops the first `skip` entries (the warm-up pass) and summarizes the
// steady-state tail.
Series SteadyState(const std::vector<uint64_t>& all, size_t skip) {
  if (all.size() <= skip) return Series{};
  return Summarize(std::vector<uint64_t>(all.begin() + skip, all.end()));
}

// One worker's share of a round: `batch` short transactions of two S
// locks on the pinned (table-sized) range plus one X lock on a tiny
// overflow range shared by all workers.  The S traffic churns every
// shard's journal; the X queue adds waiter churn.  A transaction only
// ever blocks behind another worker's X (each takes a single X, last),
// so every wait resolves by a grant and the round always drains.
void ChurnBatch(txn::ConcurrentLockService& service, uint64_t seed,
                size_t table_size, size_t batch,
                std::atomic<size_t>* committed) {
  common::Rng rng(seed);
  for (size_t i = 0; i < batch; ++i) {
    const lock::TransactionId t = *service.Begin();
    bool dead = false;
    for (int k = 0; k < 2 && !dead; ++k) {
      const lock::ResourceId rid =
          static_cast<lock::ResourceId>(1 + rng.NextBelow(table_size));
      if (service.AcquireBlocking(t, rid, lock::LockMode::kS).IsAborted()) {
        dead = true;
      }
    }
    if (!dead) {
      const lock::ResourceId rid =
          static_cast<lock::ResourceId>(table_size + 1 + rng.NextBelow(32));
      if (service.AcquireBlocking(t, rid, lock::LockMode::kX).IsAborted()) {
        dead = true;
      }
    }
    if (dead) continue;  // victim: locks already gone
    if (service.Commit(t).ok()) committed->fetch_add(1);
  }
}

// Pins the live table to `table_size` resources (a long-lived reader
// holding kS everywhere — compatible with the churn's S traffic), runs
// one warm-up pass, then `rounds` rounds of batch-churn-then-pass.
void RunOne(txn::ConcurrentLockService& service, size_t table_size,
            size_t threads, size_t rounds, uint64_t seed,
            size_t* passes_out, size_t* committed_out) {
  const lock::TransactionId pin = *service.Begin();
  for (size_t rid = 1; rid <= table_size; ++rid) {
    TWBG_CHECK(service
                   .AcquireBlocking(pin, static_cast<lock::ResourceId>(rid),
                                    lock::LockMode::kS)
                   .ok());
  }
  (void)service.RunDetectionPass();  // warm-up: absorbs the pin delta
  const uint64_t warmed = service.snapshot_epoch();

  std::atomic<size_t> committed{0};
  const size_t batch = std::max<size_t>(1, kTxnsPerRound / threads);
  for (size_t round = 0; round < rounds; ++round) {
    std::vector<std::thread> workers;
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        ChurnBatch(service, seed * 7919 + round * 131 + w, table_size,
                   batch, &committed);
      });
    }
    for (std::thread& t : workers) t.join();
    (void)service.RunDetectionPass();
  }
  *passes_out = service.snapshot_epoch() - warmed;
  *committed_out = committed.load();
}

CellResult RunCell(size_t table_size, size_t shards, size_t threads,
                   size_t rounds) {
  CellResult cell;
  cell.table_size = table_size;
  cell.shards = shards;
  cell.threads = threads;

  {  // pauseless run
    txn::ConcurrentServiceOptions options;
    options.num_shards = shards;
    options.detection_mode = txn::DetectionMode::kPeriodic;
    options.snapshot_strategy = txn::SnapshotStrategy::kEpochDelta;
    options.detection_threads = 2;
    Result<std::unique_ptr<txn::ConcurrentLockService>> service =
        txn::ConcurrentLockService::Create(options);
    TWBG_CHECK(service.ok());
    RunOne(**service, table_size, threads, rounds, 11 + table_size,
           &cell.passes, &cell.committed);
    // Warm-up skip: one pass = `shards` publish samples, one client
    // pause, one lag sample.
    cell.publish = SteadyState((*service)->publish_pause_times_ns(), shards);
    cell.client = SteadyState((*service)->pause_times_ns(), 1);
    cell.lag = SteadyState((*service)->detection_lag_ns(), 1);
    cell.rejected = (*service)->resolutions_rejected();
  }
  {  // stop-the-world twin
    txn::ConcurrentServiceOptions options;
    options.num_shards = shards;
    options.detection_mode = txn::DetectionMode::kPeriodic;
    options.snapshot_strategy = txn::SnapshotStrategy::kStopTheWorld;
    options.detection_threads = 2;
    Result<std::unique_ptr<txn::ConcurrentLockService>> service =
        txn::ConcurrentLockService::Create(options);
    TWBG_CHECK(service.ok());
    size_t committed = 0;
    RunOne(**service, table_size, threads, rounds, 11 + table_size,
           &cell.stw_passes, &committed);
    cell.stw = SteadyState((*service)->pause_times_ns(), 1);
  }
  return cell;
}

void PrintSeries(const char* name, const Series& series) {
  std::printf("%s p50=%llu p99=%llu max=%llu (%zu samples)",
              name, static_cast<unsigned long long>(series.p50),
              static_cast<unsigned long long>(series.p99),
              static_cast<unsigned long long>(series.max), series.samples);
}

void WriteSeries(std::FILE* out, const char* name, const Series& series) {
  std::fprintf(out,
               "\"%s\": {\"p50\": %llu, \"p99\": %llu, \"max\": %llu, "
               "\"samples\": %zu}",
               name, static_cast<unsigned long long>(series.p50),
               static_cast<unsigned long long>(series.p99),
               static_cast<unsigned long long>(series.max), series.samples);
}

}  // namespace

int main(int argc, char** argv) {
  size_t rounds = 60;
  std::string out_path = "BENCH_pauseless.json";
  if (argc > 1) rounds = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) out_path = argv[2];
  TWBG_CHECK(rounds >= 2);

  const unsigned host_cores = std::thread::hardware_concurrency();
  const std::vector<size_t> table_sizes = {1024, 16384, 65536};
  const std::vector<size_t> shard_counts = {4, 16};
  const std::vector<size_t> thread_counts = {2, 4};
  std::printf("pauseless vs stop-the-world: %zu rounds x %zu txns per cell, "
              "%u hardware threads\n",
              rounds, kTxnsPerRound, host_cores);

  std::vector<CellResult> cells;
  for (size_t table_size : table_sizes) {
    for (size_t shards : shard_counts) {
      for (size_t threads : thread_counts) {
        CellResult cell = RunCell(table_size, shards, threads, rounds);
        std::printf("  table=%-6zu shards=%-3zu threads=%zu  publish ",
                    table_size, shards, threads);
        PrintSeries("", cell.publish);
        std::printf("  stw ");
        PrintSeries("", cell.stw);
        std::printf("  rejected=%zu\n", cell.rejected);
        cells.push_back(cell);
      }
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"pauseless_detection\",\n"
               "  \"host_cores\": %u,\n"
               "  \"rounds\": %zu,\n"
               "  \"txns_per_round\": %zu,\n"
               "  \"cells\": [",
               host_cores, rounds, kTxnsPerRound);
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(out,
                 "%s\n    {\"table_size\": %zu, \"shards\": %zu, "
                 "\"threads\": %zu, \"passes\": %zu, \"stw_passes\": %zu, "
                 "\"committed\": %zu, \"rejected\": %zu,\n     ",
                 i == 0 ? "" : ",", cell.table_size, cell.shards,
                 cell.threads, cell.passes, cell.stw_passes, cell.committed,
                 cell.rejected);
    WriteSeries(out, "publish_pause_ns", cell.publish);
    std::fprintf(out, ",\n     ");
    WriteSeries(out, "client_pause_ns", cell.client);
    std::fprintf(out, ",\n     ");
    WriteSeries(out, "detection_lag_ns", cell.lag);
    std::fprintf(out, ",\n     ");
    WriteSeries(out, "stw_pause_ns", cell.stw);
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
