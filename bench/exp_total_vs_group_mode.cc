// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment A2: total mode vs group mode (§2).  The paper introduces the
// total mode (Conv over granted AND pending modes) and claims it is more
// efficient than Gray's group mode.  This experiment quantifies why: under
// group-mode admission, newcomers that conflict only with *pending*
// upgrades are admitted, so blocked upgraders wait longer (they can be
// starved by a stream of compatible-with-granted arrivals), which shows up
// in the wait tail and in lost throughput on conversion-heavy workloads.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

sim::SimConfig MakeConfig(uint64_t seed, double conversion_prob,
                          lock::AdmissionPolicy policy) {
  sim::SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 400;
  config.workload.concurrency = 10;
  config.workload.num_resources = 16;
  config.workload.zipf_theta = 0.8;
  config.workload.min_ops = 4;
  config.workload.max_ops = 9;
  config.workload.conversion_prob = conversion_prob;
  // Intention-heavy mix: lots of IS/IX grants for upgrades to fight.
  config.workload.mode_weights = {0.35, 0.25, 0.2, 0.05, 0.15};
  config.detection_period = 8;
  config.max_ticks = 250'000;
  config.admission = policy;
  return config;
}

struct Row {
  size_t ticks = 0;
  size_t aborts = 0;
  size_t cycles = 0;
  sim::SampleStats waits;
  bool timed_out = false;
};

Row RunCell(double conversion_prob, lock::AdmissionPolicy policy) {
  Row row;
  for (uint64_t seed : {31u, 32u, 33u}) {
    sim::SimConfig config = MakeConfig(seed, conversion_prob, policy);
    sim::Simulator simulator(config,
                             baselines::MakeStrategy("hwtwbg-periodic"));
    sim::SimMetrics m = simulator.Run();
    row.ticks += m.ticks;
    row.aborts += m.deadlock_aborts;
    row.cycles += m.cycles_found;
    row.timed_out |= m.timed_out;
    row.waits.Add(m.wait_ticks.Percentile(95));  // one p95 per run
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Total-mode vs group-mode admission (3 seeds x 400 txns)\n");
  std::printf("p95 column = mean of per-run p95 lock waits (ticks)\n\n");
  std::printf("%8s | %8s %8s %8s %8s | %8s %8s %8s %8s\n", "conv_p", "ticks",
              "cycles", "aborts", "p95", "ticks'", "cycles'", "aborts'",
              "p95'");
  std::printf("%8s | %35s | %35s\n", "", "total mode (paper)",
              "group mode (Gray, ablation)");
  for (double p : {0.1, 0.2, 0.3, 0.4}) {
    Row total = RunCell(p, lock::AdmissionPolicy::kTotalMode);
    Row group = RunCell(p, lock::AdmissionPolicy::kGroupMode);
    std::printf("%8.1f | %8zu %8zu %8zu %8.1f | %8zu %8zu %8zu %8.1f%s\n", p,
                total.ticks, total.cycles, total.aborts, total.waits.mean(),
                group.ticks, group.cycles, group.aborts, group.waits.mean(),
                group.timed_out || total.timed_out ? "  TIMED-OUT" : "");
  }
  std::printf(
      "\nReading: the system-level sweep shows modest differences (Zipf\n"
      "access dilutes the effect).  The microbenchmark below isolates it.\n");

  // Part 2 — upgrade starvation on one hot resource.  T1 holds IS and
  // requests S.  A fresh IX reader arrives every tick and holds its lock
  // for 3 ticks.  Under total-mode admission the arrivals queue behind
  // T1's pending S and the upgrade completes as soon as the initial
  // holders drain; under group-mode admission every arrival is compatible
  // with the granted group {IS, IX}, so there is never a moment without
  // an IX holder and the upgrade starves forever.
  std::printf("\n== upgrade starvation microbenchmark ==\n");
  std::printf("(IX arrival every tick, 3-tick holds; horizon 10000 ticks)\n");
  for (lock::AdmissionPolicy policy :
       {lock::AdmissionPolicy::kTotalMode, lock::AdmissionPolicy::kGroupMode}) {
    lock::ResourceState r(1, policy);
    (void)r.Request(1, lock::LockMode::kIS);
    (void)r.Request(2, lock::LockMode::kIX);  // the initial blocker
    (void)r.Request(1, lock::LockMode::kS);   // pending upgrade
    std::vector<std::pair<lock::TransactionId, size_t>> expiry{{2, 3}};
    lock::TransactionId next = 100;
    size_t granted_at = 0;
    size_t admitted_over_upgrade = 0;
    for (size_t tick = 1; tick <= 10'000 && granted_at == 0; ++tick) {
      // Expire holders.
      for (auto it = expiry.begin(); it != expiry.end();) {
        if (it->second <= tick) {
          r.Remove(it->first);
          it = expiry.erase(it);
        } else {
          ++it;
        }
      }
      if (!r.FindHolder(1)->IsBlocked()) {
        granted_at = tick;
        break;
      }
      // One IX arrival per tick.
      lock::TransactionId tid = next++;
      Result<lock::RequestOutcome> outcome =
          r.Request(tid, lock::LockMode::kIX);
      if (outcome.ok() && *outcome == lock::RequestOutcome::kGranted) {
        ++admitted_over_upgrade;
        expiry.emplace_back(tid, tick + 3);
      }
    }
    std::printf("  %-11s: upgrade %s%s (newcomers admitted ahead of it: "
                "%zu)\n",
                policy == lock::AdmissionPolicy::kTotalMode ? "total mode"
                                                            : "group mode",
                granted_at != 0 ? "granted at tick " : "STARVED",
                granted_at != 0
                    ? std::to_string(granted_at).c_str()
                    : "",
                admitted_over_upgrade);
  }
  std::printf(
      "\nReading: total mode shields the pending upgrade (arrivals queue\n"
      "behind it); group mode starves it behind an endless reader stream —\n"
      "the §2 efficiency claim, made concrete.\n");
  return 0;
}
