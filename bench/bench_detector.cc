// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment C1/B2 micro-benchmarks: detection-pass cost versus graph
// size and cycle structure, our walk versus the baselines, and the
// enumeration blow-up on the upgrade-crowd scenario.

#include <benchmark/benchmark.h>

#include "baselines/acd_detector.h"
#include "baselines/jiang_detector.h"
#include "baselines/wfg_detector.h"
#include "bench/scenarios.h"
#include "core/continuous_detector.h"
#include "core/periodic_detector.h"
#include "core/twbg.h"
#include "graph/johnson.h"

namespace twbg {
namespace {

// One periodic pass over an acyclic wait chain of n transactions: the
// no-deadlock steady-state cost, expected O(n + e).
void BM_PeriodicPassChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  lock::LockManager manager;
  bench::BuildChain(manager, n);
  core::CostTable costs;
  core::PeriodicDetector detector;
  for (auto _ : state) {
    core::ResolutionReport report = detector.RunPass(manager, costs);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PeriodicPassChain)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity(benchmark::oN);

// Detection + resolution of one ring of length n (rebuilt every
// iteration since the pass mutates the table).
void BM_PeriodicPassRing(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  core::CostTable costs;
  core::PeriodicDetector detector;
  for (auto _ : state) {
    state.PauseTiming();
    lock::LockManager manager;
    bench::BuildRing(manager, n);
    state.ResumeTiming();
    core::ResolutionReport report = detector.RunPass(manager, costs);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PeriodicPassRing)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

// k disjoint rings of 8: c' scales with k, total work with n + e*c'.
void BM_PeriodicPassManyRings(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  core::CostTable costs;
  core::PeriodicDetector detector;
  for (auto _ : state) {
    state.PauseTiming();
    lock::LockManager manager;
    bench::BuildRings(manager, k, 8);
    state.ResumeTiming();
    core::ResolutionReport report = detector.RunPass(manager, costs);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PeriodicPassManyRings)->Arg(4)->Arg(16)->Arg(64);

// The baselines on the same acyclic chain.
void BM_WfgPassChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  lock::LockManager manager;
  bench::BuildChain(manager, n);
  core::CostTable costs;
  baselines::WfgStrategy wfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfg.OnPeriodic(manager, costs));
  }
}
BENCHMARK(BM_WfgPassChain)->RangeMultiplier(4)->Range(64, 16384);

void BM_AcdPassChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  lock::LockManager manager;
  bench::BuildChain(manager, n);
  core::CostTable costs;
  baselines::AcdStrategy acd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acd.OnPeriodic(manager, costs));
  }
}
BENCHMARK(BM_AcdPassChain)->RangeMultiplier(4)->Range(64, 16384);

// Upgrade crowd of k: our walk resolves in <= k-1 cycles...
void BM_HwTwbgUpgradeCrowd(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  core::CostTable costs;
  core::PeriodicDetector detector;
  for (auto _ : state) {
    state.PauseTiming();
    lock::LockManager manager;
    bench::BuildUpgradeCrowd(manager, k);
    state.ResumeTiming();
    core::ResolutionReport report = detector.RunPass(manager, costs);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_HwTwbgUpgradeCrowd)->DenseRange(4, 12, 2);

// ...while full elementary-circuit enumeration explodes (capped).
void BM_JohnsonUpgradeCrowd(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  lock::LockManager manager;
  bench::BuildUpgradeCrowd(manager, k);
  core::HwTwbg graph = core::HwTwbg::Build(manager.table());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.ElementaryCycles(1u << 22));
  }
}
// k = 12 alone costs ~13 s per iteration (1.1M+ circuits); exp_complexity
// covers it with a cap, so stop at 10 here.
BENCHMARK(BM_JohnsonUpgradeCrowd)->DenseRange(4, 10, 2);

// Jiang's on-block enumeration over the same crowd (path cap applies).
void BM_JiangUpgradeCrowd(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  core::CostTable costs;
  for (auto _ : state) {
    state.PauseTiming();
    lock::LockManager manager;
    bench::BuildUpgradeCrowd(manager, k);
    baselines::JiangStrategy jiang(1u << 22);
    state.ResumeTiming();
    benchmark::DoNotOptimize(jiang.OnBlock(manager, costs, 1));
  }
}
BENCHMARK(BM_JiangUpgradeCrowd)->DenseRange(4, 10, 2);

// Continuous detection cost per block on a queue tail of length q.
void BM_ContinuousOnBlockQueueTail(benchmark::State& state) {
  const size_t q = static_cast<size_t>(state.range(0));
  lock::LockManager manager;
  bench::BuildQueueTail(manager, q);
  core::CostTable costs;
  core::ContinuousDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector.OnBlock(manager, costs,
                         static_cast<lock::TransactionId>(q + 1)));
  }
}
BENCHMARK(BM_ContinuousOnBlockQueueTail)->Arg(16)->Arg(256)->Arg(4096);

// Scoped vs full continuous detection on a partitioned load: `clusters`
// disjoint 2-transaction conflicts plus the probe's own small cluster.
// The scoped build (COMPSAC companion optimization) should be O(region)
// while the full build pays for the whole table.
void BM_ContinuousScoped(benchmark::State& state) {
  const size_t clusters = static_cast<size_t>(state.range(0));
  const bool scoped = state.range(1) != 0;
  lock::LockManager manager;
  for (uint32_t i = 0; i < clusters; ++i) {
    (void)manager.Acquire(2 * i + 1, i + 1, lock::LockMode::kX);
    (void)manager.Acquire(2 * i + 2, i + 1, lock::LockMode::kS);
  }
  core::CostTable costs;
  core::DetectorOptions options;
  options.scoped_continuous_build = scoped;
  core::ContinuousDetector detector(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.OnBlock(manager, costs, 2));
  }
  state.SetLabel(scoped ? "scoped" : "full");
}
BENCHMARK(BM_ContinuousScoped)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// Steady-state periodic pass: a large mostly-idle table where only `m`
// of `n` resources mutated since the previous pass.  incremental=1 uses
// the GraphBuilder edge cache (pays O(edges of m resources) + assembly);
// incremental=0 recomputes every ECR from scratch.  Mutations happen
// outside the timed region — the pass itself is what's measured.
void BM_SteadyStatePass(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = static_cast<size_t>(state.range(1));
  const bool incremental = state.range(2) != 0;
  lock::LockManager manager;
  bench::SteadyState steady = bench::BuildSteadyState(manager, n, /*bulk=*/16);
  core::DetectorOptions options;
  options.incremental_build = incremental;
  core::PeriodicDetector detector(options);
  core::CostTable costs;
  detector.RunPass(manager, costs);  // warm the cache
  size_t cursor = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < m; ++i) {
      bench::MutateSteadyState(
          manager, steady, static_cast<lock::ResourceId>(cursor % n + 1));
      ++cursor;
    }
    state.ResumeTiming();
    core::ResolutionReport report = detector.RunPass(manager, costs);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(incremental ? "incremental" : "scratch");
}
BENCHMARK(BM_SteadyStatePass)
    ->Args({1024, 16, 1})
    ->Args({1024, 16, 0})
    ->Args({10000, 100, 1})
    ->Args({10000, 100, 0});

// Graph construction alone (Step 1): H/W-TWBG build on a chain.
void BM_BuildHwTwbg(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  lock::LockManager manager;
  bench::BuildChain(manager, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::HwTwbg::Build(manager.table()));
  }
}
BENCHMARK(BM_BuildHwTwbg)->RangeMultiplier(4)->Range(64, 16384);

}  // namespace
}  // namespace twbg

BENCHMARK_MAIN();
