// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Sustained lock-table throughput — the acceptance run for the
// cache-friendly substrate (flat hash tables, pooled queue entries, the
// uncontended fast path; see docs/PERFORMANCE.md, "Memory layout & the
// uncontended fast path").
//
// The driver is open-loop over *operations*, not transactions: a fixed
// working set of open transactions each follows a private plan of
// acquire/convert ops drawn from a Zipf(theta) resource popularity
// distribution, committing (and being replaced) when the plan is done.
// A blocked transaction stops issuing (Axiom 1) and the driver moves on;
// a periodic detection pass every kOpsPerPass operations resolves any
// deadlocks the plans manufacture.  Three quantities are measured over
// the steady-state window:
//
//   * ops/sec       — completed Acquire + Release operations per second;
//   * allocations/op — global operator new invocations per operation,
//     via the counting-allocator hook defined in this binary.  This is
//     the machine-independent gate: the flat substrate pins it near zero
//     in steady state (the table recycles ResourceStates and their
//     holder/queue capacity), where the node-based containers paid one
//     or more allocations on nearly every acquire/release;
//   * p99 acquire latency — sampled every kLatencySampleEvery ops to
//     keep timer overhead out of the throughput number.
//
// Cells sweep txn count x Zipf theta for the sequential
// TransactionManager, plus shard count for ConcurrentLockService (one
// client thread per 16 txns, detector thread off — the lock path itself
// is the subject; detection cost is bench_steady_state's subject and
// pauses are bench_pauseless's).  theta < 0 denotes the *uncontended*
// cell: every transaction owns a private resource range, so no request
// ever blocks and the run measures the raw acquire/release path.  CI's
// perf-smoke job gates the uncontended sequential cell on ops/sec and
// every steady-state cell on allocations/op (see .github/workflows).
//
// Usage: bench_throughput [ops_per_cell] [out.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "txn/concurrent_service.h"
#include "txn/transaction_manager.h"

// ---------------------------------------------------------------------------
// Counting-allocator hook: every operator new in this binary bumps a
// relaxed atomic.  Replacing the global operators is binary-local, so
// the library itself stays untouched; the same hook pattern backs the
// alloc-free capture assertions in tests/capture_alloc_test.cc.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

using namespace twbg;

namespace {

// Detection cadence: frequent enough that contended cells never wedge on
// an unresolved deadlock, rare enough that the pass cost stays a small
// fraction of the measured window.
constexpr size_t kOpsPerPass = 4096;
constexpr size_t kLatencySampleEvery = 64;
constexpr size_t kLocksPerTxn = 8;
constexpr double kConvertFraction = 0.25;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct CellResult {
  std::string engine;  // "sequential" | "concurrent"
  size_t txns = 0;
  double theta = 0;  // < 0: uncontended (private resource ranges)
  size_t shards = 0;
  size_t threads = 0;
  size_t ops = 0;
  size_t committed = 0;
  size_t aborted = 0;
  double ops_per_sec = 0;
  double allocs_per_op = 0;
  uint64_t acquire_p50_ns = 0;
  uint64_t acquire_p99_ns = 0;

  bool uncontended() const { return theta < 0; }
};

uint64_t Percentile(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

// One transaction's scripted life: acquire kLocksPerTxn locks (a mix of
// IS/IX/S/X), convert a fraction of them upward, then commit.
struct Plan {
  std::vector<std::pair<lock::ResourceId, lock::LockMode>> steps;
  size_t next = 0;
};

// Picks the rid for plan step `step` of a transaction whose private range
// starts at `base`.  Uncontended cells stride through the private range;
// contended cells sample the shared Zipf popularity distribution.
class RidSource {
 public:
  RidSource(double theta, size_t resources, uint64_t seed)
      : theta_(theta), rng_(seed) {
    if (theta >= 0) {
      zipf_ = std::make_unique<common::ZipfSampler>(resources, theta);
    }
  }

  lock::ResourceId Pick(size_t txn_slot, size_t step) {
    if (theta_ < 0) {
      return static_cast<lock::ResourceId>(1 + txn_slot * kLocksPerTxn + step);
    }
    return static_cast<lock::ResourceId>(1 + zipf_->Sample(rng_));
  }

  common::Rng& rng() { return rng_; }

 private:
  double theta_;
  common::Rng rng_;
  std::unique_ptr<common::ZipfSampler> zipf_;
};

Plan MakePlan(RidSource& rids, size_t txn_slot) {
  static constexpr lock::LockMode kAcquireModes[] = {
      lock::LockMode::kIS, lock::LockMode::kIX, lock::LockMode::kS,
      lock::LockMode::kX};
  Plan plan;
  plan.steps.reserve(kLocksPerTxn + 2);
  for (size_t i = 0; i < kLocksPerTxn; ++i) {
    const lock::LockMode mode = kAcquireModes[rids.rng().NextBelow(4)];
    plan.steps.emplace_back(rids.Pick(txn_slot, i), mode);
  }
  // Convert a fraction of the acquired locks upward (re-request X on an
  // already-touched rid): exercises the conversion/UPR path.
  for (size_t i = 0; i < kLocksPerTxn; ++i) {
    if (rids.rng().NextBernoulli(kConvertFraction)) {
      plan.steps.emplace_back(plan.steps[i].first, lock::LockMode::kX);
    }
  }
  return plan;
}

// --------------------------------------------------------------------------
// Sequential engine cell.
// --------------------------------------------------------------------------

CellResult RunSequential(size_t txns, double theta, size_t resources,
                         size_t total_ops) {
  CellResult cell;
  cell.engine = "sequential";
  cell.txns = txns;
  cell.theta = theta;
  cell.threads = 1;

  txn::TransactionManagerOptions options;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  auto manager = txn::TransactionManager::Create(options).value();

  RidSource rids(theta, resources, 0x7157c0de ^ txns);
  struct Slot {
    lock::TransactionId tid = 0;
    Plan plan;
  };
  std::vector<Slot> slots(txns);
  for (size_t s = 0; s < slots.size(); ++s) {
    slots[s].tid = *manager->Begin();
    slots[s].plan = MakePlan(rids, s);
  }

  std::vector<uint64_t> latencies;
  latencies.reserve(total_ops / kLatencySampleEvery + 1);

  // Warm-up: one full pass over every slot populates the table (and, on
  // the flat substrate, its pooled capacity) before the measured window.
  const size_t warmup_ops = txns * kLocksPerTxn;
  size_t ops = 0;
  uint64_t t_start = 0;
  uint64_t allocs_start = 0;
  bool measuring = false;

  const size_t budget = total_ops + warmup_ops;
  while (ops < budget) {
    if (!measuring && ops >= warmup_ops) {
      measuring = true;
      t_start = NowNs();
      allocs_start = g_allocations.load(std::memory_order_relaxed);
      cell.committed = 0;
      cell.aborted = 0;
    }
    bool progressed = false;
    for (Slot& slot : slots) {
      Result<txn::TxnState> state = manager->State(slot.tid);
      if (!state.ok() || *state == txn::TxnState::kAborted) {
        ++cell.aborted;
        slot.tid = *manager->Begin();
        slot.plan = MakePlan(rids, &slot - slots.data());
        progressed = true;
        continue;
      }
      if (*state == txn::TxnState::kBlocked) continue;
      if (slot.plan.next >= slot.plan.steps.size()) {
        if (manager->Commit(slot.tid).ok()) ++cell.committed;
        ++ops;  // the release is the operation
        slot.tid = *manager->Begin();
        slot.plan = MakePlan(rids, &slot - slots.data());
        progressed = true;
        continue;
      }
      const auto& [rid, mode] = slot.plan.steps[slot.plan.next++];
      const bool sample = measuring && ops % kLatencySampleEvery == 0;
      const uint64_t t0 = sample ? NowNs() : 0;
      Status status = manager->Acquire(slot.tid, rid, mode);
      if (sample) latencies.push_back(NowNs() - t0);
      ++ops;
      progressed = true;
      (void)status;  // kWouldBlock handled via State() next round
    }
    if (!progressed || ops % kOpsPerPass < txns) {
      manager->RunDetection();
    }
  }
  const uint64_t elapsed = NowNs() - t_start;
  const uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_start;
  cell.ops = total_ops;
  cell.ops_per_sec =
      elapsed == 0 ? 0 : 1e9 * static_cast<double>(total_ops) / elapsed;
  cell.allocs_per_op = static_cast<double>(allocs) / total_ops;
  cell.acquire_p50_ns = Percentile(latencies, 0.50);
  cell.acquire_p99_ns = Percentile(latencies, 0.99);
  return cell;
}

// --------------------------------------------------------------------------
// Concurrent service cell: real client threads against the sharded
// periodic engine, detection driven by the clients (no detector thread —
// keeps the cell deterministic in what it measures).
// --------------------------------------------------------------------------

CellResult RunConcurrent(size_t txns, double theta, size_t resources,
                         size_t shards, size_t total_ops) {
  CellResult cell;
  cell.engine = "concurrent";
  cell.txns = txns;
  cell.theta = theta;
  cell.shards = shards;
  const size_t threads = std::max<size_t>(2, std::min<size_t>(8, txns / 16));
  cell.threads = threads;

  txn::ConcurrentServiceOptions options;
  options.num_shards = shards;
  options.detection_mode = txn::DetectionMode::kPeriodic;
  // detection_period stays 0: no detector thread, the driver pumps
  // RunDetectionPass itself so every cell measures the same pass load.
  auto service = txn::ConcurrentLockService::Create(options).value();

  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::atomic<size_t> done_workers{0};

  const size_t per_thread_txns = txns / threads;
  std::vector<std::vector<uint64_t>> latencies(threads);

  auto worker = [&](size_t worker_index) {
    RidSource rids(theta, resources,
                   0xbadc0ffee ^ (worker_index * 7919) ^ txns);
    std::vector<uint64_t>& lat = latencies[worker_index];
    size_t local_ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const lock::TransactionId tid = *service->Begin();
      const size_t slot = worker_index * per_thread_txns +
                          (local_ops / (kLocksPerTxn + 1)) % per_thread_txns;
      Plan plan = MakePlan(rids, slot);
      bool dead = false;
      for (const auto& [rid, mode] : plan.steps) {
        const bool sample = measuring.load(std::memory_order_relaxed) &&
                            local_ops % kLatencySampleEvery == 0;
        const uint64_t t0 = sample ? NowNs() : 0;
        Status status = service->AcquireBlocking(tid, rid, mode);
        if (sample) lat.push_back(NowNs() - t0);
        ++local_ops;
        ops.fetch_add(1, std::memory_order_relaxed);
        if (!status.ok()) {
          dead = true;
          break;
        }
        if (stop.load(std::memory_order_relaxed)) break;
      }
      if (dead) {
        (void)service->Abort(tid);
        aborted.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (service->Commit(tid).ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
        ops.fetch_add(1, std::memory_order_relaxed);  // the release
      }
    }
    done_workers.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);

  // Detection pump + measurement window control on the driver thread.
  // The watchdog dumps the last pass report if workers make no progress
  // for several seconds — that distinguishes "walk finds no cycle",
  // "resolutions rejected every pass", and "victims aborted but workers
  // never wake" without a debugger.
  uint64_t last_ops = 0;
  uint64_t last_progress_ns = NowNs();
  bool dumped = false;
  auto pump = [&] {
    core::ResolutionReport report = service->RunDetectionPass();
    const uint64_t now_ops = ops.load(std::memory_order_relaxed);
    const uint64_t now_ns = NowNs();
    if (now_ops != last_ops) {
      last_ops = now_ops;
      last_progress_ns = now_ns;
    } else if (now_ns - last_progress_ns > 5'000'000'000ULL) {
      last_progress_ns = now_ns;
      std::fprintf(stderr,
                   "bench_throughput STALL shards=%zu theta=%.2f ops=%llu "
                   "pass{txns=%zu edges=%zu cycles=%zu rejected=%zu "
                   "aborted=%zu granted=%zu repositioned=%zu steps=%zu}\n",
                   shards, theta, static_cast<unsigned long long>(now_ops),
                   report.num_transactions, report.num_edges,
                   report.cycles_detected, report.rejected,
                   report.aborted.size(), report.granted.size(),
                   report.repositioned.size(), report.steps);
      if (!dumped) {
        dumped = true;
        Status invariants = service->CheckInvariants(true);
        std::fprintf(stderr, "invariants: %s\n%s",
                     invariants.ToString().c_str(),
                     service->DebugDump().c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  const uint64_t warmup_target = txns * kLocksPerTxn;
  while (ops.load(std::memory_order_relaxed) < warmup_target) pump();
  const uint64_t ops_start = ops.load(std::memory_order_relaxed);
  const uint64_t allocs_start = g_allocations.load(std::memory_order_relaxed);
  const uint64_t commit_start = committed.load(std::memory_order_relaxed);
  const uint64_t abort_start = aborted.load(std::memory_order_relaxed);
  const uint64_t t_start = NowNs();
  measuring.store(true, std::memory_order_relaxed);
  while (ops.load(std::memory_order_relaxed) - ops_start < total_ops) pump();
  const uint64_t elapsed = NowNs() - t_start;
  const uint64_t measured = ops.load(std::memory_order_relaxed) - ops_start;
  const uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_start;
  measuring.store(false, std::memory_order_relaxed);
  stop.store(true, std::memory_order_relaxed);
  // Workers can only observe `stop` once their pending AcquireBlocking
  // resolves; keep resolving deadlocks until every worker has exited.
  while (done_workers.load(std::memory_order_relaxed) < threads) pump();
  for (std::thread& t : pool) t.join();

  cell.ops = measured;
  cell.committed = committed.load() - commit_start;
  cell.aborted = aborted.load() - abort_start;
  cell.ops_per_sec =
      elapsed == 0 ? 0 : 1e9 * static_cast<double>(measured) / elapsed;
  cell.allocs_per_op =
      measured == 0 ? 0 : static_cast<double>(allocs) / measured;
  std::vector<uint64_t> merged;
  for (std::vector<uint64_t>& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  cell.acquire_p50_ns = Percentile(merged, 0.50);
  cell.acquire_p99_ns = Percentile(merged, 0.99);
  return cell;
}

void PrintCell(const CellResult& cell) {
  std::printf(
      "  %-10s txns=%-5zu theta=%-4s shards=%-2zu threads=%zu "
      "%12.0f ops/s  %6.3f allocs/op  acquire p50=%llu p99=%llu ns  "
      "(%zu committed, %zu aborted)\n",
      cell.engine.c_str(), cell.txns,
      cell.uncontended() ? "none" : std::to_string(cell.theta)
                                        .substr(0, 4)
                                        .c_str(),
      cell.shards, cell.threads, cell.ops_per_sec, cell.allocs_per_op,
      static_cast<unsigned long long>(cell.acquire_p50_ns),
      static_cast<unsigned long long>(cell.acquire_p99_ns), cell.committed,
      cell.aborted);
}

}  // namespace

int main(int argc, char** argv) {
  size_t ops_per_cell = 400000;
  const char* out_path = "BENCH_throughput.json";
  if (argc > 1) ops_per_cell = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) out_path = argv[2];

  std::vector<CellResult> cells;

  // Sequential sweep: txn count x theta (theta < 0 = uncontended).
  std::printf("sequential engine (%zu ops/cell):\n", ops_per_cell);
  for (size_t txns : {64, 1024}) {
    for (double theta : {-1.0, 0.6, 0.9}) {
      // Contended cells draw from a shared range sized to the working
      // set; uncontended cells use private strided ranges.
      const size_t resources = txns * kLocksPerTxn;
      CellResult cell = RunSequential(txns, theta, resources, ops_per_cell);
      PrintCell(cell);
      cells.push_back(cell);
    }
  }

  // Concurrent sweep: shards x theta at a fixed txn count.
  std::printf("concurrent service (%zu ops/cell):\n", ops_per_cell);
  for (size_t shards : {1, 8}) {
    for (double theta : {-1.0, 0.9}) {
      const size_t txns = 128;
      const size_t resources = txns * kLocksPerTxn;
      CellResult cell =
          RunConcurrent(txns, theta, resources, shards, ops_per_cell);
      PrintCell(cell);
      cells.push_back(cell);
    }
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"lock-table throughput\",\n");
  std::fprintf(out, "  \"ops_per_cell\": %zu,\n", ops_per_cell);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        out,
        "    {\"engine\": \"%s\", \"txns\": %zu, \"theta\": %s, "
        "\"shards\": %zu, \"threads\": %zu, \"ops\": %zu, "
        "\"committed\": %zu, \"aborted\": %zu, \"ops_per_sec\": %.0f, "
        "\"allocs_per_op\": %.4f, \"acquire_p50_ns\": %llu, "
        "\"acquire_p99_ns\": %llu, \"uncontended\": %s}%s\n",
        c.engine.c_str(), c.txns,
        c.uncontended() ? "null" : std::to_string(c.theta).c_str(), c.shards,
        c.threads, c.ops, c.committed, c.aborted, c.ops_per_sec,
        c.allocs_per_op, static_cast<unsigned long long>(c.acquire_p50_ns),
        static_cast<unsigned long long>(c.acquire_p99_ns),
        c.uncontended() ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
