// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment A1: ablations over the resolver's policy knobs that the
// paper leaves open — abortion-list processing order (its Example 5.1
// exploits order to spare a victim), the TDR-2 cost divisor, and the ST
// cost bump (livelock avoidance).

#include <cstdio>

#include "baselines/hwtwbg_strategy.h"
#include "sim/simulator.h"

using namespace twbg;

namespace {

sim::SimConfig MakeConfig(uint64_t seed) {
  sim::SimConfig config;
  config.workload.seed = seed;
  config.workload.num_transactions = 400;
  config.workload.concurrency = 10;
  config.workload.num_resources = 12;
  config.workload.zipf_theta = 0.9;
  config.workload.min_ops = 4;
  config.workload.max_ops = 9;
  config.workload.conversion_prob = 0.3;
  config.workload.mode_weights = {0.25, 0.2, 0.3, 0.05, 0.2};
  config.detection_period = 8;
  config.max_ticks = 500'000;
  return config;
}

void RunRow(const char* label, const core::DetectorOptions& options) {
  sim::SimMetrics total;
  for (uint64_t seed : {7u, 8u, 9u}) {
    sim::Simulator simulator(
        MakeConfig(seed),
        std::make_unique<baselines::HwTwbgPeriodicStrategy>(options));
    sim::SimMetrics m = simulator.Run();
    total.ticks += m.ticks;
    total.deadlock_aborts += m.deadlock_aborts;
    total.no_abort_resolutions += m.no_abort_resolutions;
    total.wasted_ops += m.wasted_ops;
    total.cycles_found += m.cycles_found;
    total.blocked_ticks += m.blocked_ticks;
  }
  std::printf("%-38s %8zu %8zu %7zu %7zu %8zu %9zu\n", label, total.ticks,
              total.cycles_found, total.deadlock_aborts,
              total.no_abort_resolutions, total.wasted_ops,
              total.blocked_ticks);
}

}  // namespace

int main() {
  std::printf("Resolver policy ablations (3 seeds x 400 txns per row)\n\n");
  std::printf("%-38s %8s %8s %7s %7s %8s %9s\n", "configuration", "ticks",
              "cycles", "aborts", "tdr2", "wasted", "blocked");

  std::printf("\n-- abortion-list processing order (Step 3) --\n");
  for (auto [label, order] :
       {std::pair{"reverse-insertion (paper's example)",
                  core::AbortOrder::kReverseInsertion},
        std::pair{"insertion", core::AbortOrder::kInsertion},
        std::pair{"cost-descending", core::AbortOrder::kCostDescending},
        std::pair{"cost-ascending", core::AbortOrder::kCostAscending}}) {
    core::DetectorOptions options;
    options.abort_order = order;
    RunRow(label, options);
  }

  std::printf("\n-- TDR-2 availability and pricing --\n");
  {
    core::DetectorOptions options;
    RunRow("tdr2 on, divisor 2 (paper)", options);
  }
  {
    core::DetectorOptions options;
    options.enable_tdr2 = false;
    RunRow("tdr2 off (abort-only)", options);
  }
  {
    core::DetectorOptions options;
    options.tdr2_cost_divisor = 1.0;
    RunRow("tdr2 on, divisor 1 (pricier)", options);
  }
  {
    core::DetectorOptions options;
    options.tdr2_cost_divisor = 8.0;
    RunRow("tdr2 on, divisor 8 (cheaper)", options);
  }

  std::printf("\n-- ST cost bump after TDR-2 (livelock avoidance) --\n");
  {
    core::DetectorOptions options;
    RunRow("double on each delay (paper-style)", options);
  }
  {
    core::DetectorOptions options;
    options.st_cost_multiplier = 1.0;
    options.st_cost_increment = 0.0;
    RunRow("no bump (repeated delays possible)", options);
  }
  {
    core::DetectorOptions options;
    options.st_cost_multiplier = 1.0;
    options.st_cost_increment = 5.0;
    RunRow("additive bump +5", options);
  }

  std::printf("\nReading: tdr2 resolutions avoid aborts (wasted work falls);\n"
              "the Step 3 order mainly shifts which victims get spared.\n");
  return 0;
}
