// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Experiment C1 / B2: validates the complexity claims of §5.
//
//   * Space O(n + e): TST vertex + edge counts versus input size.
//   * Time O(n + e(c'+1)): walk steps on (a) acyclic chains (c' = 0,
//     expect linear), (b) rings (c' = 1), (c) many disjoint rings
//     (c' = k), (d) the upgrade crowd, where the number of ELEMENTARY
//     cycles explodes combinatorially while c' stays <= n — contrasted
//     against Johnson-style full enumeration (Jiang's participator
//     listing), which is the exponential behaviour the paper criticizes.

#include <cstdio>

#include "baselines/jiang_detector.h"
#include "bench/scenarios.h"
#include "common/stopwatch.h"
#include "core/periodic_detector.h"
#include "core/tst.h"
#include "core/twbg.h"

using namespace twbg;

namespace {

void RunChainRow(size_t n) {
  lock::LockManager manager;
  bench::BuildChain(manager, n);
  core::Tst tst = core::Tst::Build(manager.table());
  core::CostTable costs;
  core::PeriodicDetector detector;
  common::Stopwatch watch;
  core::ResolutionReport report = detector.RunPass(manager, costs);
  double ms = watch.ElapsedMillis();
  std::printf("%10zu %10zu %10zu %10zu %10zu %10.3f %12.2f\n", n, tst.size(),
              tst.NumEdges(), report.cycles_detected, report.steps, ms,
              static_cast<double>(report.steps) /
                  static_cast<double>(tst.size() + tst.NumEdges()));
}

void RunRingsRow(size_t k, size_t m) {
  lock::LockManager manager;
  bench::BuildRings(manager, k, m);
  core::Tst tst = core::Tst::Build(manager.table());
  core::CostTable costs;
  core::PeriodicDetector detector;
  common::Stopwatch watch;
  core::ResolutionReport report = detector.RunPass(manager, costs);
  double ms = watch.ElapsedMillis();
  const double denom = static_cast<double>(
      tst.size() + tst.NumEdges() * (report.cycles_detected + 1));
  std::printf("%6zu %6zu %8zu %8zu %8zu %10zu %10.3f %14.2f\n", k, m,
              tst.size(), tst.NumEdges(), report.cycles_detected,
              report.steps, ms, static_cast<double>(report.steps) / denom);
}

void RunCrowdRow(size_t k) {
  // Ours.
  size_t our_steps = 0;
  size_t our_cycles = 0;
  double our_ms = 0;
  {
    lock::LockManager manager;
    bench::BuildUpgradeCrowd(manager, k);
    core::CostTable costs;
    core::PeriodicDetector detector;
    common::Stopwatch watch;
    core::ResolutionReport report = detector.RunPass(manager, costs);
    our_ms = watch.ElapsedMillis();
    our_steps = report.steps;
    our_cycles = report.cycles_detected;
  }
  // Full enumeration (Johnson, capped) on the untouched table.
  size_t elementary = 0;
  double johnson_ms = 0;
  {
    lock::LockManager manager;
    bench::BuildUpgradeCrowd(manager, k);
    core::HwTwbg graph = core::HwTwbg::Build(manager.table());
    common::Stopwatch watch;
    elementary = graph.ElementaryCycles(/*max_cycles=*/2'000'000).size();
    johnson_ms = watch.ElapsedMillis();
  }
  // Jiang's on-block enumeration (path-capped).
  size_t jiang_work = 0;
  double jiang_ms = 0;
  {
    lock::LockManager manager;
    bench::BuildUpgradeCrowd(manager, k);
    core::CostTable costs;
    baselines::JiangStrategy jiang(/*max_paths=*/2'000'000);
    common::Stopwatch watch;
    baselines::StrategyOutcome outcome = jiang.OnBlock(manager, costs, 1);
    jiang_ms = watch.ElapsedMillis();
    jiang_work = outcome.work;
  }
  std::printf("%6zu %12zu %8zu %10zu %10.3f %12.3f %12zu %10.3f\n", k,
              elementary, our_cycles, our_steps, our_ms, johnson_ms,
              jiang_work, jiang_ms);
}

}  // namespace

int main() {
  std::printf("== C1a: acyclic chains (expect steps linear in n + e, "
              "cycles = 0) ==\n");
  std::printf("%10s %10s %10s %10s %10s %10s %12s\n", "n", "tst_n", "tst_e",
              "cycles", "steps", "ms", "steps/(n+e)");
  for (size_t n : {100, 400, 1600, 6400, 25600}) RunChainRow(n);

  std::printf("\n== C1b: k disjoint rings of m (c' = k; steps ~ "
              "n + e(c'+1) upper bound) ==\n");
  std::printf("%6s %6s %8s %8s %8s %10s %10s %14s\n", "k", "m", "tst_n",
              "tst_e", "c'", "steps", "ms", "steps/bound");
  for (size_t k : {1, 4, 16, 64}) RunRingsRow(k, 8);
  for (size_t m : {4, 16, 64}) RunRingsRow(8, m);

  std::printf("\n== B2: upgrade crowd of k IS->X converters ==\n");
  std::printf("(elementary cycles explode; our c' stays < n; Jiang-style\n"
              " enumeration pays the exponential price — counts capped at "
              "2e6)\n");
  std::printf("%6s %12s %8s %10s %10s %12s %12s %10s\n", "k", "elem_cycles",
              "our_c'", "our_steps", "our_ms", "johnson_ms", "jiang_work",
              "jiang_ms");
  for (size_t k : {4, 6, 8, 10, 12}) RunCrowdRow(k);

  std::printf("\nClaim check: our c' never exceeds n, and our steps stay\n"
              "polynomial while elementary-cycle counts grow like "
              "3^(k/3).\n");
  return 0;
}
