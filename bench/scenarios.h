// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Synthetic lock-table generators with controlled size and cycle
// structure, shared by the benchmark and experiment binaries.  All states
// are produced through the public LockManager API, so every scenario is a
// reachable system state.

#ifndef TWBG_BENCH_SCENARIOS_H_
#define TWBG_BENCH_SCENARIOS_H_

#include <cstddef>

#include "lock/lock_manager.h"

namespace twbg::bench {

/// Wait chain, no deadlock: T_i holds R_i (X) and waits for R_{i-1}
/// (i = 2..n).  n transactions, n resources, n-1 waits.
void BuildChain(lock::LockManager& manager, size_t n);

/// Single deadlock ring of length n: the chain plus T_1 waiting for R_n.
void BuildRing(lock::LockManager& manager, size_t n);

/// k disjoint deadlock rings of m transactions each (ids are globally
/// unique across rings).
void BuildRings(lock::LockManager& manager, size_t k, size_t m);

/// The exponential-cycle stress: k IS holders of one resource all request
/// an upgrade to X.  Every pair blocks each other (ECR-1 both ways), so
/// the H/W-TWBG restricted to these k vertices is the complete digraph —
/// its elementary-cycle count grows like 3^(k/3), which is what sinks
/// enumeration-based schemes while the paper's walk stays O(n + e(c'+1)).
void BuildUpgradeCrowd(lock::LockManager& manager, size_t k,
                       lock::ResourceId rid = 1);

/// One X holder with q queued waiters — a pure W-edge tail (no deadlock);
/// scales e without adding cycles.
void BuildQueueTail(lock::LockManager& manager, size_t q,
                    lock::ResourceId rid = 1);

}  // namespace twbg::bench

#endif  // TWBG_BENCH_SCENARIOS_H_
