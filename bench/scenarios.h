// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Synthetic lock-table generators with controlled size and cycle
// structure, shared by the benchmark and experiment binaries.  All states
// are produced through the public LockManager API, so every scenario is a
// reachable system state.

#ifndef TWBG_BENCH_SCENARIOS_H_
#define TWBG_BENCH_SCENARIOS_H_

#include <cstddef>
#include <vector>

#include "lock/lock_manager.h"

namespace twbg::bench {

/// Wait chain, no deadlock: T_i holds R_i (X) and waits for R_{i-1}
/// (i = 2..n).  n transactions, n resources, n-1 waits.
void BuildChain(lock::LockManager& manager, size_t n);

/// Single deadlock ring of length n: the chain plus T_1 waiting for R_n.
void BuildRing(lock::LockManager& manager, size_t n);

/// k disjoint deadlock rings of m transactions each (ids are globally
/// unique across rings).
void BuildRings(lock::LockManager& manager, size_t k, size_t m);

/// The exponential-cycle stress: k IS holders of one resource all request
/// an upgrade to X.  Every pair blocks each other (ECR-1 both ways), so
/// the H/W-TWBG restricted to these k vertices is the complete digraph —
/// its elementary-cycle count grows like 3^(k/3), which is what sinks
/// enumeration-based schemes while the paper's walk stays O(n + e(c'+1)).
void BuildUpgradeCrowd(lock::LockManager& manager, size_t k,
                       lock::ResourceId rid = 1);

/// One X holder with q queued waiters — a pure W-edge tail (no deadlock);
/// scales e without adding cycles.
void BuildQueueTail(lock::LockManager& manager, size_t q,
                    lock::ResourceId rid = 1);

/// Bookkeeping for the steady-state churn scenario below.
struct SteadyState {
  /// churn[r - 1] is the transaction currently holding the churn IS lock
  /// on resource r.
  std::vector<lock::TransactionId> churn;
  /// Next unused transaction id for replacement churn holders.
  lock::TransactionId next_tid = 0;
};

/// Large mostly-idle table for the incremental-cache benchmark: `bulk`
/// pool transactions each hold IS on every resource (mutually compatible,
/// so nothing blocks), plus one unique churn transaction per resource
/// holding IS on just that resource.  Every 97th resource also gets one
/// blocked X waiter, so passes see real W/H edges without any deadlock.
SteadyState BuildSteadyState(lock::LockManager& manager, size_t num_resources,
                             size_t bulk);

/// Replaces the churn holder of `rid` with a fresh transaction
/// (ReleaseAll + Acquire), dirtying exactly that one resource.
void MutateSteadyState(lock::LockManager& manager, SteadyState& state,
                       lock::ResourceId rid);

}  // namespace twbg::bench

#endif  // TWBG_BENCH_SCENARIOS_H_
