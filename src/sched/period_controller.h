// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Closed-loop scheduling of the periodic detection pass.  The paper
// leaves the detection period as an operator knob ("by increasing the
// periodic interval, the cost of deadlock detection decreases but it
// will detect deadlocks late", §5); this layer closes the loop: a
// PeriodController observes every completed pass — its cost and the
// deadlocks it resolved — and retunes the period online toward the
// cost-optimal operating point.
//
// The model follows the optimal-detection-scheduling literature ("On
// Optimal Deadlock Detection Scheduling", PAPERS.md): with a per-pass
// detection cost C and deadlocks forming at rate lambda, each deadlock
// lingers T/2 on average under period T, so the expected cost rate is
//
//     cost(T) = C / T  +  lambda * w * B * T / 2
//
// where w prices one blocked transaction per time unit and B is the
// blocked population a lingering deadlock holds up (estimated from
// PassSample::blocked_txns, floored at 1).  Minimizing over T gives the
// square-root rule the EWMA policy implements:
//
//     T* = sqrt(2 * C / (lambda * w * B))
//
// Units are the host's: the discrete-tick Simulator feeds tick elapsed
// times and work-unit costs, the threaded ConcurrentLockService feeds
// microseconds and nanosecond pause costs; the weights in
// SchedulerOptions reconcile them (docs/TUNING.md walks through both).
//
// Controllers are deterministic: the next period is a pure function of
// the sample sequence, so scripted scenarios retune identically on
// every run (tests/sched_test.cc pins exact sequences).

#ifndef TWBG_SCHED_PERIOD_CONTROLLER_H_
#define TWBG_SCHED_PERIOD_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "common/status.h"

namespace twbg::sched {

/// Retuning policy of a PeriodController (see MakePeriodController).
enum class SchedulerPolicy : uint8_t {
  /// Never retune: the period stays at its initial value.  The default —
  /// byte-identical to a system with no scheduler at all, so adaptive
  /// scheduling is strictly opt-in.
  kFixedPeriod = 0,
  /// EWMA estimates of the deadlock-formation rate and the per-pass
  /// detection cost drive the square-root rule T* = sqrt(2C/(lambda*w)),
  /// guarded by hysteresis and min/max clamps.
  kEwmaRate,
};

/// Canonical lower-case name of `policy` ("fixed", "ewma-rate").
std::string_view ToString(SchedulerPolicy policy);

/// Tuning of the closed-loop period controller.  All durations are in
/// the host's time unit (simulator ticks, service microseconds); the
/// zero-diff default is the fixed-period policy.
struct SchedulerOptions {
  /// Which controller MakePeriodController builds.
  SchedulerPolicy policy = SchedulerPolicy::kFixedPeriod;
  /// Hard floor of the retuned period (>= 1).  A deadlock storm can
  /// never drive the period below this.
  uint64_t min_period = 1;
  /// Hard ceiling of the retuned period.  A quiet system converges here
  /// (the rate estimate decays to zero and T* diverges).  0 means
  /// "16 x the initial period" at controller construction.
  uint64_t max_period = 0;
  /// Smoothing factor of the rate / cost EWMAs, in (0, 1]: higher reacts
  /// faster, lower remembers longer.
  double ewma_alpha = 0.3;
  /// Scales PassSample::detection_cost into the cost model's C — the
  /// knob that reconciles cost units (work units, nanoseconds) with the
  /// host time unit.
  double detection_cost_weight = 1.0;
  /// The cost model's w: what one blocked transaction costs per host
  /// time unit while a deadlock lingers, in the same units as the scaled
  /// detection cost (multiplied by the observed blocked population).
  /// Raising it shortens T*; lowering it tolerates staler deadlocks.
  double persistence_weight = 1.0;
  /// Retune deadband: an upward move is applied only when the target
  /// differs from the current period by more than this fraction, so an
  /// oscillating load does not thrash the period.  Downward moves after
  /// a pass that resolved a cycle bypass the deadband — a deadlock burst
  /// must snap the period down immediately (see EwmaRate docs).
  double hysteresis = 0.25;
  /// Per-retune cap on upward moves: the period may grow by at most this
  /// factor per pass, so one quiet interval cannot overshoot past the
  /// next burst.  Downward moves are uncapped (snapping down is safe —
  /// it only costs detection work).
  double max_raise_factor = 2.0;
  /// Fill PassSample from causal-span measurements (obs::SpanEstimator)
  /// instead of flat host counters: lambda's numerator from pass-span
  /// cycle counts, C from pass-span cost counters, and B as the
  /// time-averaged blocked population integrated from closed wait spans
  /// (instead of an instantaneous blocked count at pass end — the
  /// docs/TUNING.md §8 lambda-undercount remedy's measured companion).
  /// The controller itself is unchanged — only what the host feeds it.
  /// Hosts require a span tracer when set (their Validate rejects the
  /// combination otherwise); off (the default) is byte-identical to the
  /// pre-span behaviour.
  bool use_span_estimates = false;

  /// Rejects out-of-domain values: min_period == 0, max_period nonzero
  /// but below min_period, ewma_alpha outside (0, 1], non-positive
  /// weights, negative hysteresis, max_raise_factor < 1.
  Status Validate() const;
};

/// What one completed detection pass looked like — the controller's
/// entire view of the world.  Hosts fill it from telemetry they already
/// collect (pass walk duration, publish pauses, cycles resolved).
struct PassSample {
  /// Host time units since the previous pass (the realized period).
  /// Zero is treated as one unit.
  uint64_t elapsed = 0;
  /// Cost of this pass in the host's cost unit (simulator work units,
  /// service pass nanoseconds) before detection_cost_weight scaling.
  double detection_cost = 0.0;
  /// Deadlock cycles this pass detected and resolved — the numerator of
  /// the formation-rate estimate.
  uint64_t cycles_resolved = 0;
  /// Transactions observed blocked when the pass ran — the cost model's
  /// B: a deadlock that lingers in a deep wait population stalls more
  /// work, so the EWMA policy scales the persistence side of the
  /// trade-off by this estimate (floored at 1).
  uint64_t blocked_txns = 0;
};

/// One applied period change, returned by OnPassComplete for the host to
/// log (the service and simulator emit it as the kPeriodRetuned event).
struct PeriodRetune {
  /// The period that was in effect, host time units.
  uint64_t old_period = 0;
  /// The period now in effect, host time units.
  uint64_t new_period = 0;
  /// The EWMA deadlock-formation-rate estimate behind the move, in
  /// deadlocks per host time unit.
  double deadlock_rate = 0.0;
  /// The EWMA per-pass detection-cost estimate behind the move, after
  /// detection_cost_weight scaling.
  double detection_cost = 0.0;
};

/// Closed-loop detection-period controller.  Hosts call period() to
/// schedule the next pass and OnPassComplete after every full pass;
/// implementations are deterministic and not thread-safe (hosts
/// serialize calls — the service holds its scheduler mutex, the
/// simulator is single-threaded).
class PeriodController {
 public:
  virtual ~PeriodController() = default;

  /// The period currently in effect, host time units (>= 1).
  virtual uint64_t period() const = 0;

  /// Feeds one completed pass into the control loop.  Returns the
  /// applied retune when the period changed, nullopt otherwise (the
  /// fixed policy always returns nullopt).
  virtual std::optional<PeriodRetune> OnPassComplete(
      const PassSample& sample) = 0;

  /// The policy's canonical name (ToString of its SchedulerPolicy).
  virtual std::string_view name() const = 0;
};

/// Builds the controller `options` describes, starting at
/// `initial_period` (clamped into [min_period, effective max_period];
/// must be >= 1).  Validate() must have passed.
std::unique_ptr<PeriodController> MakePeriodController(
    const SchedulerOptions& options, uint64_t initial_period);

}  // namespace twbg::sched

#endif  // TWBG_SCHED_PERIOD_CONTROLLER_H_
