// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "sched/period_controller.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace twbg::sched {

namespace {

// Below this EWMA rate (deadlocks per time unit) the system is treated
// as deadlock-free and the target period is the ceiling outright,
// instead of letting sqrt(2C/lambda) produce astronomically large
// intermediate targets.
constexpr double kQuietRate = 1e-9;

uint64_t Clamp(uint64_t period, uint64_t lo, uint64_t hi) {
  return std::min(std::max(period, lo), hi);
}

// The zero-diff default: period() is a constant, OnPassComplete is a
// no-op.  Kept as a real controller (not a null pointer) so hosts have
// exactly one scheduling code path to test.
class FixedPeriodController final : public PeriodController {
 public:
  explicit FixedPeriodController(uint64_t period) : period_(period) {}

  uint64_t period() const override { return period_; }

  std::optional<PeriodRetune> OnPassComplete(const PassSample&) override {
    return std::nullopt;
  }

  std::string_view name() const override {
    return ToString(SchedulerPolicy::kFixedPeriod);
  }

 private:
  uint64_t period_;
};

// The square-root rule T* = sqrt(2C / (lambda * w * B)) over EWMA
// estimates of the formation rate lambda, per-pass cost C and blocked
// population B, with three guards:
//
//   * clamps: T* is clamped into [min_period, max_period] before use.
//   * burst snap-down: after a pass that resolved >= 1 cycle, the rate
//     estimate is floored at the pass's own instantaneous rate and a
//     downward move applies immediately (no deadband, no slew), so a
//     deadlock burst pulls the period down on the very next retune —
//     within two passes of the burst starting, counting the pass that
//     first sees it.
//   * hysteresis + slew on the way up: upward moves need the target to
//     clear the deadband and may grow by at most max_raise_factor per
//     pass, so a quiet spell lengthens the period geometrically and an
//     oscillating load cannot thrash it.
class EwmaRateController final : public PeriodController {
 public:
  EwmaRateController(const SchedulerOptions& options, uint64_t initial,
                     uint64_t max_period)
      : options_(options),
        max_period_(max_period),
        period_(Clamp(initial, options.min_period, max_period)) {}

  uint64_t period() const override { return period_; }

  std::optional<PeriodRetune> OnPassComplete(
      const PassSample& sample) override {
    const double elapsed =
        static_cast<double>(std::max<uint64_t>(sample.elapsed, 1));
    const double inst_rate =
        static_cast<double>(sample.cycles_resolved) / elapsed;
    const double inst_blocked = static_cast<double>(sample.blocked_txns);
    const double alpha = options_.ewma_alpha;
    rate_ = seen_pass_ ? (1.0 - alpha) * rate_ + alpha * inst_rate : inst_rate;
    const double scaled_cost =
        options_.detection_cost_weight * sample.detection_cost;
    cost_ = seen_pass_ ? (1.0 - alpha) * cost_ + alpha * scaled_cost
                       : scaled_cost;
    blocked_ = seen_pass_ ? (1.0 - alpha) * blocked_ + alpha * inst_blocked
                          : inst_blocked;
    seen_pass_ = true;

    // A burst must not wait for the EWMA to catch up: price this pass's
    // own rate (and blocked population) if it is the higher estimate.
    const double eff_rate =
        sample.cycles_resolved > 0 ? std::max(rate_, inst_rate) : rate_;
    // A lingering deadlock costs one unit of persistence per blocked
    // transaction per time unit, so the staleness side of the trade-off
    // scales with the blocked population (floored at one transaction).
    const double eff_blocked = std::max(
        1.0, sample.cycles_resolved > 0 ? std::max(blocked_, inst_blocked)
                                        : blocked_);
    uint64_t target = max_period_;
    if (eff_rate > kQuietRate && cost_ > 0.0) {
      const double t_star = std::sqrt(
          2.0 * cost_ /
          (eff_rate * options_.persistence_weight * eff_blocked));
      target = Clamp(t_star >= static_cast<double>(max_period_)
                         ? max_period_
                         : static_cast<uint64_t>(std::llround(t_star)),
                     options_.min_period, max_period_);
    }

    uint64_t next = period_;
    if (target < period_) {
      // Downward: immediate when this pass proved deadlocks are forming;
      // otherwise subject to the deadband like any other move.
      if (sample.cycles_resolved > 0 ||
          static_cast<double>(period_ - target) >
              options_.hysteresis * static_cast<double>(period_)) {
        next = target;
      }
    } else if (target > period_) {
      if (static_cast<double>(target - period_) >
          options_.hysteresis * static_cast<double>(period_)) {
        const double raised = std::max(
            static_cast<double>(period_) * options_.max_raise_factor,
            static_cast<double>(period_) + 1.0);
        const double capped = std::min(static_cast<double>(target), raised);
        next = Clamp(static_cast<uint64_t>(std::llround(capped)),
                     options_.min_period, max_period_);
      }
    }
    if (next == period_) return std::nullopt;
    PeriodRetune retune;
    retune.old_period = period_;
    retune.new_period = next;
    retune.deadlock_rate = eff_rate;
    retune.detection_cost = cost_;
    period_ = next;
    return retune;
  }

  std::string_view name() const override {
    return ToString(SchedulerPolicy::kEwmaRate);
  }

 private:
  SchedulerOptions options_;
  uint64_t max_period_;
  uint64_t period_;
  double rate_ = 0.0;
  double cost_ = 0.0;
  double blocked_ = 0.0;
  bool seen_pass_ = false;
};

}  // namespace

std::string_view ToString(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFixedPeriod:
      return "fixed";
    case SchedulerPolicy::kEwmaRate:
      return "ewma-rate";
  }
  return "?";
}

Status SchedulerOptions::Validate() const {
  if (min_period == 0) {
    return Status::InvalidArgument("SchedulerOptions: min_period must be >= 1");
  }
  if (max_period != 0 && max_period < min_period) {
    return Status::InvalidArgument(
        "SchedulerOptions: max_period must be 0 (auto) or >= min_period");
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    return Status::InvalidArgument(
        "SchedulerOptions: ewma_alpha must be in (0, 1]");
  }
  if (!(detection_cost_weight > 0.0)) {
    return Status::InvalidArgument(
        "SchedulerOptions: detection_cost_weight must be > 0");
  }
  if (!(persistence_weight > 0.0)) {
    return Status::InvalidArgument(
        "SchedulerOptions: persistence_weight must be > 0");
  }
  if (hysteresis < 0.0) {
    return Status::InvalidArgument(
        "SchedulerOptions: hysteresis must be >= 0");
  }
  if (max_raise_factor < 1.0) {
    return Status::InvalidArgument(
        "SchedulerOptions: max_raise_factor must be >= 1");
  }
  return Status::OK();
}

std::unique_ptr<PeriodController> MakePeriodController(
    const SchedulerOptions& options, uint64_t initial_period) {
  TWBG_CHECK(options.Validate().ok());
  TWBG_CHECK(initial_period >= 1);
  const uint64_t max_period =
      options.max_period != 0
          ? options.max_period
          : std::max(options.min_period, 16 * initial_period);
  switch (options.policy) {
    case SchedulerPolicy::kFixedPeriod:
      return std::make_unique<FixedPeriodController>(initial_period);
    case SchedulerPolicy::kEwmaRate:
      return std::make_unique<EwmaRateController>(options, initial_period,
                                                  max_period);
  }
  TWBG_CHECK(false);
  return nullptr;
}

}  // namespace twbg::sched
