// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_mode.h"

namespace twbg::lock {

std::string_view ToString(LockMode mode) {
  switch (mode) {
    case LockMode::kNL:
      return "NL";
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

std::optional<LockMode> LockModeFromString(std::string_view text) {
  for (LockMode mode : kAllModes) {
    if (ToString(mode) == text) return mode;
  }
  return std::nullopt;
}

}  // namespace twbg::lock
