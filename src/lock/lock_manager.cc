// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_manager.h"

#include <algorithm>

#include "common/string_util.h"

namespace twbg::lock {

Result<RequestOutcome> LockManager::Acquire(TransactionId tid, ResourceId rid,
                                            LockMode mode) {
  if (tid == kInvalidTransaction) {
    return Status::InvalidArgument("invalid transaction id 0");
  }
  auto [info_slot, new_txn] = txns_.TryEmplace(tid);
  if (new_txn) tids_dirty_ = true;
  TxnLockInfo& info = *info_slot;
  if (info.blocked_on.has_value()) {
    return Status::FailedPrecondition(common::Format(
        "T%u is blocked on R%u and cannot request R%u", tid,
        *info.blocked_on, rid));
  }
  ResourceState& state = table_.GetOrCreate(rid);
  const bool observing = obs::Enabled(bus_);
  // Uncontended fast path: a free resource grants any first request, with
  // no conversion to classify and no queue to inspect.  Outcome and event
  // are byte-identical to the general path below (kGranted; kLockGrant
  // with a = 0 — the resource had no holder, so this is neither a
  // conversion nor an already-held no-op).
  if (state.TryFastGrant(tid, mode)) {
    info.touched.Insert(rid);
    if (observing) {
      obs::Event event;
      event.kind = obs::EventKind::kLockGrant;
      event.tid = tid;
      event.rid = rid;
      event.mode = mode;
      bus_->Emit(event);
    }
    return RequestOutcome::kGranted;
  }
  // Conversion must be checked before Request: afterwards a blocked
  // requester may sit in the queue rather than the holder list.
  const bool conversion = observing && state.FindHolder(tid) != nullptr;
  Result<RequestOutcome> outcome = state.Request(tid, mode);
  if (!outcome.ok()) {
    table_.EraseIfFree(rid);
    return outcome;
  }
  info.touched.Insert(rid);
  if (*outcome == RequestOutcome::kBlocked) {
    info.blocked_on = rid;
    const HolderEntry* h = state.FindHolder(tid);
    info.blocked_mode = h != nullptr ? h->blocked : mode;
    // Every block opens a fresh wait span — even without a bus, so span
    // ids stay comparable across runs that toggle observability.
    info.wait_span = next_wait_span_++;
    info.wait_started = bus_ != nullptr ? bus_->time() : 0;
    if (obs::Tracing(tracer_)) {
      tracer_->OpenWait(tid, info.wait_span, rid, info.blocked_mode);
    }
  }
  if (observing) {
    obs::Event event;
    event.tid = tid;
    event.rid = rid;
    event.mode = mode;
    switch (*outcome) {
      case RequestOutcome::kGranted:
      case RequestOutcome::kAlreadyHeld:
        event.kind = conversion ? obs::EventKind::kLockConvert
                                : obs::EventKind::kLockGrant;
        event.a = conversion ? 1 : (*outcome == RequestOutcome::kAlreadyHeld);
        break;
      case RequestOutcome::kBlocked:
        event.kind = conversion ? obs::EventKind::kLockConvert
                                : obs::EventKind::kLockBlock;
        event.a = conversion ? 0 : state.queue().size();
        event.span = info.wait_span;
        break;
    }
    bus_->Emit(event);
  }
  return outcome;
}

std::vector<TransactionId> LockManager::ReleaseAll(TransactionId tid) {
  TxnLockInfo* info = txns_.Find(tid);
  if (info == nullptr) return {};
  // A blocked transaction being fully released is an abort (commit is
  // impossible mid-wait under strict 2PL): its wait ends unsatisfied.
  if (obs::Tracing(tracer_) && info->blocked_on.has_value()) {
    tracer_->CloseWait(tid, obs::WaitOutcome::kAborted);
  }
  const bool observing = obs::Enabled(bus_);
  const size_t touched = info->touched.size();
  std::vector<TransactionId> granted;
  for (ResourceId rid : info->touched) {
    std::vector<TransactionId> g = ReleaseOn(tid, rid);
    granted.insert(granted.end(), g.begin(), g.end());
  }
  txns_.Erase(tid);
  tids_dirty_ = true;
  if (observing) {
    obs::Event event;
    event.kind = obs::EventKind::kLockRelease;
    event.tid = tid;
    event.a = touched;
    event.b = granted.size();
    bus_->Emit(event);
  }
  return granted;
}

std::vector<TransactionId> LockManager::ReleaseOn(TransactionId tid,
                                                  ResourceId rid) {
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) return {};
  std::vector<TransactionId> granted = state->Remove(tid);
  if (obs::Enabled(bus_)) {
    for (TransactionId waiter : granted) {
      obs::Event wake;
      wake.kind = obs::EventKind::kLockWakeup;
      wake.tid = waiter;
      wake.rid = rid;
      wake.span = WaitSpan(waiter);
      bus_->Emit(wake);
    }
  }
  table_.EraseIfFree(rid);
  NoteGranted(granted);
  return granted;
}

void LockManager::Forget(TransactionId tid) {
  if (txns_.Erase(tid)) tids_dirty_ = true;
}

Result<std::vector<TransactionId>> LockManager::CancelWait(TransactionId tid) {
  TxnLockInfo* info = txns_.Find(tid);
  if (info == nullptr || !info->blocked_on.has_value()) {
    return Status::FailedPrecondition(
        common::Format("T%u is not blocked; nothing to cancel", tid));
  }
  const ResourceId rid = *info->blocked_on;
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) {
    return Status::Internal(common::Format(
        "T%u bookkept as blocked on R%u but the resource is free", tid, rid));
  }
  Result<std::vector<TransactionId>> granted = state->CancelRequest(tid);
  if (!granted.ok()) return granted.status();
  if (obs::Tracing(tracer_)) {
    tracer_->CloseWait(tid, obs::WaitOutcome::kCancelled);
  }
  // A cancelled queue member leaves the resource entirely; a cancelled
  // converter keeps holding it.
  if (!state->Involves(tid)) info->touched.Erase(rid);
  info->blocked_on.reset();
  info->blocked_mode = LockMode::kNL;
  NoteGranted(*granted);
  if (obs::Enabled(bus_)) {
    for (TransactionId waiter : *granted) {
      obs::Event wake;
      wake.kind = obs::EventKind::kLockWakeup;
      wake.tid = waiter;
      wake.rid = rid;
      wake.span = WaitSpan(waiter);
      bus_->Emit(wake);
    }
  }
  table_.EraseIfFree(rid);
  return granted;
}

std::vector<TransactionId> LockManager::Reschedule(ResourceId rid) {
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) return {};
  std::vector<TransactionId> granted = state->Reschedule();
  NoteGranted(granted);
  if (obs::Enabled(bus_)) {
    for (TransactionId waiter : granted) {
      obs::Event wake;
      wake.kind = obs::EventKind::kLockWakeup;
      wake.tid = waiter;
      wake.rid = rid;
      // NoteGranted already ran, but wait_span is retained past wakeup,
      // so the span id still correlates with the waiter's kLockBlock.
      wake.span = WaitSpan(waiter);
      bus_->Emit(wake);
    }
  }
  return granted;
}

Status LockManager::ApplyTdr2(ResourceId rid, TransactionId junction) {
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) {
    return Status::NotFound(common::Format("R%u is not locked", rid));
  }
  Status status = state->ApplyTdr2(junction);
  if (status.ok() && obs::Enabled(bus_)) {
    obs::Event event;
    event.kind = obs::EventKind::kUprReposition;
    event.tid = junction;
    event.rid = rid;
    bus_->Emit(event);
  }
  return status;
}

bool LockManager::IsBlocked(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr && info->blocked_on.has_value();
}

std::optional<ResourceId> LockManager::BlockedOn(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr ? info->blocked_on : std::nullopt;
}

const TxnLockInfo* LockManager::Info(TransactionId tid) const {
  return txns_.Find(tid);
}

uint64_t LockManager::WaitSpan(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr ? info->wait_span : 0;
}

uint64_t LockManager::WaitStarted(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr ? info->wait_started : 0;
}

void LockManager::RefreshTidOrder() const {
  if (!tids_dirty_ && ordered_tids_.size() == txns_.size()) return;
  ordered_tids_.clear();
  ordered_tids_.reserve(txns_.size());
  for (const auto& entry : txns_.entries()) {
    ordered_tids_.push_back(entry.key);
  }
  std::sort(ordered_tids_.begin(), ordered_tids_.end());
  tids_dirty_ = false;
}

std::vector<TransactionId> LockManager::KnownTransactions() const {
  RefreshTidOrder();
  return ordered_tids_;
}

std::vector<TransactionId> LockManager::BlockedTransactions() const {
  RefreshTidOrder();
  std::vector<TransactionId> out;
  for (TransactionId tid : ordered_tids_) {
    if (txns_.Find(tid)->blocked_on.has_value()) out.push_back(tid);
  }
  return out;
}

void LockManager::NoteGranted(const std::vector<TransactionId>& granted) {
  // The single choke point every grant path (ReleaseOn, CancelWait,
  // Reschedule) funnels through — wait spans close as granted here.
  const bool tracing = obs::Tracing(tracer_);
  for (TransactionId tid : granted) {
    if (tracing) tracer_->CloseWait(tid, obs::WaitOutcome::kGranted);
    TxnLockInfo* info = txns_.Find(tid);
    if (info != nullptr) {
      info->blocked_on.reset();
      info->blocked_mode = LockMode::kNL;
    }
  }
}

Status LockManager::CheckInvariants(bool deep) const {
  TWBG_RETURN_IF_ERROR(table_.CheckInvariants());
  for (const auto& [tid, info] : txn_infos()) {
    // blocked_on matches the table.
    if (info.blocked_on.has_value()) {
      const ResourceState* state = table_.Find(*info.blocked_on);
      if (state == nullptr || !state->IsBlockedHere(tid)) {
        return Status::Internal(common::Format(
            "T%u claims blocked on R%u but the table disagrees", tid,
            info.blocked_on.value_or(0)));
      }
    }
    if (!deep) continue;
    // No blocked appearance outside blocked_on; touched covers appearances.
    // O(R) per transaction — gated behind `deep`.
    for (const auto& [rid, state] : table_) {
      const bool involved = state.Involves(tid);
      if (involved && !info.touched.Contains(rid)) {
        return Status::Internal(common::Format(
            "T%u appears on R%u but it is not in its touched set", tid, rid));
      }
      if (state.IsBlockedHere(tid) &&
          (!info.blocked_on.has_value() || *info.blocked_on != rid)) {
        return Status::Internal(common::Format(
            "T%u is blocked on R%u but bookkeeping says otherwise", tid, rid));
      }
    }
  }
  if (!deep) return Status::OK();
  // Every table appearance belongs to a known transaction (Axiom 1 global:
  // a transaction waits on at most one resource).
  for (const auto& [rid, state] : table_) {
    for (const HolderEntry& h : state.holders()) {
      if (txns_.Find(h.tid) == nullptr) {
        return Status::Internal(
            common::Format("unknown holder T%u on R%u", h.tid, rid));
      }
    }
    for (const QueueEntry& q : state.queue()) {
      if (txns_.Find(q.tid) == nullptr) {
        return Status::Internal(
            common::Format("unknown waiter T%u on R%u", q.tid, rid));
      }
    }
  }
  return Status::OK();
}

}  // namespace twbg::lock
