// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_manager.h"

#include "common/string_util.h"

namespace twbg::lock {

Result<RequestOutcome> LockManager::Acquire(TransactionId tid, ResourceId rid,
                                            LockMode mode) {
  if (tid == kInvalidTransaction) {
    return Status::InvalidArgument("invalid transaction id 0");
  }
  TxnLockInfo& info = txns_[tid];
  if (info.blocked_on.has_value()) {
    return Status::FailedPrecondition(common::Format(
        "T%u is blocked on R%u and cannot request R%u", tid,
        *info.blocked_on, rid));
  }
  ResourceState& state = table_.GetOrCreate(rid);
  // Conversion must be checked before Request: afterwards a blocked
  // requester may sit in the queue rather than the holder list.
  const bool observing = obs::Enabled(bus_);
  const bool conversion = observing && state.FindHolder(tid) != nullptr;
  Result<RequestOutcome> outcome = state.Request(tid, mode);
  if (!outcome.ok()) {
    table_.EraseIfFree(rid);
    return outcome;
  }
  info.touched.insert(rid);
  if (*outcome == RequestOutcome::kBlocked) {
    info.blocked_on = rid;
    const HolderEntry* h = state.FindHolder(tid);
    info.blocked_mode = h != nullptr ? h->blocked : mode;
    // Every block opens a fresh wait span — even without a bus, so span
    // ids stay comparable across runs that toggle observability.
    info.wait_span = next_wait_span_++;
    info.wait_started = bus_ != nullptr ? bus_->time() : 0;
    if (obs::Tracing(tracer_)) {
      tracer_->OpenWait(tid, info.wait_span, rid, info.blocked_mode);
    }
  }
  if (observing) {
    obs::Event event;
    event.tid = tid;
    event.rid = rid;
    event.mode = mode;
    switch (*outcome) {
      case RequestOutcome::kGranted:
      case RequestOutcome::kAlreadyHeld:
        event.kind = conversion ? obs::EventKind::kLockConvert
                                : obs::EventKind::kLockGrant;
        event.a = conversion ? 1 : (*outcome == RequestOutcome::kAlreadyHeld);
        break;
      case RequestOutcome::kBlocked:
        event.kind = conversion ? obs::EventKind::kLockConvert
                                : obs::EventKind::kLockBlock;
        event.a = conversion ? 0 : state.queue().size();
        event.span = info.wait_span;
        break;
    }
    bus_->Emit(event);
  }
  return outcome;
}

std::vector<TransactionId> LockManager::ReleaseAll(TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return {};
  // A blocked transaction being fully released is an abort (commit is
  // impossible mid-wait under strict 2PL): its wait ends unsatisfied.
  if (obs::Tracing(tracer_) && it->second.blocked_on.has_value()) {
    tracer_->CloseWait(tid, obs::WaitOutcome::kAborted);
  }
  const bool observing = obs::Enabled(bus_);
  const size_t touched = it->second.touched.size();
  std::vector<TransactionId> granted;
  for (ResourceId rid : it->second.touched) {
    std::vector<TransactionId> g = ReleaseOn(tid, rid);
    granted.insert(granted.end(), g.begin(), g.end());
  }
  txns_.erase(it);
  if (observing) {
    obs::Event event;
    event.kind = obs::EventKind::kLockRelease;
    event.tid = tid;
    event.a = touched;
    event.b = granted.size();
    bus_->Emit(event);
  }
  return granted;
}

std::vector<TransactionId> LockManager::ReleaseOn(TransactionId tid,
                                                  ResourceId rid) {
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) return {};
  std::vector<TransactionId> granted = state->Remove(tid);
  if (obs::Enabled(bus_)) {
    for (TransactionId waiter : granted) {
      obs::Event wake;
      wake.kind = obs::EventKind::kLockWakeup;
      wake.tid = waiter;
      wake.rid = rid;
      wake.span = WaitSpan(waiter);
      bus_->Emit(wake);
    }
  }
  table_.EraseIfFree(rid);
  NoteGranted(granted);
  return granted;
}

void LockManager::Forget(TransactionId tid) { txns_.erase(tid); }

Result<std::vector<TransactionId>> LockManager::CancelWait(TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end() || !it->second.blocked_on.has_value()) {
    return Status::FailedPrecondition(
        common::Format("T%u is not blocked; nothing to cancel", tid));
  }
  const ResourceId rid = *it->second.blocked_on;
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) {
    return Status::Internal(common::Format(
        "T%u bookkept as blocked on R%u but the resource is free", tid, rid));
  }
  Result<std::vector<TransactionId>> granted = state->CancelRequest(tid);
  if (!granted.ok()) return granted.status();
  if (obs::Tracing(tracer_)) {
    tracer_->CloseWait(tid, obs::WaitOutcome::kCancelled);
  }
  // A cancelled queue member leaves the resource entirely; a cancelled
  // converter keeps holding it.
  if (!state->Involves(tid)) it->second.touched.erase(rid);
  it->second.blocked_on.reset();
  it->second.blocked_mode = LockMode::kNL;
  NoteGranted(*granted);
  if (obs::Enabled(bus_)) {
    for (TransactionId waiter : *granted) {
      obs::Event wake;
      wake.kind = obs::EventKind::kLockWakeup;
      wake.tid = waiter;
      wake.rid = rid;
      wake.span = WaitSpan(waiter);
      bus_->Emit(wake);
    }
  }
  table_.EraseIfFree(rid);
  return granted;
}

std::vector<TransactionId> LockManager::Reschedule(ResourceId rid) {
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) return {};
  std::vector<TransactionId> granted = state->Reschedule();
  NoteGranted(granted);
  if (obs::Enabled(bus_)) {
    for (TransactionId waiter : granted) {
      obs::Event wake;
      wake.kind = obs::EventKind::kLockWakeup;
      wake.tid = waiter;
      wake.rid = rid;
      // NoteGranted already ran, but wait_span is retained past wakeup,
      // so the span id still correlates with the waiter's kLockBlock.
      wake.span = WaitSpan(waiter);
      bus_->Emit(wake);
    }
  }
  return granted;
}

Status LockManager::ApplyTdr2(ResourceId rid, TransactionId junction) {
  ResourceState* state = table_.FindMutable(rid);
  if (state == nullptr) {
    return Status::NotFound(common::Format("R%u is not locked", rid));
  }
  Status status = state->ApplyTdr2(junction);
  if (status.ok() && obs::Enabled(bus_)) {
    obs::Event event;
    event.kind = obs::EventKind::kUprReposition;
    event.tid = junction;
    event.rid = rid;
    bus_->Emit(event);
  }
  return status;
}

bool LockManager::IsBlocked(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr && info->blocked_on.has_value();
}

std::optional<ResourceId> LockManager::BlockedOn(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr ? info->blocked_on : std::nullopt;
}

const TxnLockInfo* LockManager::Info(TransactionId tid) const {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

uint64_t LockManager::WaitSpan(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr ? info->wait_span : 0;
}

uint64_t LockManager::WaitStarted(TransactionId tid) const {
  const TxnLockInfo* info = Info(tid);
  return info != nullptr ? info->wait_started : 0;
}

std::vector<TransactionId> LockManager::KnownTransactions() const {
  std::vector<TransactionId> out;
  out.reserve(txns_.size());
  for (const auto& [tid, info] : txns_) out.push_back(tid);
  return out;
}

std::vector<TransactionId> LockManager::BlockedTransactions() const {
  std::vector<TransactionId> out;
  for (const auto& [tid, info] : txns_) {
    if (info.blocked_on.has_value()) out.push_back(tid);
  }
  return out;
}

void LockManager::NoteGranted(const std::vector<TransactionId>& granted) {
  // The single choke point every grant path (ReleaseOn, CancelWait,
  // Reschedule) funnels through — wait spans close as granted here.
  const bool tracing = obs::Tracing(tracer_);
  for (TransactionId tid : granted) {
    if (tracing) tracer_->CloseWait(tid, obs::WaitOutcome::kGranted);
    auto it = txns_.find(tid);
    if (it != txns_.end()) {
      it->second.blocked_on.reset();
      it->second.blocked_mode = LockMode::kNL;
    }
  }
}

Status LockManager::CheckInvariants(bool deep) const {
  TWBG_RETURN_IF_ERROR(table_.CheckInvariants());
  for (const auto& [tid, info] : txns_) {
    // blocked_on matches the table.
    if (info.blocked_on.has_value()) {
      const ResourceState* state = table_.Find(*info.blocked_on);
      if (state == nullptr || !state->IsBlockedHere(tid)) {
        return Status::Internal(common::Format(
            "T%u claims blocked on R%u but the table disagrees", tid,
            info.blocked_on.value_or(0)));
      }
    }
    if (!deep) continue;
    // No blocked appearance outside blocked_on; touched covers appearances.
    // O(R) per transaction — gated behind `deep`.
    for (const auto& [rid, state] : table_) {
      const bool involved = state.Involves(tid);
      if (involved && info.touched.count(rid) == 0) {
        return Status::Internal(common::Format(
            "T%u appears on R%u but it is not in its touched set", tid, rid));
      }
      if (state.IsBlockedHere(tid) &&
          (!info.blocked_on.has_value() || *info.blocked_on != rid)) {
        return Status::Internal(common::Format(
            "T%u is blocked on R%u but bookkeeping says otherwise", tid, rid));
      }
    }
  }
  if (!deep) return Status::OK();
  // Every table appearance belongs to a known transaction (Axiom 1 global:
  // a transaction waits on at most one resource).
  for (const auto& [rid, state] : table_) {
    for (const HolderEntry& h : state.holders()) {
      if (txns_.find(h.tid) == txns_.end()) {
        return Status::Internal(
            common::Format("unknown holder T%u on R%u", h.tid, rid));
      }
    }
    for (const QueueEntry& q : state.queue()) {
      if (txns_.find(q.tid) == txns_.end()) {
        return Status::Internal(
            common::Format("unknown waiter T%u on R%u", q.tid, rid));
      }
    }
  }
  return Status::OK();
}

}  // namespace twbg::lock
