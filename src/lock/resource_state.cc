// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/resource_state.h"

#include <algorithm>
#include <atomic>

#include "common/string_util.h"

namespace twbg::lock {

uint64_t NextStateVersion() {
  // Version stamps must stay process-unique even when shards mutate their
  // tables concurrently (txn::ConcurrentLockService); relaxed ordering is
  // enough — uniqueness is the only property derived caches rely on.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string HolderEntry::ToString() const {
  return common::Format("(T%u, %s, %s)", tid,
                        std::string(lock::ToString(granted)).c_str(),
                        std::string(lock::ToString(blocked)).c_str());
}

std::string QueueEntry::ToString() const {
  return common::Format("(T%u, %s)", tid,
                        std::string(lock::ToString(blocked)).c_str());
}

const HolderEntry* ResourceState::FindHolder(TransactionId tid) const {
  for (const HolderEntry& h : holders_) {
    if (h.tid == tid) return &h;
  }
  return nullptr;
}

bool ResourceState::InQueue(TransactionId tid) const {
  for (const QueueEntry& q : queue_) {
    if (q.tid == tid) return true;
  }
  return false;
}

bool ResourceState::Involves(TransactionId tid) const {
  return FindHolder(tid) != nullptr || InQueue(tid);
}

bool ResourceState::IsBlockedHere(TransactionId tid) const {
  const HolderEntry* h = FindHolder(tid);
  if (h != nullptr) return h->IsBlocked();
  return InQueue(tid);
}

size_t ResourceState::BlockedPrefixLength() const {
  size_t n = 0;
  while (n < holders_.size() && holders_[n].IsBlocked()) ++n;
  return n;
}

bool ResourceState::ConversionGrantable(size_t index) const {
  TWBG_DCHECK(index < holders_.size());
  TWBG_DCHECK(holders_[index].IsBlocked());
  const LockMode want = holders_[index].blocked;
  for (size_t j = 0; j < holders_.size(); ++j) {
    if (j == index) continue;
    if (!Compatible(want, holders_[j].granted)) return false;
  }
  return true;
}

size_t ResourceState::UprInsertPosition(const HolderEntry& entry) const {
  const size_t blocked_len = BlockedPrefixLength();
  // UPR-1: right before the first blocked entry whose blocked mode is
  // compatible with ours.
  for (size_t i = 0; i < blocked_len; ++i) {
    if (Compatible(entry.blocked, holders_[i].blocked)) return i;
  }
  // UPR-2: right before the first blocked entry that we could be scheduled
  // ahead of but not behind (Observation 3.1(2)): its granted mode is
  // compatible with our blocked mode while its blocked mode conflicts with
  // our granted mode.
  for (size_t i = 0; i < blocked_len; ++i) {
    if (Compatible(entry.blocked, holders_[i].granted) &&
        !Compatible(entry.granted, holders_[i].blocked)) {
      return i;
    }
  }
  // UPR-3: after all blocked entries, before all unblocked ones.
  return blocked_len;
}

LockMode ResourceState::GroupMode() const {
  LockMode gm = LockMode::kNL;
  for (const HolderEntry& h : holders_) gm = Convert(gm, h.granted);
  return gm;
}

LockMode ResourceState::AdmissionMode() const {
  return policy_ == AdmissionPolicy::kTotalMode ? total_mode_ : GroupMode();
}

void ResourceState::RecomputeTotalMode() {
  LockMode tm = LockMode::kNL;
  for (const HolderEntry& h : holders_) tm = Convert(tm, h.EffectiveMode());
  total_mode_ = tm;
}

Result<RequestOutcome> ResourceState::Request(TransactionId tid,
                                              LockMode mode) {
  if (tid == kInvalidTransaction) {
    return Status::InvalidArgument("invalid transaction id 0");
  }
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot request NL");
  }

  // Conversion path: tid is already a holder.
  for (size_t i = 0; i < holders_.size(); ++i) {
    if (holders_[i].tid != tid) continue;
    if (holders_[i].IsBlocked()) {
      return Status::FailedPrecondition(common::Format(
          "T%u is already blocked on R%u and cannot issue a request", tid,
          rid_));
    }
    const LockMode new_mode = Convert(holders_[i].granted, mode);
    if (new_mode == holders_[i].granted) {
      return RequestOutcome::kAlreadyHeld;  // already covered; no-op
    }
    bool grantable = true;
    for (size_t j = 0; j < holders_.size(); ++j) {
      if (j != i && !Compatible(new_mode, holders_[j].granted)) {
        grantable = false;
        break;
      }
    }
    total_mode_ = Convert(total_mode_, mode);
    BumpVersion();
    if (grantable) {
      holders_[i].granted = new_mode;
      return RequestOutcome::kGranted;
    }
    // Block the conversion and reposition the entry per UPR.
    HolderEntry entry = holders_[i];
    entry.blocked = new_mode;
    holders_.erase(holders_.begin() + static_cast<ptrdiff_t>(i));
    const size_t pos = UprInsertPosition(entry);
    holders_.insert(holders_.begin() + static_cast<ptrdiff_t>(pos), entry);
    return RequestOutcome::kBlocked;
  }

  if (InQueue(tid)) {
    return Status::FailedPrecondition(common::Format(
        "T%u is already waiting in the queue of R%u", tid, rid_));
  }

  // New-requestor path: FIFO — an occupied queue blocks regardless of
  // compatibility.
  BumpVersion();
  if (queue_.empty() && Compatible(mode, AdmissionMode())) {
    holders_.push_back(HolderEntry{tid, mode, LockMode::kNL});
    total_mode_ = Convert(total_mode_, mode);
    return RequestOutcome::kGranted;
  }
  queue_.push_back(QueueEntry{tid, mode});
  return RequestOutcome::kBlocked;
}

std::vector<TransactionId> ResourceState::Remove(TransactionId tid) {
  bool changed = false;
  for (size_t i = 0; i < holders_.size(); ++i) {
    if (holders_[i].tid == tid) {
      holders_.erase(holders_.begin() + static_cast<ptrdiff_t>(i));
      changed = true;
      break;
    }
  }
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].tid == tid) {
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
      changed = true;
      break;
    }
  }
  if (!changed) return {};
  BumpVersion();
  RecomputeTotalMode();
  return Reschedule();
}

Result<std::vector<TransactionId>> ResourceState::CancelRequest(
    TransactionId tid) {
  // Blocked-converter path: drop the pending conversion, keep the grant.
  for (size_t i = 0; i < holders_.size(); ++i) {
    if (holders_[i].tid != tid) continue;
    if (!holders_[i].IsBlocked()) {
      return Status::FailedPrecondition(common::Format(
          "T%u holds R%u but has no blocked request to cancel", tid, rid_));
    }
    HolderEntry entry = holders_[i];
    entry.blocked = LockMode::kNL;
    holders_.erase(holders_.begin() + static_cast<ptrdiff_t>(i));
    // Re-insert as the first unblocked entry so I1 (blocked prefix) holds.
    const size_t pos = BlockedPrefixLength();
    holders_.insert(holders_.begin() + static_cast<ptrdiff_t>(pos), entry);
    BumpVersion();
    // Request() folded the blocked mode into tm when it blocked the
    // conversion; shrink tm back to the surviving effective modes.
    RecomputeTotalMode();
    return Reschedule();
  }

  // Queue-member path.
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].tid != tid) continue;
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
    BumpVersion();
    // Deleting a queue member can expose a grantable front (I4).
    return Reschedule();
  }

  return Status::FailedPrecondition(
      common::Format("T%u is not blocked on R%u", tid, rid_));
}

std::vector<TransactionId> ResourceState::Reschedule() {
  std::vector<TransactionId> granted;

  // Holder pass: grant blocked conversions from the front while possible.
  // Blocked entries form a prefix (I1); Theorem 3.1 lets us stop at the
  // first non-grantable one.
  while (!holders_.empty() && holders_.front().IsBlocked() &&
         ConversionGrantable(0)) {
    HolderEntry entry = holders_.front();
    holders_.erase(holders_.begin());
    entry.granted = entry.blocked;
    entry.blocked = LockMode::kNL;
    holders_.push_back(entry);  // newly granted go after the blocked ones
    granted.push_back(entry.tid);
    // tm is unchanged: it already folded the blocked mode in.
  }

  // Queue pass: admit FIFO while the front is compatible with the
  // admission mode (tm; group mode under the ablation policy).
  // Admitted members form a prefix; count it first and shift the queue
  // once, instead of paying one front-erase shift per grant.
  size_t admitted = 0;
  while (admitted < queue_.size() &&
         Compatible(queue_[admitted].blocked, AdmissionMode())) {
    const QueueEntry& q = queue_[admitted];
    holders_.push_back(HolderEntry{q.tid, q.blocked, LockMode::kNL});
    total_mode_ = Convert(total_mode_, q.blocked);
    granted.push_back(q.tid);
    ++admitted;
  }
  if (admitted > 0) queue_.erase(queue_.begin(), queue_.begin() + admitted);

  if (!granted.empty()) BumpVersion();
  return granted;
}

Result<ResourceState::AvSt> ResourceState::ComputeAvSt(
    TransactionId junction) const {
  size_t end = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].tid == junction) {
      end = i;
      break;
    }
  }
  if (end == queue_.size()) {
    return Status::NotFound(common::Format(
        "T%u is not in the queue of R%u", junction, rid_));
  }
  if (!Compatible(queue_[end].blocked, AdmissionMode())) {
    return Status::FailedPrecondition(common::Format(
        "TDR-2 inapplicable: blocked mode of T%u conflicts with tm of R%u",
        junction, rid_));
  }
  AvSt result;
  for (size_t i = 0; i <= end; ++i) {
    if (Compatible(queue_[i].blocked, AdmissionMode())) {
      result.av.push_back(queue_[i]);
    } else {
      result.st.push_back(queue_[i]);
    }
  }
  return result;
}

Status ResourceState::ApplyTdr2(TransactionId junction) {
  // Inline validation (the same preconditions ComputeAvSt checks) so the
  // apply path allocates nothing.
  size_t end = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].tid == junction) {
      end = i;
      break;
    }
  }
  if (end == queue_.size()) {
    return Status::NotFound(common::Format(
        "T%u is not in the queue of R%u", junction, rid_));
  }
  if (!Compatible(queue_[end].blocked, AdmissionMode())) {
    return Status::FailedPrecondition(common::Format(
        "TDR-2 inapplicable: blocked mode of T%u conflicts with tm of R%u",
        junction, rid_));
  }
  // Reorder the prefix [0, end] to AV then ST in place (the suffix is
  // untouched): a stable insertion pass that rotates each AV member left
  // past the ST members ahead of it.  No allocation; quadratic only in
  // the prefix length, which Lemma 4.1 keeps short in practice.
  size_t insert_at = 0;
  for (size_t i = 0; i <= end; ++i) {
    if (!Compatible(queue_[i].blocked, AdmissionMode())) continue;
    const QueueEntry q = queue_[i];
    for (size_t j = i; j > insert_at; --j) queue_[j] = queue_[j - 1];
    queue_[insert_at++] = q;
  }
  BumpVersion();
  return Status::OK();
}

Status ResourceState::CheckInvariants() const {
  // I1: blocked prefix.
  bool seen_unblocked = false;
  for (const HolderEntry& h : holders_) {
    if (h.IsBlocked() && seen_unblocked) {
      return Status::Internal(common::Format(
          "R%u: blocked holder T%u after an unblocked one", rid_, h.tid));
    }
    if (!h.IsBlocked()) seen_unblocked = true;
  }
  // I2: tm is the fold of effective modes.
  LockMode tm = LockMode::kNL;
  for (const HolderEntry& h : holders_) tm = Convert(tm, h.EffectiveMode());
  if (tm != total_mode_) {
    return Status::Internal(
        common::Format("R%u: stale total mode (stored %s, computed %s)", rid_,
                       std::string(lock::ToString(total_mode_)).c_str(),
                       std::string(lock::ToString(tm)).c_str()));
  }
  // I3: no blocked conversion is grantable at rest.
  for (size_t i = 0; i < holders_.size(); ++i) {
    if (holders_[i].IsBlocked() && ConversionGrantable(i)) {
      return Status::Internal(common::Format(
          "R%u: blocked conversion of T%u is grantable", rid_,
          holders_[i].tid));
    }
    if (holders_[i].IsBlocked() &&
        holders_[i].blocked == holders_[i].granted) {
      return Status::Internal(common::Format(
          "R%u: vacuous conversion for T%u", rid_, holders_[i].tid));
    }
  }
  // I4: a non-empty queue's front conflicts with the admission mode.
  if (!queue_.empty() && Compatible(queue_.front().blocked, AdmissionMode())) {
    return Status::Internal(common::Format(
        "R%u: grantable queue front T%u", rid_, queue_.front().tid));
  }
  // I5: uniqueness.
  for (size_t i = 0; i < holders_.size(); ++i) {
    for (size_t j = i + 1; j < holders_.size(); ++j) {
      if (holders_[i].tid == holders_[j].tid) {
        return Status::Internal(common::Format(
            "R%u: duplicate holder T%u", rid_, holders_[i].tid));
      }
    }
    if (InQueue(holders_[i].tid)) {
      return Status::Internal(common::Format(
          "R%u: T%u both holds and queues", rid_, holders_[i].tid));
    }
  }
  for (size_t i = 0; i < queue_.size(); ++i) {
    for (size_t j = i + 1; j < queue_.size(); ++j) {
      if (queue_[i].tid == queue_[j].tid) {
        return Status::Internal(common::Format(
            "R%u: duplicate queue member T%u", rid_, queue_[i].tid));
      }
    }
    if (queue_[i].blocked == LockMode::kNL) {
      return Status::Internal(
          common::Format("R%u: NL queue entry for T%u", rid_, queue_[i].tid));
    }
  }
  return Status::OK();
}

std::string ResourceState::ToString() const {
  std::string out = common::Format(
      "R%u(%s): Holder(", rid_, std::string(lock::ToString(total_mode_)).c_str());
  std::vector<std::string> parts;
  parts.reserve(holders_.size());
  for (const HolderEntry& h : holders_) parts.push_back(h.ToString());
  out += common::Join(parts, " ");
  out += ") Queue(";
  parts.clear();
  for (const QueueEntry& q : queue_) parts.push_back(q.ToString());
  out += common::Join(parts, " ");
  out += ")";
  return out;
}

}  // namespace twbg::lock
