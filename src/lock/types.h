// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Basic identifier types and lock-table entry records shared across the
// lock manager, the H/W-TWBG builder and the detectors.

#ifndef TWBG_LOCK_TYPES_H_
#define TWBG_LOCK_TYPES_H_

#include <cstdint>
#include <string>

#include "lock/lock_mode.h"

namespace twbg::lock {

/// Transaction identifier.  The paper assigns 1..N; 0 is reserved as the
/// invalid / sentinel id (also used by the paper's TST W-edge terminator).
using TransactionId = uint32_t;

/// Resource identifier (a lockable object: table, page, record, ...).
using ResourceId = uint32_t;

inline constexpr TransactionId kInvalidTransaction = 0;

/// One member of a resource's holder list: `(tid, gm, bm)` in the paper.
/// `blocked == kNL` means the holder is not waiting; otherwise the holder
/// has a pending lock conversion to mode `blocked` (already folded through
/// Conv with the granted mode).
struct HolderEntry {
  TransactionId tid = kInvalidTransaction;
  LockMode granted = LockMode::kNL;
  LockMode blocked = LockMode::kNL;

  bool IsBlocked() const { return blocked != LockMode::kNL; }

  /// The mode this entry contributes to the resource's total mode:
  /// Conv(gm, bm).
  LockMode EffectiveMode() const { return Convert(granted, blocked); }

  /// "(T3, IX, NL)" — the paper's notation.
  std::string ToString() const;

  friend bool operator==(const HolderEntry&, const HolderEntry&) = default;
};

/// One member of a resource's FIFO queue: `(tid, bm)` in the paper.
struct QueueEntry {
  TransactionId tid = kInvalidTransaction;
  LockMode blocked = LockMode::kNL;

  /// "(T5, IX)" — the paper's notation.
  std::string ToString() const;

  friend bool operator==(const QueueEntry&, const QueueEntry&) = default;
};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_TYPES_H_
