// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Per-resource lock state implementing the paper's §3 scheduling policy:
//
//   * a *holder list* of (tid, granted, blocked) entries, where blocked
//     entries (pending lock conversions) are kept as a prefix ordered by
//     the Upgrader Positioning Rule (UPR 1-3),
//   * a FIFO *queue* of (tid, blocked) entries for new requestors, and
//   * the *total mode* tm = Conv over Conv(gm_i, bm_i) of all holders.
//
// Requests are honored first-in-first-out except for conversions.  The
// resting-state invariants (checked by CheckInvariants and relied upon by
// the H/W-TWBG construction) are:
//
//   I1  blocked holder entries form a prefix of the holder list;
//   I2  tm equals the Conv-fold of every holder's effective mode;
//   I3  no blocked conversion is grantable (Theorem 3.1 makes the first
//       one representative, and the scheduler drains grantable prefixes);
//   I4  if the queue is non-empty, its front is incompatible with tm;
//   I5  a transaction appears at most once in the holder list and at most
//       once in the queue, and never in both (Axiom 1 per resource).

#ifndef TWBG_LOCK_RESOURCE_STATE_H_
#define TWBG_LOCK_RESOURCE_STATE_H_

#include <string>
#include <vector>

#include "common/small_vector.h"
#include "common/status.h"
#include "lock/types.h"

namespace twbg::lock {

/// Holder-list / wait-queue storage: inline capacity covers the common
/// case (a holder or two, a short queue), so steady-state lock traffic
/// never allocates; hot resources spill to the heap and the LockTable's
/// free pool keeps that capacity alive across erase/create cycles.
using HolderList = common::SmallVector<HolderEntry, 4>;
using WaitQueue = common::SmallVector<QueueEntry, 4>;

/// What a new lock request is admission-checked against (§2 of the
/// paper).  The paper's *total mode* folds pending conversion modes into
/// the check, so a newcomer can never slip in ahead of a blocked upgrade;
/// Gray's *group mode* considers granted modes only, which admits such
/// newcomers and delays upgraders arbitrarily (the inefficiency the paper
/// alludes to).  kGroupMode exists as an ablation.
enum class AdmissionPolicy {
  kTotalMode,
  kGroupMode,
};

/// Outcome of ResourceState::Request.
enum class RequestOutcome {
  /// The lock (or conversion) was granted immediately.
  kGranted,
  /// The transaction already holds a mode covering the request; no-op.
  kAlreadyHeld,
  /// The request could not be granted; the transaction is now blocked
  /// (either as a converter in the holder list or as a queue member).
  kBlocked,
};

/// Returns a fresh value from the process-wide modification counter.
/// Values are never reused, so two states with equal versions are
/// guaranteed to carry identical holder/queue content (one is an
/// unmutated copy of the other).
uint64_t NextStateVersion();

/// Lock state of a single resource.  Not thread-safe; the library's core is
/// single-threaded (sequential transaction processing).
class ResourceState {
 public:
  explicit ResourceState(ResourceId rid,
                         AdmissionPolicy policy = AdmissionPolicy::kTotalMode)
      : rid_(rid), policy_(policy), version_(NextStateVersion()) {}

  /// Placeholder for container emplacement (lock::LockTable creates the
  /// slot first, then Reset()s it); not a valid resource until Reset.
  ResourceState() : ResourceState(0) {}

  /// Re-initializes a recycled state as a fresh, free resource with a new
  /// version stamp.  Holder/queue capacity is retained — this is how the
  /// table's free pool keeps heap capacity alive across erase/create
  /// cycles.
  void Reset(ResourceId rid, AdmissionPolicy policy) {
    rid_ = rid;
    policy_ = policy;
    total_mode_ = LockMode::kNL;
    version_ = NextStateVersion();
    holders_.clear();
    queue_.clear();
  }

  ResourceId rid() const { return rid_; }
  AdmissionPolicy policy() const { return policy_; }
  LockMode total_mode() const { return total_mode_; }

  /// Modification stamp: refreshed from the process-wide counter on
  /// construction and by every mutating call (Request, Remove,
  /// Reschedule, ApplyTdr2) that changes holder/queue content.  Derived
  /// caches (core::GraphBuilder) key their per-resource entries on this;
  /// see docs/PERFORMANCE.md for the invalidation contract.
  uint64_t version() const { return version_; }

  /// Gray's group mode: the Conv-fold of the *granted* modes only.
  LockMode GroupMode() const;

  /// The mode new requests are admission-checked against under the
  /// configured policy (total mode, or group mode for the ablation).
  LockMode AdmissionMode() const;
  const HolderList& holders() const { return holders_; }
  const WaitQueue& queue() const { return queue_; }

  /// True when neither held nor waited on; the lock table reclaims such
  /// entries.
  bool IsFree() const { return holders_.empty() && queue_.empty(); }

  /// Pointer into the holder list, or nullptr.  Invalidated by mutations.
  const HolderEntry* FindHolder(TransactionId tid) const;

  /// True when `tid` waits in the queue.
  bool InQueue(TransactionId tid) const;

  /// True when `tid` appears anywhere (holder list or queue).
  bool Involves(TransactionId tid) const;

  /// True when `tid` is blocked here — a blocked converter or any queue
  /// member.
  bool IsBlockedHere(TransactionId tid) const;

  /// Handles a lock request from `tid` for `mode` per §3:
  ///  * conversion (tid already a holder): grant if the converted mode is
  ///    compatible with every other holder's granted mode, else block the
  ///    entry and reposition it by UPR;
  ///  * new request: grant only if the queue is empty and `mode` is
  ///    compatible with tm, else append to the queue.
  /// Returns FailedPrecondition if `tid` is already blocked here (a
  /// blocked transaction cannot issue requests — Axiom 1).
  Result<RequestOutcome> Request(TransactionId tid, LockMode mode);

  /// Uncontended fast path: grants `mode` to `tid` as the first holder of
  /// a free resource and returns true, or returns false without touching
  /// anything when the resource is not free (or the request is malformed)
  /// and the full Request path must run.  Byte-identical to Request on a
  /// free state — Compatible(m, kNL) holds for every m and Convert(kNL, m)
  /// is m, so a free resource admits any first request under either
  /// policy — but skips the conversion scan, queue checks, and Result
  /// plumbing.
  bool TryFastGrant(TransactionId tid, LockMode mode) {
    if (!holders_.empty() || !queue_.empty() || tid == kInvalidTransaction ||
        mode == LockMode::kNL) {
      return false;
    }
    BumpVersion();
    holders_.push_back(HolderEntry{tid, mode, LockMode::kNL});
    total_mode_ = mode;  // Convert(kNL, mode) == mode; I2 holds
    return true;
  }

  /// Removes every trace of `tid` (commit or abort releases all locks
  /// under strict 2PL) and reschedules.  Returns transactions whose
  /// blocked request became granted as a consequence, in grant order.
  std::vector<TransactionId> Remove(TransactionId tid);

  /// Cancels the *blocked request* of `tid` without disturbing anything it
  /// already holds (deadline expiry, robustness layer):
  ///  * queue member — the entry is deleted;
  ///  * blocked converter — the pending conversion is dropped, the entry
  ///    keeps its granted mode and moves out of the blocked prefix (I1),
  ///    and tm is recomputed (the blocked mode had been folded in).
  /// Reschedules afterwards (the shrunken tm / vacated queue slot can make
  /// other waiters grantable) and returns the newly granted transactions
  /// in grant order.  Errors with FailedPrecondition if `tid` is not
  /// blocked here.
  Result<std::vector<TransactionId>> CancelRequest(TransactionId tid);

  /// Runs the grant passes of §3 until fixpoint and returns newly granted
  /// transactions in grant order:
  ///  1. holder pass — grant blocked conversions from the front of the
  ///     holder list while grantable (Theorem 3.1: stop at the first
  ///     non-grantable or non-blocked entry);
  ///  2. queue pass — admit queue members FIFO while compatible with tm.
  std::vector<TransactionId> Reschedule();

  /// TDR-2 partition (Definition 4.1): splits the queue prefix ending at
  /// `junction` (inclusive) into AV (blocked mode compatible with tm) and
  /// ST (incompatible).  Errors if `junction` is not in the queue or its
  /// own blocked mode is incompatible with tm (TDR-2 inapplicable).
  struct AvSt {
    std::vector<QueueEntry> av;
    std::vector<QueueEntry> st;
  };
  Result<AvSt> ComputeAvSt(TransactionId junction) const;

  /// Applies TDR-2: repositions the ST members of the prefix ending at
  /// `junction` right after the AV members, preserving relative order
  /// within each group.  Does not grant anything — the periodic algorithm
  /// defers grants to Step 3 (change-list) via Reschedule().
  Status ApplyTdr2(TransactionId junction);

  /// Verifies invariants I1-I5; used heavily by tests.
  Status CheckInvariants() const;

  /// The paper's notation, e.g.
  /// "R1(SIX): Holder((T1, IX, SIX) (T2, IS, S)) Queue((T5, IX))".
  std::string ToString() const;

 private:
  // Count of blocked entries at the head of the holder list.
  size_t BlockedPrefixLength() const;

  // True when the blocked conversion of holders_[index] is compatible with
  // the *granted* mode of every other holder (§3's conversion grant test).
  bool ConversionGrantable(size_t index) const;

  // UPR 1-3: insertion position for a newly blocked conversion entry
  // among the current blocked prefix (entry itself must already be
  // removed from the list).
  size_t UprInsertPosition(const HolderEntry& entry) const;

  // Recomputes tm as the Conv-fold of every holder's effective mode.
  void RecomputeTotalMode();

  // Stamps the state as mutated (cache-invalidation contract).
  void BumpVersion() { version_ = NextStateVersion(); }

  ResourceId rid_;
  AdmissionPolicy policy_ = AdmissionPolicy::kTotalMode;
  LockMode total_mode_ = LockMode::kNL;
  uint64_t version_ = 0;
  HolderList holders_;
  WaitQueue queue_;
};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_RESOURCE_STATE_H_
