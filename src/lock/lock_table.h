// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The resource status table (RST of the paper's §5): one ResourceState per
// currently locked resource.  Iteration order is deterministic (ordered by
// ResourceId) so that detection passes and experiments are reproducible.
//
// Storage is an open-addressing flat hash table (common/flat_map.h): two
// contiguous arrays instead of one rb-tree node per resource, so the
// Acquire/Release hot path does no pointer chasing and, in steady state,
// no allocation — erased ResourceStates are recycled through a free pool
// that keeps their holder/queue capacity alive.  Because the hash table
// itself iterates in insertion order, the deterministic rid order the
// detectors and reports rely on lives in an *ordered-iteration seam*: a
// lazily sorted rid index rebuilt only after an insert or erase changed
// the membership.  begin()/end() iterate through that seam, so
// `for (const auto& [rid, state] : table)` sees ascending rids exactly as
// the std::map layout did.
//
// The table also keeps a *mutation journal* for derived caches (the
// incremental ECR edge cache of core::GraphBuilder): every path that can
// mutate a resource — GetOrCreate, FindMutable, EraseIfFree — appends the
// resource id under a monotone sequence number.  A reader that remembers
// the sequence number of its last sync can ask for exactly the resources
// touched since then (DirtySince) instead of sweeping the whole table.
// Marking is conservative (FindMutable counts as a mutation whether or not
// the caller writes) — a false positive only costs one redundant
// per-resource rebuild, never a stale cache.  See docs/PERFORMANCE.md.

#ifndef TWBG_LOCK_LOCK_TABLE_H_
#define TWBG_LOCK_LOCK_TABLE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "lock/resource_state.h"

namespace twbg::lock {

/// Owning collection of per-resource lock state.
class LockTable {
 public:
  /// All resources created through this table use `policy` for admission
  /// checks (kGroupMode is the §2 ablation; see resource_state.h).
  explicit LockTable(AdmissionPolicy policy = AdmissionPolicy::kTotalMode)
      : policy_(policy) {}
  /// Copies get a fresh identity: derived caches keyed on uid() treat the
  /// copy as a brand-new table and fall back to a full sweep.
  LockTable(const LockTable& other);
  LockTable& operator=(const LockTable& other);

  AdmissionPolicy policy() const { return policy_; }

  /// Returns the state for `rid`, creating a free entry if absent.
  /// Journaled as a mutation (the caller receives mutable access).
  ResourceState& GetOrCreate(ResourceId rid);

  /// Returns the state for `rid` or nullptr.  The mutable variant is
  /// journaled as a mutation of `rid`.
  const ResourceState* Find(ResourceId rid) const;
  ResourceState* FindMutable(ResourceId rid);

  /// Like FindMutable but does NOT journal: the caller promises to call
  /// NoteMutation(rid) (serially, before the next journal reader syncs)
  /// for every resource it actually mutated.  Exists for the
  /// component-parallel Step 2 walk, which mutates disjoint resources
  /// from worker threads and defers journaling into its serial merge
  /// phase — the journal itself is not thread-safe.
  ResourceState* FindMutableDeferred(ResourceId rid);

  /// Journals a mutation of `rid` performed through FindMutableDeferred.
  void NoteMutation(ResourceId rid) { MarkDirty(rid); }

  /// Drops the entry for `rid` if it is free (no holders, no queue).  The
  /// state object is recycled into the free pool with its capacity.
  void EraseIfFree(ResourceId rid);

  size_t size() const { return resources_.size(); }
  bool empty() const { return resources_.empty(); }

  /// Ordered-iteration seam: a forward iterator over (rid, state) pairs
  /// in ascending rid order, backed by the lazily sorted rid index.
  /// Dereferences to a proxy pair, so the structured-binding idiom
  /// `for (const auto& [rid, state] : table)` works unchanged; `state`
  /// binds const — mutate through FindMutable, never mid-iteration.
  class const_iterator {
   public:
    using value_type = std::pair<ResourceId, const ResourceState&>;

    const_iterator(const LockTable* table, size_t pos)
        : table_(table), pos_(pos) {}

    value_type operator*() const {
      const ResourceId rid = table_->ordered_[pos_];
      return {rid, *table_->resources_.Find(rid)};
    }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return pos_ == other.pos_;
    }
    bool operator!=(const const_iterator& other) const {
      return pos_ != other.pos_;
    }

   private:
    const LockTable* table_;
    size_t pos_;
  };

  /// Ordered iteration over (rid, state), ascending by rid.
  const_iterator begin() const {
    RefreshOrder();
    return const_iterator(this, 0);
  }
  const_iterator end() const { return const_iterator(this, ordered_.size()); }

  /// The sorted rid index itself (same seam begin()/end() walk).
  const std::vector<ResourceId>& OrderedRids() const {
    RefreshOrder();
    return ordered_;
  }

  /// Process-unique table identity (refreshed on copy).  A cache that
  /// observes a different uid than last time must resynchronize from
  /// scratch.
  uint64_t uid() const { return uid_; }

  /// Sequence number of the latest journaled mutation (0 = pristine).
  uint64_t mutation_seq() const { return seq_; }

  /// Appends to `out` every resource id mutated after `since`.  Returns
  /// false — and appends nothing — when the journal cannot answer (the
  /// oldest retained entry is newer than `since`, or `since` lies in the
  /// future, i.e. the reader synced against a different table); the
  /// caller must then fall back to a full sweep keyed on
  /// ResourceState::version().  Ids may repeat; callers dedupe.
  bool DirtySince(uint64_t since, std::vector<ResourceId>* out) const;

  /// Checks every resource's invariants.
  Status CheckInvariants() const;

  /// Multi-line dump in the paper's notation.
  std::string ToString() const;

 private:
  // Bounded journal: coalesces consecutive hits on the same resource and
  // drops the oldest entries past the capacity (readers that fell that
  // far behind resynchronize with a full sweep).
  static constexpr size_t kJournalCapacity = 1u << 16;
  // Free ResourceStates retained for recycling (capacity preservation);
  // beyond this they are simply destroyed.
  static constexpr size_t kPoolCapacity = 256;

  void MarkDirty(ResourceId rid);
  // Re-sorts the rid index if an insert/erase invalidated it.  Lazy and
  // `mutable` so ordered reads stay const; single-writer like the rest of
  // the table (the parallel pass hands each shard table to one worker).
  void RefreshOrder() const;
  static uint64_t NextTableUid();

  AdmissionPolicy policy_ = AdmissionPolicy::kTotalMode;
  common::FlatMap<ResourceId, ResourceState> resources_;
  // Ordered-iteration seam: ascending rids, rebuilt lazily when dirty.
  mutable std::vector<ResourceId> ordered_;
  mutable bool order_dirty_ = false;
  // Free pool: erased states parked here keep their holder/queue capacity
  // for the next GetOrCreate.
  std::vector<ResourceState> pool_;
  uint64_t uid_ = NextTableUid();
  uint64_t seq_ = 0;
  // Sequence numbers at or below this were dropped from the journal.
  uint64_t trimmed_through_ = 0;
  // Contiguous journal ring: live entries are [journal_head_, size());
  // the consumed prefix is compacted away once it dominates the buffer.
  std::vector<std::pair<uint64_t, ResourceId>> journal_;
  size_t journal_head_ = 0;
};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_LOCK_TABLE_H_
