// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The resource status table (RST of the paper's §5): one ResourceState per
// currently locked resource.  Iteration order is deterministic (ordered by
// ResourceId) so that detection passes and experiments are reproducible.
//
// The table also keeps a *mutation journal* for derived caches (the
// incremental ECR edge cache of core::GraphBuilder): every path that can
// mutate a resource — GetOrCreate, FindMutable, EraseIfFree — appends the
// resource id under a monotone sequence number.  A reader that remembers
// the sequence number of its last sync can ask for exactly the resources
// touched since then (DirtySince) instead of sweeping the whole table.
// Marking is conservative (FindMutable counts as a mutation whether or not
// the caller writes) — a false positive only costs one redundant
// per-resource rebuild, never a stale cache.  See docs/PERFORMANCE.md.

#ifndef TWBG_LOCK_LOCK_TABLE_H_
#define TWBG_LOCK_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lock/resource_state.h"

namespace twbg::lock {

/// Owning collection of per-resource lock state.
class LockTable {
 public:
  /// All resources created through this table use `policy` for admission
  /// checks (kGroupMode is the §2 ablation; see resource_state.h).
  explicit LockTable(AdmissionPolicy policy = AdmissionPolicy::kTotalMode)
      : policy_(policy) {}
  /// Copies get a fresh identity: derived caches keyed on uid() treat the
  /// copy as a brand-new table and fall back to a full sweep.
  LockTable(const LockTable& other);
  LockTable& operator=(const LockTable& other);

  AdmissionPolicy policy() const { return policy_; }

  /// Returns the state for `rid`, creating a free entry if absent.
  /// Journaled as a mutation (the caller receives mutable access).
  ResourceState& GetOrCreate(ResourceId rid);

  /// Returns the state for `rid` or nullptr.  The mutable variant is
  /// journaled as a mutation of `rid`.
  const ResourceState* Find(ResourceId rid) const;
  ResourceState* FindMutable(ResourceId rid);

  /// Like FindMutable but does NOT journal: the caller promises to call
  /// NoteMutation(rid) (serially, before the next journal reader syncs)
  /// for every resource it actually mutated.  Exists for the
  /// component-parallel Step 2 walk, which mutates disjoint resources
  /// from worker threads and defers journaling into its serial merge
  /// phase — the journal deque itself is not thread-safe.
  ResourceState* FindMutableDeferred(ResourceId rid);

  /// Journals a mutation of `rid` performed through FindMutableDeferred.
  void NoteMutation(ResourceId rid) { MarkDirty(rid); }

  /// Drops the entry for `rid` if it is free (no holders, no queue).
  void EraseIfFree(ResourceId rid);

  size_t size() const { return resources_.size(); }
  bool empty() const { return resources_.empty(); }

  /// Ordered iteration over (rid, state).
  auto begin() const { return resources_.begin(); }
  auto end() const { return resources_.end(); }
  auto begin() { return resources_.begin(); }
  auto end() { return resources_.end(); }

  /// Process-unique table identity (refreshed on copy).  A cache that
  /// observes a different uid than last time must resynchronize from
  /// scratch.
  uint64_t uid() const { return uid_; }

  /// Sequence number of the latest journaled mutation (0 = pristine).
  uint64_t mutation_seq() const { return seq_; }

  /// Appends to `out` every resource id mutated after `since`.  Returns
  /// false — and appends nothing — when the journal cannot answer (the
  /// oldest retained entry is newer than `since`, or `since` lies in the
  /// future, i.e. the reader synced against a different table); the
  /// caller must then fall back to a full sweep keyed on
  /// ResourceState::version().  Ids may repeat; callers dedupe.
  bool DirtySince(uint64_t since, std::vector<ResourceId>* out) const;

  /// Checks every resource's invariants.
  Status CheckInvariants() const;

  /// Multi-line dump in the paper's notation.
  std::string ToString() const;

 private:
  // Bounded journal: coalesces consecutive hits on the same resource and
  // drops the oldest entries past the capacity (readers that fell that
  // far behind resynchronize with a full sweep).
  static constexpr size_t kJournalCapacity = 1u << 16;

  void MarkDirty(ResourceId rid);
  static uint64_t NextTableUid();

  AdmissionPolicy policy_ = AdmissionPolicy::kTotalMode;
  std::map<ResourceId, ResourceState> resources_;
  uint64_t uid_ = NextTableUid();
  uint64_t seq_ = 0;
  // Sequence numbers at or below this were dropped from the journal.
  uint64_t trimmed_through_ = 0;
  std::deque<std::pair<uint64_t, ResourceId>> journal_;
};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_LOCK_TABLE_H_
