// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The resource status table (RST of the paper's §5): one ResourceState per
// currently locked resource.  Iteration order is deterministic (ordered by
// ResourceId) so that detection passes and experiments are reproducible.

#ifndef TWBG_LOCK_LOCK_TABLE_H_
#define TWBG_LOCK_LOCK_TABLE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "lock/resource_state.h"

namespace twbg::lock {

/// Owning collection of per-resource lock state.
class LockTable {
 public:
  /// All resources created through this table use `policy` for admission
  /// checks (kGroupMode is the §2 ablation; see resource_state.h).
  explicit LockTable(AdmissionPolicy policy = AdmissionPolicy::kTotalMode)
      : policy_(policy) {}
  LockTable(const LockTable&) = default;
  LockTable& operator=(const LockTable&) = default;

  AdmissionPolicy policy() const { return policy_; }

  /// Returns the state for `rid`, creating a free entry if absent.
  ResourceState& GetOrCreate(ResourceId rid);

  /// Returns the state for `rid` or nullptr.
  const ResourceState* Find(ResourceId rid) const;
  ResourceState* FindMutable(ResourceId rid);

  /// Drops the entry for `rid` if it is free (no holders, no queue).
  void EraseIfFree(ResourceId rid);

  size_t size() const { return resources_.size(); }
  bool empty() const { return resources_.empty(); }

  /// Ordered iteration over (rid, state).
  auto begin() const { return resources_.begin(); }
  auto end() const { return resources_.end(); }
  auto begin() { return resources_.begin(); }
  auto end() { return resources_.end(); }

  /// Checks every resource's invariants.
  Status CheckInvariants() const;

  /// Multi-line dump in the paper's notation.
  std::string ToString() const;

 private:
  AdmissionPolicy policy_ = AdmissionPolicy::kTotalMode;
  std::map<ResourceId, ResourceState> resources_;
};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_LOCK_TABLE_H_
