// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Multiple-granularity lock modes and the two matrices that define their
// semantics (Park 1991, Tables 1 and 2; Gray's MGL protocol):
//
//   * the compatibility matrix `Comp` — whether two locks on the same
//     resource may be granted concurrently, and
//   * the conversion matrix `Conv` — the least upper bound of two modes,
//     used both for lock conversions and for the *total mode* of a
//     resource's holder list.
//
// Note on Table 1: the paper's printed row for S contains an OCR defect
// (it would make Comp(S, S) false, contradicting the paper's own
// Example 5.1 where two transactions hold S concurrently).  We use the
// standard Gray matrix with Comp(S, S) = true; see DESIGN.md.

#ifndef TWBG_LOCK_LOCK_MODE_H_
#define TWBG_LOCK_LOCK_MODE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace twbg::lock {

/// The five MGL lock modes plus NL ("no lock").  Enumerator order follows
/// the paper's tables: NL, IS, IX, SIX, S, X.
enum class LockMode : uint8_t {
  kNL = 0,   ///< no lock
  kIS = 1,   ///< intention shared
  kIX = 2,   ///< intention exclusive
  kSIX = 3,  ///< shared + intention exclusive
  kS = 4,    ///< shared
  kX = 5,    ///< exclusive
};

inline constexpr int kNumLockModes = 6;

namespace internal_lock_mode {

// Table 1 (compatibility), row = one lock, column = the other; symmetric.
inline constexpr bool kCompat[kNumLockModes][kNumLockModes] = {
    //        NL     IS     IX     SIX    S      X
    /*NL*/ {true, true, true, true, true, true},
    /*IS*/ {true, true, true, true, true, false},
    /*IX*/ {true, true, true, false, false, false},
    /*SIX*/ {true, true, false, false, false, false},
    /*S*/ {true, true, false, false, true, false},
    /*X*/ {true, false, false, false, false, false},
};

// Table 2 (conversion): Conv(row, column) = least upper bound in the MGL
// mode lattice NL < IS < {IX, S} < SIX < X.
inline constexpr LockMode kConv[kNumLockModes][kNumLockModes] = {
    //        NL            IS            IX             SIX            S              X
    /*NL*/ {LockMode::kNL, LockMode::kIS, LockMode::kIX, LockMode::kSIX,
            LockMode::kS, LockMode::kX},
    /*IS*/ {LockMode::kIS, LockMode::kIS, LockMode::kIX, LockMode::kSIX,
            LockMode::kS, LockMode::kX},
    /*IX*/ {LockMode::kIX, LockMode::kIX, LockMode::kIX, LockMode::kSIX,
            LockMode::kSIX, LockMode::kX},
    /*SIX*/ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
             LockMode::kSIX, LockMode::kX},
    /*S*/ {LockMode::kS, LockMode::kS, LockMode::kSIX, LockMode::kSIX,
           LockMode::kS, LockMode::kX},
    /*X*/ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
           LockMode::kX, LockMode::kX},
};

}  // namespace internal_lock_mode

/// True when locks `a` and `b` on the same resource can be held
/// concurrently by two different transactions (Table 1).  Symmetric.
constexpr bool Compatible(LockMode a, LockMode b) {
  return internal_lock_mode::kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

/// The mode a transaction effectively wants when it holds `held` and
/// re-requests `requested` (Table 2) — the least upper bound of the two.
constexpr LockMode Convert(LockMode held, LockMode requested) {
  return internal_lock_mode::kConv[static_cast<int>(held)]
                                  [static_cast<int>(requested)];
}

/// True when `a` subsumes `b` in the mode lattice (Conv(a, b) == a).
constexpr bool Covers(LockMode a, LockMode b) { return Convert(a, b) == a; }

/// Canonical spelling ("NL", "IS", "IX", "SIX", "S", "X").
std::string_view ToString(LockMode mode);

/// Parses a canonical spelling; nullopt for anything else.
std::optional<LockMode> LockModeFromString(std::string_view text);

/// All grantable (non-NL) modes, in table order — handy for sweeps.
inline constexpr LockMode kRealModes[] = {LockMode::kIS, LockMode::kIX,
                                          LockMode::kSIX, LockMode::kS,
                                          LockMode::kX};

/// All modes including NL, in table order.
inline constexpr LockMode kAllModes[] = {LockMode::kNL, LockMode::kIS,
                                         LockMode::kIX, LockMode::kSIX,
                                         LockMode::kS, LockMode::kX};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_LOCK_MODE_H_
