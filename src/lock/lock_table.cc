// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_table.h"

#include <algorithm>
#include <atomic>

namespace twbg::lock {

uint64_t LockTable::NextTableUid() {
  // Tables are created from multiple threads once the service is sharded;
  // uids only need to be unique, so relaxed ordering suffices (see
  // NextStateVersion).
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

LockTable::LockTable(const LockTable& other)
    : policy_(other.policy_), resources_(other.resources_) {
  // Fresh uid_, empty journal: caches synced against `other` observe a
  // different identity here and resynchronize with a full version sweep.
  order_dirty_ = true;
}

LockTable& LockTable::operator=(const LockTable& other) {
  if (this == &other) return *this;
  policy_ = other.policy_;
  resources_ = other.resources_;
  order_dirty_ = true;
  uid_ = NextTableUid();
  seq_ = 0;
  trimmed_through_ = 0;
  journal_.clear();
  journal_head_ = 0;
  return *this;
}

void LockTable::MarkDirty(ResourceId rid) {
  ++seq_;
  // Append-only, with one O(1) coalescing step: mutation paths often
  // mark the same resource several times back to back (GetOrCreate
  // followed by FindMutable on the granting path), and lifting the back
  // entry to the new sequence number folds those into one.  A resource
  // re-touched later simply gets a fresh entry — DirtySince explicitly
  // allows repeated ids, and the version stamp makes the duplicate a
  // cheap no-op for every cache reader.  Deduplicating deeper would
  // mean an O(journal) reverse scan per mutation, which made every
  // mutation of a table with a long journal (e.g. after a full-table
  // pin) pay for the journal's length.
  if (journal_.size() > journal_head_ && journal_.back().second == rid) {
    journal_.back().first = seq_;
    return;
  }
  journal_.emplace_back(seq_, rid);
  while (journal_.size() - journal_head_ > kJournalCapacity) {
    trimmed_through_ = journal_[journal_head_].first;
    ++journal_head_;
  }
  // Compact the consumed prefix once it dominates the buffer, so the
  // vector's footprint stays O(live entries) amortized O(1) per mark.
  if (journal_head_ > kJournalCapacity) {
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<ptrdiff_t>(journal_head_));
    journal_head_ = 0;
  }
}

bool LockTable::DirtySince(uint64_t since, std::vector<ResourceId>* out) const {
  if (since > seq_) return false;              // reader synced elsewhere
  if (since < trimmed_through_) return false;  // journal trimmed past it
  // Journal is ordered by sequence number; walk back until `since`.
  for (size_t i = journal_.size(); i > journal_head_; --i) {
    const auto& [entry_seq, rid] = journal_[i - 1];
    if (entry_seq <= since) break;
    out->push_back(rid);
  }
  return true;
}

void LockTable::RefreshOrder() const {
  if (!order_dirty_) return;
  ordered_.clear();
  ordered_.reserve(resources_.size());
  for (const auto& entry : resources_.entries()) {
    ordered_.push_back(entry.key);
  }
  std::sort(ordered_.begin(), ordered_.end());
  order_dirty_ = false;
}

ResourceState& LockTable::GetOrCreate(ResourceId rid) {
  MarkDirty(rid);
  auto [slot, inserted] = resources_.TryEmplace(rid);
  if (inserted) {
    order_dirty_ = true;
    if (!pool_.empty()) {
      // Recycle a pooled state: its holder/queue heap capacity survives
      // the move-assign, so steady-state create/erase churn is alloc-free
      // (beyond the hash table's own amortized growth).
      *slot = std::move(pool_.back());
      pool_.pop_back();
    }
    slot->Reset(rid, policy_);
  }
  return *slot;
}

const ResourceState* LockTable::Find(ResourceId rid) const {
  return resources_.Find(rid);
}

ResourceState* LockTable::FindMutable(ResourceId rid) {
  ResourceState* state = resources_.Find(rid);
  if (state == nullptr) return nullptr;
  MarkDirty(rid);
  return state;
}

ResourceState* LockTable::FindMutableDeferred(ResourceId rid) {
  return resources_.Find(rid);
}

void LockTable::EraseIfFree(ResourceId rid) {
  ResourceState* state = resources_.Find(rid);
  if (state == nullptr || !state->IsFree()) return;
  MarkDirty(rid);
  if (pool_.size() < kPoolCapacity) {
    pool_.push_back(std::move(*state));
  }
  resources_.Erase(rid);
  order_dirty_ = true;
}

Status LockTable::CheckInvariants() const {
  for (const auto& [rid, state] : *this) {
    TWBG_RETURN_IF_ERROR(state.CheckInvariants());
  }
  return Status::OK();
}

std::string LockTable::ToString() const {
  std::string out;
  for (const auto& [rid, state] : *this) {
    out += state.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace twbg::lock
