// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_table.h"

#include <atomic>

namespace twbg::lock {

uint64_t LockTable::NextTableUid() {
  // Tables are created from multiple threads once the service is sharded;
  // uids only need to be unique, so relaxed ordering suffices (see
  // NextStateVersion).
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

LockTable::LockTable(const LockTable& other)
    : policy_(other.policy_), resources_(other.resources_) {
  // Fresh uid_, empty journal: caches synced against `other` observe a
  // different identity here and resynchronize with a full version sweep.
}

LockTable& LockTable::operator=(const LockTable& other) {
  if (this == &other) return *this;
  policy_ = other.policy_;
  resources_ = other.resources_;
  uid_ = NextTableUid();
  seq_ = 0;
  trimmed_through_ = 0;
  journal_.clear();
  return *this;
}

void LockTable::MarkDirty(ResourceId rid) {
  ++seq_;
  // Append-only, with one O(1) coalescing step: mutation paths often
  // mark the same resource several times back to back (GetOrCreate
  // followed by FindMutable on the granting path), and lifting the back
  // entry to the new sequence number folds those into one.  A resource
  // re-touched later simply gets a fresh entry — DirtySince explicitly
  // allows repeated ids, and the version stamp makes the duplicate a
  // cheap no-op for every cache reader.  Deduplicating deeper would
  // mean an O(journal) reverse scan per mutation, which made every
  // mutation of a table with a long journal (e.g. after a full-table
  // pin) pay for the journal's length.
  if (!journal_.empty() && journal_.back().second == rid) {
    journal_.back().first = seq_;
    return;
  }
  journal_.emplace_back(seq_, rid);
  while (journal_.size() > kJournalCapacity) {
    trimmed_through_ = journal_.front().first;
    journal_.pop_front();
  }
}

bool LockTable::DirtySince(uint64_t since, std::vector<ResourceId>* out) const {
  if (since > seq_) return false;          // reader synced elsewhere
  if (since < trimmed_through_) return false;  // journal trimmed past it
  // Journal is ordered by sequence number; walk back until `since`.
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    if (it->first <= since) break;
    out->push_back(it->second);
  }
  return true;
}

ResourceState& LockTable::GetOrCreate(ResourceId rid) {
  MarkDirty(rid);
  auto it = resources_.find(rid);
  if (it == resources_.end()) {
    it = resources_.emplace(rid, ResourceState(rid, policy_)).first;
  }
  return it->second;
}

const ResourceState* LockTable::Find(ResourceId rid) const {
  auto it = resources_.find(rid);
  return it == resources_.end() ? nullptr : &it->second;
}

ResourceState* LockTable::FindMutable(ResourceId rid) {
  auto it = resources_.find(rid);
  if (it == resources_.end()) return nullptr;
  MarkDirty(rid);
  return &it->second;
}

ResourceState* LockTable::FindMutableDeferred(ResourceId rid) {
  auto it = resources_.find(rid);
  return it == resources_.end() ? nullptr : &it->second;
}

void LockTable::EraseIfFree(ResourceId rid) {
  auto it = resources_.find(rid);
  if (it != resources_.end() && it->second.IsFree()) {
    MarkDirty(rid);
    resources_.erase(it);
  }
}

Status LockTable::CheckInvariants() const {
  for (const auto& [rid, state] : resources_) {
    TWBG_RETURN_IF_ERROR(state.CheckInvariants());
  }
  return Status::OK();
}

std::string LockTable::ToString() const {
  std::string out;
  for (const auto& [rid, state] : resources_) {
    out += state.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace twbg::lock
