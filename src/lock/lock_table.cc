// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "lock/lock_table.h"

namespace twbg::lock {

ResourceState& LockTable::GetOrCreate(ResourceId rid) {
  auto it = resources_.find(rid);
  if (it == resources_.end()) {
    it = resources_.emplace(rid, ResourceState(rid, policy_)).first;
  }
  return it->second;
}

const ResourceState* LockTable::Find(ResourceId rid) const {
  auto it = resources_.find(rid);
  return it == resources_.end() ? nullptr : &it->second;
}

ResourceState* LockTable::FindMutable(ResourceId rid) {
  auto it = resources_.find(rid);
  return it == resources_.end() ? nullptr : &it->second;
}

void LockTable::EraseIfFree(ResourceId rid) {
  auto it = resources_.find(rid);
  if (it != resources_.end() && it->second.IsFree()) resources_.erase(it);
}

Status LockTable::CheckInvariants() const {
  for (const auto& [rid, state] : resources_) {
    TWBG_RETURN_IF_ERROR(state.CheckInvariants());
  }
  return Status::OK();
}

std::string LockTable::ToString() const {
  std::string out;
  for (const auto& [rid, state] : resources_) {
    out += state.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace twbg::lock
