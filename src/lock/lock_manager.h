// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Transaction-facing lock manager.  Wraps the LockTable with per-transaction
// bookkeeping (which resources a transaction touches, where it is blocked)
// and enforces the sequential-transaction-processing model: a blocked
// transaction cannot issue further requests (Axiom 1 of the paper).
//
// The lock manager does not detect deadlocks itself; detectors (core/ and
// baselines/) read and, for resolution, mutate it through this interface.
//
// Bookkeeping storage mirrors the lock table's layout: a flat hash table
// of TxnLockInfo keyed by transaction id (common/flat_map.h) with a lazily
// sorted tid index for the ordered sweeps (KnownTransactions,
// BlockedTransactions, txn_infos), and an inline-capacity sorted set for
// each transaction's touched-resource list — under strict 2PL a
// transaction rarely touches more than a handful of resources, so the
// Acquire/Release hot path stays allocation-free.

#ifndef TWBG_LOCK_LOCK_MANAGER_H_
#define TWBG_LOCK_LOCK_MANAGER_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "lock/lock_table.h"
#include "obs/bus.h"
#include "obs/span.h"

namespace twbg::lock {

/// Per-transaction view kept by the lock manager.
struct TxnLockInfo {
  /// Resource on which the transaction is blocked (queue member or blocked
  /// converter), or nullopt when runnable.
  std::optional<ResourceId> blocked_on;
  /// Mode the transaction is blocked for (post-Conv for conversions);
  /// kNL when runnable.
  LockMode blocked_mode = LockMode::kNL;
  /// Wait-span correlation id of the transaction's most recent block
  /// (manager-wide monotonic, 0 = never blocked).  Deliberately retained
  /// after wakeup so the driver can stamp the span onto its kWaitEnd
  /// event after the wait is over.
  uint64_t wait_span = 0;
  /// Logical bus time at which the most recent block started (0 when no
  /// bus was attached).  Retained like wait_span; post-mortems use it to
  /// compute each cycle member's time in queue.
  uint64_t wait_started = 0;
  /// Every resource where the transaction currently appears, ascending.
  common::SortedSmallSet<ResourceId, 8> touched;
};

/// Single-threaded lock manager for sequential transaction processing.
class LockManager {
 public:
  explicit LockManager(
      AdmissionPolicy policy = AdmissionPolicy::kTotalMode)
      : table_(policy) {}

  /// Requests `mode` on `rid` for `tid`.  On kBlocked the transaction must
  /// not issue further requests until granted or aborted.  Transactions are
  /// registered implicitly on first use.
  Result<RequestOutcome> Acquire(TransactionId tid, ResourceId rid,
                                 LockMode mode);

  /// Releases all locks and queue positions of `tid` (commit or abort under
  /// strict 2PL) and forgets the transaction.  Returns transactions whose
  /// blocked requests became granted, in grant order.
  std::vector<TransactionId> ReleaseAll(TransactionId tid);

  /// Releases `tid`'s appearance on the single resource `rid`, emitting a
  /// kLockWakeup per grant but NOT the final kLockRelease summary and NOT
  /// forgetting the transaction.  Building block for cross-shard releases
  /// (txn::ConcurrentLockService commits span several managers and must
  /// release in global ascending-rid order); ReleaseAll is implemented on
  /// top of it.  Returns transactions granted on `rid`, in grant order.
  std::vector<TransactionId> ReleaseOn(TransactionId tid, ResourceId rid);

  /// Drops all bookkeeping for `tid` without touching the table.  The
  /// caller must already have released every resource in `tid`'s touched
  /// set (via ReleaseOn); emits nothing.
  void Forget(TransactionId tid);

  /// Cancels `tid`'s blocked wait (deadline expiry): the blocked request
  /// is withdrawn from the resource with full invariant maintenance
  /// (ResourceState::CancelRequest), anything `tid` already held there
  /// stays held, and `tid` becomes runnable again.  Waiters unblocked by
  /// the withdrawal are granted (kLockWakeup each) and returned in grant
  /// order.  wait_span/wait_started are retained, as after a wakeup, so
  /// the caller can stamp its kDeadlineExpired / kWaitEnd events.  Errors
  /// with FailedPrecondition when `tid` is not blocked.
  Result<std::vector<TransactionId>> CancelWait(TransactionId tid);

  /// Re-runs the grant passes on `rid` (used by detector Step 3 for
  /// change-list resources) and updates blocked bookkeeping.
  std::vector<TransactionId> Reschedule(ResourceId rid);

  /// Applies the TDR-2 queue repositioning on `rid` at `junction`.  Grants
  /// are NOT performed here; call Reschedule(rid) afterwards (Step 3).
  Status ApplyTdr2(ResourceId rid, TransactionId junction);

  /// True when `tid` is currently blocked.
  bool IsBlocked(TransactionId tid) const;

  /// Resource `tid` is blocked on, or nullopt.
  std::optional<ResourceId> BlockedOn(TransactionId tid) const;

  /// Full info for `tid`, or nullptr if unknown.
  const TxnLockInfo* Info(TransactionId tid) const;

  /// Wait-span id of `tid`'s most recent block (0 = never blocked).
  /// Valid while blocked and after wakeup, until the transaction releases
  /// (drivers read it when emitting kWaitEnd).
  uint64_t WaitSpan(TransactionId tid) const;

  /// Logical time `tid`'s most recent block started; 0 when never blocked
  /// or when no bus was attached at block time.
  uint64_t WaitStarted(TransactionId tid) const;

  /// All transactions known to the lock manager, ascending by id.
  std::vector<TransactionId> KnownTransactions() const;

  /// Read-only iteration view over the per-transaction bookkeeping,
  /// ascending by transaction id.  Dereferences to (tid, info) proxy
  /// pairs — `for (const auto& [tid, info] : manager.txn_infos())` — so
  /// the underlying container never leaks into the public header.  Exists
  /// for snapshot captures that mirror every transaction's wait state in
  /// one ordered sweep instead of one lookup per transaction
  /// (txn::ShardSnapshot::Capture).  Invalidated by any mutation of the
  /// manager.
  class TxnInfoView {
   public:
    class iterator {
     public:
      using value_type = std::pair<TransactionId, const TxnLockInfo&>;

      iterator(const LockManager* manager, size_t pos)
          : manager_(manager), pos_(pos) {}
      value_type operator*() const {
        const TransactionId tid = manager_->ordered_tids_[pos_];
        return {tid, *manager_->txns_.Find(tid)};
      }
      iterator& operator++() {
        ++pos_;
        return *this;
      }
      bool operator==(const iterator& other) const {
        return pos_ == other.pos_;
      }
      bool operator!=(const iterator& other) const {
        return pos_ != other.pos_;
      }

     private:
      const LockManager* manager_;
      size_t pos_;
    };

    explicit TxnInfoView(const LockManager* manager) : manager_(manager) {}
    iterator begin() const {
      manager_->RefreshTidOrder();
      return iterator(manager_, 0);
    }
    iterator end() const {
      return iterator(manager_, manager_->txns_.size());
    }
    size_t size() const { return manager_->txns_.size(); }
    bool empty() const { return manager_->txns_.empty(); }

   private:
    const LockManager* manager_;
  };

  TxnInfoView txn_infos() const { return TxnInfoView(this); }

  /// All currently blocked transactions, ascending by id.
  std::vector<TransactionId> BlockedTransactions() const;

  const LockTable& table() const { return table_; }
  LockTable& mutable_table() { return table_; }

  /// Attaches an event bus (may be null to detach).  When attached and
  /// active, the manager emits kLockGrant / kLockBlock / kLockConvert /
  /// kLockRelease / kLockWakeup / kUprReposition events; when detached the
  /// only cost is one pointer test per operation.
  void set_event_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Currently attached event bus, or nullptr.
  obs::EventBus* event_bus() const { return bus_; }

  /// Attaches a span tracer (may be null to detach).  When attached and
  /// active, every block opens a kWait span carrying the PR-3 wait-span
  /// correlation id, closed by the matching wakeup (granted), abort
  /// (ReleaseAll of a blocked transaction) or deadline cancel; when
  /// detached the only cost is one pointer test per block/wakeup.  The
  /// tracer shares the bus's single-writer contract — hosts that
  /// serialize bus emission already serialize span emission.
  void set_span_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Currently attached span tracer, or nullptr.
  obs::SpanTracer* span_tracer() const { return tracer_; }

  /// Checks lock-table invariants plus bookkeeping consistency (blocked_on
  /// matches the table; touched sets match appearances).  The cross-checks
  /// that sweep every transaction against every resource are O(T×R); pass
  /// `deep = false` (benchmarks, large simulations) to skip them and keep
  /// only the per-resource and per-blocked-transaction checks.
  Status CheckInvariants(bool deep = true) const;

 private:
  // Clears blocked state for every granted transaction.
  void NoteGranted(const std::vector<TransactionId>& granted);

  // Re-sorts the tid index if an insert/erase invalidated it (lazy,
  // `mutable`: the ordered views stay const).
  void RefreshTidOrder() const;

  LockTable table_;
  common::FlatMap<TransactionId, TxnLockInfo> txns_;
  // Ordered-iteration seam over txns_, mirroring LockTable's.
  mutable std::vector<TransactionId> ordered_tids_;
  mutable bool tids_dirty_ = false;
  obs::EventBus* bus_ = nullptr;
  obs::SpanTracer* tracer_ = nullptr;
  uint64_t next_wait_span_ = 1;  // wait-span ids are manager-wide monotonic
};

}  // namespace twbg::lock

#endif  // TWBG_LOCK_LOCK_MANAGER_H_
