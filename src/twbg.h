// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Umbrella header: the public API of the twbg library in one include.
//
//   #include "twbg.h"
//
// Layers (see README.md and DESIGN.md):
//   * lock       — MGL lock modes, per-resource scheduling (FIFO + UPR),
//                  lock manager;
//   * core       — the paper's contribution: H/W-TWBG, TDR victim
//                  selection, periodic & continuous detectors, oracle;
//   * txn        — strict-2PL transactions, MGL hierarchies, thread-safe
//                  service wrapper, the LockClient abstraction;
//   * net        — the wire protocol, twbg-serverd's server core, and the
//                  TCP LockClient;
//   * robustness — deadlines, admission control / backpressure, retry
//                  backoff, deterministic fault injection;
//   * baselines  — comparison schemes behind DetectionStrategy;
//   * sim        — workload generator and simulator.
//
// Engine internals (the TST builder layers, scoped-TST experiments, the
// incremental ECR edge cache, the parallel detection engine) are NOT part
// of the public surface; include their headers directly if you are
// extending the engine itself.

#ifndef TWBG_TWBG_H_
#define TWBG_TWBG_H_

#include "common/status.h"

#include "lock/lock_manager.h"
#include "lock/lock_mode.h"
#include "lock/lock_table.h"
#include "lock/resource_state.h"
#include "lock/types.h"

#include "core/continuous_detector.h"
#include "core/cost_table.h"
#include "core/detector.h"
#include "core/examples_catalog.h"
#include "core/oracle.h"
#include "core/periodic_detector.h"
#include "core/script.h"
#include "core/twbg.h"
#include "core/victim.h"

#include "txn/client_script.h"
#include "txn/concurrent_service.h"
#include "txn/lock_client.h"
#include "txn/mgl.h"
#include "txn/robustness/robustness.h"
#include "txn/transaction_manager.h"

#include "net/server.h"
#include "net/tcp_client.h"
#include "net/wire.h"

#include "baselines/factory.h"
#include "baselines/strategy.h"

#include "sim/simulator.h"
#include "sim/workload.h"

#endif  // TWBG_TWBG_H_
