// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Internal JSON-parsing primitives shared by the offline trace readers
// (obs/trace_reader.cc for event JSONL, obs/span_sinks.cc for span
// JSONL).  The grammar is exactly what the writers emit: one flat JSON
// object per line, string or number values, JsonEscape() escapes.  Not
// part of the public surface — include from obs/*.cc only.

#ifndef TWBG_OBS_JSON_UTIL_H_
#define TWBG_OBS_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/string_util.h"

namespace twbg::obs::jsonutil {

// Minimal cursor over one flat JSON object.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

// Appends `codepoint` to `out` as UTF-8 (BMP only — what \uXXXX covers).
inline void AppendUtf8(uint32_t codepoint, std::string* out) {
  if (codepoint < 0x80) {
    out->push_back(static_cast<char>(codepoint));
  } else if (codepoint < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  }
}

// Parses a JSON string literal (cursor positioned at the opening quote)
// and unescapes it into `out`.
inline Status ParseString(Cursor* cur, std::string* out) {
  if (!cur->Consume('"')) return Status::InvalidArgument("expected '\"'");
  out->clear();
  while (!cur->AtEnd()) {
    const char c = cur->text[cur->pos++];
    if (c == '"') return Status::OK();
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (cur->AtEnd()) break;
    const char esc = cur->text[cur->pos++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (cur->pos + 4 > cur->text.size()) {
          return Status::InvalidArgument("truncated \\u escape");
        }
        uint32_t codepoint = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cur->text[cur->pos++];
          codepoint <<= 4;
          if (h >= '0' && h <= '9') {
            codepoint |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            codepoint |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            codepoint |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            return Status::InvalidArgument("bad hex digit in \\u escape");
          }
        }
        AppendUtf8(codepoint, out);
        break;
      }
      default:
        return Status::InvalidArgument(
            common::Format("unknown escape \\%c", esc));
    }
  }
  return Status::InvalidArgument("unterminated string");
}

// Parses a JSON number into `out` (its raw text; the caller converts).
inline Status ParseNumber(Cursor* cur, std::string* out) {
  out->clear();
  while (!cur->AtEnd()) {
    const char c = cur->Peek();
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      out->push_back(c);
      ++cur->pos;
    } else {
      break;
    }
  }
  if (out->empty()) return Status::InvalidArgument("expected a number");
  return Status::OK();
}

}  // namespace twbg::obs::jsonutil

#endif  // TWBG_OBS_JSON_UTIL_H_
