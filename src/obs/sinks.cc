// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/sinks.h"

#include "common/string_util.h"

namespace twbg::obs {

void CollectorSink::OnEvent(const Event& event) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<Event> CollectorSink::Filter(EventKind kind) const {
  std::vector<Event> out;
  for (const Event& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

size_t CollectorSink::Count(EventKind kind) const {
  size_t n = 0;
  for (const Event& event : events_) n += event.kind == kind;
  return n;
}

void CollectorSink::Clear() {
  events_.clear();
  dropped_ = 0;
}

Result<std::unique_ptr<JsonlSink>> JsonlSink::Open(const std::string& path,
                                                   uint64_t max_bytes) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound(
        common::Format("cannot open %s for writing", path.c_str()));
  }
  return std::unique_ptr<JsonlSink>(new JsonlSink(file, path, max_bytes));
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::OnEvent(const Event& event) {
  const std::string line = ToJson(event);
  // bytes = line + newline, the same accounting the write below performs.
  const uint64_t bytes = static_cast<uint64_t>(line.size()) + 1;
  if (max_bytes_ != 0 && lines_in_file_ > 0 &&
      bytes_in_file_ + bytes > max_bytes_) {
    // Rotate: truncate in place, drop everything written so far, keep
    // streaming.  A reopen failure degrades to counted write errors.
    std::fclose(file_);
    file_ = std::fopen(path_.c_str(), "w");
    ++rotations_;
    dropped_on_rotate_ += lines_in_file_;
    bytes_in_file_ = 0;
    lines_in_file_ = 0;
  }
  if (file_ == nullptr) {
    ++write_errors_;
    ++lines_;
    return;
  }
  // Clear a sticky error from an earlier failed line so this line gets
  // its own chance (and its own error count) instead of failing forever.
  std::clearerr(file_);
  const bool failed = std::fputs(line.c_str(), file_) == EOF ||
                      std::fputc('\n', file_) == EOF;
  if (failed) ++write_errors_;
  ++lines_;
  ++lines_in_file_;
  bytes_in_file_ += bytes;
}

void JsonlSink::Flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    ++write_errors_;
    std::clearerr(file_);
  }
}

}  // namespace twbg::obs
