// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/sinks.h"

#include "common/string_util.h"

namespace twbg::obs {

void CollectorSink::OnEvent(const Event& event) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<Event> CollectorSink::Filter(EventKind kind) const {
  std::vector<Event> out;
  for (const Event& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

size_t CollectorSink::Count(EventKind kind) const {
  size_t n = 0;
  for (const Event& event : events_) n += event.kind == kind;
  return n;
}

void CollectorSink::Clear() {
  events_.clear();
  dropped_ = 0;
}

Result<std::unique_ptr<JsonlSink>> JsonlSink::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound(
        common::Format("cannot open %s for writing", path.c_str()));
  }
  return std::unique_ptr<JsonlSink>(new JsonlSink(file, path));
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::OnEvent(const Event& event) {
  // Clear a sticky error from an earlier failed line so this line gets
  // its own chance (and its own error count) instead of failing forever.
  std::clearerr(file_);
  const bool failed = std::fputs(ToJson(event).c_str(), file_) == EOF ||
                      std::fputc('\n', file_) == EOF;
  if (failed) ++write_errors_;
  ++lines_;
}

void JsonlSink::Flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    ++write_errors_;
    std::clearerr(file_);
  }
}

}  // namespace twbg::obs
