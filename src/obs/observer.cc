// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/observer.h"

#include <cstdio>

#include "common/string_util.h"

namespace twbg::obs {

void LatencyObserver::OnEvent(const Event& event) {
  ++counts_[static_cast<size_t>(event.kind)];
  ++total_;
  switch (event.kind) {
    case EventKind::kWaitEnd:
      wait_time_.AddDouble(event.value);
      break;
    case EventKind::kPassEnd:
      pass_ns_.AddDouble(event.value);
      // Pauseless passes stamp the seal-to-apply lag on span; the
      // stop-the-world engine leaves it zero.
      if (event.span != 0) snapshot_lag_ns_.Add(event.span);
      break;
    case EventKind::kSnapshotPublish:
      publish_ns_.AddDouble(event.value);
      break;
    case EventKind::kStep1:
      step1_ns_.AddDouble(event.value);
      break;
    case EventKind::kStep2:
      step2_ns_.AddDouble(event.value);
      break;
    case EventKind::kLockBlock:
      queue_depth_.Add(event.a);
      break;
    case EventKind::kCycleResolved:
      cycle_len_.Add(event.a);
      break;
    case EventKind::kPeriodRetuned:
      detection_period_.Add(event.b);
      current_period_ = event.b;
      break;
    default:
      break;
  }
}

void LatencyObserver::Reset() { *this = LatencyObserver(); }

std::string LatencyObserver::Report() const {
  std::string out;
  out += common::Format("events: %llu total\n",
                        static_cast<unsigned long long>(total_));
  for (size_t i = 0; i < kNumEventKinds; ++i) {
    if (counts_[i] == 0) continue;
    const std::string name(ToString(static_cast<EventKind>(i)));
    out += common::Format("  %-16s %llu\n", name.c_str(),
                          static_cast<unsigned long long>(counts_[i]));
  }
  struct Row {
    const char* name;
    const LogHistogram* hist;
  };
  const Row rows[] = {
      {"wait_time (ticks)", &wait_time_}, {"pass (ns)", &pass_ns_},
      {"step1 (ns)", &step1_ns_},         {"step2 (ns)", &step2_ns_},
      {"queue_depth", &queue_depth_},     {"cycle_len", &cycle_len_},
      {"publish (ns)", &publish_ns_},
      {"snapshot_lag (ns)", &snapshot_lag_ns_},
      {"detection_period", &detection_period_},
  };
  for (const Row& row : rows) {
    if (row.hist->count() == 0) continue;
    out += common::Format("  %-18s %s\n", row.name,
                          row.hist->Summary().c_str());
  }
  return out;
}

namespace {

// One Prometheus histogram block: HELP/TYPE header, cumulative
// le-buckets, _sum, _count.
void AppendHistogram(std::string* out, const std::string& prefix,
                     const char* name, const char* help,
                     const LogHistogram& hist) {
  const std::string metric = prefix + "_" + name;
  *out += common::Format("# HELP %s %s\n", metric.c_str(), help);
  *out += common::Format("# TYPE %s histogram\n", metric.c_str());
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
    if (hist.buckets()[i] == 0) continue;
    cumulative += hist.buckets()[i];
    *out += common::Format(
        "%s_bucket{le=\"%llu\"} %llu\n", metric.c_str(),
        static_cast<unsigned long long>(LogHistogram::BucketUpperBound(i)),
        static_cast<unsigned long long>(cumulative));
  }
  *out += common::Format("%s_bucket{le=\"+Inf\"} %llu\n", metric.c_str(),
                         static_cast<unsigned long long>(hist.count()));
  *out += common::Format("%s_sum %.0f\n", metric.c_str(), hist.sum());
  *out += common::Format("%s_count %llu\n", metric.c_str(),
                         static_cast<unsigned long long>(hist.count()));
}

}  // namespace

std::string ToPrometheusText(const LatencyObserver& observer,
                             const std::string& prefix) {
  std::string out;
  out += common::Format(
      "# HELP %s_events_total Structured events observed, by kind.\n",
      prefix.c_str());
  out += common::Format("# TYPE %s_events_total counter\n", prefix.c_str());
  for (size_t i = 0; i < kNumEventKinds; ++i) {
    const uint64_t n = observer.Count(static_cast<EventKind>(i));
    if (n == 0) continue;
    const std::string name(ToString(static_cast<EventKind>(i)));
    out += common::Format("%s_events_total{kind=\"%s\"} %llu\n",
                          prefix.c_str(), name.c_str(),
                          static_cast<unsigned long long>(n));
  }
  AppendHistogram(&out, prefix, "wait_time_ticks",
                  "Completed lock waits, in simulator ticks.",
                  observer.wait_time());
  AppendHistogram(&out, prefix, "pass_duration_ns",
                  "Detection-resolution pass duration, nanoseconds.",
                  observer.pass_ns());
  AppendHistogram(&out, prefix, "step1_duration_ns",
                  "Step 1 (graph construction) duration, nanoseconds.",
                  observer.step1_ns());
  AppendHistogram(&out, prefix, "step2_duration_ns",
                  "Step 2 (directed walk) duration, nanoseconds.",
                  observer.step2_ns());
  AppendHistogram(&out, prefix, "queue_depth",
                  "Resource queue depth observed at each lock block.",
                  observer.queue_depth());
  AppendHistogram(&out, prefix, "cycle_length",
                  "Resolved deadlock cycle length, in transactions.",
                  observer.cycle_len());
  AppendHistogram(&out, prefix, "snapshot_publish_ns",
                  "Per-shard epoch-snapshot publish pause, nanoseconds.",
                  observer.publish_ns());
  AppendHistogram(&out, prefix, "snapshot_lag_ns",
                  "Seal-to-apply detection lag per pauseless pass, "
                  "nanoseconds.",
                  observer.snapshot_lag_ns());
  AppendHistogram(&out, prefix, "detection_period",
                  "Detection period applied by each controller retune, "
                  "host time units.",
                  observer.detection_period());
  // Point-in-time gauge for dashboards: the period currently in effect,
  // 0 until the first retune is observed.
  if (observer.current_period() != 0) {
    const std::string metric = prefix + "_detection_period_current";
    out += common::Format(
        "# HELP %s The detection period currently in effect, host time "
        "units.\n",
        metric.c_str());
    out += common::Format("# TYPE %s gauge\n", metric.c_str());
    out += common::Format(
        "%s %llu\n", metric.c_str(),
        static_cast<unsigned long long>(observer.current_period()));
  }
  return out;
}

Status WritePrometheusFile(const LatencyObserver& observer,
                           const std::string& path,
                           const std::string& prefix) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound(
        common::Format("cannot open %s for writing", path.c_str()));
  }
  const std::string text = ToPrometheusText(observer, prefix);
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (written != text.size()) {
    return Status::Internal(
        common::Format("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace twbg::obs
