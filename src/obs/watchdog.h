// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Starvation / convoy watchdog: a sink that tracks the open wait spans it
// observes on the bus and raises synthetic events when a wait grows
// suspiciously old (starvation), a transaction keeps getting victimized
// (starvation by repeated restarts), or one resource accumulates many
// concurrently blocked spans (a convoy).  The periodic detector only
// answers "is anyone deadlocked?" — the watchdog answers "who is losing?"
// while the detector sleeps between passes.
//
// Alerts are emitted back onto the configured bus as kStarvation /
// kConvoy events (the EventBus defers nested emission, so ordering stays
// consistent for every sink) and counted on the watchdog itself for
// bus-less consumers.

#ifndef TWBG_OBS_WATCHDOG_H_
#define TWBG_OBS_WATCHDOG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "obs/bus.h"

namespace twbg::obs {

/// Watchdog thresholds; the defaults suit simulator-tick time scales.
struct WatchdogOptions {
  /// A wait span older than this many logical time units is starving.
  /// Each span is flagged once.
  uint64_t starvation_age = 256;
  /// A transaction restarted at least this many times (kTxnRestart's `a`)
  /// is starving by repeated victimization.  Flagged on every restart at
  /// or above the threshold (each restart is a fresh execution id).
  uint64_t starvation_restarts = 8;
  /// A resource with at least this many concurrently blocked wait spans
  /// is convoy-suspect.
  size_t convoy_depth = 8;
  /// At most this many convoy-suspect resources are flagged per check,
  /// hottest first.
  size_t convoy_top_k = 3;
  /// Age/convoy checks run when the bus's logical time has advanced by at
  /// least this much since the last check (1 = every tick with events).
  uint64_t check_interval = 16;
};

/// Bus observer that flags starvation and convoys as synthetic events.
class Watchdog : public EventSink {
 public:
  /// Alerts are emitted onto `bus` (may be null: counters only).  The
  /// watchdog must also be *subscribed* to a bus — usually the same one —
  /// by the caller.
  explicit Watchdog(EventBus* bus, WatchdogOptions options = {})
      : bus_(bus), options_(options) {}

  /// Updates span/convoy bookkeeping and runs the threshold checks when
  /// the logical clock has advanced past the check interval.
  void OnEvent(const Event& event) override;

  /// Starvation alerts raised so far (span age + repeated victimization).
  uint64_t starvation_alerts() const { return starvation_alerts_; }

  /// Convoy alerts raised so far.
  uint64_t convoy_alerts() const { return convoy_alerts_; }

  /// Wait spans currently open (blocked transactions being tracked).
  size_t open_spans() const { return spans_.size(); }

  /// The watchdog's view of the configured thresholds.
  const WatchdogOptions& options() const { return options_; }

 private:
  // One open wait span.
  struct OpenSpan {
    lock::TransactionId tid = 0;
    lock::ResourceId rid = 0;
    uint64_t started = 0;  // logical time of the block
    bool flagged = false;  // starvation already raised for this span
  };

  // Closes the span (if any) currently open for `tid`.
  void CloseSpanOf(lock::TransactionId tid);

  // Runs the age and convoy checks against logical time `now`.
  void Check(uint64_t now);

  // Emits `event` onto bus_ (if any) and bumps the matching counter.
  void Raise(Event event);

  EventBus* bus_;
  WatchdogOptions options_;
  std::map<uint64_t, OpenSpan> spans_;           // span id -> state
  std::map<lock::TransactionId, uint64_t> open_; // tid -> its open span id
  std::map<lock::ResourceId, size_t> blocked_;   // rid -> open span count
  // Last convoy count alerted per resource — re-alert only on growth.
  std::map<lock::ResourceId, size_t> convoy_alerted_;
  uint64_t last_check_ = 0;
  uint64_t starvation_alerts_ = 0;
  uint64_t convoy_alerts_ = 0;
};

}  // namespace twbg::obs

#endif  // TWBG_OBS_WATCHDOG_H_
