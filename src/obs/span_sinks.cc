// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/span_sinks.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <map>
#include <tuple>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/event.h"
#include "obs/json_util.h"

namespace twbg::obs {

std::vector<Span> SpanCollectorSink::Filter(SpanKind kind) const {
  std::vector<Span> out;
  for (const Span& span : spans_) {
    if (span.kind == kind) out.push_back(span);
  }
  return out;
}

size_t SpanCollectorSink::Count(SpanKind kind) const {
  size_t n = 0;
  for (const Span& span : spans_) n += span.kind == kind;
  return n;
}

std::string SpanToJson(const Span& span) {
  std::string out = common::Format(
      "{\"schema_version\":%d,\"id\":%llu,\"parent\":%llu,\"kind\":\"%s\","
      "\"tid\":%llu,\"rid\":%llu,\"mode\":\"%s\",\"track\":%u,"
      "\"corr\":%llu,\"open_ns\":%llu,\"close_ns\":%llu,\"a\":%llu,"
      "\"b\":%llu,\"aborted\":%d",
      kJsonSpanSchemaVersion, static_cast<unsigned long long>(span.id),
      static_cast<unsigned long long>(span.parent),
      std::string(ToString(span.kind)).c_str(),
      static_cast<unsigned long long>(span.tid),
      static_cast<unsigned long long>(span.rid),
      std::string(LockModeName(span.mode)).c_str(), span.track,
      static_cast<unsigned long long>(span.corr),
      static_cast<unsigned long long>(span.open_ns),
      static_cast<unsigned long long>(span.close_ns),
      static_cast<unsigned long long>(span.a),
      static_cast<unsigned long long>(span.b), span.aborted ? 1 : 0);
  if (!span.label.empty()) {
    out += common::Format(",\"label\":\"%s\"", JsonEscape(span.label).c_str());
  }
  out += "}";
  return out;
}

Result<Span> ParseSpanLine(std::string_view line) {
  jsonutil::Cursor cur{line};
  cur.SkipSpace();
  if (!cur.Consume('{')) {
    return Status::InvalidArgument("line is not a JSON object");
  }
  Span span;
  bool saw_version = false;
  std::string key, text;
  bool first = true;
  while (true) {
    cur.SkipSpace();
    if (cur.Consume('}')) break;
    if (!first && !cur.Consume(',')) {
      return Status::InvalidArgument("expected ',' between members");
    }
    first = false;
    cur.SkipSpace();
    TWBG_RETURN_IF_ERROR(jsonutil::ParseString(&cur, &key));
    cur.SkipSpace();
    if (!cur.Consume(':')) {
      return Status::InvalidArgument("expected ':' after member name");
    }
    cur.SkipSpace();
    if (!cur.AtEnd() && cur.Peek() == '"') {
      TWBG_RETURN_IF_ERROR(jsonutil::ParseString(&cur, &text));
      if (key == "kind") {
        const std::optional<SpanKind> kind = SpanKindFromName(text);
        if (!kind) {
          return Status::InvalidArgument(
              common::Format("unknown span kind \"%s\"", text.c_str()));
        }
        span.kind = *kind;
      } else if (key == "mode") {
        const std::optional<lock::LockMode> mode = LockModeFromName(text);
        if (!mode) {
          return Status::InvalidArgument(
              common::Format("unknown lock mode \"%s\"", text.c_str()));
        }
        span.mode = *mode;
      } else if (key == "label") {
        span.label = text;
      }
      // Unknown string members are ignored (same-version additions).
    } else {
      TWBG_RETURN_IF_ERROR(jsonutil::ParseNumber(&cur, &text));
      const uint64_t n = std::strtoull(text.c_str(), nullptr, 10);
      if (key == "schema_version") {
        saw_version = true;
        if (n != static_cast<uint64_t>(kJsonSpanSchemaVersion)) {
          return Status::InvalidArgument(common::Format(
              "span schema_version %llu, this reader understands %d",
              static_cast<unsigned long long>(n), kJsonSpanSchemaVersion));
        }
      } else if (key == "id") {
        span.id = n;
      } else if (key == "parent") {
        span.parent = n;
      } else if (key == "tid") {
        span.tid = static_cast<lock::TransactionId>(n);
      } else if (key == "rid") {
        span.rid = static_cast<lock::ResourceId>(n);
      } else if (key == "track") {
        span.track = static_cast<uint32_t>(n);
      } else if (key == "corr") {
        span.corr = n;
      } else if (key == "open_ns") {
        span.open_ns = n;
      } else if (key == "close_ns") {
        span.close_ns = n;
      } else if (key == "a") {
        span.a = n;
      } else if (key == "b") {
        span.b = n;
      } else if (key == "aborted") {
        span.aborted = n != 0;
      }
      // Unknown numeric members are ignored.
    }
  }
  cur.SkipSpace();
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  if (!saw_version) {
    return Status::InvalidArgument("missing schema_version (not a span file?)");
  }
  return span;
}

Result<std::vector<Span>> ReadSpanFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound(common::Format("cannot open %s", path.c_str()));
  }
  std::vector<Span> spans;
  std::string line;
  size_t line_no = 0;
  int c;
  while (true) {
    line.clear();
    while ((c = std::fgetc(file)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (line.empty() && c == EOF) break;
    ++line_no;
    if (!line.empty()) {
      Result<Span> span = ParseSpanLine(line);
      if (!span.ok()) {
        std::fclose(file);
        return Status::InvalidArgument(
            common::Format("%s:%zu: %s", path.c_str(), line_no,
                           std::string(span.status().message()).c_str()));
      }
      spans.push_back(std::move(span).value());
    }
    if (c == EOF) break;
  }
  std::fclose(file);
  return spans;
}

Result<std::unique_ptr<SpanJsonlSink>> SpanJsonlSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound(
        common::Format("cannot open %s for writing", path.c_str()));
  }
  return std::unique_ptr<SpanJsonlSink>(new SpanJsonlSink(file, path));
}

SpanJsonlSink::~SpanJsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void SpanJsonlSink::OnSpan(const Span& span) {
  std::clearerr(file_);
  const bool failed = std::fputs(SpanToJson(span).c_str(), file_) == EOF ||
                      std::fputc('\n', file_) == EOF;
  if (failed) ++write_errors_;
  ++lines_;
}

void SpanJsonlSink::Flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    ++write_errors_;
    std::clearerr(file_);
  }
}

namespace {

// Perfetto lane (the trace-event "tid") of a span.  Lane 1 is the
// detector thread; shards get 100 + index; transactions 1000 + tid.
uint64_t PerfettoLane(const Span& span) {
  switch (span.kind) {
    case SpanKind::kTxn:
    case SpanKind::kWait:
      return 1000 + static_cast<uint64_t>(span.tid);
    case SpanKind::kPublish:
      return 100 + static_cast<uint64_t>(span.track);
    default:
      return 1;
  }
}

// Human name of a lane, for the thread_name metadata event.
std::string LaneName(uint64_t lane) {
  if (lane == 1) return "detector";
  if (lane >= 1000) {
    return common::Format("T%llu",
                          static_cast<unsigned long long>(lane - 1000));
  }
  return common::Format("shard %llu",
                        static_cast<unsigned long long>(lane - 100));
}

// Display name of one span's slice.
std::string SliceName(const Span& span) {
  switch (span.kind) {
    case SpanKind::kTxn:
      return span.label.empty()
                 ? common::Format(
                       "txn T%llu", static_cast<unsigned long long>(span.tid))
                 : common::Format("txn T%llu [%s]",
                                  static_cast<unsigned long long>(span.tid),
                                  span.label.c_str());
    case SpanKind::kWait:
      return common::Format("wait R%llu/%s",
                            static_cast<unsigned long long>(span.rid),
                            std::string(LockModeName(span.mode)).c_str());
    case SpanKind::kPublish:
      return common::Format("publish shard %u", span.track);
    case SpanKind::kResolution:
      return span.rid == 0
                 ? common::Format("resolve T%llu",
                                  static_cast<unsigned long long>(span.tid))
                 : common::Format("resolve T%llu R%llu",
                                  static_cast<unsigned long long>(span.tid),
                                  static_cast<unsigned long long>(span.rid));
    default:
      return std::string(ToString(span.kind));
  }
}

}  // namespace

std::string ExportPerfettoJson(const std::vector<Span>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"twbg\"}}";
  // One thread_name metadata event per lane, in lane order so the
  // timeline lists the detector first, then shards, then transactions.
  std::map<uint64_t, std::string> lanes;
  for (const Span& span : spans) {
    const uint64_t lane = PerfettoLane(span);
    lanes.emplace(lane, LaneName(lane));
  }
  for (const auto& [lane, name] : lanes) {
    out += common::Format(
        ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%llu,"
        "\"args\":{\"name\":\"%s\"}}",
        static_cast<unsigned long long>(lane), JsonEscape(name).c_str());
  }
  for (const Span& span : spans) {
    std::string args = common::Format(
        "{\"id\":%llu,\"parent\":%llu,\"corr\":%llu,\"a\":%llu,\"b\":%llu,"
        "\"aborted\":%d",
        static_cast<unsigned long long>(span.id),
        static_cast<unsigned long long>(span.parent),
        static_cast<unsigned long long>(span.corr),
        static_cast<unsigned long long>(span.a),
        static_cast<unsigned long long>(span.b), span.aborted ? 1 : 0);
    if (!span.label.empty()) {
      args +=
          common::Format(",\"label\":\"%s\"", JsonEscape(span.label).c_str());
    }
    args += "}";
    out += common::Format(
        ",\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%llu,\"args\":%s}",
        JsonEscape(SliceName(span)).c_str(),
        static_cast<double>(span.open_ns) / 1000.0,
        static_cast<double>(span.duration()) / 1000.0,
        static_cast<unsigned long long>(PerfettoLane(span)), args.c_str());
  }
  out += "\n]}\n";
  return out;
}

BlockedProfile BuildBlockedProfile(const std::vector<Span>& spans) {
  // Pass 1: txn-span id -> class label, so waits resolve their third
  // profile frame regardless of close order.
  std::unordered_map<uint64_t, std::string> txn_class;
  for (const Span& span : spans) {
    if (span.kind == SpanKind::kTxn && !span.label.empty()) {
      txn_class[span.id] = span.label;
    }
  }
  // Pass 2: fold closed waits into (resource, mode, class) buckets.
  std::map<std::tuple<lock::ResourceId, lock::LockMode, std::string>,
           BlockedProfile::Row>
      buckets;
  BlockedProfile profile;
  for (const Span& span : spans) {
    if (span.kind != SpanKind::kWait) continue;
    auto labelled = txn_class.find(span.parent);
    std::string cls = labelled == txn_class.end() ? std::string("unclassified")
                                                  : labelled->second;
    BlockedProfile::Row& row =
        buckets[std::make_tuple(span.rid, span.mode, cls)];
    if (row.waits == 0) {
      row.rid = span.rid;
      row.mode = span.mode;
      row.txn_class = std::move(cls);
    }
    const uint64_t duration = span.duration();
    ++row.waits;
    row.total_ns += duration;
    row.max_ns = std::max(row.max_ns, duration);
    row.aborted += span.aborted ? 1 : 0;
    profile.total_blocked_ns += duration;
    ++profile.total_waits;
  }
  profile.rows.reserve(buckets.size());
  for (auto& [key, row] : buckets) profile.rows.push_back(std::move(row));
  std::sort(profile.rows.begin(), profile.rows.end(),
            [](const BlockedProfile::Row& a, const BlockedProfile::Row& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              if (a.rid != b.rid) return a.rid < b.rid;
              if (a.mode != b.mode) return a.mode < b.mode;
              return a.txn_class < b.txn_class;
            });
  return profile;
}

std::string FoldedStacks(const BlockedProfile& profile) {
  std::string out;
  for (const BlockedProfile::Row& row : profile.rows) {
    out += common::Format("R%llu;%s;%s %llu\n",
                          static_cast<unsigned long long>(row.rid),
                          std::string(LockModeName(row.mode)).c_str(),
                          row.txn_class.c_str(),
                          static_cast<unsigned long long>(row.total_ns));
  }
  return out;
}

std::string ProfileTable(const BlockedProfile& profile) {
  std::string out = common::Format(
      "%-10s %-5s %-14s %8s %14s %14s %8s\n", "resource", "mode", "class",
      "waits", "total_ns", "max_ns", "aborted");
  for (const BlockedProfile::Row& row : profile.rows) {
    out += common::Format(
        "R%-9llu %-5s %-14s %8llu %14llu %14llu %8llu\n",
        static_cast<unsigned long long>(row.rid),
        std::string(LockModeName(row.mode)).c_str(), row.txn_class.c_str(),
        static_cast<unsigned long long>(row.waits),
        static_cast<unsigned long long>(row.total_ns),
        static_cast<unsigned long long>(row.max_ns),
        static_cast<unsigned long long>(row.aborted));
  }
  out += common::Format(
      "total: %llu wait(s), %llu ns blocked\n",
      static_cast<unsigned long long>(profile.total_waits),
      static_cast<unsigned long long>(profile.total_blocked_ns));
  return out;
}

void SpanEstimator::OnSpan(const Span& span) {
  if (!started_) {
    // No Reset(): anchor the first window at the first span's open so
    // avg_blocked() has a meaningful denominator.
    started_ = true;
    window_start_ = span.open_ns;
  }
  switch (span.kind) {
    case SpanKind::kPass:
      ++pending_.passes;
      pending_.pass_ns += span.duration();
      pending_.cycles += span.a;
      pending_.pass_cost += span.b;
      break;
    case SpanKind::kResolution:
      ++pending_.resolutions;
      break;
    case SpanKind::kWait:
      ++pending_.waits_closed;
      pending_.blocked_ns += span.duration();
      break;
    default:
      break;
  }
}

SpanSampleStats SpanEstimator::Take(uint64_t now_ns) {
  SpanSampleStats stats = pending_;
  stats.window_ns = now_ns > window_start_ ? now_ns - window_start_ : 0;
  pending_ = SpanSampleStats{};
  window_start_ = now_ns;
  started_ = true;
  return stats;
}

void SpanEstimator::Reset(uint64_t now_ns) {
  pending_ = SpanSampleStats{};
  window_start_ = now_ns;
  started_ = true;
}

}  // namespace twbg::obs
