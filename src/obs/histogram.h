// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Log-bucketed (power-of-two) latency histogram.  Unlike sim::SampleStats
// (which stores every sample and sorts for exact percentiles), this keeps
// a fixed 65-counter array, so it is O(1) per sample, O(1) memory, safely
// mergeable, and suitable for unbounded production streams — the standard
// HdrHistogram-style trade: percentiles are bucket-interpolated estimates
// with a worst-case relative error of one bucket width (2x).

#ifndef TWBG_OBS_HISTOGRAM_H_
#define TWBG_OBS_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace twbg::obs {

/// Fixed-size power-of-two histogram over uint64 samples.
///
/// Bucket layout: bucket 0 holds exactly the value 0; bucket i (1..64)
/// holds [2^(i-1), 2^i).  Every uint64 value maps to exactly one bucket
/// (UINT64_MAX lands in bucket 64), so Add can never overflow the bucket
/// index.
class LogHistogram {
 public:
  /// Bucket 0 plus one bucket per bit position of a 64-bit value.
  static constexpr size_t kNumBuckets = 65;

  /// Index of the bucket holding `value`: 0 for 0, else bit_width(value).
  static size_t BucketIndex(uint64_t value);

  /// Inclusive lower bound of bucket `index` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t index);

  /// Exclusive upper bound of bucket `index`; UINT64_MAX for the last
  /// bucket (whose true bound, 2^64, is not representable).
  static uint64_t BucketUpperBound(size_t index);

  /// Records one sample.
  void Add(uint64_t value);

  /// Records a nonnegative floating-point sample (rounded to the nearest
  /// integer; negative inputs clamp to 0) — convenience for nanosecond
  /// durations carried as doubles.
  void AddDouble(double value);

  /// Samples recorded.
  uint64_t count() const { return count_; }

  /// Smallest / largest recorded sample (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// Sum of samples, kept in double to stay finite under extreme inputs.
  double sum() const { return sum_; }

  /// Exact mean of the recorded samples (0 when empty).
  double mean() const;

  /// Estimated p-th percentile, p in [0, 100]: finds the bucket holding
  /// the rank and interpolates linearly inside it, clamped to the
  /// observed min/max.  Empty histograms report 0.
  double Percentile(double p) const;

  /// Raw bucket counters.
  const std::array<uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

  /// Adds every bucket/aggregate of `other` into this histogram.
  void Merge(const LogHistogram& other);

  /// Resets to the empty state.
  void Reset();

  /// "n=.. mean=.. p50~.. p95~.. p99~.. max=.." (or "n=0").
  std::string Summary() const;

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace twbg::obs

#endif  // TWBG_OBS_HISTOGRAM_H_
