// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Typed structured events for the cross-layer observability bus.  Every
// layer of the system — the lock manager, the detection engine, the
// periodic/continuous detectors, the transaction manager, the simulator —
// publishes its state changes as Event records; sinks (docs/OBSERVABILITY.md)
// turn the stream into traces, latency histograms, JSONL logs or
// Prometheus-style metric files.
//
// Layering: obs sits between common and lock.  It may include the
// header-only identifier types of lock/types.h but must not call into the
// lock library (the lock library links *us*), which is why mode names are
// rendered by a local table instead of lock::ToString.

#ifndef TWBG_OBS_EVENT_H_
#define TWBG_OBS_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "lock/types.h"

namespace twbg::obs {

/// Every event kind emitted by the system, grouped by layer.  The payload
/// convention for each kind (which of tid/rid/mode/a/b/value is meaningful)
/// is documented per enumerator; unused fields are zero.
enum class EventKind : uint8_t {
  // -- transaction layer (txn::TransactionManager, sim::Simulator) --
  /// A transaction started.  `tid`; `a` = 0.
  kTxnBegin = 0,
  /// An aborted transaction's re-execution started (driver-level).
  /// `tid` (fresh execution id); `a` = restart count so far.
  kTxnRestart,
  /// A transaction committed.  `tid`.
  kTxnCommit,
  /// A transaction aborted.  `tid`; `a` = 1 when it was a deadlock victim,
  /// 0 for a voluntary abort.
  kTxnAbort,

  // -- lock layer (lock::LockManager) --
  /// A lock request was granted immediately.  `tid`, `rid`, `mode`;
  /// `a` = 1 when the mode was already covered by the held lock.
  kLockGrant,
  /// A fresh lock request blocked.  `tid`, `rid`, `mode`;
  /// `a` = queue depth of the resource after enqueueing.
  kLockBlock,
  /// A lock conversion was requested by a holder.  `tid`, `rid`,
  /// `mode` (the requested mode); `a` = 1 granted, 0 blocked.
  kLockConvert,
  /// A transaction released everything (commit/abort path).  `tid`;
  /// `a` = resources it appeared on; `b` = waiters granted by the release.
  kLockRelease,
  /// A blocked request or conversion became granted.  `tid` (the waiter),
  /// `rid` (where it was waiting).
  kLockWakeup,
  /// A completed lock wait, measured by the driver.  `tid`;
  /// `value` = wait duration in simulator ticks.
  kWaitEnd,
  /// TDR-2 queue repositioning was applied to a resource (the no-abort
  /// resolution).  `tid` = the junction transaction, `rid` = the resource.
  kUprReposition,

  // -- detection layer (core::PeriodicDetector, core::ContinuousDetector,
  //    core::RunWalk, sim::Simulator strategy invocations) --
  /// A detection-resolution pass began.  `tid` = the freshly blocked root
  /// (0 for a periodic pass); `a` = 1 periodic, 0 continuous.
  kPassStart,
  /// Step 1 (graph construction) finished.  `tid` as in kPassStart;
  /// `a` = cache misses (dirty resources), `b` = cache hits (resources
  /// served from the PR-1 incremental edge cache); both 0 for a
  /// from-scratch build; `value` = build time in nanoseconds.
  kStep1,
  /// Step 2 (the directed walk, resolutions applied on the spot)
  /// finished.  `a` = cycles detected, `b` = walk steps;
  /// `value` = walk time in nanoseconds.
  kStep2,
  /// The pass finished (after Step 3 reconciliation).  `a` = cycles
  /// detected, `b` = transactions aborted; `value` = total pass time in
  /// nanoseconds.
  kPassEnd,
  /// One detected cycle was resolved in-walk.  `tid` = the junction acted
  /// at, `rid` = the repositioned resource (TDR-2 only, else 0);
  /// `a` = cycle length in vertices, `b` = 1 for TDR-2 repositioning /
  /// 0 for TDR-1 abort; `value` = the chosen candidate's cost.
  kCycleResolved,
  /// The driver's stall recovery broke a deadlock the strategy missed.
  /// `tid` = the force-aborted victim.
  kDetectorMiss,
};

/// Number of EventKind enumerators (array-sizing constant).
inline constexpr size_t kNumEventKinds =
    static_cast<size_t>(EventKind::kDetectorMiss) + 1;

/// Canonical snake_case name of `kind` ("lock_grant", "pass_end", ...).
std::string_view ToString(EventKind kind);

/// One structured event.  Fixed-size POD so emission is a struct copy;
/// fields not meaningful for the kind (see EventKind) are zero.
struct Event {
  /// Global emission order, assigned by the bus (1-based, 0 = unstamped).
  uint64_t seq = 0;
  /// Logical timestamp: the bus's current time (EventBus::set_time) at
  /// emission — simulator ticks in sim runs, caller-defined elsewhere.
  uint64_t time = 0;
  /// What happened.
  EventKind kind = EventKind::kTxnBegin;
  /// Subject transaction (0 when not applicable).
  lock::TransactionId tid = 0;
  /// Subject resource (0 when not applicable).
  lock::ResourceId rid = 0;
  /// Lock mode involved (kNL when not applicable).
  lock::LockMode mode = lock::LockMode::kNL;
  /// Kind-specific counters — see the EventKind documentation.
  uint64_t a = 0;
  uint64_t b = 0;
  /// Kind-specific measurement (durations in ns, waits in ticks, costs).
  double value = 0.0;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Renders `event` as one JSON object (no trailing newline), the format
/// of the JSONL exporter: {"seq":..,"time":..,"kind":"..",...}.  Fields
/// that are zero for the kind are still emitted so every line has an
/// identical schema.
std::string ToJson(const Event& event);

}  // namespace twbg::obs

#endif  // TWBG_OBS_EVENT_H_
