// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Typed structured events for the cross-layer observability bus.  Every
// layer of the system — the lock manager, the detection engine, the
// periodic/continuous detectors, the transaction manager, the simulator —
// publishes its state changes as Event records; sinks (docs/OBSERVABILITY.md)
// turn the stream into traces, latency histograms, JSONL logs or
// Prometheus-style metric files.
//
// Layering: obs sits between common and lock.  It may include the
// header-only identifier types of lock/types.h but must not call into the
// lock library (the lock library links *us*), which is why mode names are
// rendered by a local table instead of lock::ToString.

#ifndef TWBG_OBS_EVENT_H_
#define TWBG_OBS_EVENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "lock/types.h"

namespace twbg::obs {

/// Every event kind emitted by the system, grouped by layer.  The payload
/// convention for each kind (which of tid/rid/mode/a/b/value is meaningful)
/// is documented per enumerator; unused fields are zero.
enum class EventKind : uint8_t {
  // -- transaction layer (txn::TransactionManager, sim::Simulator) --
  /// A transaction started.  `tid`; `a` = 0.
  kTxnBegin = 0,
  /// An aborted transaction's re-execution started (driver-level).
  /// `tid` (fresh execution id); `a` = restart count so far.
  kTxnRestart,
  /// A transaction committed.  `tid`.
  kTxnCommit,
  /// A transaction aborted.  `tid`; `a` = 1 when it was a deadlock victim,
  /// 0 for a voluntary abort.
  kTxnAbort,

  // -- lock layer (lock::LockManager) --
  /// A lock request was granted immediately.  `tid`, `rid`, `mode`;
  /// `a` = 1 when the mode was already covered by the held lock.
  kLockGrant,
  /// A fresh lock request blocked.  `tid`, `rid`, `mode`;
  /// `a` = queue depth of the resource after enqueueing.
  kLockBlock,
  /// A lock conversion was requested by a holder.  `tid`, `rid`,
  /// `mode` (the requested mode); `a` = 1 granted, 0 blocked.
  kLockConvert,
  /// A transaction released everything (commit/abort path).  `tid`;
  /// `a` = resources it appeared on; `b` = waiters granted by the release.
  kLockRelease,
  /// A blocked request or conversion became granted.  `tid` (the waiter),
  /// `rid` (where it was waiting).
  kLockWakeup,
  /// A completed lock wait, measured by the driver.  `tid`;
  /// `value` = wait duration in simulator ticks.
  kWaitEnd,
  /// TDR-2 queue repositioning was applied to a resource (the no-abort
  /// resolution).  `tid` = the junction transaction, `rid` = the resource.
  kUprReposition,

  // -- detection layer (core::PeriodicDetector, core::ContinuousDetector,
  //    core::RunWalk, sim::Simulator strategy invocations) --
  /// A detection-resolution pass began.  `tid` = the freshly blocked root
  /// (0 for a periodic pass); `a` = 1 periodic, 0 continuous.
  kPassStart,
  /// Step 1 (graph construction) finished.  `tid` as in kPassStart;
  /// `a` = cache misses (dirty resources), `b` = cache hits (resources
  /// served from the PR-1 incremental edge cache); both 0 for a
  /// from-scratch build; `value` = build time in nanoseconds.
  kStep1,
  /// Step 2 (the directed walk, resolutions applied on the spot)
  /// finished.  `a` = cycles detected, `b` = walk steps;
  /// `value` = walk time in nanoseconds.
  kStep2,
  /// The pass finished (after Step 3 reconciliation).  `a` = cycles
  /// detected, `b` = transactions aborted; `value` = total pass time in
  /// nanoseconds.
  kPassEnd,
  /// One detected cycle was resolved in-walk.  `tid` = the junction acted
  /// at, `rid` = the repositioned resource (TDR-2 only, else 0);
  /// `a` = cycle length in vertices, `b` = 1 for TDR-2 repositioning /
  /// 0 for TDR-1 abort; `value` = the chosen candidate's cost.
  kCycleResolved,
  /// The driver's stall recovery broke a deadlock the strategy missed.
  /// `tid` = the force-aborted victim.
  kDetectorMiss,

  // -- forensics layer (core detection engine, obs::Watchdog) --
  /// Post-mortem of one resolved cycle, emitted right after its
  /// kCycleResolved.  `tid` = the junction acted at, `rid` = the
  /// repositioned resource (TDR-2 only, else 0); `a` = cycle length,
  /// `b` = 1 TDR-2 / 0 TDR-1; `value` = the chosen candidate's cost;
  /// `detail` = the compact CyclePostMortem rendering (wait chain,
  /// member spans and queue ages, candidate rationale, queue snapshots).
  kCyclePostMortem,
  /// Watchdog: a transaction is starving.  `tid`, `rid` = the resource it
  /// waits on (0 when flagged for repeated victimization); `span` = its
  /// wait span (0 likewise); `a` = wait-span age in ticks or restart
  /// count; `b` = 1 for span-age starvation, 2 for repeated
  /// victimization; `value` = `a` as a double.
  kStarvation,
  /// Watchdog: a resource looks convoyed.  `rid`; `a` = concurrently
  /// blocked wait spans on the resource; `b` = 1-based rank among the
  /// flagged hot resources this check; `value` = `a` as a double.
  kConvoy,

  // -- concurrency layer (txn::ConcurrentLockService) --
  /// Per-shard contention counters, published once per detection pass by
  /// the sharded service.  `rid` = the shard index (not a resource);
  /// `a` = cumulative contended mutex acquisitions (lock attempts that
  /// found the shard mutex held), `b` = cumulative operations routed to
  /// the shard; `value` = cumulative shard-mutex hold time in
  /// nanoseconds.
  kShardContention,

  // -- robustness layer (txn/robustness: deadlines, admission control,
  //    graceful degradation, fault injection) --
  /// A lock-wait deadline expired and the wait was cancelled (the waiter
  /// left the resource queue with invariants restored).  `tid` = the
  /// expired waiter, `rid` = the resource it waited on, `mode` = the
  /// blocked mode, `span` = the cancelled wait span; `a` = the
  /// transaction's cumulative deadline expiries, `b` = 1 when the expiry
  /// escalated to an abort (abort-after-N or txn budget).
  kDeadlineExpired,
  /// Admission control shed a request with kResourceExhausted.  `tid`;
  /// `rid` = the target resource (0 for a rejected Begin); `a` = observed
  /// load (in-flight txns for Begin, queue depth for Acquire), `b` = the
  /// configured limit.
  kAdmissionReject,
  /// The periodic engine entered (or extended) degraded operation because
  /// a pass blew its pause budget.  `a` = remaining degraded passes,
  /// `b` = the pass's pause in microseconds; `value` = the budget in
  /// microseconds.
  kDegraded,
  /// A planned fault fired.  `tid` / `rid` = targets when applicable
  /// (`rid` carries the shard index for stall faults); `a` = the
  /// FaultKind as an integer, `b` = the schedule address (tick or op
  /// index); `value` = the fault duration; `detail` = Fault::ToString().
  kFaultInjected,

  // -- pauseless periodic detection (txn::ConcurrentLockService epoch
  //    snapshots; see docs/DESIGN.md "Epoch snapshots") --
  /// One shard published its incremental delta into the detector's epoch
  /// snapshot (the only moment the pauseless pass holds that shard's
  /// mutex).  `rid` = the shard index (not a resource); `a` = dirty
  /// resources captured, `b` = 1 when the mutation journal could not
  /// answer and the capture fell back to a full version-compare sweep;
  /// `span` = the snapshot epoch being built; `value` = the shard's
  /// publish pause in nanoseconds.
  kSnapshotPublish,
  /// A resolution command derived from the sealed epoch failed its
  /// version-stamp validation at apply time (the lock state moved between
  /// seal and apply) and was dropped, to be re-derived next pass.  Same
  /// payload shape as the kCycleResolved it replaces: `tid` = the chosen
  /// junction, `rid` = the repositioned resource (TDR-2 only, else 0);
  /// `a` = cycle length, `b` = 1 TDR-2 / 0 TDR-1; `value` = the chosen
  /// candidate's cost.
  kResolutionRejected,

  // -- scheduling layer (sched::PeriodController; see docs/TUNING.md) --
  /// The closed-loop period controller retuned the detection period.
  /// `a` = the previous period, `b` = the new period (host time units —
  /// simulator ticks or service microseconds); `value` = the EWMA
  /// deadlock-formation-rate estimate behind the move, in deadlocks per
  /// host time unit.
  kPeriodRetuned,
};

/// Number of EventKind enumerators (array-sizing constant).
inline constexpr size_t kNumEventKinds =
    static_cast<size_t>(EventKind::kPeriodRetuned) + 1;

/// Canonical snake_case name of `kind` ("lock_grant", "pass_end", ...).
std::string_view ToString(EventKind kind);

/// Inverse of ToString(EventKind): the kind named `name`, or nullopt for
/// an unknown name.  Used by the offline trace reader.
std::optional<EventKind> EventKindFromName(std::string_view name);

/// Lock-mode name as emitted in events ("NL", "IS", ... — obs's local
/// table; see the layering note above for why lock::ToString is not used).
std::string_view LockModeName(lock::LockMode mode);

/// Inverse of LockModeName, or nullopt for an unknown name.  Used by the
/// offline trace reader.
std::optional<lock::LockMode> LockModeFromName(std::string_view name);

/// One structured event.  Fixed-size except for `detail` (empty for all
/// hot-path kinds, so emission is still effectively a struct copy);
/// fields not meaningful for the kind (see EventKind) are zero.
struct Event {
  /// Global emission order, assigned by the bus (1-based, 0 = unstamped).
  uint64_t seq = 0;
  /// Logical timestamp: the bus's current time (EventBus::set_time) at
  /// emission — simulator ticks in sim runs, caller-defined elsewhere.
  uint64_t time = 0;
  /// What happened.
  EventKind kind = EventKind::kTxnBegin;
  /// Subject transaction (0 when not applicable).
  lock::TransactionId tid = 0;
  /// Subject resource (0 when not applicable).
  lock::ResourceId rid = 0;
  /// Lock mode involved (kNL when not applicable).
  lock::LockMode mode = lock::LockMode::kNL;
  /// Kind-specific counters — see the EventKind documentation.
  uint64_t a = 0;
  uint64_t b = 0;
  /// Wait-span correlation id: every block (fresh request or blocked
  /// conversion) opens a span; the matching wakeup and wait-end carry the
  /// same id, so block -> wakeup -> wait-end causality survives
  /// interleaving.  0 for kinds with no associated wait.
  uint64_t span = 0;
  /// Kind-specific measurement (durations in ns, waits in ticks, costs).
  double value = 0.0;
  /// Kind-specific string payload (post-mortem renderings); empty — and
  /// allocation-free — for every hot-path kind.
  std::string detail;

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Version stamped as "schema_version" on every JSONL line.  Bump when a
/// field is added/renamed/retyped; offline readers (obs::ReadTraceFile,
/// tools/twbg-trace) reject lines with any other version.  Version 1 was
/// the unstamped pre-forensics schema (no span/detail fields).
inline constexpr int kJsonSchemaVersion = 2;

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes and control characters (as \uXXXX or the short forms).
std::string JsonEscape(std::string_view text);

/// Renders `event` as one JSON object (no trailing newline), the format
/// of the JSONL exporter: {"seq":..,"schema_version":..,"time":..,
/// "kind":"..",...}.  Fields that are zero for the kind are still emitted
/// so every line has an identical schema.
std::string ToJson(const Event& event);

}  // namespace twbg::obs

#endif  // TWBG_OBS_EVENT_H_
