// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Span sinks and offline span tooling: an in-memory collector, a JSONL
// stream writer + reader (the span analogue of obs/sinks.h +
// obs/trace_reader.h), the Chrome/Perfetto trace-event exporter and the
// blocked-time profiler behind `twbg-trace export-perfetto` / `profile`,
// and the SpanEstimator that turns closed spans into measured
// scheduler inputs (lambda / C / blocked population) for
// sched::PeriodController hosts.  See docs/OBSERVABILITY.md ("Causal
// spans") for the span taxonomy and a jq walkthrough.

#ifndef TWBG_OBS_SPAN_SINKS_H_
#define TWBG_OBS_SPAN_SINKS_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/span.h"

namespace twbg::obs {

/// Span JSONL schema version, written into every line; the reader
/// rejects other versions loudly (the event stream's schema_version is
/// independent — span files are a separate stream).
inline constexpr int kJsonSpanSchemaVersion = 1;

/// One closed span as a self-contained JSON line (no trailing newline).
std::string SpanToJson(const Span& span);

/// Parses one SpanToJson line back into a Span.  Unknown members are
/// ignored (same-version additions); a missing or wrong schema_version
/// fails loudly.
Result<Span> ParseSpanLine(std::string_view line);

/// Reads a whole span JSONL file (empty lines skipped); fails on the
/// first malformed line with its line number.
Result<std::vector<Span>> ReadSpanFile(const std::string& path);

/// Unbounded in-memory span buffer for tests and in-process analysis.
class SpanCollectorSink : public SpanSink {
 public:
  /// Appends the closed span.
  void OnSpan(const Span& span) override { spans_.push_back(span); }

  /// Closed spans, in close order.
  const std::vector<Span>& spans() const { return spans_; }

  /// Closed spans of one kind, in close order.
  std::vector<Span> Filter(SpanKind kind) const;

  /// Closed spans of one kind (count only).
  size_t Count(SpanKind kind) const;

  /// Drops all collected spans.
  void Clear() { spans_.clear(); }

 private:
  std::vector<Span> spans_;
};

/// Streams every closed span as one JSON line to an owned file — same
/// durability contract as JsonlSink (failed writes are counted, never
/// wedge the run).
class SpanJsonlSink : public SpanSink {
 public:
  /// Opens `path` for writing (truncates).
  static Result<std::unique_ptr<SpanJsonlSink>> Open(const std::string& path);

  /// Flushes and closes the file.
  ~SpanJsonlSink() override;

  /// Non-copyable: the sink owns its FILE handle.
  SpanJsonlSink(const SpanJsonlSink&) = delete;
  /// Non-copyable: the sink owns its FILE handle.
  SpanJsonlSink& operator=(const SpanJsonlSink&) = delete;

  /// Writes the closed span as one JSON line.
  void OnSpan(const Span& span) override;

  /// Lines written so far (attempted).
  uint64_t lines_written() const { return lines_; }
  /// Lines that could not be (fully) written.
  uint64_t write_errors() const { return write_errors_; }
  /// Path the sink writes to.
  const std::string& path() const { return path_; }

  /// Flushes buffered output; a failed flush counts as one write error.
  void Flush();

 private:
  SpanJsonlSink(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
  uint64_t lines_ = 0;
  uint64_t write_errors_ = 0;
};

// -- Perfetto timeline export ---------------------------------------------

/// Renders closed spans as a Chrome trace-event JSON document (the
/// format ui.perfetto.dev and chrome://tracing load): one "X" complete
/// event per span with microsecond ts/dur, plus "M" thread_name metadata
/// naming each lane.  Lanes: the detector thread (pass/step/resolution/
/// apply spans), one lane per shard (publish spans) and one lane per
/// transaction (txn/wait spans).  Clock units are taken as nanoseconds;
/// under a manual tick clock the timeline is in "nano-tick" units —
/// relative durations stay truthful.
std::string ExportPerfettoJson(const std::vector<Span>& spans);

// -- Blocked-time profiling -----------------------------------------------

/// Where blocked time went, folded from closed kWait spans.
struct BlockedProfile {
  /// One aggregate row: a (resource, mode, txn class) bucket.
  struct Row {
    /// Resource waited on.
    lock::ResourceId rid = 0;
    /// Requested mode.
    lock::LockMode mode = lock::LockMode::kNL;
    /// Class label of the waiter's parent kTxn span ("fresh", ...);
    /// "unclassified" when the wait had no labelled parent.
    std::string txn_class;
    /// Wait spans folded into the bucket.
    uint64_t waits = 0;
    /// Total blocked clock units in the bucket.
    uint64_t total_ns = 0;
    /// Longest single wait in the bucket.
    uint64_t max_ns = 0;
    /// Waits that ended by abort/cancel instead of a grant.
    uint64_t aborted = 0;
  };
  /// Buckets, descending total_ns (ties: ascending rid, mode, class).
  std::vector<Row> rows;
  /// Sum of all closed wait durations.
  uint64_t total_blocked_ns = 0;
  /// Closed wait spans folded.
  uint64_t total_waits = 0;
};

/// Folds the closed kWait spans of `spans` into per-(resource, mode,
/// txn-class) buckets.  Open waits are invisible (spans are delivered at
/// close) — a profile taken mid-run undercounts by the still-open tail.
BlockedProfile BuildBlockedProfile(const std::vector<Span>& spans);

/// Renders the profile as collapsed-stack lines — one
/// "R<rid>;<mode>;<txn_class> <total_ns>" per bucket — the input format
/// of flamegraph.pl and speedscope.
std::string FoldedStacks(const BlockedProfile& profile);

/// Renders the profile as an aligned aggregate table (twbg-trace
/// `profile` default output).
std::string ProfileTable(const BlockedProfile& profile);

// -- Scheduler-input estimation -------------------------------------------

/// Measured scheduler inputs accumulated over one sampling window —
/// everything a sched::PassSample needs, taken from closed spans instead
/// of flat event counters (obs must not depend on sched, so hosts do the
/// one-line conversion).  Units are the tracer's clock units.
struct SpanSampleStats {
  /// Window length in clock units (close of window to close of window).
  uint64_t window_ns = 0;
  /// Total kPass span duration closed in the window — the measured
  /// detection cost C.
  uint64_t pass_ns = 0;
  /// kPass spans closed in the window.
  uint64_t passes = 0;
  /// Sum of closed kPass spans' `b` counters — the pass's cost in host
  /// cost units (work units for the simulator, nanoseconds for the
  /// service), per the pass-span close contract.  The canonical C input;
  /// pass_ns is its wall-clock cross-check.
  uint64_t pass_cost = 0;
  /// Deadlock cycles resolved: the sum of closed kPass spans' `a`
  /// counters (the pass-span close contract) — the measured lambda
  /// numerator.
  uint64_t cycles = 0;
  /// kResolution spans closed in the window (cross-check for `cycles`;
  /// differs under pauseless detection where later-rejected decisions
  /// never apply).
  uint64_t resolutions = 0;
  /// Total blocked time from kWait spans closed in the window.
  uint64_t blocked_ns = 0;
  /// kWait spans closed in the window.
  uint64_t waits_closed = 0;

  /// Time-averaged blocked population over the window — the measured B
  /// (blocked integral / window), 0 when the window is empty.
  double avg_blocked() const {
    return window_ns == 0
               ? 0.0
               : static_cast<double>(blocked_ns) /
                     static_cast<double>(window_ns);
  }
};

/// SpanSink that integrates closed spans into SpanSampleStats windows.
/// Hosts subscribe it to their tracer, then call Take() after each pass
/// to fill a sched::PassSample with measured values
/// (SchedulerOptions::use_span_estimates).  Single-threaded like every
/// sink: Take() must be called from the tracer's writer.
class SpanEstimator : public SpanSink {
 public:
  /// Accumulates `span` into the current window.
  void OnSpan(const Span& span) override;

  /// Returns the window ending now (`now_ns` from the tracer's clock)
  /// and starts the next one.  The first Take() measures from the first
  /// observed span's open when Reset() was never called.
  SpanSampleStats Take(uint64_t now_ns);

  /// Starts the first window at `now_ns`, discarding anything pending.
  void Reset(uint64_t now_ns);

 private:
  SpanSampleStats pending_;
  uint64_t window_start_ = 0;
  bool started_ = false;
};

}  // namespace twbg::obs

#endif  // TWBG_OBS_SPAN_SINKS_H_
