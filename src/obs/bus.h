// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The structured event bus: a synchronous fan-out point connecting the
// emitting layers (lock manager, detectors, transaction manager,
// simulator) to any number of sinks (trace rings, latency observers,
// JSONL exporters, test collectors).
//
// Zero overhead when disabled: components hold a nullable EventBus* and
// emission sites are guarded by `Enabled(bus)` — a null/empty check — so
// with no sinks attached (the default everywhere) the cost per potential
// event is one predictable branch and no Event is even constructed.
//
// Delivery is synchronous and in emission order: Emit stamps the event
// with the next sequence number and the bus's logical time, then calls
// every sink in subscription order before returning.
//
// Threading contract — SINGLE WRITER: the bus itself takes no locks, so
// at any instant at most one thread may be inside Emit (and Subscribe/
// Unsubscribe/set_time must not race with it).  Different threads may
// emit at different times as long as their accesses are externally
// serialized with proper happens-before edges — txn::ConcurrentLockService
// does exactly that by emitting only under its observability mutex, which
// is also why attaching a bus to the sharded service serializes it.
// Debug builds enforce the contract: Emit traps (TWBG_DCHECK) when it
// observes a second thread inside a delivery in progress.

#ifndef TWBG_OBS_BUS_H_
#define TWBG_OBS_BUS_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/event.h"

namespace twbg::obs {

/// Receiver interface for bus events.  Sinks are non-owning observers;
/// they must outlive their subscription (or unsubscribe first).
class EventSink {
 public:
  /// Virtual destructor for interface use; detaching is the caller's job.
  virtual ~EventSink() = default;

  /// Called synchronously for every event, in emission order.
  virtual void OnEvent(const Event& event) = 0;
};

/// Synchronous fan-out bus.  Not thread-safe.
class EventBus {
 public:
  /// True when at least one sink is attached — emission sites use this
  /// (via Enabled) to skip event construction entirely when nobody
  /// listens.
  bool active() const { return !sinks_.empty(); }

  /// Attaches `sink` (no-op if already attached).  Does not take
  /// ownership.
  void Subscribe(EventSink* sink);

  /// Detaches `sink` (no-op if not attached).
  void Unsubscribe(EventSink* sink);

  /// Number of attached sinks.
  size_t num_sinks() const { return sinks_.size(); }

  /// Sets the logical timestamp stamped on subsequent events (the
  /// simulator advances this every tick).
  void set_time(uint64_t time) { time_ = time; }

  /// Current logical timestamp.
  uint64_t time() const { return time_; }

  /// Stamps `event` with the next sequence number and the current logical
  /// time, then delivers it to every sink in subscription order.
  ///
  /// Re-entrancy: a sink may call Emit from inside OnEvent (the watchdog
  /// emits synthetic alerts this way).  Such nested events are deferred
  /// and delivered — in emission order, with later sequence numbers —
  /// after the triggering event has reached every sink, so all sinks
  /// still observe one identical, strictly increasing stream.
  void Emit(Event event);

  /// Total events emitted through this bus.
  uint64_t emitted() const { return next_seq_ - 1; }

 private:
  // Stamps and fans out one event (no deferral logic).
  void Deliver(Event& event);

  std::vector<EventSink*> sinks_;
  std::vector<Event> deferred_;  // nested Emit calls, in arrival order
  uint64_t next_seq_ = 1;
  uint64_t time_ = 0;
  bool emitting_ = false;
  // Debug tripwire for the single-writer contract: the thread currently
  // inside the outermost Emit, or the empty id when idle.  Checked only
  // in debug builds (bus.cc), but kept unconditionally so the layout
  // does not change between build types.
  std::atomic<std::thread::id> writer_{std::thread::id{}};
};

/// Emission-site guard: true when `bus` is attached and has sinks.
inline bool Enabled(const EventBus* bus) {
  return bus != nullptr && bus->active();
}

}  // namespace twbg::obs

#endif  // TWBG_OBS_BUS_H_
