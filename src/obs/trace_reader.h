// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Offline trace ingestion: parses the JSONL files written by JsonlSink
// (one flat JSON object per line, see ToJson) back into Event records so
// the twbg-trace analyzer and tests can replay a run.  The parser only
// accepts the exporter's own flat schema — top-level string/number
// members, no nesting — and rejects lines whose "schema_version" is
// missing or differs from kJsonSchemaVersion.

#ifndef TWBG_OBS_TRACE_READER_H_
#define TWBG_OBS_TRACE_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/event.h"

namespace twbg::obs {

/// Parses one JSONL trace line back into an Event.  Fails with
/// kInvalidArgument on malformed JSON, an unknown event kind or lock
/// mode, or a missing/mismatched schema_version.
Result<Event> ParseTraceLine(std::string_view line);

/// Reads a whole JSONL trace file, in emission order.  Blank lines are
/// skipped; any malformed line fails the read (with its line number in
/// the message) so silent truncation cannot masquerade as a short run.
Result<std::vector<Event>> ReadTraceFile(const std::string& path);

}  // namespace twbg::obs

#endif  // TWBG_OBS_TRACE_READER_H_
