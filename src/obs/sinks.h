// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Concrete event sinks: an in-memory collector for tests and ad-hoc
// inspection, and a JSON-lines stream exporter for offline analysis
// (one self-contained JSON object per line; see docs/OBSERVABILITY.md
// for the schema and a jq-based diagnosis walkthrough).

#ifndef TWBG_OBS_SINKS_H_
#define TWBG_OBS_SINKS_H_

#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/bus.h"

namespace twbg::obs {

/// Bounded in-memory event buffer.  Like sim::SimTrace it is a ring:
/// when full, the oldest events are dropped and counted, so a truncated
/// collection is always visible through dropped().
class CollectorSink : public EventSink {
 public:
  /// `capacity` = maximum retained events (0 means unbounded).
  explicit CollectorSink(size_t capacity = 0) : capacity_(capacity) {}

  /// Appends `event`, evicting (and counting) the oldest when full.
  void OnEvent(const Event& event) override;

  /// Retained events, oldest first.
  const std::deque<Event>& events() const { return events_; }

  /// Events dropped because the ring was full.
  size_t dropped() const { return dropped_; }

  /// Retained events of one kind, oldest first.
  std::vector<Event> Filter(EventKind kind) const;

  /// Retained events of one kind (count only).
  size_t Count(EventKind kind) const;

  /// Drops all retained events and resets the dropped counter.
  void Clear();

 private:
  size_t capacity_;
  size_t dropped_ = 0;
  std::deque<Event> events_;
};

/// Streams every event as one JSON line to an owned file.  Writes are
/// line-buffered by the C runtime; Flush() or destruction finishes the
/// file.  Never drops events while the file is unbounded; with a
/// `max_bytes` cap the file rotates (see Open) so long soak runs cannot
/// fill the disk.
class JsonlSink : public EventSink {
 public:
  /// Opens `path` for writing (truncates).  Fails with kNotFound when the
  /// file cannot be created.
  ///
  /// `max_bytes` (0 = unbounded, the default) caps the file: a line that
  /// would push the file past the cap first truncates it in place — the
  /// tail of the stream survives, everything older is dropped.  Each
  /// truncation increments rotations() and adds the discarded line count
  /// to dropped_on_rotate(), so a capped trace always shows how much is
  /// missing — the same visibility contract as write_errors().  A line
  /// larger than the cap still gets written (the cap bounds the file
  /// between lines, it never splits one).
  static Result<std::unique_ptr<JsonlSink>> Open(const std::string& path,
                                                 uint64_t max_bytes = 0);

  /// Flushes and closes the file.
  ~JsonlSink() override;

  /// Non-copyable: the sink owns its FILE handle.
  JsonlSink(const JsonlSink&) = delete;
  /// Non-copyable: the sink owns its FILE handle.
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Writes `event` as one JSON line.  A failed write (disk full,
  /// revoked permissions) increments write_errors() and the line is lost;
  /// the sink keeps accepting events so one bad line cannot wedge a run.
  void OnEvent(const Event& event) override;

  /// Lines written so far (attempted; lines lost to write errors are
  /// counted in write_errors() instead).
  uint64_t lines_written() const { return lines_; }

  /// Lines that could not be (fully) written — e.g. the disk filled up.
  /// Nonzero means the file is missing events and possibly truncated
  /// mid-line; `sim::SimMetrics::trace_write_errors` mirrors this.
  uint64_t write_errors() const { return write_errors_; }

  /// Times the file was truncated because it reached the max_bytes cap
  /// (always 0 for an unbounded sink).
  uint64_t rotations() const { return rotations_; }

  /// Lines discarded by those truncations — the gap between
  /// lines_written() and what the file holds.
  uint64_t dropped_on_rotate() const { return dropped_on_rotate_; }

  /// Path the sink writes to.
  const std::string& path() const { return path_; }

  /// Flushes buffered output to the file; a failed flush counts as one
  /// write error.
  void Flush();

 private:
  JsonlSink(std::FILE* file, std::string path, uint64_t max_bytes)
      : file_(file), path_(std::move(path)), max_bytes_(max_bytes) {}

  std::FILE* file_;
  std::string path_;
  uint64_t max_bytes_;
  uint64_t bytes_in_file_ = 0;
  uint64_t lines_in_file_ = 0;
  uint64_t lines_ = 0;
  uint64_t write_errors_ = 0;
  uint64_t rotations_ = 0;
  uint64_t dropped_on_rotate_ = 0;
};

}  // namespace twbg::obs

#endif  // TWBG_OBS_SINKS_H_
