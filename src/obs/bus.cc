// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/bus.h"

#include <algorithm>

namespace twbg::obs {

void EventBus::Subscribe(EventSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void EventBus::Unsubscribe(EventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void EventBus::Emit(Event event) {
  event.seq = next_seq_++;
  event.time = time_;
  for (EventSink* sink : sinks_) sink->OnEvent(event);
}

}  // namespace twbg::obs
