// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/bus.h"

#include <algorithm>

#include "common/macros.h"

namespace twbg::obs {

void EventBus::Subscribe(EventSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void EventBus::Unsubscribe(EventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void EventBus::Deliver(Event& event) {
  event.seq = next_seq_++;
  event.time = time_;
  // Index-based: a nested Subscribe must not invalidate the sweep (newly
  // added sinks start with the next event).
  const size_t n = sinks_.size();
  for (size_t i = 0; i < n && i < sinks_.size(); ++i) {
    sinks_[i]->OnEvent(event);
  }
}

void EventBus::Emit(Event event) {
#ifndef NDEBUG
  // Single-writer tripwire (see the header contract): claim the bus for
  // this thread, tolerating same-thread re-entrancy (nested emission from
  // a sink).  A different thread already inside Emit is a caller bug —
  // its serialization is missing or lacks happens-before edges.
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  const bool claimed = writer_.compare_exchange_strong(
      expected, self, std::memory_order_acq_rel, std::memory_order_acquire);
  TWBG_DCHECK(claimed || expected == self);
#endif
  if (emitting_) {
    // Nested emission from inside a sink: queue it so every sink sees the
    // outer event first and the stream stays identically ordered.
    deferred_.push_back(std::move(event));
    return;
  }
  emitting_ = true;
  Deliver(event);
  // Drain alerts (and anything they trigger) in arrival order.
  for (size_t i = 0; i < deferred_.size(); ++i) {
    Event nested = std::move(deferred_[i]);
    Deliver(nested);
  }
  deferred_.clear();
  emitting_ = false;
#ifndef NDEBUG
  // Release the bus only at the outermost exit.
  writer_.store(std::thread::id{}, std::memory_order_release);
#endif
}

}  // namespace twbg::obs
