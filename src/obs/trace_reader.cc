// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/trace_reader.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace twbg::obs {
namespace {

// Minimal cursor over one flat JSON object.  The grammar is exactly what
// ToJson emits: {"key":value,...} with string or number values.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

// Appends `codepoint` to `out` as UTF-8 (BMP only — what \uXXXX covers).
void AppendUtf8(uint32_t codepoint, std::string* out) {
  if (codepoint < 0x80) {
    out->push_back(static_cast<char>(codepoint));
  } else if (codepoint < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  }
}

// Parses a JSON string literal (opening quote already positioned at) and
// unescapes it into `out`.
Status ParseString(Cursor* cur, std::string* out) {
  if (!cur->Consume('"')) return Status::InvalidArgument("expected '\"'");
  out->clear();
  while (!cur->AtEnd()) {
    const char c = cur->text[cur->pos++];
    if (c == '"') return Status::OK();
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (cur->AtEnd()) break;
    const char esc = cur->text[cur->pos++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (cur->pos + 4 > cur->text.size()) {
          return Status::InvalidArgument("truncated \\u escape");
        }
        uint32_t codepoint = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cur->text[cur->pos++];
          codepoint <<= 4;
          if (h >= '0' && h <= '9') {
            codepoint |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            codepoint |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            codepoint |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            return Status::InvalidArgument("bad hex digit in \\u escape");
          }
        }
        AppendUtf8(codepoint, out);
        break;
      }
      default:
        return Status::InvalidArgument(
            common::Format("unknown escape \\%c", esc));
    }
  }
  return Status::InvalidArgument("unterminated string");
}

// Parses a JSON number into `out` (its raw text; the caller converts).
Status ParseNumber(Cursor* cur, std::string* out) {
  out->clear();
  while (!cur->AtEnd()) {
    const char c = cur->Peek();
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      out->push_back(c);
      ++cur->pos;
    } else {
      break;
    }
  }
  if (out->empty()) return Status::InvalidArgument("expected a number");
  return Status::OK();
}

}  // namespace

Result<Event> ParseTraceLine(std::string_view line) {
  Cursor cur{line};
  cur.SkipSpace();
  if (!cur.Consume('{')) {
    return Status::InvalidArgument("line is not a JSON object");
  }
  Event event;
  bool saw_version = false;
  std::string key, text;
  bool first = true;
  while (true) {
    cur.SkipSpace();
    if (cur.Consume('}')) break;
    if (!first && !cur.Consume(',')) {
      return Status::InvalidArgument("expected ',' between members");
    }
    first = false;
    cur.SkipSpace();
    TWBG_RETURN_IF_ERROR(ParseString(&cur, &key));
    cur.SkipSpace();
    if (!cur.Consume(':')) {
      return Status::InvalidArgument("expected ':' after member name");
    }
    cur.SkipSpace();
    if (!cur.AtEnd() && cur.Peek() == '"') {
      TWBG_RETURN_IF_ERROR(ParseString(&cur, &text));
      if (key == "kind") {
        const std::optional<EventKind> kind = EventKindFromName(text);
        if (!kind) {
          return Status::InvalidArgument(
              common::Format("unknown event kind \"%s\"", text.c_str()));
        }
        event.kind = *kind;
      } else if (key == "mode") {
        const std::optional<lock::LockMode> mode = LockModeFromName(text);
        if (!mode) {
          return Status::InvalidArgument(
              common::Format("unknown lock mode \"%s\"", text.c_str()));
        }
        event.mode = *mode;
      } else if (key == "detail") {
        event.detail = text;
      }
      // Unknown string members are ignored (same-version additions).
    } else {
      TWBG_RETURN_IF_ERROR(ParseNumber(&cur, &text));
      if (key == "value") {
        event.value = std::strtod(text.c_str(), nullptr);
      } else {
        const uint64_t n = std::strtoull(text.c_str(), nullptr, 10);
        if (key == "seq") {
          event.seq = n;
        } else if (key == "schema_version") {
          saw_version = true;
          if (n != static_cast<uint64_t>(kJsonSchemaVersion)) {
            return Status::InvalidArgument(common::Format(
                "schema_version %llu, this reader understands %d",
                static_cast<unsigned long long>(n), kJsonSchemaVersion));
          }
        } else if (key == "time") {
          event.time = n;
        } else if (key == "tid") {
          event.tid = static_cast<lock::TransactionId>(n);
        } else if (key == "rid") {
          event.rid = static_cast<lock::ResourceId>(n);
        } else if (key == "a") {
          event.a = n;
        } else if (key == "b") {
          event.b = n;
        } else if (key == "span") {
          event.span = n;
        }
        // Unknown numeric members are ignored.
      }
    }
  }
  cur.SkipSpace();
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  if (!saw_version) {
    return Status::InvalidArgument(
        "missing schema_version (pre-forensics v1 trace?)");
  }
  return event;
}

Result<std::vector<Event>> ReadTraceFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound(common::Format("cannot open %s", path.c_str()));
  }
  std::vector<Event> events;
  std::string line;
  size_t line_no = 0;
  int c;
  while (true) {
    line.clear();
    while ((c = std::fgetc(file)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (line.empty() && c == EOF) break;
    ++line_no;
    if (line.empty()) continue;
    Result<Event> event = ParseTraceLine(line);
    if (!event.ok()) {
      std::fclose(file);
      return Status::InvalidArgument(
          common::Format("%s:%zu: %s", path.c_str(), line_no,
                         std::string(event.status().message()).c_str()));
    }
    events.push_back(std::move(event).value());
    if (c == EOF) break;
  }
  std::fclose(file);
  return events;
}

}  // namespace twbg::obs
