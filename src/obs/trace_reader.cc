// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/trace_reader.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "obs/json_util.h"

namespace twbg::obs {


Result<Event> ParseTraceLine(std::string_view line) {
  jsonutil::Cursor cur{line};
  cur.SkipSpace();
  if (!cur.Consume('{')) {
    return Status::InvalidArgument("line is not a JSON object");
  }
  Event event;
  bool saw_version = false;
  std::string key, text;
  bool first = true;
  while (true) {
    cur.SkipSpace();
    if (cur.Consume('}')) break;
    if (!first && !cur.Consume(',')) {
      return Status::InvalidArgument("expected ',' between members");
    }
    first = false;
    cur.SkipSpace();
    TWBG_RETURN_IF_ERROR(jsonutil::ParseString(&cur, &key));
    cur.SkipSpace();
    if (!cur.Consume(':')) {
      return Status::InvalidArgument("expected ':' after member name");
    }
    cur.SkipSpace();
    if (!cur.AtEnd() && cur.Peek() == '"') {
      TWBG_RETURN_IF_ERROR(jsonutil::ParseString(&cur, &text));
      if (key == "kind") {
        const std::optional<EventKind> kind = EventKindFromName(text);
        if (!kind) {
          return Status::InvalidArgument(
              common::Format("unknown event kind \"%s\"", text.c_str()));
        }
        event.kind = *kind;
      } else if (key == "mode") {
        const std::optional<lock::LockMode> mode = LockModeFromName(text);
        if (!mode) {
          return Status::InvalidArgument(
              common::Format("unknown lock mode \"%s\"", text.c_str()));
        }
        event.mode = *mode;
      } else if (key == "detail") {
        event.detail = text;
      }
      // Unknown string members are ignored (same-version additions).
    } else {
      TWBG_RETURN_IF_ERROR(jsonutil::ParseNumber(&cur, &text));
      if (key == "value") {
        event.value = std::strtod(text.c_str(), nullptr);
      } else {
        const uint64_t n = std::strtoull(text.c_str(), nullptr, 10);
        if (key == "seq") {
          event.seq = n;
        } else if (key == "schema_version") {
          saw_version = true;
          if (n != static_cast<uint64_t>(kJsonSchemaVersion)) {
            return Status::InvalidArgument(common::Format(
                "schema_version %llu, this reader understands %d",
                static_cast<unsigned long long>(n), kJsonSchemaVersion));
          }
        } else if (key == "time") {
          event.time = n;
        } else if (key == "tid") {
          event.tid = static_cast<lock::TransactionId>(n);
        } else if (key == "rid") {
          event.rid = static_cast<lock::ResourceId>(n);
        } else if (key == "a") {
          event.a = n;
        } else if (key == "b") {
          event.b = n;
        } else if (key == "span") {
          event.span = n;
        }
        // Unknown numeric members are ignored.
      }
    }
  }
  cur.SkipSpace();
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  if (!saw_version) {
    return Status::InvalidArgument(
        "missing schema_version (pre-forensics v1 trace?)");
  }
  return event;
}

Result<std::vector<Event>> ReadTraceFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound(common::Format("cannot open %s", path.c_str()));
  }
  std::vector<Event> events;
  std::string line;
  size_t line_no = 0;
  int c;
  while (true) {
    line.clear();
    while ((c = std::fgetc(file)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (line.empty() && c == EOF) break;
    ++line_no;
    if (line.empty()) continue;
    Result<Event> event = ParseTraceLine(line);
    if (!event.ok()) {
      std::fclose(file);
      return Status::InvalidArgument(
          common::Format("%s:%zu: %s", path.c_str(), line_no,
                         std::string(event.status().message()).c_str()));
    }
    events.push_back(std::move(event).value());
    if (c == EOF) break;
  }
  std::fclose(file);
  return events;
}

}  // namespace twbg::obs
