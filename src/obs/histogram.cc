// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace twbg::obs {

size_t LogHistogram::BucketIndex(uint64_t value) {
  // bit_width(0) == 0, so 0 maps to bucket 0 and any v >= 1 to
  // bit_width(v) in [1, 64] — no clamping needed anywhere.
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t LogHistogram::BucketLowerBound(size_t index) {
  if (index == 0) return 0;
  return uint64_t{1} << (index - 1);
}

uint64_t LogHistogram::BucketUpperBound(size_t index) {
  if (index == 0) return 1;
  if (index >= kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return uint64_t{1} << index;
}

void LogHistogram::Add(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += static_cast<double>(value);
  ++count_;
}

void LogHistogram::AddDouble(double value) {
  if (!(value > 0.0)) {  // negatives and NaN clamp to 0
    Add(0);
    return;
  }
  constexpr double kMax = 18446744073709551615.0;  // 2^64 - 1, rounded
  if (value >= kMax) {
    Add(std::numeric_limits<uint64_t>::max());
    return;
  }
  Add(static_cast<uint64_t>(std::llround(std::min(
      value, static_cast<double>(std::numeric_limits<int64_t>::max() - 1)))));
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LogHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile among count_ sorted samples.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double first = static_cast<double>(seen);
    seen += buckets_[i];
    if (rank >= static_cast<double>(seen)) continue;
    // Interpolate inside the bucket, clamped to the observed extremes so
    // single-bucket distributions report exact values.
    const double lo =
        std::max(static_cast<double>(BucketLowerBound(i)),
                 static_cast<double>(min()));
    const double hi = std::min(static_cast<double>(BucketUpperBound(i)),
                               static_cast<double>(max_));
    const double fraction =
        buckets_[i] == 1
            ? 0.0
            : (rank - first) / static_cast<double>(buckets_[i] - 1);
    return lo + (hi - lo) * fraction;
  }
  return static_cast<double>(max_);
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void LogHistogram::Reset() { *this = LogHistogram(); }

std::string LogHistogram::Summary() const {
  if (count_ == 0) return "n=0";
  return common::Format(
      "n=%llu mean=%.1f p50~%.0f p95~%.0f p99~%.0f max=%llu",
      static_cast<unsigned long long>(count_), mean(), Percentile(50.0),
      Percentile(95.0), Percentile(99.0),
      static_cast<unsigned long long>(max_));
}

}  // namespace twbg::obs
