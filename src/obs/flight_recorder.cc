// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/flight_recorder.h"

#include <algorithm>
#include <bit>

namespace twbg::obs {

FlightRecorder::FlightRecorder(size_t capacity) {
  capacity = std::bit_ceil(std::max<size_t>(capacity, 16));
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

void FlightRecorder::OnEvent(const Event& event) {
  // Assigning over a slot whose previous occupant carried a detail string
  // reuses (or frees) that slot's buffer; an empty-detail event therefore
  // never allocates here.
  slots_[recorded_ & mask_] = event;
  ++recorded_;
}

template <typename Pred>
std::vector<Event> FlightRecorder::TailMatching(size_t max, Pred keep) const {
  std::vector<Event> out;
  const uint64_t retained =
      std::min<uint64_t>(recorded_, slots_.size());
  for (uint64_t back = 0; back < retained && out.size() < max; ++back) {
    const Event& event = slots_[(recorded_ - 1 - back) & mask_];
    if (keep(event)) out.push_back(event);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Event> FlightRecorder::Tail(size_t max) const {
  return TailMatching(max, [](const Event&) { return true; });
}

std::vector<Event> FlightRecorder::TailForTxn(lock::TransactionId tid,
                                              size_t max) const {
  return TailMatching(max,
                      [tid](const Event& event) { return event.tid == tid; });
}

std::vector<Event> FlightRecorder::TailForResource(lock::ResourceId rid,
                                                   size_t max) const {
  return TailMatching(max,
                      [rid](const Event& event) { return event.rid == rid; });
}

std::string FlightRecorder::Dump(size_t max) const {
  std::string out;
  for (const Event& event : Tail(max)) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

void FlightRecorder::Clear() {
  std::fill(slots_.begin(), slots_.end(), Event());
  recorded_ = 0;
}

}  // namespace twbg::obs
