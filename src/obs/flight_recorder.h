// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Always-cheap bounded flight recorder: a preallocated power-of-two ring
// of the most recent events, meant to stay attached in production so the
// moments *before* a deadlock, convoy or starvation alert are available
// for post-mortem queries.  The hot path is one ring-slot assignment —
// no allocation after construction for every detail-free (hot-path)
// event kind.  Queries (per-transaction / per-resource tails) walk the
// ring backwards and are allowed to allocate; they are forensic, not hot.

#ifndef TWBG_OBS_FLIGHT_RECORDER_H_
#define TWBG_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/bus.h"

namespace twbg::obs {

/// Bounded ring of recent events with per-txn / per-resource tail views.
class FlightRecorder : public EventSink {
 public:
  /// `capacity` is rounded up to a power of two (min 16) and preallocated.
  explicit FlightRecorder(size_t capacity = 4096);

  /// Records `event` into the ring, overwriting the oldest slot when
  /// full.  Zero-allocation for events with an empty `detail`.
  void OnEvent(const Event& event) override;

  /// Ring capacity (events retained at most).
  size_t capacity() const { return slots_.size(); }

  /// Total events ever recorded (retained = min(recorded, capacity)).
  uint64_t recorded() const { return recorded_; }

  /// The `max` most recent events, oldest first.
  std::vector<Event> Tail(size_t max) const;

  /// The `max` most recent events whose subject transaction is `tid`,
  /// oldest first.
  std::vector<Event> TailForTxn(lock::TransactionId tid, size_t max) const;

  /// The `max` most recent events whose subject resource is `rid`,
  /// oldest first.
  std::vector<Event> TailForResource(lock::ResourceId rid, size_t max) const;

  /// Human-readable dump of Tail(max), one event per line.
  std::string Dump(size_t max) const;

  /// Empties the ring (capacity is kept).
  void Clear();

 private:
  // Applies `keep` to the retained events newest-first, collecting at
  // most `max` matches, then reverses to oldest-first.
  template <typename Pred>
  std::vector<Event> TailMatching(size_t max, Pred keep) const;

  std::vector<Event> slots_;  // fixed size, power of two
  size_t mask_ = 0;           // slots_.size() - 1
  uint64_t recorded_ = 0;     // next write position = recorded_ & mask_
};

}  // namespace twbg::obs

#endif  // TWBG_OBS_FLIGHT_RECORDER_H_
