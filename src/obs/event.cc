// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/event.h"

#include "common/string_util.h"

namespace twbg::obs {

namespace {

// Local mode-name table: obs may not link the lock library (layering; see
// event.h), so it cannot use lock::ToString.  Order matches LockMode.
constexpr std::string_view kModeNames[] = {"NL", "IS", "IX", "SIX", "S", "X"};

std::string_view ModeName(lock::LockMode mode) {
  const auto index = static_cast<size_t>(mode);
  return index < std::size(kModeNames) ? kModeNames[index] : "?";
}

}  // namespace

std::string_view LockModeName(lock::LockMode mode) { return ModeName(mode); }

std::optional<lock::LockMode> LockModeFromName(std::string_view name) {
  for (size_t i = 0; i < std::size(kModeNames); ++i) {
    if (kModeNames[i] == name) return static_cast<lock::LockMode>(i);
  }
  return std::nullopt;
}

std::string_view ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnBegin:
      return "txn_begin";
    case EventKind::kTxnRestart:
      return "txn_restart";
    case EventKind::kTxnCommit:
      return "txn_commit";
    case EventKind::kTxnAbort:
      return "txn_abort";
    case EventKind::kLockGrant:
      return "lock_grant";
    case EventKind::kLockBlock:
      return "lock_block";
    case EventKind::kLockConvert:
      return "lock_convert";
    case EventKind::kLockRelease:
      return "lock_release";
    case EventKind::kLockWakeup:
      return "lock_wakeup";
    case EventKind::kWaitEnd:
      return "wait_end";
    case EventKind::kUprReposition:
      return "upr_reposition";
    case EventKind::kPassStart:
      return "pass_start";
    case EventKind::kStep1:
      return "step1";
    case EventKind::kStep2:
      return "step2";
    case EventKind::kPassEnd:
      return "pass_end";
    case EventKind::kCycleResolved:
      return "cycle_resolved";
    case EventKind::kDetectorMiss:
      return "detector_miss";
    case EventKind::kCyclePostMortem:
      return "cycle_post_mortem";
    case EventKind::kStarvation:
      return "starvation";
    case EventKind::kConvoy:
      return "convoy";
    case EventKind::kShardContention:
      return "shard_contention";
    case EventKind::kDeadlineExpired:
      return "deadline_expired";
    case EventKind::kAdmissionReject:
      return "admission_reject";
    case EventKind::kDegraded:
      return "degraded";
    case EventKind::kFaultInjected:
      return "fault_injected";
    case EventKind::kSnapshotPublish:
      return "snapshot_publish";
    case EventKind::kResolutionRejected:
      return "resolution_rejected";
    case EventKind::kPeriodRetuned:
      return "period_retuned";
  }
  return "?";
}

std::optional<EventKind> EventKindFromName(std::string_view name) {
  for (size_t i = 0; i < kNumEventKinds; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (ToString(kind) == name) return kind;
  }
  return std::nullopt;
}

std::string Event::ToString() const {
  std::string out = common::Format(
      "#%llu [%llu] %-14s", static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(time),
      std::string(obs::ToString(kind)).c_str());
  if (tid != 0) out += common::Format(" T%u", tid);
  if (rid != 0) out += common::Format(" R%u", rid);
  if (mode != lock::LockMode::kNL) {
    out += common::Format(" %s", std::string(ModeName(mode)).c_str());
  }
  if (a != 0 || b != 0) {
    out += common::Format(" a=%llu b=%llu", static_cast<unsigned long long>(a),
                          static_cast<unsigned long long>(b));
  }
  if (span != 0) {
    out += common::Format(" span=%llu", static_cast<unsigned long long>(span));
  }
  if (value != 0.0) out += common::Format(" value=%.1f", value);
  if (!detail.empty()) {
    out += " ";
    out += detail;
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const Event& event) {
  // Numeric fields and fixed name tables need no escaping; `detail` is
  // free-form and must be escaped.
  std::string out = common::Format(
      "{\"seq\":%llu,\"schema_version\":%d,\"time\":%llu,\"kind\":\"%s\","
      "\"tid\":%u,\"rid\":%u,\"mode\":\"%s\",\"a\":%llu,\"b\":%llu,"
      "\"span\":%llu,\"value\":%.3f,\"detail\":\"",
      static_cast<unsigned long long>(event.seq), kJsonSchemaVersion,
      static_cast<unsigned long long>(event.time),
      std::string(ToString(event.kind)).c_str(), event.tid, event.rid,
      std::string(ModeName(event.mode)).c_str(),
      static_cast<unsigned long long>(event.a),
      static_cast<unsigned long long>(event.b),
      static_cast<unsigned long long>(event.span), event.value);
  out += JsonEscape(event.detail);
  out += "\"}";
  return out;
}

}  // namespace twbg::obs
