// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/event.h"

#include "common/string_util.h"

namespace twbg::obs {

namespace {

// Local mode-name table: obs may not link the lock library (layering; see
// event.h), so it cannot use lock::ToString.  Order matches LockMode.
constexpr std::string_view kModeNames[] = {"NL", "IS", "IX", "SIX", "S", "X"};

std::string_view ModeName(lock::LockMode mode) {
  const auto index = static_cast<size_t>(mode);
  return index < std::size(kModeNames) ? kModeNames[index] : "?";
}

}  // namespace

std::string_view ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnBegin:
      return "txn_begin";
    case EventKind::kTxnRestart:
      return "txn_restart";
    case EventKind::kTxnCommit:
      return "txn_commit";
    case EventKind::kTxnAbort:
      return "txn_abort";
    case EventKind::kLockGrant:
      return "lock_grant";
    case EventKind::kLockBlock:
      return "lock_block";
    case EventKind::kLockConvert:
      return "lock_convert";
    case EventKind::kLockRelease:
      return "lock_release";
    case EventKind::kLockWakeup:
      return "lock_wakeup";
    case EventKind::kWaitEnd:
      return "wait_end";
    case EventKind::kUprReposition:
      return "upr_reposition";
    case EventKind::kPassStart:
      return "pass_start";
    case EventKind::kStep1:
      return "step1";
    case EventKind::kStep2:
      return "step2";
    case EventKind::kPassEnd:
      return "pass_end";
    case EventKind::kCycleResolved:
      return "cycle_resolved";
    case EventKind::kDetectorMiss:
      return "detector_miss";
  }
  return "?";
}

std::string Event::ToString() const {
  std::string out = common::Format(
      "#%llu [%llu] %-14s", static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(time),
      std::string(obs::ToString(kind)).c_str());
  if (tid != 0) out += common::Format(" T%u", tid);
  if (rid != 0) out += common::Format(" R%u", rid);
  if (mode != lock::LockMode::kNL) {
    out += common::Format(" %s", std::string(ModeName(mode)).c_str());
  }
  if (a != 0 || b != 0) {
    out += common::Format(" a=%llu b=%llu", static_cast<unsigned long long>(a),
                          static_cast<unsigned long long>(b));
  }
  if (value != 0.0) out += common::Format(" value=%.1f", value);
  return out;
}

std::string ToJson(const Event& event) {
  // Every field is numeric or drawn from fixed internal name tables, so no
  // string escaping is needed.
  return common::Format(
      "{\"seq\":%llu,\"time\":%llu,\"kind\":\"%s\",\"tid\":%u,\"rid\":%u,"
      "\"mode\":\"%s\",\"a\":%llu,\"b\":%llu,\"value\":%.3f}",
      static_cast<unsigned long long>(event.seq),
      static_cast<unsigned long long>(event.time),
      std::string(ToString(event.kind)).c_str(), event.tid, event.rid,
      std::string(ModeName(event.mode)).c_str(),
      static_cast<unsigned long long>(event.a),
      static_cast<unsigned long long>(event.b), event.value);
}

}  // namespace twbg::obs
