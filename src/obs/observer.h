// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// In-process aggregation sink: per-kind event counters plus the latency
// histograms the bench and REPL report on, and a Prometheus-style text
// exposition writer for scraping the aggregates from a file.

#ifndef TWBG_OBS_OBSERVER_H_
#define TWBG_OBS_OBSERVER_H_

#include <array>
#include <string>

#include "common/status.h"
#include "obs/bus.h"
#include "obs/histogram.h"

namespace twbg::obs {

/// Aggregating sink: counts every event by kind and feeds the payloads
/// that carry a measurement into log-bucketed histograms.
///
/// Histograms populated (event kind -> field):
///  - wait_time:   kWaitEnd.value (logical ticks blocked)
///  - pass_ns:     kPassEnd.value (whole detection pass, wall ns)
///  - step1_ns:    kStep1.value   (graph/TST build, wall ns)
///  - step2_ns:    kStep2.value   (cycle walk, wall ns)
///  - queue_depth: kLockBlock.a   (waiters queued on the resource)
///  - cycle_len:   kCycleResolved.a (transactions in the resolved cycle)
///  - publish_ns:  kSnapshotPublish.value (per-shard epoch-delta publish
///                 pause, wall ns — the only pause a pauseless pass costs)
///  - snapshot_lag_ns: kPassEnd.span when non-zero (seal-to-apply lag of
///                 a pauseless pass; stop-the-world passes leave span 0)
///  - detection_period: kPeriodRetuned.b (the period each controller
///                 retune applied, host time units; the latest value is
///                 also kept as the current_period() gauge)
class LatencyObserver : public EventSink {
 public:
  /// Counts `event` and records its measurement (if any) — see the class
  /// docs for the kind-to-histogram mapping.
  void OnEvent(const Event& event) override;

  /// Events seen of one kind.
  uint64_t Count(EventKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }

  /// Total events seen across all kinds.
  uint64_t total() const { return total_; }

  /// Ticks spent blocked, one sample per completed wait.
  const LogHistogram& wait_time() const { return wait_time_; }

  /// Wall nanoseconds per detection pass (Step 1 + Step 2 + resolution).
  const LogHistogram& pass_ns() const { return pass_ns_; }

  /// Wall nanoseconds building the TST/graph (Step 1).
  const LogHistogram& step1_ns() const { return step1_ns_; }

  /// Wall nanoseconds walking for cycles (Step 2).
  const LogHistogram& step2_ns() const { return step2_ns_; }

  /// Queue depth observed at each block (waiters ahead incl. the new one).
  const LogHistogram& queue_depth() const { return queue_depth_; }

  /// Length of each resolved cycle, in transactions.
  const LogHistogram& cycle_len() const { return cycle_len_; }

  /// Wall nanoseconds per per-shard snapshot publish (the pauseless
  /// engine's only shard pause).
  const LogHistogram& publish_ns() const { return publish_ns_; }

  /// Wall nanoseconds of seal-to-apply detection lag per pauseless pass.
  const LogHistogram& snapshot_lag_ns() const { return snapshot_lag_ns_; }

  /// Detection period applied by each controller retune (kPeriodRetuned),
  /// host time units.
  const LogHistogram& detection_period() const { return detection_period_; }

  /// The detection period currently in effect per the latest
  /// kPeriodRetuned seen (a point-in-time gauge; 0 until the first
  /// retune — fixed-period systems never move it).
  uint64_t current_period() const { return current_period_; }

  /// Forgets everything seen so far.
  void Reset();

  /// Multi-line human-readable report: non-zero event counts, then one
  /// Summary() line per non-empty histogram.
  std::string Report() const;

 private:
  std::array<uint64_t, kNumEventKinds> counts_{};
  uint64_t total_ = 0;
  LogHistogram wait_time_;
  LogHistogram pass_ns_;
  LogHistogram step1_ns_;
  LogHistogram step2_ns_;
  LogHistogram queue_depth_;
  LogHistogram cycle_len_;
  LogHistogram publish_ns_;
  LogHistogram snapshot_lag_ns_;
  LogHistogram detection_period_;
  uint64_t current_period_ = 0;
};

/// Renders the observer's aggregates in Prometheus text exposition
/// format: one `<prefix>_events_total{kind="..."}` counter per non-zero
/// kind and a `_sum`/`_count`/`{le=...}` bucket series per histogram.
std::string ToPrometheusText(const LatencyObserver& observer,
                             const std::string& prefix = "twbg");

/// Writes ToPrometheusText(observer, prefix) to `path`, truncating.
Status WritePrometheusFile(const LatencyObserver& observer,
                           const std::string& path,
                           const std::string& prefix = "twbg");

}  // namespace twbg::obs

#endif  // TWBG_OBS_OBSERVER_H_
