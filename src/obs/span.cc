// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/macros.h"

namespace twbg::obs {

std::string_view ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxn: return "txn";
    case SpanKind::kWait: return "wait";
    case SpanKind::kPass: return "pass";
    case SpanKind::kPublish: return "publish";
    case SpanKind::kStep1: return "step1";
    case SpanKind::kStep2: return "step2";
    case SpanKind::kResolution: return "resolution";
    case SpanKind::kApply: return "apply";
  }
  return "unknown";
}

std::optional<SpanKind> SpanKindFromName(std::string_view name) {
  for (size_t i = 0; i < kNumSpanKinds; ++i) {
    const SpanKind kind = static_cast<SpanKind>(i);
    if (ToString(kind) == name) return kind;
  }
  return std::nullopt;
}

void SpanTracer::Subscribe(SpanSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void SpanTracer::Unsubscribe(SpanSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

uint64_t SpanTracer::now() const {
  if (manual_clock_) return manual_now_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SpanTracer::CheckWriter() {
#ifndef NDEBUG
  // Single-writer tripwire, same contract as EventBus::Emit: claim the
  // tracer for this thread, tolerating same-thread nesting.  A second
  // thread here means the host's emission serialization is missing.
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  const bool claimed = writer_.compare_exchange_strong(
      expected, self, std::memory_order_acq_rel, std::memory_order_acquire);
  TWBG_DCHECK(claimed || expected == self);
  writer_.store(std::thread::id{}, std::memory_order_release);
#endif
}

Span& SpanTracer::OpenInternal(SpanKind kind, uint64_t parent,
                               uint32_t track) {
  const uint64_t id = next_id_++;
  Span& span = open_[id];
  span.id = id;
  span.parent = parent;
  span.kind = kind;
  span.track = track;
  span.open_ns = now();
  return span;
}

void SpanTracer::Deliver(Span span) {
  span.close_ns = now();
  if (span.close_ns < span.open_ns) span.close_ns = span.open_ns;
  ++emitted_;
  // Index-based like EventBus::Deliver: a nested Subscribe must not
  // invalidate the sweep.
  const size_t n = sinks_.size();
  for (size_t i = 0; i < n && i < sinks_.size(); ++i) {
    sinks_[i]->OnSpan(span);
  }
}

void SpanTracer::OpenTxn(lock::TransactionId tid, std::string_view txn_class) {
  if (!active()) return;
  CheckWriter();
  // A forgotten open span for this tid (host restarted the id) is
  // abandoned — it would otherwise parent the wrong incarnation.
  auto stale = txn_spans_.find(tid);
  if (stale != txn_spans_.end()) open_.erase(stale->second);
  Span& span = OpenInternal(SpanKind::kTxn, 0, 0);
  span.tid = tid;
  span.label.assign(txn_class);
  txn_spans_[tid] = span.id;
}

void SpanTracer::CloseTxn(lock::TransactionId tid, bool aborted) {
  if (!active()) return;
  CheckWriter();
  auto it = txn_spans_.find(tid);
  if (it == txn_spans_.end()) return;
  auto open = open_.find(it->second);
  txn_spans_.erase(it);
  if (open == open_.end()) return;
  Span span = std::move(open->second);
  open_.erase(open);
  span.aborted = aborted;
  Deliver(std::move(span));
}

uint64_t SpanTracer::TxnSpan(lock::TransactionId tid) const {
  auto it = txn_spans_.find(tid);
  return it == txn_spans_.end() ? 0 : it->second;
}

void SpanTracer::OpenWait(lock::TransactionId tid, uint64_t corr,
                          lock::ResourceId rid, lock::LockMode mode) {
  if (!active()) return;
  CheckWriter();
  auto stale = wait_spans_.find(tid);
  if (stale != wait_spans_.end()) open_.erase(stale->second);
  Span& span = OpenInternal(SpanKind::kWait, TxnSpan(tid), 0);
  span.tid = tid;
  span.rid = rid;
  span.mode = mode;
  span.corr = corr;
  wait_spans_[tid] = span.id;
}

void SpanTracer::CloseWait(lock::TransactionId tid, WaitOutcome outcome) {
  if (!active()) return;
  CheckWriter();
  auto it = wait_spans_.find(tid);
  if (it == wait_spans_.end()) return;
  auto open = open_.find(it->second);
  wait_spans_.erase(it);
  if (open == open_.end()) return;
  Span span = std::move(open->second);
  open_.erase(open);
  span.aborted = outcome != WaitOutcome::kGranted;
  Deliver(std::move(span));
}

uint64_t SpanTracer::Open(SpanKind kind, uint32_t track, uint64_t parent) {
  if (!active()) return 0;
  CheckWriter();
  Span& span = OpenInternal(kind, parent, track);
  if (kind == SpanKind::kPass) current_pass_ = span.id;
  return span.id;
}

void SpanTracer::SetContext(uint64_t id, lock::TransactionId tid,
                            lock::ResourceId rid, lock::LockMode mode) {
  if (id == 0 || !active()) return;
  CheckWriter();
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.tid = tid;
  it->second.rid = rid;
  it->second.mode = mode;
}

void SpanTracer::Close(uint64_t id, uint64_t a, uint64_t b,
                       std::string label) {
  if (!active()) return;
  CheckWriter();
  if (id == current_pass_) current_pass_ = 0;
  auto it = open_.find(id);
  if (it == open_.end()) {
    if (id != 0) ++dropped_closes_;
    return;
  }
  Span span = std::move(it->second);
  open_.erase(it);
  span.a = a;
  span.b = b;
  if (!label.empty()) span.label = std::move(label);
  Deliver(std::move(span));
}

}  // namespace twbg::obs
