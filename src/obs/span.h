// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Causal span tracing on top of the event bus: where the bus answers
// "what happened, in order", spans answer "where did the time go, and on
// whose behalf".  A span is a monotonic-clock [open_ns, close_ns)
// interval with a parent id, forming per-run trees:
//
//   txn T7 ──────────────────────────────────────────────┐
//     └─ wait R3/X (corr = PR-3 wait-span id) ───┐       │
//   pass #12 ─────────────────────────────────┐  │       │
//     ├─ publish shard 0..n                   │  │       │
//     ├─ step1 / step2                        │  │       │
//     ├─ resolution (victim, rule)            │  │       │
//     └─ apply                                │  │       │
//
// Wait spans reuse the PR-3 wait-span correlation ids (`Span::corr`), so
// a span file joins against an event JSONL file on that id.  Exporters
// (Perfetto timeline, blocked-time profile) and the scheduler-input
// estimator live in obs/span_sinks.h.
//
// Cost contract — identical to the event bus: a SpanTracer with no
// subscribed sink is inert (`Tracing()` is false, every method returns
// immediately), so instrumented hot paths pay one pointer test and
// nothing else.  Like the bus, the tracer is single-writer: concurrent
// hosts serialize emission behind their observability mutex (the
// concurrent service uses the same obs mutex that serializes bus
// emission); a debug tripwire enforces the contract.  Sinks receive each
// span exactly once, at close time, as a finished record — spans still
// open when the process exits are never delivered.

#ifndef TWBG_OBS_SPAN_H_
#define TWBG_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lock/lock_mode.h"
#include "lock/types.h"

namespace twbg::obs {

/// What a span measures.  The taxonomy mirrors the causal structure of a
/// run: transaction lifetimes parent their lock waits; detection passes
/// parent per-shard publishes, the Step 1/2 walk, per-cycle resolutions
/// and the validated apply.
enum class SpanKind : uint8_t {
  /// A transaction's lifetime, begin to commit/abort.  `tid` = the
  /// transaction; `label` = its class ("fresh", "restart", ...) for the
  /// blocked-time profiler; `aborted` set on abort.
  kTxn = 0,
  /// One lock wait, block to wakeup.  `tid` = the waiter, `rid`/`mode` =
  /// what it waits for, `corr` = the PR-3 wait-span correlation id the
  /// matching kLockBlock/kLockWakeup/kWaitEnd events carry, parent = the
  /// open kTxn span of `tid` when there is one; `aborted` set when the
  /// wait ended by abort or deadline cancel instead of a grant.
  kWait,
  /// One detection-resolution pass, Step 1 through Step 3.  Closed with
  /// `a` = cycles resolved and `b` = the pass's cost in host cost units
  /// (work units, nanoseconds) — the contract SpanEstimator reads its
  /// formation-rate numerator from.
  kPass,
  /// Pauseless mode: one shard's epoch-snapshot publish, under that
  /// shard's mutex.  `track` = the shard index, parent = the pass span.
  kPublish,
  /// Step 1 (TST build) of the parent pass.  `a` = edges reused from the
  /// PR-1 cache, `b` = edges recomputed.
  kStep1,
  /// Step 2 (directed walk) of the parent pass.  `a` = walk steps.
  kStep2,
  /// One resolved cycle inside the parent pass.  `tid` = the victim (or
  /// TDR-2 junction), `rid` = the repositioned resource (0 for TDR-1),
  /// `a` = cycle length, `b` = 1 for TDR-2 / 0 for TDR-1.  The matching
  /// kCyclePostMortem event carries this span's id in its `span` field —
  /// the join key between a timeline and the forensic wait chain.
  kResolution,
  /// Pauseless mode: the stamp-validated apply phase under all locks.
  /// `a` = decisions applied, `b` = decisions rejected as stale.
  kApply,
};

/// Number of span kinds (array sizing; keep in sync with SpanKind).
inline constexpr size_t kNumSpanKinds = 8;

/// Canonical lower-case name of `kind` ("txn", "wait", "pass", ...).
std::string_view ToString(SpanKind kind);

/// Inverse of ToString, or nullopt for an unknown name.  Used by the
/// span-file reader.
std::optional<SpanKind> SpanKindFromName(std::string_view name);

/// How a lock wait ended — folded into Span::aborted at close.
enum class WaitOutcome : uint8_t {
  kGranted = 0,   ///< the blocked request was granted
  kAborted,       ///< the waiter was aborted (deadlock victim, crash)
  kCancelled,     ///< the wait was cancelled (lock-wait deadline)
};

/// One closed span — what every SpanSink receives.  Fixed-size except for
/// `label` (empty on the hot paths).
struct Span {
  /// Tracer-unique id (> 0), assigned at open.
  uint64_t id = 0;
  /// Id of the enclosing span, 0 for a root.
  uint64_t parent = 0;
  /// What the interval measures (see SpanKind field conventions).
  SpanKind kind = SpanKind::kTxn;
  /// Transaction the span belongs to (0 when not transaction-scoped).
  lock::TransactionId tid = 0;
  /// Resource involved (kWait, kResolution; 0 otherwise).
  lock::ResourceId rid = 0;
  /// Requested mode of a kWait span (kNL otherwise).
  lock::LockMode mode = lock::LockMode::kNL;
  /// Timeline lane: the shard index for kPublish, 0 elsewhere (the
  /// Perfetto exporter derives lanes from kind/tid/track).
  uint32_t track = 0;
  /// Cross-stream correlation id: the PR-3 wait-span id for kWait spans
  /// (joins against the event stream), 0 otherwise.
  uint64_t corr = 0;
  /// Clock reading at open (nanoseconds under the default monotonic
  /// clock; host units under a manual clock — the simulator feeds ticks).
  uint64_t open_ns = 0;
  /// Clock reading at close (>= open_ns).
  uint64_t close_ns = 0;
  /// Kind-specific counter (see SpanKind).
  uint64_t a = 0;
  /// Kind-specific counter (see SpanKind).
  uint64_t b = 0;
  /// kTxn: closed by abort.  kWait: ended by abort or cancel, not grant.
  bool aborted = false;
  /// Free-form annotation: the txn class of a kTxn span, the victim
  /// rationale rule of a kResolution span.  Empty on hot paths.
  std::string label;

  /// Closed duration in clock units (0 for a malformed record).
  uint64_t duration() const {
    return close_ns >= open_ns ? close_ns - open_ns : 0;
  }
};

/// Receives every span once, at close, as a finished record.  Sinks run
/// synchronously inside the tracer's writer; they must not call back
/// into the tracer.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  /// Called once per span, at close time.
  virtual void OnSpan(const Span& span) = 0;
};

/// The span emission hub: owns the open-span table, assigns ids and
/// clock stamps, and fans closed spans out to subscribed sinks.
///
/// Thread contract (same as EventBus): single writer — hosts serialize
/// all Open*/Close*/set_time calls; a debug tripwire trips when two
/// threads race.  With no sinks subscribed every method is an immediate
/// no-op, so tracers may be wired unconditionally.
class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// True when at least one sink is subscribed — the cheap test emission
  /// sites guard on (via Tracing()).
  bool active() const { return !sinks_.empty(); }

  /// Adds `sink` (idempotent; null ignored).  Not owned.
  void Subscribe(SpanSink* sink);
  /// Removes `sink` if present.
  void Unsubscribe(SpanSink* sink);

  /// Switches the tracer to a manual clock and sets its reading — the
  /// discrete-tick simulator calls this once per tick so span intervals
  /// are deterministic tick counts; tests pin exact timelines with it.
  /// Never called = wall monotonic nanoseconds.
  void set_time(uint64_t now) {
    manual_clock_ = true;
    manual_now_ = now;
  }

  /// Current clock reading: the manual time when set_time was ever
  /// called, otherwise the monotonic wall clock in nanoseconds.
  uint64_t now() const;

  // -- Transaction lifetime spans -----------------------------------------

  /// Opens the kTxn span of `tid` (replacing any forgotten open one).
  /// `txn_class` becomes the span's label — the profiler's third frame.
  void OpenTxn(lock::TransactionId tid, std::string_view txn_class = {});

  /// Closes the open kTxn span of `tid`, if any (no-op otherwise).
  void CloseTxn(lock::TransactionId tid, bool aborted = false);

  /// Id of the open kTxn span of `tid`, 0 when none.
  uint64_t TxnSpan(lock::TransactionId tid) const;

  // -- Lock-wait spans ----------------------------------------------------

  /// Opens the kWait span of `tid` (a transaction waits on at most one
  /// request, so tid keys it), parented under its open kTxn span.
  /// `corr` is the PR-3 wait-span correlation id from the lock manager.
  void OpenWait(lock::TransactionId tid, uint64_t corr, lock::ResourceId rid,
                lock::LockMode mode);

  /// Closes the open kWait span of `tid` with `outcome`; no-op when no
  /// wait is open (e.g. the tracer attached mid-wait).
  void CloseWait(lock::TransactionId tid, WaitOutcome outcome);

  // -- Generic scoped spans (pass / publish / step / resolution / apply) --

  /// Opens a span and returns its id (0 when the tracer is inactive —
  /// Close() ignores id 0, so callers need not re-test).  An opened
  /// kPass span becomes current_pass() until closed.
  uint64_t Open(SpanKind kind, uint32_t track = 0, uint64_t parent = 0);

  /// Attaches transaction/resource context to an open span (kResolution
  /// spans name their victim this way).  No-op for id 0 / unknown ids.
  void SetContext(uint64_t id, lock::TransactionId tid, lock::ResourceId rid,
                  lock::LockMode mode = lock::LockMode::kNL);

  /// Closes span `id` with its kind-specific counters and delivers it to
  /// every sink.  No-op for id 0 / unknown ids (counted in
  /// dropped_closes()).
  void Close(uint64_t id, uint64_t a = 0, uint64_t b = 0,
             std::string label = {});

  /// Id of the most recently opened, still-open kPass span (0 when no
  /// pass is running) — in-walk emitters parent resolution spans here
  /// without plumbing the id through the engine.
  uint64_t current_pass() const { return current_pass_; }

  // -- Introspection ------------------------------------------------------

  /// Closed spans delivered to sinks so far.
  uint64_t emitted() const { return emitted_; }
  /// Spans currently open.
  size_t open_count() const { return open_.size(); }
  /// Close() calls that named an unknown (or 0) span id.
  uint64_t dropped_closes() const { return dropped_closes_; }

 private:
  // Stamps, registers and returns a new open span (tracer must be
  // active; id/open_ns filled in).
  Span& OpenInternal(SpanKind kind, uint64_t parent, uint32_t track);
  // Closes `span` (already removed from open_) and fans it out.
  void Deliver(Span span);
  // Debug single-writer tripwire (see EventBus::Emit).
  void CheckWriter();

  std::vector<SpanSink*> sinks_;
  std::unordered_map<uint64_t, Span> open_;
  std::unordered_map<lock::TransactionId, uint64_t> txn_spans_;
  std::unordered_map<lock::TransactionId, uint64_t> wait_spans_;
  uint64_t next_id_ = 1;
  uint64_t current_pass_ = 0;
  uint64_t emitted_ = 0;
  uint64_t dropped_closes_ = 0;
  bool manual_clock_ = false;
  uint64_t manual_now_ = 0;
#ifndef NDEBUG
  std::atomic<std::thread::id> writer_{};
#endif
};

/// The one-pointer-test guard instrumented code uses:
///   if (obs::Tracing(tracer_)) tracer_->OpenWait(...);
inline bool Tracing(const SpanTracer* tracer) {
  return tracer != nullptr && tracer->active();
}

}  // namespace twbg::obs

#endif  // TWBG_OBS_SPAN_H_
