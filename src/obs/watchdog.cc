// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "obs/watchdog.h"

#include <algorithm>
#include <utility>

namespace twbg::obs {

void Watchdog::OnEvent(const Event& event) {
  switch (event.kind) {
    case EventKind::kLockBlock:
      CloseSpanOf(event.tid);  // defensive: a txn has at most one wait
      open_[event.tid] = event.span;
      spans_[event.span] = {event.tid, event.rid, event.time, false};
      ++blocked_[event.rid];
      break;
    case EventKind::kLockConvert:
      if (event.a == 0) {  // blocked conversion opens a span too
        CloseSpanOf(event.tid);
        open_[event.tid] = event.span;
        spans_[event.span] = {event.tid, event.rid, event.time, false};
        ++blocked_[event.rid];
      }
      break;
    case EventKind::kLockWakeup:
    case EventKind::kTxnAbort:
    case EventKind::kLockRelease:
      // Wakeup closes the wait; abort/release also close it for victims
      // that died while still enqueued (their wakeup never comes).
      CloseSpanOf(event.tid);
      break;
    case EventKind::kTxnRestart:
      if (event.a >= options_.starvation_restarts) {
        Event alert;
        alert.kind = EventKind::kStarvation;
        alert.tid = event.tid;
        alert.a = event.a;
        alert.b = 2;
        alert.value = static_cast<double>(event.a);
        Raise(std::move(alert));
      }
      break;
    case EventKind::kStarvation:
    case EventKind::kConvoy:
      return;  // our own synthetic events: never feed back into checks
    default:
      break;
  }
  if (event.time >= last_check_ + options_.check_interval) Check(event.time);
}

void Watchdog::CloseSpanOf(lock::TransactionId tid) {
  auto it = open_.find(tid);
  if (it == open_.end()) return;
  auto span_it = spans_.find(it->second);
  if (span_it != spans_.end()) {
    const lock::ResourceId rid = span_it->second.rid;
    auto depth_it = blocked_.find(rid);
    if (depth_it != blocked_.end() && --depth_it->second == 0) {
      blocked_.erase(depth_it);
    }
    // A dissolved convoy may re-alert if it forms again.
    auto alerted_it = blocked_.find(rid);
    if (alerted_it == blocked_.end() ||
        alerted_it->second < options_.convoy_depth) {
      convoy_alerted_.erase(rid);
    }
    spans_.erase(span_it);
  }
  open_.erase(it);
}

void Watchdog::Check(uint64_t now) {
  last_check_ = now;
  for (auto& [span_id, span] : spans_) {
    if (span.flagged) continue;
    const uint64_t age = now - span.started;
    if (age < options_.starvation_age) continue;
    span.flagged = true;
    Event alert;
    alert.kind = EventKind::kStarvation;
    alert.tid = span.tid;
    alert.rid = span.rid;
    alert.span = span_id;
    alert.a = age;
    alert.b = 1;
    alert.value = static_cast<double>(age);
    Raise(std::move(alert));
  }
  std::vector<std::pair<lock::ResourceId, size_t>> hot;
  for (const auto& [rid, depth] : blocked_) {
    if (depth >= options_.convoy_depth) hot.emplace_back(rid, depth);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& lhs, const auto& rhs) {
    if (lhs.second != rhs.second) return lhs.second > rhs.second;
    return lhs.first < rhs.first;
  });
  if (hot.size() > options_.convoy_top_k) hot.resize(options_.convoy_top_k);
  for (size_t rank = 0; rank < hot.size(); ++rank) {
    const auto [rid, depth] = hot[rank];
    auto [it, inserted] = convoy_alerted_.emplace(rid, depth);
    if (!inserted) {
      if (depth <= it->second) continue;  // already alerted at this depth
      it->second = depth;
    }
    Event alert;
    alert.kind = EventKind::kConvoy;
    alert.rid = rid;
    alert.a = depth;
    alert.b = rank + 1;
    alert.value = static_cast<double>(depth);
    Raise(std::move(alert));
  }
}

void Watchdog::Raise(Event event) {
  if (event.kind == EventKind::kStarvation) {
    ++starvation_alerts_;
  } else {
    ++convoy_alerts_;
  }
  if (bus_ != nullptr) bus_->Emit(std::move(event));
}

}  // namespace twbg::obs
