// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Wire protocol of the network lock service (docs/SERVICE.md).
//
// Frame:    [u32 length][payload], length = byte count of the payload,
//           little-endian, capped at kMaxFrameBytes (a peer announcing
//           more is a protocol error, not an allocation request).
// Payload:  [u8 version][u8 type][u64 req_id][type-specific body]
// Response: the body starts with [u8 status][u32 retry_after_us]
//           [string message]; result fields follow only when status is
//           kOk.  retry_after_us is the backpressure hint carried by
//           kResourceExhausted (admission sheds and draining daemons).
// Scalars are little-endian fixed width; a string is [u32 length][bytes];
// a double is its IEEE-754 bit pattern as u64.
//
// Every decode path is bounds-checked and returns a Status — truncated
// frames, oversized lengths, unknown message types and out-of-domain
// enum values are clean errors, never UB (the codec fuzz test feeds the
// decoder random bytes).

#ifndef TWBG_NET_WIRE_H_
#define TWBG_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "txn/lock_client.h"

namespace twbg::net {

/// Protocol version this build speaks.  A frame with any other version
/// is rejected (versioned codec: bump on incompatible change).
inline constexpr uint8_t kWireVersion = 1;

/// Upper bound on a frame payload.  Responses carrying rendered views of
/// pathological tables dominate sizing; requests are tens of bytes.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Request/response kinds.  Values are wire format — append only.
enum class MsgType : uint8_t {
  kBegin = 1,
  kAcquire = 2,
  kAwait = 3,
  kCommit = 4,
  kAbort = 5,
  kState = 6,
  kSetCost = 7,
  kDetect = 8,
  kProbeDeadlock = 9,
  kView = 10,
  kStats = 11,
  kPing = 12,
};

/// Returns the canonical name ("begin", "acquire", ...) for logs.
std::string_view MsgTypeName(MsgType type);

/// A decoded client request.  Fields beyond `type`/`req_id` are only
/// meaningful for the types that carry them (see the encoding in
/// wire.cc); unused fields decode to zero values.
struct Request {
  MsgType type = MsgType::kPing;
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t req_id = 0;
  lock::TransactionId tid = 0;
  lock::ResourceId rid = 0;
  lock::LockMode mode = lock::LockMode::kS;
  double cost = 0.0;
  ServiceView view = ServiceView::kTable;
};

/// A decoded server response.  `code`/`retry_after_us`/`message` mirror
/// the Status of the operation; result fields are populated only when
/// `code` is kOk (and only those of the response's type).
struct Response {
  MsgType type = MsgType::kPing;
  uint64_t req_id = 0;
  StatusCode code = StatusCode::kOk;
  /// Backpressure hint, microseconds (kResourceExhausted only).
  uint32_t retry_after_us = 0;
  std::string message;

  lock::TransactionId tid = 0;              // kBegin
  lock::RequestOutcome outcome =            // kAcquire
      lock::RequestOutcome::kGranted;
  txn::TxnState txn_state = txn::TxnState::kActive;  // kState
  bool truth = false;                       // kProbeDeadlock
  std::string text;                         // kView
  DetectResult detect;                      // kDetect
  ClientStats stats;                        // kStats
};

/// Serializes a complete frame (length prefix included).
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Decodes a frame *payload* (length prefix already stripped by
/// FrameReader).  InvalidArgument on any malformed input.
Status DecodeRequest(std::string_view payload, Request* out);
Status DecodeResponse(std::string_view payload, Response* out);

/// Rebuilds the operation's Status from a response header.
Status ResponseStatus(const Response& response);

/// Maps a Status back onto the wire header fields of `response`.
void SetResponseStatus(const Status& status, uint32_t retry_after_us,
                       Response* response);

/// Incremental frame splitter: feed raw bytes as they arrive, pull
/// complete payloads out.  Next() returns
///   kOk               a complete payload was extracted into *payload;
///   kWouldBlock       more bytes are needed (not an error);
///   kInvalidArgument  the stream is corrupt (oversized length) — the
///                     connection must be dropped, no resync exists.
class FrameReader {
 public:
  void Append(const char* data, size_t size);
  Status Next(std::string* payload);
  /// Bytes buffered but not yet returned as payloads.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace twbg::net

#endif  // TWBG_NET_WIRE_H_
