// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "net/tcp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace twbg::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(
      common::Format("%s: %s", what, std::strerror(errno)));
}

timeval ToTimeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

}  // namespace

Status ClientOptions::Validate() const {
  if (host.empty()) {
    return Status::InvalidArgument("host must not be empty");
  }
  if (port == 0) {
    return Status::InvalidArgument("port must be set");
  }
  if (connect_timeout.count() < 0 || request_timeout.count() < 0) {
    return Status::InvalidArgument("timeouts must not be negative");
  }
  return Status::OK();
}

Result<std::unique_ptr<TcpClient>> TcpClient::Create(ClientOptions options) {
  TWBG_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<TcpClient> client(new TcpClient(std::move(options)));
  TWBG_RETURN_IF_ERROR(client->Connect());
  return client;
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) close(fd_);
}

Status TcpClient::Connect() {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  if (options_.connect_timeout.count() > 0) {
    // SO_SNDTIMEO bounds a blocking connect() on Linux.
    const timeval tv = ToTimeval(options_.connect_timeout);
    setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        common::Format("cannot parse host '%s'", options_.host.c_str()));
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("connect");
  }
  const timeval send_tv = ToTimeval(std::chrono::milliseconds(0));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  if (options_.request_timeout.count() > 0) {
    const timeval tv = ToTimeval(options_.request_timeout);
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status TcpClient::RoundTrip(const Request& request, Response* response) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  Request stamped = request;
  stamped.req_id = next_req_id_++;
  const std::string frame = EncodeRequest(stamped);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  std::string payload;
  while (true) {
    Status next = reader_.Next(&payload);
    if (next.ok()) break;
    if (!next.IsWouldBlock()) return next;  // corrupt stream
    char chunk[16 * 1024];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      return Status::Internal("connection closed by the server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "timed out waiting for the server's response");
      }
      return Errno("read");
    }
    reader_.Append(chunk, static_cast<size_t>(n));
  }
  TWBG_RETURN_IF_ERROR(DecodeResponse(payload, response));
  if (response->req_id != stamped.req_id) {
    return Status::Internal(common::Format(
        "response correlation mismatch: sent %llu, got %llu",
        static_cast<unsigned long long>(stamped.req_id),
        static_cast<unsigned long long>(response->req_id)));
  }
  if (response->code == StatusCode::kResourceExhausted) {
    last_retry_after_us_ = response->retry_after_us;
  }
  return Status::OK();
}

Result<lock::TransactionId> TcpClient::Begin() {
  Request request;
  request.type = MsgType::kBegin;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.tid;
}

Result<lock::RequestOutcome> TcpClient::Acquire(lock::TransactionId tid,
                                                lock::ResourceId rid,
                                                lock::LockMode mode) {
  Request request;
  request.type = MsgType::kAcquire;
  request.tid = tid;
  request.rid = rid;
  request.mode = mode;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.outcome;
}

Status TcpClient::Await(lock::TransactionId tid) {
  Request request;
  request.type = MsgType::kAwait;
  request.tid = tid;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  return ResponseStatus(response);
}

Status TcpClient::Commit(lock::TransactionId tid) {
  Request request;
  request.type = MsgType::kCommit;
  request.tid = tid;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  return ResponseStatus(response);
}

Status TcpClient::Abort(lock::TransactionId tid) {
  Request request;
  request.type = MsgType::kAbort;
  request.tid = tid;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  return ResponseStatus(response);
}

Result<txn::TxnState> TcpClient::State(lock::TransactionId tid) {
  Request request;
  request.type = MsgType::kState;
  request.tid = tid;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.txn_state;
}

Status TcpClient::SetCost(lock::TransactionId tid, double cost) {
  Request request;
  request.type = MsgType::kSetCost;
  request.tid = tid;
  request.cost = cost;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  return ResponseStatus(response);
}

Result<DetectResult> TcpClient::Detect() {
  Request request;
  request.type = MsgType::kDetect;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.detect;
}

Result<bool> TcpClient::HasDeadlock() {
  Request request;
  request.type = MsgType::kProbeDeadlock;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.truth;
}

Result<std::string> TcpClient::View(ServiceView view) {
  Request request;
  request.type = MsgType::kView;
  request.view = view;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.text;
}

Result<ClientStats> TcpClient::Stats() {
  Request request;
  request.type = MsgType::kStats;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  TWBG_RETURN_IF_ERROR(ResponseStatus(response));
  return response.stats;
}

Status TcpClient::Ping() {
  Request request;
  request.type = MsgType::kPing;
  Response response;
  TWBG_RETURN_IF_ERROR(RoundTrip(request, &response));
  return ResponseStatus(response);
}

}  // namespace twbg::net
