// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "net/wire.h"

#include <cstring>

#include "common/string_util.h"

namespace twbg::net {

namespace {

// -- primitive writers (little-endian, append-to-string) --

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out->append(v.data(), v.size());
}

// -- primitive readers (bounds-checked cursor) --

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Status U8(uint8_t* out) {
    if (data_.size() - pos_ < 1) return Truncated();
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status U32(uint32_t* out) {
    if (data_.size() - pos_ < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }
  Status U64(uint64_t* out) {
    if (data_.size() - pos_ < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }
  Status F64(double* out) {
    uint64_t bits = 0;
    TWBG_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::OK();
  }
  Status String(std::string* out) {
    uint32_t size = 0;
    TWBG_RETURN_IF_ERROR(U32(&size));
    if (size > kMaxFrameBytes || data_.size() - pos_ < size) {
      return Truncated();
    }
    out->assign(data_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated frame payload");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// -- enum validation --

Status CheckType(uint8_t raw, MsgType* out) {
  if (raw < static_cast<uint8_t>(MsgType::kBegin) ||
      raw > static_cast<uint8_t>(MsgType::kPing)) {
    return Status::InvalidArgument(
        common::Format("unknown message type %u", raw));
  }
  *out = static_cast<MsgType>(raw);
  return Status::OK();
}

Status CheckMode(uint8_t raw, lock::LockMode* out) {
  if (raw >= lock::kNumLockModes) {
    return Status::InvalidArgument(common::Format("bad lock mode %u", raw));
  }
  *out = static_cast<lock::LockMode>(raw);
  return Status::OK();
}

Status CheckView(uint8_t raw, ServiceView* out) {
  if (raw > static_cast<uint8_t>(ServiceView::kCosts)) {
    return Status::InvalidArgument(common::Format("bad view %u", raw));
  }
  *out = static_cast<ServiceView>(raw);
  return Status::OK();
}

Status CheckOutcome(uint8_t raw, lock::RequestOutcome* out) {
  if (raw > static_cast<uint8_t>(lock::RequestOutcome::kBlocked)) {
    return Status::InvalidArgument(common::Format("bad outcome %u", raw));
  }
  *out = static_cast<lock::RequestOutcome>(raw);
  return Status::OK();
}

Status CheckTxnState(uint8_t raw, txn::TxnState* out) {
  if (raw > static_cast<uint8_t>(txn::TxnState::kAborted)) {
    return Status::InvalidArgument(common::Format("bad txn state %u", raw));
  }
  *out = static_cast<txn::TxnState>(raw);
  return Status::OK();
}

Status CheckStatusCode(uint8_t raw, StatusCode* out) {
  if (raw > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument(
        common::Format("bad status code %u", raw));
  }
  *out = static_cast<StatusCode>(raw);
  return Status::OK();
}

// Prepends the length once the payload is complete.
std::string Frame(std::string payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

}  // namespace

std::string_view MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kBegin: return "begin";
    case MsgType::kAcquire: return "acquire";
    case MsgType::kAwait: return "await";
    case MsgType::kCommit: return "commit";
    case MsgType::kAbort: return "abort";
    case MsgType::kState: return "state";
    case MsgType::kSetCost: return "setcost";
    case MsgType::kDetect: return "detect";
    case MsgType::kProbeDeadlock: return "probe-deadlock";
    case MsgType::kView: return "view";
    case MsgType::kStats: return "stats";
    case MsgType::kPing: return "ping";
  }
  return "?";
}

std::string EncodeRequest(const Request& request) {
  std::string payload;
  PutU8(&payload, kWireVersion);
  PutU8(&payload, static_cast<uint8_t>(request.type));
  PutU64(&payload, request.req_id);
  switch (request.type) {
    case MsgType::kAcquire:
      PutU32(&payload, request.tid);
      PutU32(&payload, request.rid);
      PutU8(&payload, static_cast<uint8_t>(request.mode));
      break;
    case MsgType::kAwait:
    case MsgType::kCommit:
    case MsgType::kAbort:
    case MsgType::kState:
      PutU32(&payload, request.tid);
      break;
    case MsgType::kSetCost:
      PutU32(&payload, request.tid);
      PutF64(&payload, request.cost);
      break;
    case MsgType::kView:
      PutU8(&payload, static_cast<uint8_t>(request.view));
      break;
    case MsgType::kBegin:
    case MsgType::kDetect:
    case MsgType::kProbeDeadlock:
    case MsgType::kStats:
    case MsgType::kPing:
      break;  // no body
  }
  return Frame(std::move(payload));
}

Status DecodeRequest(std::string_view payload, Request* out) {
  Cursor cursor(payload);
  uint8_t version = 0;
  TWBG_RETURN_IF_ERROR(cursor.U8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument(common::Format(
        "unsupported protocol version %u (this build speaks %u)", version,
        kWireVersion));
  }
  uint8_t raw_type = 0;
  TWBG_RETURN_IF_ERROR(cursor.U8(&raw_type));
  *out = Request{};
  TWBG_RETURN_IF_ERROR(CheckType(raw_type, &out->type));
  TWBG_RETURN_IF_ERROR(cursor.U64(&out->req_id));
  switch (out->type) {
    case MsgType::kAcquire: {
      TWBG_RETURN_IF_ERROR(cursor.U32(&out->tid));
      TWBG_RETURN_IF_ERROR(cursor.U32(&out->rid));
      uint8_t mode = 0;
      TWBG_RETURN_IF_ERROR(cursor.U8(&mode));
      TWBG_RETURN_IF_ERROR(CheckMode(mode, &out->mode));
      break;
    }
    case MsgType::kAwait:
    case MsgType::kCommit:
    case MsgType::kAbort:
    case MsgType::kState:
      TWBG_RETURN_IF_ERROR(cursor.U32(&out->tid));
      break;
    case MsgType::kSetCost:
      TWBG_RETURN_IF_ERROR(cursor.U32(&out->tid));
      TWBG_RETURN_IF_ERROR(cursor.F64(&out->cost));
      break;
    case MsgType::kView: {
      uint8_t view = 0;
      TWBG_RETURN_IF_ERROR(cursor.U8(&view));
      TWBG_RETURN_IF_ERROR(CheckView(view, &out->view));
      break;
    }
    case MsgType::kBegin:
    case MsgType::kDetect:
    case MsgType::kProbeDeadlock:
    case MsgType::kStats:
    case MsgType::kPing:
      break;
  }
  if (!cursor.exhausted()) {
    return Status::InvalidArgument("trailing bytes after request body");
  }
  return Status::OK();
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  PutU8(&payload, kWireVersion);
  PutU8(&payload, static_cast<uint8_t>(response.type));
  PutU64(&payload, response.req_id);
  PutU8(&payload, static_cast<uint8_t>(response.code));
  PutU32(&payload, response.retry_after_us);
  PutString(&payload, response.message);
  if (response.code == StatusCode::kOk) {
    switch (response.type) {
      case MsgType::kBegin:
        PutU32(&payload, response.tid);
        break;
      case MsgType::kAcquire:
        PutU8(&payload, static_cast<uint8_t>(response.outcome));
        break;
      case MsgType::kState:
        PutU8(&payload, static_cast<uint8_t>(response.txn_state));
        break;
      case MsgType::kProbeDeadlock:
        PutU8(&payload, response.truth ? 1 : 0);
        break;
      case MsgType::kView:
        PutString(&payload, response.text);
        break;
      case MsgType::kDetect: {
        PutString(&payload, response.detect.report);
        PutU32(&payload,
               static_cast<uint32_t>(response.detect.aborted.size()));
        for (lock::TransactionId tid : response.detect.aborted) {
          PutU32(&payload, tid);
        }
        PutU64(&payload, response.detect.cycles_detected);
        PutString(&payload, response.detect.post_mortems);
        break;
      }
      case MsgType::kStats:
        PutU64(&payload, response.stats.live_txns);
        PutU64(&payload, response.stats.deadlock_victims);
        PutU64(&payload, response.stats.snapshot_epoch);
        PutU64(&payload, response.stats.num_shards);
        PutU64(&payload, response.stats.admission_rejects);
        PutU64(&payload, response.stats.resolutions_rejected);
        PutU64(&payload, response.stats.sessions_active);
        PutU64(&payload, response.stats.sessions_total);
        PutU64(&payload, response.stats.orphan_aborts);
        break;
      case MsgType::kAwait:
      case MsgType::kCommit:
      case MsgType::kAbort:
      case MsgType::kSetCost:
      case MsgType::kPing:
        break;  // status-only responses
    }
  }
  return Frame(std::move(payload));
}

Status DecodeResponse(std::string_view payload, Response* out) {
  Cursor cursor(payload);
  uint8_t version = 0;
  TWBG_RETURN_IF_ERROR(cursor.U8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument(common::Format(
        "unsupported protocol version %u (this build speaks %u)", version,
        kWireVersion));
  }
  uint8_t raw_type = 0;
  TWBG_RETURN_IF_ERROR(cursor.U8(&raw_type));
  *out = Response{};
  TWBG_RETURN_IF_ERROR(CheckType(raw_type, &out->type));
  TWBG_RETURN_IF_ERROR(cursor.U64(&out->req_id));
  uint8_t raw_code = 0;
  TWBG_RETURN_IF_ERROR(cursor.U8(&raw_code));
  TWBG_RETURN_IF_ERROR(CheckStatusCode(raw_code, &out->code));
  TWBG_RETURN_IF_ERROR(cursor.U32(&out->retry_after_us));
  TWBG_RETURN_IF_ERROR(cursor.String(&out->message));
  if (out->code == StatusCode::kOk) {
    switch (out->type) {
      case MsgType::kBegin:
        TWBG_RETURN_IF_ERROR(cursor.U32(&out->tid));
        break;
      case MsgType::kAcquire: {
        uint8_t outcome = 0;
        TWBG_RETURN_IF_ERROR(cursor.U8(&outcome));
        TWBG_RETURN_IF_ERROR(CheckOutcome(outcome, &out->outcome));
        break;
      }
      case MsgType::kState: {
        uint8_t state = 0;
        TWBG_RETURN_IF_ERROR(cursor.U8(&state));
        TWBG_RETURN_IF_ERROR(CheckTxnState(state, &out->txn_state));
        break;
      }
      case MsgType::kProbeDeadlock: {
        uint8_t truth = 0;
        TWBG_RETURN_IF_ERROR(cursor.U8(&truth));
        out->truth = truth != 0;
        break;
      }
      case MsgType::kView:
        TWBG_RETURN_IF_ERROR(cursor.String(&out->text));
        break;
      case MsgType::kDetect: {
        TWBG_RETURN_IF_ERROR(cursor.String(&out->detect.report));
        uint32_t count = 0;
        TWBG_RETURN_IF_ERROR(cursor.U32(&count));
        if (count > kMaxFrameBytes / sizeof(uint32_t)) {
          return Status::InvalidArgument("aborted-victim list too long");
        }
        out->detect.aborted.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          uint32_t tid = 0;
          TWBG_RETURN_IF_ERROR(cursor.U32(&tid));
          out->detect.aborted.push_back(tid);
        }
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->detect.cycles_detected));
        TWBG_RETURN_IF_ERROR(cursor.String(&out->detect.post_mortems));
        break;
      }
      case MsgType::kStats:
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.live_txns));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.deadlock_victims));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.snapshot_epoch));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.num_shards));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.admission_rejects));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.resolutions_rejected));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.sessions_active));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.sessions_total));
        TWBG_RETURN_IF_ERROR(cursor.U64(&out->stats.orphan_aborts));
        break;
      case MsgType::kAwait:
      case MsgType::kCommit:
      case MsgType::kAbort:
      case MsgType::kSetCost:
      case MsgType::kPing:
        break;
    }
  }
  if (!cursor.exhausted()) {
    return Status::InvalidArgument("trailing bytes after response body");
  }
  return Status::OK();
}

Status ResponseStatus(const Response& response) {
  std::string message = response.message;
  switch (response.code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kWouldBlock:
      return Status::WouldBlock(std::move(message));
    case StatusCode::kDeadlockVictim:
      return Status::DeadlockVictim(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
  }
  return Status::Internal("unrepresentable status code");
}

void SetResponseStatus(const Status& status, uint32_t retry_after_us,
                       Response* response) {
  response->code = status.code();
  response->message = std::string(status.message());
  response->retry_after_us =
      status.IsResourceExhausted() ? retry_after_us : 0;
}

void FrameReader::Append(const char* data, size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

Status FrameReader::Next(std::string* payload) {
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) {
    return Status::WouldBlock("incomplete frame header");
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(buffer_[consumed_ + i]))
              << (8 * i);
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(common::Format(
        "frame length %u exceeds the %u-byte cap", length, kMaxFrameBytes));
  }
  if (available < 4 + static_cast<size_t>(length)) {
    return Status::WouldBlock("incomplete frame payload");
  }
  payload->assign(buffer_.data() + consumed_ + 4, length);
  consumed_ += 4 + static_cast<size_t>(length);
  return Status::OK();
}

}  // namespace twbg::net
