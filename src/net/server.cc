// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Reactor + worker-pool implementation of net::Server (see server.h for
// the architecture).  Lock discipline: `mu_` guards every structure
// shared between the reactor and the workers (session queues, the run
// queue, counters); service calls NEVER run under mu_; the socket-side
// session fields (FrameReader, pending_write) belong to the reactor
// alone and need no lock.

#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/string_util.h"

namespace twbg::net {

namespace {

constexpr size_t kMaxWorkerThreads = 64;
constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const char* what) {
  return Status::Internal(
      common::Format("%s: %s", what, std::strerror(errno)));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Status ServerOptions::Validate() const {
  if (host.empty()) {
    return Status::InvalidArgument("host must not be empty");
  }
  if (worker_threads < 1 || worker_threads > kMaxWorkerThreads) {
    return Status::InvalidArgument(
        common::Format("worker_threads must be in [1, %zu], got %zu",
                       kMaxWorkerThreads, worker_threads));
  }
  if (max_sessions == 0) {
    return Status::InvalidArgument("max_sessions must be positive");
  }
  if (max_inflight_per_session == 0) {
    return Status::InvalidArgument(
        "max_inflight_per_session must be positive");
  }
  if (await_poll.count() <= 0) {
    return Status::InvalidArgument("await_poll must be positive");
  }
  if (drain_deadline.count() < 0) {
    return Status::InvalidArgument("drain_deadline must not be negative");
  }
  if (retry_after.count() < 0) {
    return Status::InvalidArgument("retry_after must not be negative");
  }
  return Status::OK();
}

class Server::Impl {
 public:
  Impl(ServerOptions options, txn::ConcurrentLockService* service)
      : options_(std::move(options)), service_(service) {}

  ~Impl() {
    Stop();
    Join();
    {
      std::scoped_lock lock(mu_);
      stop_workers_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    if (listen_fd_ >= 0) close(listen_fd_);
  }

  Status Start() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Errno("socket");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument(
          common::Format("cannot parse host '%s'", options_.host.c_str()));
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return Errno("bind");
    }
    if (listen(listen_fd_, SOMAXCONN) < 0) return Errno("listen");
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
      return Errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
    TWBG_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return Errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      return Errno("epoll_ctl(listen)");
    }
    ev.data.fd = wake_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      return Errno("epoll_ctl(wake)");
    }

    for (size_t i = 0; i < options_.worker_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    reactor_ = std::thread([this] { ReactorLoop(); });
    return Status::OK();
  }

  uint16_t port() const { return port_; }

  void BeginDrain() { StartDrain(options_.drain_deadline); }

  void Stop() { StartDrain(std::chrono::milliseconds(0)); }

  void Join() {
    if (reactor_.joinable()) reactor_.join();
  }

  ServerStats stats() const {
    std::scoped_lock lock(mu_);
    ServerStats out = stats_;
    out.sessions_active = sessions_.size();
    out.draining = draining_.load(std::memory_order_relaxed);
    return out;
  }

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

 private:
  // One TCP connection.  See the file comment for field ownership.
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    // Reactor-only.
    FrameReader reader;
    std::string pending_write;
    bool want_write = false;
    // Guarded by Impl::mu_.
    std::deque<Request> inbox;
    std::string out;
    bool executing = false;
    bool awaiting = false;
    bool closing = false;
    bool cleaned = false;
    uint64_t await_req_id = 0;
    lock::TransactionId await_tid = 0;
    std::set<lock::TransactionId> txns;
  };

  // What one executed request did, applied back under mu_ by the worker.
  struct ExecResult {
    Response response;
    bool respond = true;
    bool park = false;
    lock::TransactionId began = 0;
    lock::TransactionId terminated = 0;
  };

  uint32_t RetryAfterUs() const {
    return static_cast<uint32_t>(options_.retry_after.count());
  }

  void StartDrain(std::chrono::milliseconds deadline) {
    {
      std::scoped_lock lock(mu_);
      const bool was_draining =
          draining_.exchange(true, std::memory_order_relaxed);
      const auto at = std::chrono::steady_clock::now() + deadline;
      // A Stop after BeginDrain tightens the deadline; never loosens it.
      if (!was_draining || at < drain_deadline_at_) drain_deadline_at_ = at;
      if (listen_fd_ >= 0) {
        // Closing the listen socket is the "stop accepting" edge: the
        // epoll registration dies with the fd and later connects are
        // refused by the kernel.
        close(listen_fd_);
        listen_fd_ = -1;
      }
    }
    WakeReactor();
  }

  void WakeReactor() {
    if (wake_fd_ < 0) return;
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }

  // ---- reactor side ----

  void ReactorLoop() {
    std::vector<epoll_event> events(128);
    while (true) {
      const int timeout_ms = ComputeTimeoutMs();
      const int n =
          epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                     timeout_ms);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          uint64_t drained = 0;
          while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        if (fd == listen_fd_) {
          AcceptAll();
          continue;
        }
        auto it = sessions_by_fd_.find(fd);
        if (it == sessions_by_fd_.end()) continue;
        const std::shared_ptr<Session>& session = it->second;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          MarkClosing(*session);
          continue;
        }
        if (events[i].events & EPOLLIN) OnReadable(*session);
        if (events[i].events & EPOLLOUT) FlushWrites(*session);
      }
      if (Tick()) break;
    }
  }

  int ComputeTimeoutMs() const {
    // Pending awaits and drain progress are polled states; everything
    // else is event-driven (sockets, worker eventfd wakeups).
    bool poll;
    {
      std::scoped_lock lock(mu_);
      poll = awaiting_count_ > 0 || draining_.load(std::memory_order_relaxed);
    }
    if (!poll) return 100;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        options_.await_poll)
                        .count();
    return ms < 1 ? 1 : static_cast<int>(ms);
  }

  void AcceptAll() {
    while (true) {
      const int fd =
          accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or listen fd already closed by drain
      bool reject;
      {
        std::scoped_lock lock(mu_);
        reject = sessions_.size() >= options_.max_sessions ||
                 draining_.load(std::memory_order_relaxed);
      }
      if (reject) {
        close(fd);
        continue;
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto session = std::make_shared<Session>();
      session->fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        close(fd);
        continue;
      }
      sessions_by_fd_[fd] = session;
      std::scoped_lock lock(mu_);
      session->id = ++stats_.sessions_total;
      sessions_[fd] = session;
    }
  }

  void OnReadable(Session& session) {
    char chunk[kReadChunk];
    while (true) {
      const ssize_t n = read(session.fd, chunk, sizeof(chunk));
      if (n > 0) {
        session.reader.Append(chunk, static_cast<size_t>(n));
        if (!DrainFrames(session)) return;  // protocol error: closing
        if (static_cast<size_t>(n) < sizeof(chunk)) return;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      MarkClosing(session);  // EOF or hard error: the peer is gone
      return;
    }
  }

  // Splits and enqueues every complete frame.  Returns false when the
  // stream turned out to be corrupt and the session is now closing.
  bool DrainFrames(Session& session) {
    std::string payload;
    while (true) {
      Status next = session.reader.Next(&payload);
      if (next.IsWouldBlock()) return true;
      if (!next.ok()) {
        ProtocolError(session, next, /*req_id=*/0);
        return false;
      }
      Request request;
      Status decoded = DecodeRequest(payload, &request);
      if (!decoded.ok()) {
        ProtocolError(session, decoded, /*req_id=*/0);
        return false;
      }
      std::scoped_lock lock(mu_);
      if (session.closing) return false;
      ++stats_.requests;
      const size_t inflight = session.inbox.size() +
                              (session.executing ? 1 : 0) +
                              (session.awaiting ? 1 : 0);
      if (inflight >= options_.max_inflight_per_session) {
        ++stats_.inflight_rejects;
        Response shed;
        shed.type = request.type;
        shed.req_id = request.req_id;
        SetResponseStatus(
            Status::ResourceExhausted(common::Format(
                "session in-flight limit (%zu) reached; retry after backoff",
                options_.max_inflight_per_session)),
            RetryAfterUs(), &shed);
        session.out += EncodeResponse(shed);
        ++stats_.responses;
        continue;
      }
      session.inbox.push_back(std::move(request));
      ScheduleLocked(sessions_[session.fd]);
    }
  }

  // A malformed frame: answer with the decode error (best effort — the
  // correlation id may be unrecoverable) and drop the connection; there
  // is no way to resynchronize a corrupt length-prefixed stream.
  void ProtocolError(Session& session, const Status& error, uint64_t req_id) {
    std::scoped_lock lock(mu_);
    ++stats_.protocol_errors;
    Response response;
    response.type = MsgType::kPing;
    response.req_id = req_id;
    SetResponseStatus(error, 0, &response);
    session.out += EncodeResponse(response);
    ++stats_.responses;
    MarkClosingLocked(session);
  }

  void MarkClosing(Session& session) {
    std::scoped_lock lock(mu_);
    MarkClosingLocked(session);
  }

  void MarkClosingLocked(Session& session) {
    if (session.closing) return;
    session.closing = true;
    if (session.awaiting) {
      session.awaiting = false;
      --awaiting_count_;
    }
    auto it = sessions_.find(session.fd);
    if (it != sessions_.end()) ScheduleLocked(it->second);
  }

  // Hands the session to a worker when it has runnable work and no
  // worker owns it.  mu_ held.
  void ScheduleLocked(const std::shared_ptr<Session>& session) {
    if (session->executing || session->awaiting || session->cleaned) return;
    if (session->inbox.empty() && !session->closing) return;
    session->executing = true;
    run_queue_.push_back(session);
    work_cv_.notify_one();
  }

  // Moves worker-produced bytes into the reactor-owned write buffer and
  // pushes them into the socket.  Arms/disarms EPOLLOUT as needed.
  void FlushWrites(Session& session) {
    {
      std::scoped_lock lock(mu_);
      if (!session.out.empty()) {
        session.pending_write += session.out;
        session.out.clear();
      }
    }
    while (!session.pending_write.empty()) {
      const ssize_t n = write(session.fd, session.pending_write.data(),
                              session.pending_write.size());
      if (n > 0) {
        session.pending_write.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!session.want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = session.fd;
          epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session.fd, &ev);
          session.want_write = true;
        }
        return;
      }
      MarkClosing(session);  // write error: the peer is gone
      return;
    }
    if (session.want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = session.fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session.fd, &ev);
      session.want_write = false;
    }
  }

  // One reactor housekeeping round: resolve awaits, flush writes, retire
  // cleaned sessions, advance the drain.  Returns true when the server
  // is fully drained and the reactor should exit.
  bool Tick() {
    ResolveAwaits();

    std::vector<std::shared_ptr<Session>> flush;
    std::vector<std::shared_ptr<Session>> retire;
    {
      std::scoped_lock lock(mu_);
      for (auto& [fd, session] : sessions_) {
        if (session->cleaned) {
          retire.push_back(session);
        } else if (!session->out.empty()) {
          flush.push_back(session);
        }
      }
    }
    for (const auto& session : flush) FlushWrites(*session);
    for (const auto& session : retire) {
      FlushWrites(*session);  // last-gasp delivery of cleanup responses
      {
        std::scoped_lock lock(mu_);
        sessions_.erase(session->fd);
      }
      sessions_by_fd_.erase(session->fd);
      close(session->fd);
    }

    if (!draining_.load(std::memory_order_relaxed)) return false;
    return AdvanceDrain();
  }

  void ResolveAwaits() {
    struct Pending {
      std::shared_ptr<Session> session;
      lock::TransactionId tid;
      uint64_t req_id;
    };
    std::vector<Pending> pending;
    {
      std::scoped_lock lock(mu_);
      if (awaiting_count_ == 0) return;
      for (auto& [fd, session] : sessions_) {
        if (session->awaiting && !session->closing) {
          pending.push_back({session, session->await_tid,
                             session->await_req_id});
        }
      }
    }
    for (const Pending& p : pending) {
      Result<txn::TxnState> state = service_->State(p.tid);
      Response response;
      response.type = MsgType::kAwait;
      response.req_id = p.req_id;
      if (!state.ok()) {
        SetResponseStatus(state.status(), 0, &response);
      } else {
        switch (*state) {
          case txn::TxnState::kBlocked:
            continue;  // still waiting
          case txn::TxnState::kActive:
            break;  // granted: kOk
          case txn::TxnState::kAborted:
            SetResponseStatus(
                Status::DeadlockVictim(common::Format(
                    "T%u aborted as deadlock victim while waiting", p.tid)),
                0, &response);
            break;
          case txn::TxnState::kCommitted:
            SetResponseStatus(
                Status::FailedPrecondition(common::Format(
                    "T%u is committed; nothing to await", p.tid)),
                0, &response);
            break;
        }
      }
      std::scoped_lock lock(mu_);
      if (!p.session->awaiting || p.session->await_req_id != p.req_id) {
        continue;  // the session closed (or was cleaned) in the meantime
      }
      p.session->awaiting = false;
      --awaiting_count_;
      p.session->out += EncodeResponse(response);
      ++stats_.responses;
      ScheduleLocked(p.session);
    }
  }

  // Drain engine: once every in-flight transaction has terminated — or
  // the deadline has passed — close every session (their cleanup aborts
  // whatever is left).  Done when no session remains.
  bool AdvanceDrain() {
    std::vector<std::shared_ptr<Session>> open;
    {
      std::scoped_lock lock(mu_);
      if (sessions_.empty() && run_queue_.empty()) return true;
      for (auto& [fd, session] : sessions_) open.push_back(session);
    }
    const bool deadline_passed =
        std::chrono::steady_clock::now() >= drain_deadline_at_;
    bool any_live = false;
    if (!deadline_passed) {
      for (const auto& session : open) {
        std::vector<lock::TransactionId> txns;
        {
          std::scoped_lock lock(mu_);
          txns.assign(session->txns.begin(), session->txns.end());
          // A parked await or queued work counts as in-flight even if
          // its transaction is technically terminated already.
          if (session->awaiting || session->executing ||
              !session->inbox.empty()) {
            any_live = true;
          }
        }
        for (lock::TransactionId tid : txns) {
          Result<txn::TxnState> state = service_->State(tid);
          if (state.ok() && (*state == txn::TxnState::kActive ||
                             *state == txn::TxnState::kBlocked)) {
            any_live = true;
            break;
          }
        }
        if (any_live) break;
      }
      if (any_live) return false;  // keep waiting for clients to finish
    }
    std::scoped_lock lock(mu_);
    for (const auto& session : open) MarkClosingLocked(*session);
    return false;  // exit on a later tick, once every cleanup retired
  }

  // ---- worker side ----

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      work_cv_.wait(lock, [this] {
        return stop_workers_ || !run_queue_.empty();
      });
      if (run_queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      std::shared_ptr<Session> session = run_queue_.front();
      run_queue_.pop_front();
      // Drain this session's queue; `executing` keeps every other worker
      // (and the scheduler) away until we put it down.
      while (true) {
        if (session->closing) {
          lock.unlock();
          Cleanup(*session);
          lock.lock();
          session->cleaned = true;
          session->executing = false;
          break;
        }
        if (session->inbox.empty()) {
          session->executing = false;
          break;
        }
        Request request = std::move(session->inbox.front());
        session->inbox.pop_front();
        lock.unlock();
        ExecResult result = Execute(request);
        lock.lock();
        if (result.began != 0) session->txns.insert(result.began);
        if (result.terminated != 0) session->txns.erase(result.terminated);
        if (result.park && !session->closing) {
          session->awaiting = true;
          session->await_req_id = request.req_id;
          session->await_tid = request.tid;
          ++awaiting_count_;
          session->executing = false;
          break;
        }
        if (result.respond || result.park) {
          // A parked await on a session that started closing mid-call is
          // answered here instead of parking (the peer is gone anyway).
          if (result.park) {
            SetResponseStatus(
                Status::FailedPrecondition("session closing"), 0,
                &result.response);
          }
          session->out += EncodeResponse(result.response);
          ++stats_.responses;
        }
      }
      WakeReactor();  // new bytes to flush / a cleaned session to retire
    }
  }

  // Executes one decoded request against the service.  No locks held.
  ExecResult Execute(const Request& request) {
    ExecResult result;
    result.response.type = request.type;
    result.response.req_id = request.req_id;
    Response& response = result.response;
    switch (request.type) {
      case MsgType::kBegin: {
        if (draining_.load(std::memory_order_relaxed)) {
          SetResponseStatus(
              Status::ResourceExhausted(
                  "daemon is draining; no new transactions"),
              RetryAfterUs(), &response);
          break;
        }
        Result<lock::TransactionId> tid = service_->Begin();
        if (tid.ok()) {
          response.tid = *tid;
          result.began = *tid;
        } else {
          SetResponseStatus(tid.status(), RetryAfterUs(), &response);
        }
        break;
      }
      case MsgType::kAcquire: {
        Result<lock::RequestOutcome> outcome =
            service_->AcquireAsync(request.tid, request.rid, request.mode);
        if (outcome.ok()) {
          response.outcome = *outcome;
        } else {
          SetResponseStatus(outcome.status(), RetryAfterUs(), &response);
        }
        break;
      }
      case MsgType::kAwait: {
        Result<txn::TxnState> state = service_->State(request.tid);
        if (!state.ok()) {
          SetResponseStatus(state.status(), 0, &response);
          break;
        }
        switch (*state) {
          case txn::TxnState::kBlocked:
            result.park = true;
            result.respond = false;
            break;
          case txn::TxnState::kActive:
            break;  // kOk
          case txn::TxnState::kAborted:
            SetResponseStatus(
                Status::DeadlockVictim(common::Format(
                    "T%u aborted as deadlock victim while waiting",
                    request.tid)),
                0, &response);
            break;
          case txn::TxnState::kCommitted:
            SetResponseStatus(
                Status::FailedPrecondition(common::Format(
                    "T%u is committed; nothing to await", request.tid)),
                0, &response);
            break;
        }
        break;
      }
      case MsgType::kCommit: {
        Status committed = service_->Commit(request.tid);
        SetResponseStatus(committed, 0, &response);
        if (committed.ok()) result.terminated = request.tid;
        break;
      }
      case MsgType::kAbort: {
        Status aborted = service_->Abort(request.tid);
        SetResponseStatus(aborted, 0, &response);
        if (aborted.ok()) result.terminated = request.tid;
        break;
      }
      case MsgType::kState: {
        Result<txn::TxnState> state = service_->State(request.tid);
        if (state.ok()) {
          response.txn_state = *state;
        } else {
          SetResponseStatus(state.status(), 0, &response);
        }
        break;
      }
      case MsgType::kSetCost:
        SetResponseStatus(service_->SetCost(request.tid, request.cost), 0,
                          &response);
        break;
      case MsgType::kDetect:
        response.detect = txn::ProjectReport(service_->RunDetectionPass());
        break;
      case MsgType::kProbeDeadlock: {
        Result<bool> deadlocked = service_->HasDeadlock();
        if (deadlocked.ok()) {
          response.truth = *deadlocked;
        } else {
          SetResponseStatus(deadlocked.status(), 0, &response);
        }
        break;
      }
      case MsgType::kView: {
        Result<std::string> text = service_->RenderView(request.view);
        if (text.ok()) {
          response.text = *text;
        } else {
          SetResponseStatus(text.status(), 0, &response);
        }
        break;
      }
      case MsgType::kStats: {
        response.stats.live_txns = service_->live_transactions();
        response.stats.deadlock_victims = service_->deadlock_victims();
        response.stats.snapshot_epoch = service_->snapshot_epoch();
        response.stats.num_shards = service_->num_shards();
        response.stats.admission_rejects = service_->admission_rejects();
        response.stats.resolutions_rejected =
            service_->resolutions_rejected();
        std::scoped_lock lock(mu_);
        response.stats.sessions_active = sessions_.size();
        response.stats.sessions_total = stats_.sessions_total;
        response.stats.orphan_aborts = stats_.orphan_aborts;
        break;
      }
      case MsgType::kPing:
        break;  // kOk
    }
    return result;
  }

  // Dead-peer / drain cleanup, run as the session's final serialized
  // task: abort every live transaction the session owns (releasing its
  // locks and unblocking waiters), then answer anything still queued so
  // no request is silently dropped.  No locks held on entry.
  void Cleanup(Session& session) {
    std::vector<lock::TransactionId> txns;
    std::deque<Request> unanswered;
    bool was_awaiting = false;
    uint64_t await_req_id = 0;
    lock::TransactionId await_tid = 0;
    {
      std::scoped_lock lock(mu_);
      txns.assign(session.txns.begin(), session.txns.end());
      session.txns.clear();
      unanswered.swap(session.inbox);
      // MarkClosingLocked cleared `awaiting`, but the request itself
      // still needs its response.
      if (session.await_req_id != 0) {
        was_awaiting = true;
        await_req_id = session.await_req_id;
        await_tid = session.await_tid;
        session.await_req_id = 0;
      }
    }
    uint64_t aborted = 0;
    for (lock::TransactionId tid : txns) {
      // Abort is a no-op error for already-terminated transactions
      // (committed, or earlier deadlock victims) — only live ones count
      // as orphans.
      if (service_->Abort(tid).ok()) ++aborted;
    }
    std::string responses;
    if (was_awaiting) {
      Response response;
      response.type = MsgType::kAwait;
      response.req_id = await_req_id;
      SetResponseStatus(
          Status::DeadlockVictim(common::Format(
              "T%u aborted: session closed while waiting", await_tid)),
          0, &response);
      responses += EncodeResponse(response);
    }
    for (const Request& request : unanswered) {
      Response response;
      response.type = request.type;
      response.req_id = request.req_id;
      SetResponseStatus(
          Status::ResourceExhausted("session closing; request not executed"),
          RetryAfterUs(), &response);
      responses += EncodeResponse(response);
    }
    std::scoped_lock lock(mu_);
    stats_.orphan_aborts += aborted;
    stats_.responses += (was_awaiting ? 1 : 0) + unanswered.size();
    session.out += responses;
  }

  ServerOptions options_;
  txn::ConcurrentLockService* service_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::thread reactor_;
  std::vector<std::thread> workers_;

  // Reactor-only view of the sessions (lock-free lookups; the reactor is
  // the single mutator of both maps, but mutations also hold mu_ so
  // stats() can size sessions_ safely).
  std::map<int, std::shared_ptr<Session>> sessions_by_fd_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::map<int, std::shared_ptr<Session>> sessions_;
  std::deque<std::shared_ptr<Session>> run_queue_;
  size_t awaiting_count_ = 0;
  bool stop_workers_ = false;
  ServerStats stats_;

  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point drain_deadline_at_{};
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Create(
    ServerOptions options, txn::ConcurrentLockService* service) {
  TWBG_RETURN_IF_ERROR(options.Validate());
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  if (service->options().detection_mode != txn::DetectionMode::kPeriodic) {
    return Status::InvalidArgument(
        "the daemon requires a kPeriodic service (non-blocking acquires "
        "need AcquireAsync)");
  }
  return std::unique_ptr<Server>(
      new Server(std::make_unique<Impl>(std::move(options), service)));
}

Status Server::Start() { return impl_->Start(); }
uint16_t Server::port() const { return impl_->port(); }
void Server::BeginDrain() { impl_->BeginDrain(); }
void Server::Stop() { impl_->Stop(); }
void Server::Join() { impl_->Join(); }
ServerStats Server::stats() const { return impl_->stats(); }
bool Server::draining() const { return impl_->draining(); }

}  // namespace twbg::net
