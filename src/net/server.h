// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// twbg-serverd's engine: a TCP front end over ConcurrentLockService.
//
// Architecture (docs/SERVICE.md has the full protocol):
//
//   * One reactor thread owns the sockets: epoll-driven accept, read,
//     frame reassembly (wire::FrameReader) and write flushing.  It never
//     calls into the lock service.
//   * A small worker pool executes decoded requests.  Requests of one
//     session run strictly FIFO and never concurrently (an `executing`
//     flag hands the whole per-session queue to one worker at a time),
//     so no two service calls for the same transaction can race — which
//     is also what makes dead-peer cleanup safe: it runs as the
//     session's final serialized task.
//   * Blocked acquires never park a thread: Acquire maps to
//     AcquireAsync, and an Await whose transaction is still kBlocked
//     parks the *session* on the reactor's pending-await list, polled
//     every await_poll until the detector or a release flips the
//     transaction's state.  One reactor thread multiplexes every
//     blocked client.
//
// Session model: one TCP connection == one session.  Transactions begun
// on a session belong to it; when the peer dies (EOF, read/write error,
// or a protocol violation) every live transaction of the session is
// aborted so an orphaned holder cannot wedge the TWBG.
//
// Backpressure: admission sheds from the service (kResourceExhausted)
// and the per-session in-flight cap surface as responses carrying
// `retry_after_us` — a wire-level retry-after, never a dropped request.
//
// Drain (SIGTERM in twbg-serverd): BeginDrain stops accepting, rejects
// new Begins with kResourceExhausted("draining"), lets in-flight
// transactions finish for up to drain_deadline, then aborts the
// stragglers and closes every session.  No request is silently dropped:
// everything received gets a response before its connection closes.

#ifndef TWBG_NET_SERVER_H_
#define TWBG_NET_SERVER_H_

#include <chrono>
#include <memory>
#include <string>

#include "net/wire.h"

namespace twbg::net {

/// Configuration of a Server (see Create).  Follows the option-struct
/// convention of ConcurrentServiceOptions: plain members, Validate()
/// rejecting out-of-domain values, chrono types for durations.
struct ServerOptions {
  /// Listen address.  Tests bind port 0 and read the ephemeral port back
  /// from Server::port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Accepted-connection cap; further accepts are closed immediately.
  size_t max_sessions = 4096;
  /// Per-session cap on decoded-but-unanswered requests; beyond it a
  /// request is answered kResourceExhausted with `retry_after` instead
  /// of being queued.
  size_t max_inflight_per_session = 64;
  /// Worker threads executing service calls, in [1, 64].
  size_t worker_threads = 2;
  /// How long BeginDrain lets in-flight transactions finish before
  /// aborting them.
  std::chrono::milliseconds drain_deadline{2000};
  /// Reactor poll granularity for pending awaits (and drain progress).
  std::chrono::microseconds await_poll{1000};
  /// The retry-after hint stamped on kResourceExhausted responses.
  std::chrono::microseconds retry_after{1000};

  /// Rejects an empty host, worker_threads outside [1, 64], zero
  /// max_sessions / max_inflight_per_session / await_poll.
  Status Validate() const;
};

/// Daemon counters (Server::stats; also served to clients via kStats).
struct ServerStats {
  uint64_t sessions_active = 0;
  uint64_t sessions_total = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;
  /// Connections dropped for malformed frames.
  uint64_t protocol_errors = 0;
  /// Transactions aborted by dead-peer or drain-deadline cleanup.
  uint64_t orphan_aborts = 0;
  /// Requests shed by the per-session in-flight cap.
  uint64_t inflight_rejects = 0;
  bool draining = false;
};

/// The TCP lock-service daemon.  Thread-safe; see the file comment for
/// the threading model.
class Server {
 public:
  /// Validates `options` and builds the server around `service` (not
  /// owned; must outlive the server and run the kPeriodic engine).
  /// The socket is not opened until Start().
  static Result<std::unique_ptr<Server>> Create(
      ServerOptions options, txn::ConcurrentLockService* service);

  /// Stops (immediate drain) and joins everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the reactor and worker threads.
  Status Start();

  /// The bound port (after Start; useful with options.port == 0).
  uint16_t port() const;

  /// Initiates graceful drain: stop accepting, reject new Begins, let
  /// in-flight transactions finish under options.drain_deadline, then
  /// abort the rest and shut down.  Idempotent; returns immediately —
  /// Join() to wait for completion.
  void BeginDrain();

  /// Immediate shutdown: drain with a zero deadline.  Idempotent.
  void Stop();

  /// Blocks until the reactor has exited (all sessions closed).
  void Join();

  ServerStats stats() const;
  bool draining() const;

 private:
  class Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace twbg::net

#endif  // TWBG_NET_SERVER_H_
