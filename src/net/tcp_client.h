// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// net::TcpClient — the LockClient that speaks the wire protocol
// (docs/SERVICE.md) to a twbg-serverd daemon.  One instance == one
// session on the daemon; calls are synchronous request/response over a
// blocking socket.  Await is server-side: the daemon parks the session
// until the transaction leaves its wait, so a blocked client burns no
// request budget polling.
//
// Like every LockClient, an instance serves one logical client and is
// not thread-safe; open one connection per concurrent actor.

#ifndef TWBG_NET_TCP_CLIENT_H_
#define TWBG_NET_TCP_CLIENT_H_

#include <chrono>
#include <memory>
#include <string>

#include "net/wire.h"

namespace twbg::net {

/// Configuration of a TcpClient (see Create).  Mirrors the option-struct
/// convention of ServerOptions/ConcurrentServiceOptions.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Socket-level timeout applied to connect().  Zero disables.
  std::chrono::milliseconds connect_timeout{5000};
  /// Socket-level receive timeout per response.  Zero disables — the
  /// right choice when Await may legitimately outwait long detection
  /// periods.
  std::chrono::milliseconds request_timeout{0};

  /// Rejects an empty host, port 0, negative timeouts.
  Status Validate() const;
};

/// LockClient over a TCP connection to the daemon.
class TcpClient final : public LockClient {
 public:
  /// Validates `options`, connects, and returns the ready client.
  /// Connection failures surface as kInternal with the errno text.
  static Result<std::unique_ptr<TcpClient>> Create(ClientOptions options);

  ~TcpClient() override;

  Result<lock::TransactionId> Begin() override;
  Result<lock::RequestOutcome> Acquire(lock::TransactionId tid,
                                       lock::ResourceId rid,
                                       lock::LockMode mode) override;
  Status Await(lock::TransactionId tid) override;
  Status Commit(lock::TransactionId tid) override;
  Status Abort(lock::TransactionId tid) override;
  Result<txn::TxnState> State(lock::TransactionId tid) override;
  Status SetCost(lock::TransactionId tid, double cost) override;
  Result<DetectResult> Detect() override;
  Result<bool> HasDeadlock() override;
  Result<std::string> View(ServiceView view) override;
  Result<ClientStats> Stats() override;

  /// Round-trips a kPing (liveness / latency probe).
  Status Ping();

  /// The retry-after hint of the last kResourceExhausted response,
  /// microseconds (0 when none was received) — the wire-level
  /// backpressure signal to feed into a client-side backoff.
  uint32_t last_retry_after_us() const { return last_retry_after_us_; }

 private:
  explicit TcpClient(ClientOptions options) : options_(std::move(options)) {}

  Status Connect();
  /// Sends `request` and decodes the matching response into `*response`.
  Status RoundTrip(const Request& request, Response* response);

  ClientOptions options_;
  int fd_ = -1;
  uint64_t next_req_id_ = 1;
  uint32_t last_retry_after_us_ = 0;
  FrameReader reader_;
};

}  // namespace twbg::net

#endif  // TWBG_NET_TCP_CLIENT_H_
