// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/string_util.h"

#include <cstdio>

namespace twbg::common {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = text.substr(start, end - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    start = end + 1;
  }
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

}  // namespace twbg::common
