// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Assertion and utility macros used across the library.
//
// The library does not use exceptions (see DESIGN.md).  Programming errors
// (broken invariants, misuse of internal APIs) are reported through
// TWBG_CHECK / TWBG_DCHECK which abort the process with a diagnostic;
// recoverable errors travel through twbg::Status / twbg::Result.

#ifndef TWBG_COMMON_MACROS_H_
#define TWBG_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a source location and message when `condition`
// evaluates to false.  Enabled in all build modes: the checks guard lock
// table and graph invariants whose violation would silently corrupt
// detection results.
#define TWBG_CHECK(condition)                                               \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "TWBG_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Like TWBG_CHECK but compiled out in NDEBUG builds.  Use for checks on hot
// paths (per-edge, per-request work).
#ifdef NDEBUG
#define TWBG_DCHECK(condition) \
  do {                         \
  } while (0)
#else
#define TWBG_DCHECK(condition) TWBG_CHECK(condition)
#endif

// Marks a declaration as deprecated with a migration hint.  Used for the
// one-release compatibility shims of API redesigns; a shim is deleted in
// the release after it is marked.
#define TWBG_DEPRECATED(msg) [[deprecated(msg)]]

// Marks a code path that must be unreachable.
#define TWBG_UNREACHABLE()                                                   \
  do {                                                                       \
    std::fprintf(stderr, "TWBG_UNREACHABLE hit at %s:%d\n", __FILE__,        \
                 __LINE__);                                                  \
    std::abort();                                                            \
  } while (0)

#endif  // TWBG_COMMON_MACROS_H_
