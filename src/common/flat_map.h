// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Open-addressing hash map for the lock-table hot path.
//
// std::map's node-per-entry layout made every Acquire/Release walk a
// pointer chase and every insert an allocation.  FlatMap keeps entries in
// one dense vector and resolves keys through a power-of-two bucket array
// of dense indices with linear probing — two contiguous arrays, zero
// allocations per operation in steady state.
//
// Deletion is tombstone-free: the dense slot is filled by swapping the
// last entry in (O(1)), and the bucket hole is closed by backward-shift
// deletion, so probe chains never accumulate dead buckets and lookup cost
// stays bounded by load factor alone.
//
// Iteration contract: begin()/end() walk the dense array — insertion
// order, except that Erase moves the last-inserted entry into the erased
// slot.  The order is deterministic for a given operation sequence but is
// NOT sorted; callers that need key order sort at the boundary (see
// lock::LockTable's ordered-iteration seam).  Erasing during iteration
// follows the swap-with-last contract: Erase(k) repositions the last
// entry and pops the tail, so the only safe in-loop erase is over indices
// descending, or collect-then-erase.  Pointers and iterators into the
// dense array invalidate on insert (growth) and on erase (swap).

#ifndef TWBG_COMMON_FLAT_MAP_H_
#define TWBG_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace twbg::common {

/// SplitMix64 finalizer — full-avalanche mix of an integral key.  The ids
/// this library hashes (ResourceId, TransactionId) are small and often
/// sequential; mixing spreads them across the bucket array.
struct FlatHash {
  size_t operator()(uint64_t key) const {
    uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

template <typename K, typename V, typename Hash = FlatHash>
class FlatMap {
 public:
  struct Entry {
    K key;
    V value;
  };
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  FlatMap() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// The dense entry array itself (insertion-then-swap order; see the
  /// iteration contract above).
  const std::vector<Entry>& entries() const { return entries_; }

  void clear() {
    entries_.clear();
    std::fill(buckets_.begin(), buckets_.end(), kEmpty);
  }

  void Reserve(size_t n) {
    entries_.reserve(n);
    if (n * 8 >= buckets_.size() * 7) Rehash(NextPow2(n + n / 4 + 8));
  }

  V* Find(const K& key) {
    const size_t b = FindBucket(key);
    return b == kNoBucket ? nullptr : &entries_[buckets_[b] - 1].value;
  }

  const V* Find(const K& key) const {
    const size_t b = FindBucket(key);
    return b == kNoBucket ? nullptr : &entries_[buckets_[b] - 1].value;
  }

  bool Contains(const K& key) const { return FindBucket(key) != kNoBucket; }

  /// Finds `key`, default-constructing its value if absent.  Returns
  /// {value pointer, inserted?}.
  std::pair<V*, bool> TryEmplace(const K& key) {
    MaybeGrow();
    size_t idx = Hash{}(key)&mask_;
    for (;;) {
      const uint32_t slot = buckets_[idx];
      if (slot == kEmpty) {
        entries_.push_back(Entry{key, V{}});
        buckets_[idx] = static_cast<uint32_t>(entries_.size());
        return {&entries_.back().value, true};
      }
      if (entries_[slot - 1].key == key) {
        return {&entries_[slot - 1].value, false};
      }
      idx = (idx + 1) & mask_;
    }
  }

  V& operator[](const K& key) { return *TryEmplace(key).first; }

  /// Erases `key`.  O(1): the last dense entry is swapped into the hole
  /// and the bucket chain is repaired by backward shift.  Returns true if
  /// the key was present.
  bool Erase(const K& key) {
    const size_t b = FindBucket(key);
    if (b == kNoBucket) return false;
    const size_t dense = buckets_[b] - 1;
    const size_t last = entries_.size() - 1;
    if (dense != last) {
      entries_[dense] = std::move(entries_[last]);
      // Repoint the moved entry's bucket.  Its probe chain may pass
      // through `b`, but `b` still holds the erased entry's (different)
      // index, so matching on the dense index is unambiguous.
      size_t idx = Hash{}(entries_[dense].key) & mask_;
      while (buckets_[idx] != last + 1) idx = (idx + 1) & mask_;
      buckets_[idx] = static_cast<uint32_t>(dense + 1);
    }
    entries_.pop_back();
    // Backward-shift deletion: close the hole at `b` by sliding down any
    // entry whose home bucket lies outside (hole, probe] — keeps every
    // probe chain gap-free without tombstones.
    size_t hole = b;
    size_t idx = (hole + 1) & mask_;
    while (buckets_[idx] != kEmpty) {
      const size_t home = Hash{}(entries_[buckets_[idx] - 1].key) & mask_;
      if (((idx - home) & mask_) >= ((idx - hole) & mask_)) {
        buckets_[hole] = buckets_[idx];
        hole = idx;
      }
      idx = (idx + 1) & mask_;
    }
    buckets_[hole] = kEmpty;
    return true;
  }

 private:
  static constexpr uint32_t kEmpty = 0;
  static constexpr size_t kNoBucket = static_cast<size_t>(-1);

  static size_t NextPow2(size_t n) {
    size_t p = 16;
    while (p < n) p *= 2;
    return p;
  }

  size_t FindBucket(const K& key) const {
    if (entries_.empty()) return kNoBucket;
    size_t idx = Hash{}(key)&mask_;
    for (;;) {
      const uint32_t slot = buckets_[idx];
      if (slot == kEmpty) return kNoBucket;
      if (entries_[slot - 1].key == key) return idx;
      idx = (idx + 1) & mask_;
    }
  }

  void MaybeGrow() {
    if (buckets_.empty()) {
      Rehash(16);
    } else if ((entries_.size() + 1) * 8 >= buckets_.size() * 7) {
      Rehash(buckets_.size() * 2);
    }
  }

  void Rehash(size_t new_buckets) {
    buckets_.assign(new_buckets, kEmpty);
    mask_ = new_buckets - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t idx = Hash{}(entries_[i].key) & mask_;
      while (buckets_[idx] != kEmpty) idx = (idx + 1) & mask_;
      buckets_[idx] = static_cast<uint32_t>(i + 1);
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> buckets_;
  size_t mask_ = 0;
};

}  // namespace twbg::common

#endif  // TWBG_COMMON_FLAT_MAP_H_
