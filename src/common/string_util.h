// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Small string helpers shared by diagnostics, experiment binaries and
// tests.  Nothing here is performance critical.

#ifndef TWBG_COMMON_STRING_UTIL_H_
#define TWBG_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace twbg::common {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a, b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, dropping empty fields when `skip_empty`.
std::vector<std::string> Split(std::string_view text, char sep,
                               bool skip_empty = false);

/// Left-pads or truncates `text` to exactly `width` columns.
std::string PadRight(std::string_view text, size_t width);

}  // namespace twbg::common

#endif  // TWBG_COMMON_STRING_UTIL_H_
