// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Deterministic pseudo-random number generation.
//
// All randomness in the library (workload generation, property tests,
// failure injection) flows through Rng so that every run is reproducible
// from a single 64-bit seed.  The generator is xoshiro256++ seeded through
// SplitMix64, which is fast, has a 2^256-1 period and passes BigCrush.

#ifndef TWBG_COMMON_RNG_H_
#define TWBG_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace twbg::common {

/// Stateless SplitMix64 step; used for seeding and hashing.
uint64_t SplitMix64(uint64_t& state);

/// Deterministic xoshiro256++ generator.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound).  `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element.  Requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    TWBG_CHECK(!items.empty());
    return items[NextBelow(items.size())];
  }

 private:
  uint64_t s_[4];
};

}  // namespace twbg::common

#endif  // TWBG_COMMON_RNG_H_
