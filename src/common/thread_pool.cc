// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/thread_pool.h"

namespace twbg::common {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_size_ = n;
  next_index_ = 0;
  completed_ = 0;
  ++generation_;
  work_cv_.notify_all();
  // The caller is a worker too: steal indices until the batch drains,
  // then wait for stragglers still executing their last index.
  RunBatch(lock);
  done_cv_.wait(lock, [this] { return completed_ == batch_size_; });
  fn_ = nullptr;
}

void ThreadPool::RunBatch(std::unique_lock<std::mutex>& lock) {
  while (fn_ != nullptr && next_index_ < batch_size_) {
    const size_t index = next_index_++;
    const auto* fn = fn_;
    lock.unlock();
    (*fn)(index);
    lock.lock();
    ++completed_;
    if (completed_ == batch_size_) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [this, seen] {
      return stop_ || (fn_ != nullptr && generation_ != seen &&
                       next_index_ < batch_size_);
    });
    if (stop_) return;
    seen = generation_;
    RunBatch(lock);
  }
}

}  // namespace twbg::common
