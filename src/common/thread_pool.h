// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Minimal fork-join worker pool for the parallel detection pass.  The pool
// runs one batch at a time (ParallelFor blocks until every index has been
// processed); the calling thread participates, so a pool with zero workers
// degrades to a plain sequential loop — results must therefore never depend
// on which thread runs which index.

#ifndef TWBG_COMMON_THREAD_POOL_H_
#define TWBG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace twbg::common {

/// Fixed-size fork-join pool.  Construction spawns the workers; the
/// destructor joins them.  ParallelFor is not reentrant: `fn` must not
/// call back into the same pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers.  Zero is valid and makes every
  /// ParallelFor run inline on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding the caller).
  size_t num_threads() const { return workers_.size(); }

  /// Invokes `fn(i)` for every i in [0, n), distributing indices across
  /// the workers and the calling thread, and returns once all n calls
  /// have finished (the completion handoff gives the caller a
  /// happens-before edge from every invocation).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  // Pulls indices of the current batch until exhausted.  `lock` must hold
  // mu_; it is released around each fn invocation.
  void RunBatch(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // caller waits for completion
  const std::function<void(size_t)>* fn_ = nullptr;  // current batch body
  size_t batch_size_ = 0;
  size_t next_index_ = 0;
  size_t completed_ = 0;
  uint64_t generation_ = 0;  // bumped per batch so workers never re-enter
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace twbg::common

#endif  // TWBG_COMMON_THREAD_POOL_H_
