// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/rng.h"

namespace twbg::common {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  TWBG_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  TWBG_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace twbg::common
