// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/status.h"

#include <string>

namespace twbg {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kWouldBlock:
      return "WouldBlock";
    case StatusCode::kDeadlockVictim:
      return "DeadlockVictim";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace twbg
