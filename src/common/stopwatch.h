// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Monotonic wall-clock stopwatch for experiment binaries.  Benchmarks
// proper use google-benchmark; the exp_* binaries use this for coarse
// per-configuration timing.

#ifndef TWBG_COMMON_STOPWATCH_H_
#define TWBG_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace twbg::common {

/// Measures elapsed time since construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed nanoseconds since start.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace twbg::common

#endif  // TWBG_COMMON_STOPWATCH_H_
