// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Error model: twbg::Status and twbg::Result<T>.
//
// The library reports recoverable errors by value (RocksDB / Arrow style)
// instead of throwing exceptions.  A Status is cheap to copy when OK (no
// allocation) and carries a code plus a human-readable message otherwise.

#ifndef TWBG_COMMON_STATUS_H_
#define TWBG_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace twbg {

/// Category of a non-OK Status.  These are the canonical outcome codes of
/// the client surface (txn::TransactionManager, txn::ConcurrentLockService,
/// sim::Simulator): every entry point reports its result as one of these
/// instead of bespoke bools/enums/out-params.  See docs/ROBUSTNESS.md for
/// the migration notes.
enum class StatusCode : int {
  kOk = 0,
  /// The caller passed an argument outside the documented domain.
  kInvalidArgument = 1,
  /// A named entity (transaction, resource) does not exist.
  kNotFound = 2,
  /// The operation conflicts with current state (e.g. duplicate begin,
  /// request while already blocked — Axiom 1 violation).
  kFailedPrecondition = 3,
  /// The request was not granted immediately; the requester is blocked
  /// and will be woken by a grant, a detector resolution or a deadline.
  kWouldBlock = 4,
  /// Historical spelling of kWouldBlock (kept for source compatibility).
  kBlocked = kWouldBlock,
  /// The transaction was chosen as a deadlock victim and aborted.
  kDeadlockVictim = 5,
  /// Historical spelling of kDeadlockVictim (kept for source
  /// compatibility; voluntary aborts are not errors and report kOk).
  kAborted = kDeadlockVictim,
  /// An internal invariant failed in a recoverable context.
  kInternal = 6,
  /// A lock-wait (or whole-transaction) deadline expired before the
  /// request was granted; the wait was cancelled with the queue
  /// invariants restored.  Retry, back off, or abort (robustness layer).
  kDeadlineExceeded = 7,
  /// Admission control shed the request (max in-flight transactions or a
  /// queue-depth watermark was hit).  Retry after backing off.
  kResourceExhausted = 8,
};

/// Returns the canonical spelling ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value.  OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status WouldBlock(std::string msg) {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }
  static Status DeadlockVictim(std::string msg) {
    return Status(StatusCode::kDeadlockVictim, std::move(msg));
  }
  /// Historical spelling of DeadlockVictim (same code).
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kDeadlockVictim, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message for non-OK status; empty for OK.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsWouldBlock() const { return code() == StatusCode::kWouldBlock; }
  bool IsDeadlockVictim() const {
    return code() == StatusCode::kDeadlockVictim;
  }
  /// Historical spelling of IsDeadlockVictim (same code).
  bool IsAborted() const { return code() == StatusCode::kDeadlockVictim; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null == OK
};

/// A value or an error Status.  Dereferencing a non-OK Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` from Result-returning
  /// functions (mirrors absl::StatusOr ergonomics).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    TWBG_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    TWBG_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    TWBG_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    TWBG_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define TWBG_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::twbg::Status _twbg_status = (expr);      \
    if (!_twbg_status.ok()) return _twbg_status; \
  } while (0)

}  // namespace twbg

#endif  // TWBG_COMMON_STATUS_H_
