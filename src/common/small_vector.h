// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Inline-capacity vectors for the lock-table hot path.
//
// A resource's holder list and wait queue are almost always tiny — one or
// two holders, an empty queue — yet the substrate used to pay a node
// allocation per entry (std::deque chunks, std::set nodes).  SmallVector
// keeps the first N elements in the object itself and only touches the
// heap beyond that; its copy-assign reuses whatever capacity the
// destination already owns, which is what keeps the epoch-snapshot
// staging path (txn/epoch_snapshot.cc) allocation-free in steady state.
//
// SortedSmallSet layers std::set semantics (sorted, unique, ordered
// iteration) over a SmallVector — the replacement for per-transaction
// `touched` rid sets, whose ascending iteration order the release path
// and scoped-TST construction depend on.

#ifndef TWBG_COMMON_SMALL_VECTOR_H_
#define TWBG_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/macros.h"

namespace twbg::common {

/// Contiguous vector with inline storage for the first `N` elements.
/// Grows onto the heap past N and never shrinks back; copy-assign reuses
/// the destination's existing capacity (inline or heap) instead of
/// reallocating.  API mirrors the std::vector subset the lock substrate
/// uses; iterators are raw pointers and invalidate on growth.
template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() : data_(InlineData()), size_(0), capacity_(N) {}

  SmallVector(const SmallVector& other) : SmallVector() { *this = other; }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    *this = std::move(other);
  }

  ~SmallVector() {
    DestroyAll();
    ReleaseHeap();
  }

  /// Capacity-reusing copy: clears and re-fills in place, allocating only
  /// if `other` outgrows our current capacity.
  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    DestroyAll();
    Reserve(other.size_);
    std::uninitialized_copy(other.data_, other.data_ + other.size_, data_);
    size_ = other.size_;
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    if (other.OnHeap()) {
      // Steal the heap buffer wholesale.
      DestroyAll();
      ReleaseHeap();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      // Inline contents must be moved element-wise.
      DestroyAll();
      Reserve(other.size_);
      std::uninitialized_move(other.data_, other.data_ + other.size_, data_);
      size_ = other.size_;
      other.clear();
    }
    return *this;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void Reserve(size_t want) {
    if (want <= capacity_) return;
    Grow(want);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  /// Inserts `value` before `pos`; returns an iterator to the inserted
  /// element.  Shifts the tail right by one.
  iterator insert(const_iterator pos, const T& value) {
    const size_t index = static_cast<size_t>(pos - data_);
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* p = data_ + index;
    if (index == size_) {
      ::new (static_cast<void*>(p)) T(value);
    } else {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      std::move_backward(p, data_ + size_ - 1, data_ + size_);
      *p = value;
    }
    ++size_;
    return p;
  }

  /// Erases the element at `pos`, shifting the tail left (order-stable).
  iterator erase(const_iterator pos) {
    T* p = const_cast<T*>(pos);
    std::move(p + 1, data_ + size_, p);
    pop_back();
    return p;
  }

  iterator erase(const_iterator first, const_iterator last) {
    T* f = const_cast<T*>(first);
    T* l = const_cast<T*>(last);
    T* new_end = std::move(l, data_ + size_, f);
    while (data_ + size_ != new_end) pop_back();
    return f;
  }

  void resize(size_t new_size) {
    if (new_size < size_) {
      while (size_ > new_size) pop_back();
      return;
    }
    Reserve(new_size);
    while (size_ < new_size) emplace_back();
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  bool OnHeap() const { return capacity_ > N; }

  void DestroyAll() {
    std::destroy(data_, data_ + size_);
    size_ = 0;
  }

  void ReleaseHeap() {
    if (OnHeap()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = InlineData();
      capacity_ = N;
    }
  }

  void Grow(size_t want) {
    size_t next = std::max<size_t>(capacity_ * 2, 4);
    while (next < want) next *= 2;
    T* fresh = static_cast<T*>(::operator new(next * sizeof(T)));
    std::uninitialized_move(data_, data_ + size_, fresh);
    const size_t keep = size_;
    DestroyAll();
    ReleaseHeap();
    data_ = fresh;
    size_ = keep;
    capacity_ = next;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_;
  size_t size_;
  size_t capacity_;
};

/// Sorted, duplicate-free set over a SmallVector.  Iteration is ascending
/// — the same order std::set gave the call sites this replaces (release
/// in global rid order, scoped-TST successor construction).
template <typename T, size_t N>
class SortedSmallSet {
 public:
  using const_iterator = const T*;

  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

  /// Inserts `value`; returns true if it was not already present.
  bool Insert(const T& value) {
    const T* pos = std::lower_bound(items_.begin(), items_.end(), value);
    if (pos != items_.end() && *pos == value) return false;
    items_.insert(pos, value);
    return true;
  }

  /// Removes `value`; returns true if it was present.
  bool Erase(const T& value) {
    const T* pos = std::lower_bound(items_.begin(), items_.end(), value);
    if (pos == items_.end() || *pos != value) return false;
    items_.erase(pos);
    return true;
  }

  bool Contains(const T& value) const {
    const T* pos = std::lower_bound(items_.begin(), items_.end(), value);
    return pos != items_.end() && *pos == value;
  }

  friend bool operator==(const SortedSmallSet& a, const SortedSmallSet& b) {
    return a.items_ == b.items_;
  }

 private:
  SmallVector<T, N> items_;
};

}  // namespace twbg::common

#endif  // TWBG_COMMON_SMALL_VECTOR_H_
