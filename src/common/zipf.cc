// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace twbg::common {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  TWBG_CHECK(n >= 1);
  TWBG_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against floating point shortfall
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace twbg::common
