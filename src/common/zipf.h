// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Zipfian sampler over {0, ..., n-1} used by the workload generator to
// model hot-spot resource access (a small set of rows receives most lock
// traffic, which is what produces interesting deadlock rates).

#ifndef TWBG_COMMON_ZIPF_H_
#define TWBG_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace twbg::common {

/// Samples from a Zipf(theta) distribution over [0, n) by inverting the
/// precomputed CDF with binary search.  theta == 0 degenerates to uniform;
/// larger theta concentrates mass on small indices.
class ZipfSampler {
 public:
  /// Builds the CDF.  Requires n >= 1 and theta >= 0.
  ZipfSampler(uint64_t n, double theta);

  /// Draws one sample in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace twbg::common

#endif  // TWBG_COMMON_ZIPF_H_
