// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Epoch snapshots for pauseless periodic detection.  Each shard of
// txn::ConcurrentLockService owns a ShardSnapshot: a detector-side mirror
// of the shard's lock table plus the per-transaction wait bookkeeping the
// walk and post-mortems read.  A pass begins by *publishing* every
// shard's delta — Capture() runs under the shard mutex and stages exactly
// the resources the live table's mutation journal says changed since the
// previous pass, an O(delta) copy — and then *sealing* the epoch:
// Fold() applies the staged delta into the mirror outside any lock.  The
// Step 1/2 detection walk then runs over the sealed mirrors while client
// traffic proceeds on the live shards; the only pause a shard ever
// observes is its own Capture().
//
// Why the mirror converges: every mutation of live resource state —
// grants, blocks, releases, repositionings, cancellations — goes through
// the LockTable journal (conservatively; see lock/lock_table.h), so
// staging the journal's dirty set reproduces the live table exactly as
// of the capture point.  Per-transaction wait state is not diffed at
// all: the live wait map is mirrored wholesale each capture — an
// ordered sweep over O(active transactions), workload-bound and
// independent of table size.  Copy-assignment of ResourceState
// preserves version(), so the mirror carries the *live* version stamps
// — which is what lets resolution commands derived from the sealed
// epoch be validated against the live shards later
// (core::VictimDecision::evidence), and what lets the mirror feed the
// same incremental core::GraphBuilder cache path as a live table.

#ifndef TWBG_TXN_EPOCH_SNAPSHOT_H_
#define TWBG_TXN_EPOCH_SNAPSHOT_H_

#include <functional>
#include <utility>
#include <vector>

#include "core/parallel_engine.h"
#include "lock/lock_manager.h"
#include "lock/lock_table.h"

namespace twbg::txn {

/// What one Capture() staged, for the kSnapshotPublish event.
struct ShardCaptureStats {
  /// Distinct resources staged (journal delta, or changed/erased entries
  /// found by the fallback sweep).
  size_t dirty = 0;
  /// True when the journal could not answer (reader fell behind its
  /// retention window) and the capture fell back to a full
  /// version-compare sweep of the live table.
  bool full_sweep = false;
};

/// Detector-side mirror of one shard's lock state.  Capture() under the
/// shard lock, Fold() outside it, then read the sealed mirror freely —
/// the owner guarantees no concurrent Capture/Fold (the pauseless pass is
/// serialized).
class ShardSnapshot {
 public:
  explicit ShardSnapshot(
      lock::AdmissionPolicy policy = lock::AdmissionPolicy::kTotalMode)
      : table_(policy) {}

  /// Stages everything that changed in `live` since the previous capture,
  /// plus the live per-transaction wait map.  Runs under the shard mutex;
  /// O(resources mutated since last pass + active transactions) when the
  /// journal can answer, O(shard table) on the fallback sweep.  No mirror
  /// state is modified — publication is split so the costly fold runs
  /// outside the lock.
  ShardCaptureStats Capture(const lock::LockManager& live);

  /// Folds the staged delta into the mirror.  Runs WITHOUT the shard
  /// mutex; touches only detector-owned state.
  void Fold();

  /// The sealed mirror table.  Mutable access exists for the walk's
  /// TDR-2 repositioning (applied to the mirror first, validated against
  /// the live shard later).
  const lock::LockTable& table() const { return table_; }
  lock::LockTable& mutable_table() { return table_; }

  /// Mirror of LockManager::Info at the capture point: wait info of
  /// `tid`, or nullptr when the shard does not know the transaction.
  /// Only the wait fields (blocked_on, blocked_mode, wait_span,
  /// wait_started) are mirrored; `touched` is always empty — it can be
  /// as large as a transaction's whole lock footprint, the walk and
  /// post-mortems never read it, and staging it would break the
  /// O(delta) publish bound.
  const lock::TxnLockInfo* FindWaitInfo(lock::TransactionId tid) const;

 private:
  lock::LockTable table_;
  // Wait map mirror: (tid, info) ascending by tid.  A sorted vector
  // rather than a tree — Fold() adopts the staged sweep with one swap
  // (the retired buffer becomes next pass's staging capacity, so the
  // rebuild allocates nothing in steady state) and lookups binary-search.
  std::vector<std::pair<lock::TransactionId, lock::TxnLockInfo>> waits_;
  // Journal cursor into the live table (lock::LockTable::mutation_seq).
  uint64_t synced_seq_ = 0;
  // Journal cursor into the MIRROR's own table, taken at the end of
  // Fold().  Anything the mirror journals after that point is a
  // detect-phase mutation (a walk-applied TDR-2 repositioning).  If the
  // validated apply rejects that decision, the live shard never changes
  // — so the live journal will never re-dirty the resource — yet the
  // mirror now disagrees with it.  Capture() re-stages these resources
  // from live unconditionally; without this the mirror diverges forever
  // on a quiesced shard and every subsequent pass re-derives (and
  // re-rejects) resolutions from the corrupt mirror.
  uint64_t folded_seq_ = 0;

  // Staging area filled by Capture, consumed by Fold.
  std::vector<lock::ResourceId> dirty_scratch_;
  // staged_states_ keeps its elements alive across passes and tracks the
  // in-use prefix in staged_states_used_: reusing a ResourceState by
  // assignment reuses its holder/queue vector capacity, so steady-state
  // captures allocate nothing under the shard lock.
  std::vector<lock::ResourceState> staged_states_;
  size_t staged_states_used_ = 0;
  std::vector<lock::ResourceId> staged_erased_;
  std::vector<std::pair<lock::TransactionId, lock::TxnLockInfo>>
      staged_waits_;
};

/// core::ParallelWalkHost over a set of sealed shard mirrors: the Step
/// 1/2 walk of the pauseless pass reads (and TDR-2-mutates) the mirrors
/// only, never live shard state.  `shard_of` must be the owner's rid ->
/// shard routing (ConcurrentLockService::ShardIndex).
class SnapshotWalkHost final : public core::ParallelWalkHost {
 public:
  SnapshotWalkHost(std::vector<ShardSnapshot>& snapshots,
                   std::function<size_t(lock::ResourceId)> shard_of)
      : snapshots_(snapshots), shard_of_(std::move(shard_of)) {}

  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return snapshots_[shard_of_(rid)].table().Find(rid);
  }
  // Same preference rule as the live PassHost: a transaction can be known
  // to several shards; only the shard of the resource it is blocked on
  // carries blocked_on.
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    const lock::TxnLockInfo* any = nullptr;
    for (const ShardSnapshot& snapshot : snapshots_) {
      const lock::TxnLockInfo* info = snapshot.FindWaitInfo(tid);
      if (info == nullptr) continue;
      if (info->blocked_on.has_value()) return info;
      if (any == nullptr) any = info;
    }
    return any;
  }
  Status ApplyTdr2Direct(lock::ResourceId rid,
                         lock::TransactionId junction) override;
  void NoteTdr2Applied(lock::ResourceId rid) override {
    snapshots_[shard_of_(rid)].mutable_table().NoteMutation(rid);
  }

 private:
  std::vector<ShardSnapshot>& snapshots_;
  std::function<size_t(lock::ResourceId)> shard_of_;
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_EPOCH_SNAPSHOT_H_
