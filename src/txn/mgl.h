// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Multiple-granularity locking on a resource hierarchy (Gray [10, 11]).
// The paper's model "integrates without changes into a system that
// supports a resource hierarchy"; this module is that integration: a
// hierarchy registry plus a helper that acquires intention locks top-down
// before the target lock.
//
// Because a blocked transaction may not issue further requests (Axiom 1),
// a hierarchical acquisition is a resumable plan: it may suspend at any
// ancestor and continues via Advance() once the transaction is granted.

#ifndef TWBG_TXN_MGL_H_
#define TWBG_TXN_MGL_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "txn/transaction_manager.h"

namespace twbg::txn {

/// Forest of resources: each resource has at most one parent.
class ResourceHierarchy {
 public:
  /// Declares `child` under `parent`.  Both are registered implicitly.
  /// Fails on self-parenting, re-parenting or cycles.
  Status DeclareChild(lock::ResourceId parent, lock::ResourceId child);

  /// Parent of `rid`, or nullopt for roots / unknown resources.
  std::optional<lock::ResourceId> Parent(lock::ResourceId rid) const;

  /// Path root .. rid (inclusive).  Unknown resources are their own root.
  std::vector<lock::ResourceId> PathFromRoot(lock::ResourceId rid) const;

  size_t size() const { return parent_.size(); }

 private:
  std::map<lock::ResourceId, std::optional<lock::ResourceId>> parent_;
};

/// The intention mode ancestors must carry before locking a node in
/// `mode`: IS for IS/S, IX for IX/SIX/X (Gray's MGL rules).
lock::LockMode IntentionFor(lock::LockMode mode);

/// Resumable top-down hierarchical lock acquisition.
class MglAcquirer {
 public:
  /// Both pointers must outlive the acquirer.
  MglAcquirer(const ResourceHierarchy* hierarchy, TransactionManager* tm)
      : hierarchy_(hierarchy), tm_(tm) {}

  /// Starts acquiring `mode` on `target`, taking intention locks on every
  /// ancestor first.  kOk means the full path is held; kWouldBlock means
  /// the plan is suspended — call Advance(tid) after the transaction
  /// manager reports it active again.  kDeadlockVictim / other codes pass
  /// through from the manager.
  Status Lock(lock::TransactionId tid, lock::ResourceId target,
              lock::LockMode mode);

  /// Resumes a suspended plan.  kOk when the full path is now held.
  Status Advance(lock::TransactionId tid);

  /// True when `tid` has a suspended plan.
  bool HasPendingPlan(lock::TransactionId tid) const;

  /// Drops any pending plan (call on abort/restart).
  void CancelPlan(lock::TransactionId tid);

 private:
  struct Plan {
    std::vector<std::pair<lock::ResourceId, lock::LockMode>> steps;
    size_t next = 0;
  };

  Status Drive(lock::TransactionId tid, Plan plan);

  const ResourceHierarchy* hierarchy_;
  TransactionManager* tm_;
  std::map<lock::TransactionId, Plan> plans_;
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_MGL_H_
