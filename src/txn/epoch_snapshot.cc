// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/epoch_snapshot.h"

#include <algorithm>

#include "common/string_util.h"

namespace twbg::txn {

ShardCaptureStats ShardSnapshot::Capture(const lock::LockManager& live) {
  const lock::LockTable& lt = live.table();
  dirty_scratch_.clear();
  // staged_states_ elements are reused by assignment (not cleared): a
  // ResourceState owns holder/queue vectors, and keeping the elements
  // alive keeps their capacity, so a steady-state capture allocates
  // nothing under the shard lock.
  staged_states_used_ = 0;
  staged_erased_.clear();
  staged_waits_.clear();

  ShardCaptureStats stats;
  // Two dirty sources: the live journal (client mutations since the last
  // capture) and the mirror's own journal since the last fold (walk
  // TDR-2s whose validated apply may have been rejected — live will
  // never re-dirty those, so the mirror must re-stage them from live or
  // it diverges permanently; see folded_seq_).
  const bool journals_answered =
      lt.DirtySince(synced_seq_, &dirty_scratch_) &&
      table_.DirtySince(folded_seq_, &dirty_scratch_);
  if (!journals_answered) {
    // The journal fell behind (or this is the first capture of a table
    // that already trimmed): sweep both sides, keyed on version stamps —
    // equal versions guarantee identical content (lock/resource_state.h).
    stats.full_sweep = true;
    dirty_scratch_.clear();
    for (const auto& [rid, state] : lt) {
      const lock::ResourceState* mine = table_.Find(rid);
      if (mine == nullptr || mine->version() != state.version()) {
        dirty_scratch_.push_back(rid);
      }
    }
    for (const auto& [rid, state] : table_) {
      if (lt.Find(rid) == nullptr) dirty_scratch_.push_back(rid);
    }
  }
  synced_seq_ = lt.mutation_seq();
  std::sort(dirty_scratch_.begin(), dirty_scratch_.end());
  dirty_scratch_.erase(
      std::unique(dirty_scratch_.begin(), dirty_scratch_.end()),
      dirty_scratch_.end());
  stats.dirty = dirty_scratch_.size();

  for (const lock::ResourceId rid : dirty_scratch_) {
    if (const lock::ResourceState* theirs = lt.Find(rid)) {
      // Copy-assignment keeps the live version stamp (resource_state.h).
      if (staged_states_used_ < staged_states_.size()) {
        staged_states_[staged_states_used_] = *theirs;
      } else {
        staged_states_.push_back(*theirs);
      }
      ++staged_states_used_;
    } else {
      staged_erased_.push_back(rid);
    }
  }

  // Stage the live per-transaction wait map wholesale — one ordered sweep
  // over O(active transactions), which is workload-bound, never
  // table-bound.  Only the wait fields are copied: `touched` is as large
  // as a transaction's lock footprint (a long-lived reader can hold the
  // whole shard), and nothing downstream of the sealed mirror reads it —
  // the walk wants blocked_on/blocked_mode, post-mortems want the wait
  // clocks.
  for (const auto& [tid, info] : live.txn_infos()) {
    lock::TxnLockInfo slim;
    slim.blocked_on = info.blocked_on;
    slim.blocked_mode = info.blocked_mode;
    slim.wait_span = info.wait_span;
    slim.wait_started = info.wait_started;
    staged_waits_.emplace_back(tid, std::move(slim));
  }
  return stats;
}

void ShardSnapshot::Fold() {
  for (const lock::ResourceId rid : staged_erased_) {
    if (table_.Find(rid) == nullptr) continue;
    // Reset to a free state (journaling the mutation for the detector's
    // incremental graph cache), then let the table reclaim the entry —
    // the same end state a live release leaves behind.
    table_.GetOrCreate(rid).Reset(rid, table_.policy());
    table_.EraseIfFree(rid);
  }
  for (size_t i = 0; i < staged_states_used_; ++i) {
    // GetOrCreate journals the mutation; copy-assignment preserves the
    // live version stamp (resource_state.h: equal versions <=> identical
    // content), so the mirror is stamp-for-stamp the live shard as of
    // the capture point.
    const lock::ResourceState& state = staged_states_[i];
    table_.GetOrCreate(state.rid()) = state;
  }
  // The staged wait map is the whole live map at the capture point, so
  // the mirror is rebuilt rather than patched — a departed transaction
  // simply no longer appears.  Staging is in ascending id order (the
  // txn_infos view), so one swap adopts it sorted; the retired buffer
  // becomes next pass's staging capacity.
  waits_.swap(staged_waits_);
  staged_states_used_ = 0;  // elements stay alive for capacity reuse
  staged_erased_.clear();
  staged_waits_.clear();
  // Everything journaled in the mirror past this point is a detect-phase
  // mutation that the next Capture must re-stage from live.
  folded_seq_ = table_.mutation_seq();
}

const lock::TxnLockInfo* ShardSnapshot::FindWaitInfo(
    lock::TransactionId tid) const {
  auto it = std::lower_bound(
      waits_.begin(), waits_.end(), tid,
      [](const auto& entry, lock::TransactionId t) { return entry.first < t; });
  return it == waits_.end() || it->first != tid ? nullptr : &it->second;
}

Status SnapshotWalkHost::ApplyTdr2Direct(lock::ResourceId rid,
                                         lock::TransactionId junction) {
  lock::ResourceState* state =
      snapshots_[shard_of_(rid)].mutable_table().FindMutableDeferred(rid);
  if (state == nullptr) {
    return Status::NotFound(common::Format("R%u is not locked", rid));
  }
  return state->ApplyTdr2(junction);
}

}  // namespace twbg::txn
