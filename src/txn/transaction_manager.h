// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Transaction manager: ties the lock manager, the cost table and a
// deadlock detector into a strict-2PL transaction service.
//
//   * Begin / Acquire / Commit / Abort lifecycle with state tracking;
//   * automatic cost maintenance per the configured CostPolicy (§5 lists
//     locks held, start time, work done as candidate metrics);
//   * detection either continuously (on every block) or periodically
//     (caller invokes RunDetection on its schedule);
//   * deadlock victims are transitioned to kAborted and flagged, and every
//     transaction unblocked by a resolution is transitioned back to
//     kActive;
//   * robustness layer (optional, all off by default): lock-wait and
//     whole-transaction deadlines against a caller-driven logical clock
//     (AdvanceTime / ExpireDeadlines), admission control on Begin/Acquire,
//     and the abort-after-N escalation policy.
//
// Every client entry point reports its outcome as a canonical
// twbg::Status: kOk (granted / done), kWouldBlock (wait for a grant),
// kDeadlockVictim (aborted by the continuous detector), kDeadlineExceeded
// (wait cancelled by deadline), kResourceExhausted (admission rejection),
// plus kNotFound / kFailedPrecondition / kInvalidArgument for misuse.

#ifndef TWBG_TXN_TRANSACTION_MANAGER_H_
#define TWBG_TXN_TRANSACTION_MANAGER_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/continuous_detector.h"
#include "core/cost_table.h"
#include "core/periodic_detector.h"
#include "lock/lock_manager.h"
#include "txn/robustness/robustness.h"
#include "txn/transaction.h"

namespace twbg::txn {

/// How transaction abort costs are derived (§5's example metrics).
enum class CostPolicy {
  /// Every transaction costs 1 — victim selection degrades to position.
  kUnit,
  /// Locks currently granted (cheap proxy for work that would be redone).
  kLocksHeld,
  /// Age: older transactions (smaller begin timestamp) cost more.
  kAge,
  /// Operations executed so far.
  kOpsDone,
};

/// When deadlock detection runs.
enum class DetectionMode {
  /// Detect on every blocked request (continuous companion algorithm).
  kContinuous,
  /// Detect only when the caller invokes RunDetection (periodic).
  kPeriodic,
};

struct TransactionManagerOptions {
  DetectionMode detection_mode = DetectionMode::kPeriodic;
  CostPolicy cost_policy = CostPolicy::kLocksHeld;
  core::DetectorOptions detector;
  /// Structured-event bus for the whole stack (not owned; may be null).
  /// The manager emits lifecycle events (kTxnBegin/kTxnCommit/kTxnAbort)
  /// and attaches the bus to its lock manager; it also becomes the
  /// detectors' bus unless `detector.event_bus` was set explicitly.
  obs::EventBus* event_bus = nullptr;
  /// Deadlines / admission / retry knobs.  Deadline units are logical
  /// ticks of the caller-driven clock (AdvanceTime).  All disabled by
  /// default.
  robustness::RobustnessOptions robustness;
  /// Optional admission-policy override (not owned via raw use — shared).
  /// When null, a robustness::WatermarkAdmission over
  /// `robustness.admission` is used.
  std::shared_ptr<const robustness::AdmissionPolicy> admission_policy;

  /// Rejects out-of-domain option combinations; Create() and the
  /// constructor enforce it.
  Status Validate() const;
};

/// Per-call knobs for TransactionManager::Acquire.
struct AcquireOptions {
  /// Absolute logical deadline for this wait; overrides the configured
  /// `robustness.deadline.lock_wait` default.  nullopt = use the default;
  /// a contained 0 = explicitly no deadline for this wait.
  std::optional<uint64_t> deadline_at;
};

/// What one ExpireDeadlines() sweep did.
struct ExpiryReport {
  /// Transactions whose lock wait was cancelled with kDeadlineExceeded.
  std::vector<lock::TransactionId> expired;
  /// Subset of the sweep's casualties that escalated to a full abort
  /// (abort-after-N or transaction budget), plus budget-expired active
  /// transactions.
  std::vector<lock::TransactionId> aborted;
  /// Waiters granted as a consequence of cancelled waits, in grant order.
  std::vector<lock::TransactionId> granted;

  bool empty() const {
    return expired.empty() && aborted.empty() && granted.empty();
  }
};

/// Single-threaded transaction service for sequential transaction
/// processing.
class TransactionManager {
 public:
  /// Validated construction; rejects bad options with kInvalidArgument.
  static Result<std::unique_ptr<TransactionManager>> Create(
      TransactionManagerOptions options = {});

  /// Direct construction for valid options (TWBG_CHECKs Validate()).
  explicit TransactionManager(TransactionManagerOptions options = {});

  /// Starts a new transaction and returns its id (ids are never reused).
  /// kResourceExhausted when admission control rejects the Begin.
  Result<lock::TransactionId> Begin();

  /// Requests `mode` on `rid`.  In continuous mode a block triggers
  /// detection immediately.  Returns:
  ///   kOk                 granted (or already covered);
  ///   kWouldBlock         the caller must wait; it transitions back to
  ///                       kActive when granted (possibly by a detector
  ///                       resolution) — or reports kDeadlineExceeded via
  ///                       ExpireDeadlines;
  ///   kDeadlockVictim     the request closed a cycle and this transaction
  ///                       was chosen as victim (continuous mode only); it
  ///                       is already aborted;
  ///   kResourceExhausted  admission control shed the request.
  Status Acquire(lock::TransactionId tid, lock::ResourceId rid,
                 lock::LockMode mode, const AcquireOptions& options);
  Status Acquire(lock::TransactionId tid, lock::ResourceId rid,
                 lock::LockMode mode) {
    return Acquire(tid, rid, mode, AcquireOptions{});
  }

  /// Commits `tid` (must be active, not blocked) and releases its locks.
  Status Commit(lock::TransactionId tid);

  /// Aborts `tid` voluntarily and releases its locks / queue positions.
  Status Abort(lock::TransactionId tid);

  /// Runs one periodic detection-resolution pass (periodic mode; legal in
  /// continuous mode too, e.g. as a safety net).
  core::ResolutionReport RunDetection();

  /// Advances the logical clock deadlines are measured against.  `now`
  /// must be monotone non-decreasing.
  void AdvanceTime(uint64_t now);

  /// Current logical time.
  uint64_t now() const { return now_; }

  /// Cancels every expired lock wait (kDeadlineExpired event each, queue
  /// invariants restored), escalating to abort per the abort-after-N and
  /// transaction-budget policies, and aborts active transactions whose
  /// budget ran out.  Caller decides the cadence (e.g. once per tick).
  ExpiryReport ExpireDeadlines();

  /// Cancels `tid`'s blocked wait right now (the transaction becomes
  /// active again, holdings intact).  Building block for ExpireDeadlines,
  /// public for driver-initiated cancellation.
  Status CancelWait(lock::TransactionId tid);

  /// Current state of `tid`; unknown ids report kNotFound.
  Result<TxnState> State(lock::TransactionId tid) const;

  /// Full record (nullptr when unknown).
  const Transaction* Find(lock::TransactionId tid) const;

  /// Ids of transactions currently blocked, ascending.
  std::vector<lock::TransactionId> Blocked() const;

  /// Number of transactions in kActive or kBlocked state.
  size_t NumLive() const;

  const lock::LockManager& lock_manager() const { return lock_manager_; }
  lock::LockManager& mutable_lock_manager() { return lock_manager_; }
  const core::CostTable& costs() const { return costs_; }
  const TransactionManagerOptions& options() const { return options_; }

  /// Consistency between transaction states and the lock manager.
  Status CheckInvariants() const;

 private:
  // Applies a resolution report: marks victims aborted, reactivates
  // granted transactions.
  void ApplyReport(const core::ResolutionReport& report);

  // Reactivates blocked transactions that were just granted; appends the
  // ones transitioned to `out` when non-null.
  void Reactivate(const std::vector<lock::TransactionId>& granted,
                  std::vector<lock::TransactionId>* out = nullptr);

  // Recomputes the cost of `tid` per the policy.
  void RefreshCost(lock::TransactionId tid);

  // The admission policy in effect (configured override or the built-in
  // watermark policy).
  const robustness::AdmissionPolicy& admission() const;

  TransactionManagerOptions options_;
  robustness::WatermarkAdmission default_admission_;
  lock::LockManager lock_manager_;
  core::CostTable costs_;
  core::PeriodicDetector periodic_;
  core::ContinuousDetector continuous_;
  std::map<lock::TransactionId, Transaction> txns_;
  lock::TransactionId next_tid_ = 1;
  uint64_t next_ts_ = 1;
  uint64_t now_ = 0;  // logical clock for deadlines
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_TRANSACTION_MANAGER_H_
