// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Transaction manager: ties the lock manager, the cost table and a
// deadlock detector into a strict-2PL transaction service.
//
//   * Begin / Acquire / Commit / Abort lifecycle with state tracking;
//   * automatic cost maintenance per the configured CostPolicy (§5 lists
//     locks held, start time, work done as candidate metrics);
//   * detection either continuously (on every block) or periodically
//     (caller invokes RunDetection on its schedule);
//   * deadlock victims are transitioned to kAborted and flagged, and every
//     transaction unblocked by a resolution is transitioned back to
//     kActive.

#ifndef TWBG_TXN_TRANSACTION_MANAGER_H_
#define TWBG_TXN_TRANSACTION_MANAGER_H_

#include <map>
#include <memory>
#include <vector>

#include "core/continuous_detector.h"
#include "core/cost_table.h"
#include "core/periodic_detector.h"
#include "lock/lock_manager.h"
#include "txn/transaction.h"

namespace twbg::txn {

/// How transaction abort costs are derived (§5's example metrics).
enum class CostPolicy {
  /// Every transaction costs 1 — victim selection degrades to position.
  kUnit,
  /// Locks currently granted (cheap proxy for work that would be redone).
  kLocksHeld,
  /// Age: older transactions (smaller begin timestamp) cost more.
  kAge,
  /// Operations executed so far.
  kOpsDone,
};

/// When deadlock detection runs.
enum class DetectionMode {
  /// Detect on every blocked request (continuous companion algorithm).
  kContinuous,
  /// Detect only when the caller invokes RunDetection (periodic).
  kPeriodic,
};

struct TransactionManagerOptions {
  DetectionMode detection_mode = DetectionMode::kPeriodic;
  CostPolicy cost_policy = CostPolicy::kLocksHeld;
  core::DetectorOptions detector;
  /// Structured-event bus for the whole stack (not owned; may be null).
  /// The manager emits lifecycle events (kTxnBegin/kTxnCommit/kTxnAbort)
  /// and attaches the bus to its lock manager; it also becomes the
  /// detectors' bus unless `detector.event_bus` was set explicitly.
  obs::EventBus* event_bus = nullptr;
};

/// Outcome of an Acquire call at the transaction level.
enum class AcquireStatus {
  kGranted,
  /// The caller must wait; it will transition back to kActive when
  /// granted (possibly by a detector resolution).
  kBlocked,
  /// The request closed a deadlock cycle and this transaction was chosen
  /// as the victim (continuous mode only); it is already aborted.
  kAbortedAsVictim,
};

/// Single-threaded transaction service for sequential transaction
/// processing.
class TransactionManager {
 public:
  explicit TransactionManager(TransactionManagerOptions options = {});

  /// Starts a new transaction and returns its id (ids are never reused).
  lock::TransactionId Begin();

  /// Requests `mode` on `rid`.  In continuous mode a block triggers
  /// detection immediately.
  Result<AcquireStatus> Acquire(lock::TransactionId tid, lock::ResourceId rid,
                                lock::LockMode mode);

  /// Commits `tid` (must be active, not blocked) and releases its locks.
  Status Commit(lock::TransactionId tid);

  /// Aborts `tid` voluntarily and releases its locks / queue positions.
  Status Abort(lock::TransactionId tid);

  /// Runs one periodic detection-resolution pass (periodic mode; legal in
  /// continuous mode too, e.g. as a safety net).
  core::ResolutionReport RunDetection();

  /// Current state of `tid`; kAborted for unknown ids that were never
  /// begun is reported as an error.
  Result<TxnState> State(lock::TransactionId tid) const;

  /// Full record (nullptr when unknown).
  const Transaction* Find(lock::TransactionId tid) const;

  /// Ids of transactions currently blocked, ascending.
  std::vector<lock::TransactionId> Blocked() const;

  /// Number of transactions in kActive or kBlocked state.
  size_t NumLive() const;

  const lock::LockManager& lock_manager() const { return lock_manager_; }
  lock::LockManager& mutable_lock_manager() { return lock_manager_; }
  const core::CostTable& costs() const { return costs_; }

  /// Consistency between transaction states and the lock manager.
  Status CheckInvariants() const;

 private:
  // Applies a resolution report: marks victims aborted, reactivates
  // granted transactions.
  void ApplyReport(const core::ResolutionReport& report);

  // Recomputes the cost of `tid` per the policy.
  void RefreshCost(lock::TransactionId tid);

  TransactionManagerOptions options_;
  lock::LockManager lock_manager_;
  core::CostTable costs_;
  core::PeriodicDetector periodic_;
  core::ContinuousDetector continuous_;
  std::map<lock::TransactionId, Transaction> txns_;
  lock::TransactionId next_tid_ = 1;
  uint64_t next_ts_ = 1;
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_TRANSACTION_MANAGER_H_
