// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The scenario-script interpreter over a LockClient: the same command
// language as core::ScriptRunner (see core/script.h for the grammar),
// but every operation goes through the abstract client surface — so one
// script drives an in-process service (InProcessClient) or a live
// twbg-serverd daemon (net::TcpClient) unchanged.  The differential
// test in tests/client_script_test.cc runs every scenarios/*.twbg file
// both ways and asserts byte-identical output.
//
// Semantics vs the classic runner (divergences are inherent to driving
// a *transactional service* instead of a raw lock manager):
//
//   * Script transaction ids are session-local names: the first use of
//     an id Begins a service transaction and the runner keeps the
//     script-id -> service-tid mapping.  Detect reports and views
//     therefore print *service* ids (identical across client kinds,
//     since Begin order matches).
//   * `acquire` for an id whose service transaction has terminated
//     (earlier victim abort or release) Begins a fresh transaction —
//     matching the classic runner, where an aborted id could simply
//     re-register with the manager.
//   * `release` maps to Abort (strict-2PL release-everything) and does
//     not report a granted-waiters count (that is service-internal).
//   * `obs` is unavailable: the event stream lives server-side.
//   * `reset` aborts every live script transaction; service ids are not
//     reused afterwards.

#ifndef TWBG_TXN_CLIENT_SCRIPT_H_
#define TWBG_TXN_CLIENT_SCRIPT_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "txn/lock_client.h"

namespace twbg::txn {

/// Options for a client-script run.
struct ClientScriptOptions {
  /// Echo each command before its output.
  bool echo = false;
};

/// Stateful interpreter over a LockClient.  Not thread-safe (like the
/// client it drives).
class ClientScriptRunner {
 public:
  /// Runs against `client` (not owned; must outlive the runner).
  explicit ClientScriptRunner(LockClient* client,
                              ClientScriptOptions options = {});

  ClientScriptRunner(const ClientScriptRunner&) = delete;
  ClientScriptRunner& operator=(const ClientScriptRunner&) = delete;

  /// Executes one line, appending any output to `*out`.
  Status ExecuteLine(std::string_view line, std::string* out);

  /// Executes a whole script, stopping at the first error (reported with
  /// its 1-based line number).
  Status ExecuteScript(std::string_view text, std::string* out);

  /// Projection of the most recent `detect`, if any.
  const std::optional<DetectResult>& last_detect() const {
    return last_detect_;
  }

 private:
  Status DoAcquire(const std::vector<std::string>& args, std::string* out);
  Status DoExpect(const std::vector<std::string>& args);
  Status DoExpectAborted(const std::vector<std::string>& args);

  /// The service transaction for a script id, Beginning one on first use
  /// (or when the previous one terminated).
  Result<lock::TransactionId> MapTxn(uint32_t script_id);

  LockClient* client_;
  ClientScriptOptions options_;
  std::map<uint32_t, lock::TransactionId> txn_of_script_;
  std::map<lock::TransactionId, uint32_t> script_of_txn_;
  std::optional<lock::RequestOutcome> last_outcome_;
  std::optional<DetectResult> last_detect_;
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_CLIENT_SCRIPT_H_
