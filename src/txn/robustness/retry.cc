// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/robustness/retry.h"

#include <algorithm>
#include <string>

namespace twbg::robustness {

Status RetryOptions::Validate() const {
  if (backoff_base == 0) {
    return Status::InvalidArgument("RetryOptions: backoff_base must be >= 1");
  }
  if (backoff_cap < backoff_base) {
    return Status::InvalidArgument(
        "RetryOptions: backoff_cap (" + std::to_string(backoff_cap) +
        ") must be >= backoff_base (" + std::to_string(backoff_base) + ")");
  }
  return Status::OK();
}

RetryBackoff::RetryBackoff(const RetryOptions& options, uint64_t seed)
    : options_(options), rng_(seed), prev_(options.backoff_base) {
  TWBG_DCHECK(options.Validate().ok());
}

uint64_t RetryBackoff::NextDelay() {
  ++attempts_;
  // Decorrelated jitter: uniform in [base, prev * 3], capped.  prev_ is
  // already <= cap so prev_ * 3 cannot overflow for any sane cap.
  uint64_t hi = std::min(options_.backoff_cap, prev_ * 3);
  uint64_t lo = options_.backoff_base;
  uint64_t sleep =
      hi <= lo ? lo : lo + rng_.NextBelow(hi - lo + 1);
  prev_ = sleep;
  return sleep;
}

void RetryBackoff::Reset() {
  prev_ = options_.backoff_base;
  attempts_ = 0;
}

}  // namespace twbg::robustness
