// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Admission control (load shedding) for the robustness layer.
//
// A robustness::AdmissionPolicy decides, per Begin and per Acquire,
// whether the system should take on more work; rejections surface to the
// client as Status(kResourceExhausted) and are expected to be retried
// after backoff (see retry.h).  The built-in WatermarkAdmission bounds the
// number of in-flight transactions and the waiter-queue depth at the
// target resource/shard (fed from PR-4 ShardStats in the sharded service).
//
// Note this is distinct from lock::AdmissionPolicy, which selects the
// paper's §2 lock-compatibility admission rule (total-mode vs group-mode)
// and has nothing to do with load shedding.

#ifndef TWBG_TXN_ROBUSTNESS_ADMISSION_H_
#define TWBG_TXN_ROBUSTNESS_ADMISSION_H_

#include <cstdint>

#include "common/status.h"

namespace twbg::robustness {

/// Tuning for WatermarkAdmission.  A zero value disables that check, so
/// the default-constructed options admit everything.
struct AdmissionOptions {
  /// Begin() is rejected while this many transactions are live.
  uint64_t max_inflight_txns = 0;
  /// Acquire() is rejected (for non-holders) while the waiter queue at the
  /// target resource — or the whole shard, in the sharded service — is at
  /// least this deep.
  uint64_t queue_depth_watermark = 0;

  Status Validate() const;
};

/// Snapshot of the load signals a policy may consult.  Callers fill in
/// whatever they can measure cheaply; unknown fields stay zero.
struct AdmissionContext {
  uint64_t inflight_txns = 0;
  uint64_t queue_depth = 0;
};

/// Pluggable load-shedding decision.  Implementations must be cheap (these
/// run on every Begin/Acquire) and, in the concurrent service, thread-safe
/// for concurrent calls.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// OK to start a new transaction, or kResourceExhausted.
  virtual Status AdmitBegin(const AdmissionContext& ctx) const = 0;

  /// OK to enqueue a new lock request, or kResourceExhausted.
  virtual Status AdmitAcquire(const AdmissionContext& ctx) const = 0;
};

/// Static high-watermark policy over the two AdmissionOptions knobs.
class WatermarkAdmission final : public AdmissionPolicy {
 public:
  /// `options` must already be validated.
  explicit WatermarkAdmission(AdmissionOptions options) : options_(options) {}

  Status AdmitBegin(const AdmissionContext& ctx) const override;
  Status AdmitAcquire(const AdmissionContext& ctx) const override;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
};

}  // namespace twbg::robustness

#endif  // TWBG_TXN_ROBUSTNESS_ADMISSION_H_
