// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/robustness/fault.h"

#include <algorithm>

#include "common/rng.h"

namespace twbg::robustness {

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropWakeup:
      return "DropWakeup";
    case FaultKind::kDelayGrant:
      return "DelayGrant";
    case FaultKind::kCrashTxn:
      return "CrashTxn";
    case FaultKind::kStallShard:
      return "StallShard";
  }
  return "Unknown";
}

std::string Fault::ToString() const {
  std::string out(FaultKindToString(kind));
  out += "@" + std::to_string(at);
  switch (kind) {
    case FaultKind::kStallShard:
      out += " shard=" + std::to_string(shard);
      out += " duration=" + std::to_string(duration);
      break;
    case FaultKind::kDelayGrant:
      out += " txn=" + std::to_string(txn);
      out += " duration=" + std::to_string(duration);
      break;
    case FaultKind::kDropWakeup:
    case FaultKind::kCrashTxn:
      out += " txn=" + std::to_string(txn);
      break;
  }
  return out;
}

Status FaultPlanOptions::Validate() const {
  if (max_at == 0) {
    return Status::InvalidArgument("FaultPlanOptions: max_at must be >= 1");
  }
  if (max_txn == 0) {
    return Status::InvalidArgument("FaultPlanOptions: max_txn must be >= 1");
  }
  if (max_shard == 0) {
    return Status::InvalidArgument(
        "FaultPlanOptions: max_shard must be >= 1");
  }
  if (max_duration == 0) {
    return Status::InvalidArgument(
        "FaultPlanOptions: max_duration must be >= 1");
  }
  return Status::OK();
}

Result<FaultPlan> FaultPlan::Random(uint64_t seed,
                                    const FaultPlanOptions& options) {
  TWBG_RETURN_IF_ERROR(options.Validate());
  common::Rng rng(seed);
  FaultPlan plan;
  plan.faults.reserve(options.num_faults);
  for (uint32_t i = 0; i < options.num_faults; ++i) {
    Fault f;
    f.kind = static_cast<FaultKind>(rng.NextBelow(kNumFaultKinds));
    f.at = rng.NextBelow(options.max_at);
    f.txn = static_cast<uint32_t>(
        1 + rng.NextBelow(options.max_txn));
    f.shard = static_cast<uint32_t>(rng.NextBelow(options.max_shard));
    f.duration = 1 + rng.NextBelow(options.max_duration);
    plan.faults.push_back(f);
  }
  // Address order makes plans readable and lets hosts scan a prefix.
  std::stable_sort(plan.faults.begin(), plan.faults.end(),
                   [](const Fault& a, const Fault& b) { return a.at < b.at; });
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "FaultPlan{";
  for (size_t i = 0; i < faults.size(); ++i) {
    if (i != 0) out += ", ";
    out += faults[i].ToString();
  }
  out += "}";
  return out;
}

std::optional<Fault> FaultInjector::TakeAcquireFault(uint32_t txn,
                                                     uint64_t op_index) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if ((it->kind == FaultKind::kCrashTxn ||
         it->kind == FaultKind::kDelayGrant) &&
        it->txn == txn && it->at == op_index) {
      Fault f = *it;
      pending_.erase(it);
      ++injected_;
      return f;
    }
  }
  return std::nullopt;
}

bool FaultInjector::TakeDropWakeup(uint32_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->kind == FaultKind::kDropWakeup && it->txn == txn) {
      pending_.erase(it);
      ++injected_;
      return true;
    }
  }
  return false;
}

std::optional<Fault> FaultInjector::TakeShardStall(uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->kind == FaultKind::kStallShard && it->shard == shard) {
      Fault f = *it;
      pending_.erase(it);
      ++injected_;
      return f;
    }
  }
  return std::nullopt;
}

std::vector<Fault> FaultInjector::TakeTickFaults(uint64_t tick) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Fault> fired;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->at == tick && it->kind != FaultKind::kDropWakeup) {
      fired.push_back(*it);
      it = pending_.erase(it);
      ++injected_;
    } else {
      ++it;
    }
  }
  return fired;
}

uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

uint64_t FaultInjector::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace twbg::robustness
