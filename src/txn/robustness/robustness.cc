// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/robustness/robustness.h"

namespace twbg::robustness {

Status DeadlineOptions::Validate() const {
  if (abort_after != 0 && lock_wait == 0) {
    return Status::InvalidArgument(
        "DeadlineOptions: abort_after requires lock_wait deadlines to be "
        "enabled");
  }
  return Status::OK();
}

Status DegradationOptions::Validate() const {
  if (pause_budget_ns != 0 && degraded_passes == 0) {
    return Status::InvalidArgument(
        "DegradationOptions: degraded_passes must be >= 1 when a pause "
        "budget is set");
  }
  if (pause_budget_ns != 0 && sweep_patience == 0) {
    return Status::InvalidArgument(
        "DegradationOptions: sweep_patience must be >= 1 (a patience of 0 "
        "would abort every blocked transaction on the first sweep)");
  }
  return Status::OK();
}

Status RobustnessOptions::Validate() const {
  TWBG_RETURN_IF_ERROR(deadline.Validate());
  TWBG_RETURN_IF_ERROR(retry.Validate());
  TWBG_RETURN_IF_ERROR(admission.Validate());
  TWBG_RETURN_IF_ERROR(degradation.Validate());
  return Status::OK();
}

}  // namespace twbg::robustness
