// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Client-side retry/backoff policy for the robustness layer.
//
// When an acquire is rejected with kDeadlineExceeded or kResourceExhausted
// the client is expected to back off before retrying.  RetryBackoff
// implements decorrelated jitter (Brooker, "Exponential Backoff And
// Jitter"): each sleep is drawn uniformly from [base, prev * 3] and capped,
// which decorrelates competing clients faster than plain exponential
// backoff while keeping the expected sleep bounded.  All draws flow through
// the seeded common::Rng, so a run is reproducible from its seed.
//
// Units are deliberately unspecified here: the simulator interprets sleeps
// as ticks, the concurrent service as microseconds.

#ifndef TWBG_TXN_ROBUSTNESS_RETRY_H_
#define TWBG_TXN_ROBUSTNESS_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace twbg::robustness {

/// Tuning for RetryBackoff and the abort-after-N policy.
struct RetryOptions {
  /// Minimum sleep between attempts.  Must be >= 1.
  uint64_t backoff_base = 1;
  /// Upper bound on any single sleep.  Must be >= backoff_base.
  uint64_t backoff_cap = 64;
  /// Give up (abort the transaction) after this many failed attempts of
  /// the same request.  0 means retry forever.
  uint32_t max_attempts = 0;

  /// Rejects out-of-domain combinations (base == 0, cap < base).
  Status Validate() const;
};

/// Decorrelated-jitter backoff sequence.  Not thread-safe; each waiter
/// owns its own instance (they are 48 bytes).
class RetryBackoff {
 public:
  /// `options` must already be validated.
  RetryBackoff(const RetryOptions& options, uint64_t seed);

  /// Returns the next sleep duration and records one attempt.
  uint64_t NextDelay();

  /// Forgets the sleep history (call after a successful attempt).
  void Reset();

  /// Attempts recorded since construction / the last Reset().
  uint32_t attempts() const { return attempts_; }

  /// True once max_attempts is exhausted (never true when unlimited).
  bool Exhausted() const {
    return options_.max_attempts != 0 && attempts_ >= options_.max_attempts;
  }

 private:
  RetryOptions options_;
  common::Rng rng_;
  uint64_t prev_;
  uint32_t attempts_ = 0;
};

}  // namespace twbg::robustness

#endif  // TWBG_TXN_ROBUSTNESS_RETRY_H_
