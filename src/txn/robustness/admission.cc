// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/robustness/admission.h"

#include <string>

namespace twbg::robustness {

Status AdmissionOptions::Validate() const {
  // All-zero (admit everything) is valid; there is no rejectable range for
  // either knob individually, but a watermark of 1 would reject every
  // blocking request including the first waiter, which is almost certainly
  // a configuration error — require at least 2 when enabled.
  if (queue_depth_watermark == 1) {
    return Status::InvalidArgument(
        "AdmissionOptions: queue_depth_watermark must be 0 (disabled) or "
        ">= 2; a watermark of 1 rejects every first waiter");
  }
  return Status::OK();
}

Status WatermarkAdmission::AdmitBegin(const AdmissionContext& ctx) const {
  if (options_.max_inflight_txns != 0 &&
      ctx.inflight_txns >= options_.max_inflight_txns) {
    return Status::ResourceExhausted(
        "admission: " + std::to_string(ctx.inflight_txns) +
        " transactions in flight (max " +
        std::to_string(options_.max_inflight_txns) + ")");
  }
  return Status::OK();
}

Status WatermarkAdmission::AdmitAcquire(const AdmissionContext& ctx) const {
  if (options_.queue_depth_watermark != 0 &&
      ctx.queue_depth >= options_.queue_depth_watermark) {
    return Status::ResourceExhausted(
        "admission: queue depth " + std::to_string(ctx.queue_depth) +
        " at watermark " + std::to_string(options_.queue_depth_watermark));
  }
  return Status::OK();
}

}  // namespace twbg::robustness
