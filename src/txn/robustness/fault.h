// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Deterministic fault injection for the robustness layer.
//
// A FaultPlan is a seeded, schedule-addressable list of faults.  The same
// plan can be injected into the discrete-time simulator (where `at` is a
// tick) and the threaded concurrent service (where `at` is the target
// transaction's operation index), which is what makes the differential
// suite possible: both hosts face the same adversity and must converge to
// a quiescent, invariant-clean state.
//
// Fault catalogue:
//   kDropWakeup  — a grant notification to `txn` is swallowed once; the
//                  waiter must survive via its polling wait / deadline.
//   kDelayGrant  — the grant to `txn` at `at` is delivered `duration`
//                  units late.
//   kCrashTxn    — `txn` dies at operation/tick `at`: its locks are
//                  released and it restarts (simulator) or aborts
//                  (service).
//   kStallShard  — shard `shard` is unresponsive for `duration` units.

#ifndef TWBG_TXN_ROBUSTNESS_FAULT_H_
#define TWBG_TXN_ROBUSTNESS_FAULT_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace twbg::robustness {

enum class FaultKind : uint8_t {
  kDropWakeup = 0,
  kDelayGrant = 1,
  kCrashTxn = 2,
  kStallShard = 3,
};
inline constexpr int kNumFaultKinds = 4;

std::string_view FaultKindToString(FaultKind kind);

/// One injected fault.  Which fields matter depends on `kind`; see the
/// catalogue above.
struct Fault {
  FaultKind kind = FaultKind::kDropWakeup;
  /// Schedule address: simulator tick, or per-txn operation index in the
  /// concurrent service.
  uint64_t at = 0;
  /// Target transaction (kDropWakeup / kDelayGrant / kCrashTxn).
  uint32_t txn = 0;
  /// Target shard (kStallShard).
  uint32_t shard = 0;
  /// Length of delay/stall faults, in the host's time unit.
  uint64_t duration = 1;

  std::string ToString() const;
};

/// Bounds for FaultPlan::Random.
struct FaultPlanOptions {
  uint32_t num_faults = 4;
  /// Faults are addressed uniformly in [0, max_at).
  uint64_t max_at = 64;
  /// Target txns are drawn uniformly in [1, max_txn].
  uint32_t max_txn = 8;
  /// Target shards are drawn uniformly in [0, max_shard).
  uint32_t max_shard = 4;
  /// Durations are drawn uniformly in [1, max_duration].
  uint64_t max_duration = 4;

  Status Validate() const;
};

/// A deterministic list of faults.
struct FaultPlan {
  std::vector<Fault> faults;

  /// Draws `options.num_faults` faults from the seeded generator.  The
  /// same (seed, options) pair always yields the same plan.
  static Result<FaultPlan> Random(uint64_t seed,
                                  const FaultPlanOptions& options);

  bool empty() const { return faults.empty(); }
  std::string ToString() const;
};

/// Hands faults out to the host at their scheduled addresses.  Thread-safe:
/// the concurrent service consults it from many session threads at once.
/// Each fault fires at most once.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : pending_(std::move(plan.faults)) {}

  /// Removes and returns the first pending kCrashTxn or kDelayGrant fault
  /// addressed to (txn, op_index), if any.
  std::optional<Fault> TakeAcquireFault(uint32_t txn, uint64_t op_index);

  /// Removes the first pending kDropWakeup fault for `txn`, if any.  The
  /// address is ignored: wakeup timing is nondeterministic under threads,
  /// so the fault fires at the first notification opportunity.
  bool TakeDropWakeup(uint32_t txn);

  /// Removes and returns the first pending kStallShard fault for `shard`.
  std::optional<Fault> TakeShardStall(uint32_t shard);

  /// Removes and returns every pending fault scheduled at exactly `tick`,
  /// except kDropWakeup (those fire at wakeup opportunities, not by
  /// address).  The discrete-time hosts drain this once per tick.
  std::vector<Fault> TakeTickFaults(uint64_t tick);

  /// Faults handed out so far.
  uint64_t injected() const;
  /// Faults still pending (addresses that were never reached stay here).
  uint64_t remaining() const;

 private:
  mutable std::mutex mu_;
  std::vector<Fault> pending_;
  uint64_t injected_ = 0;
};

}  // namespace twbg::robustness

#endif  // TWBG_TXN_ROBUSTNESS_FAULT_H_
