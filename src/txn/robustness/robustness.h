// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Aggregate options for the robustness layer: lock-wait deadlines,
// admission control / backpressure, retry policy, and graceful
// degradation.  See docs/ROBUSTNESS.md for the full model.
//
// Units: the discrete-time hosts (TransactionManager with a caller-driven
// clock, the Simulator) read deadline fields as logical ticks; the
// threaded ConcurrentLockService reads them as microseconds.  The zero
// value always means "disabled".

#ifndef TWBG_TXN_ROBUSTNESS_ROBUSTNESS_H_
#define TWBG_TXN_ROBUSTNESS_ROBUSTNESS_H_

#include <cstdint>

#include "common/status.h"
#include "txn/robustness/admission.h"
#include "txn/robustness/fault.h"
#include "txn/robustness/retry.h"

namespace twbg::robustness {

/// Bounds on waiting.  0 disables a bound.
struct DeadlineOptions {
  /// Every lock wait expires after this long; the waiter is removed from
  /// the resource queue (invariants restored) and the acquire reports
  /// kDeadlineExceeded.
  uint64_t lock_wait = 0;
  /// Whole-transaction budget measured from Begin; once exceeded, the
  /// transaction's next expiry check aborts it.
  uint64_t txn_budget = 0;
  /// Abort a transaction after this many of its waits expired (the
  /// abort-after-N policy).  0 means never abort on expiry count alone.
  uint32_t abort_after = 0;

  Status Validate() const;
};

/// Graceful degradation of the periodic detector under overload.
struct DegradationOptions {
  /// When a stop-the-world pass pauses the service longer than this
  /// budget (nanoseconds), the engine degrades.  0 = never degrade.
  uint64_t pause_budget_ns = 0;
  /// While degraded, the next K scheduled passes run a cheap timeout-
  /// resolver sweep instead of full detection.
  uint32_t degraded_passes = 4;
  /// The sweep aborts a transaction observed blocked for this many
  /// consecutive sweeps (>= 1): the classic timeout resolution the paper
  /// argues against, acceptable as a last-resort fallback.
  uint32_t sweep_patience = 2;

  Status Validate() const;
};

/// Everything a host needs to run the robustness layer.  The default
/// options disable all of it, so existing configurations are unchanged.
struct RobustnessOptions {
  DeadlineOptions deadline;
  RetryOptions retry;
  AdmissionOptions admission;
  DegradationOptions degradation;

  /// Validates every member group.
  Status Validate() const;
};

}  // namespace twbg::robustness

#endif  // TWBG_TXN_ROBUSTNESS_ROBUSTNESS_H_
