// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/client_script.h"

#include <charconv>

#include "common/string_util.h"

namespace twbg::txn {

namespace {

std::optional<uint32_t> ParseId(std::string_view text) {
  uint32_t value = 0;
  // Allow a leading 'T' or 'R' for readability, as core::ScriptRunner.
  if (!text.empty() && (text[0] == 'T' || text[0] == 'R')) {
    text.remove_prefix(1);
  }
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::string OutcomeName(lock::RequestOutcome outcome) {
  switch (outcome) {
    case lock::RequestOutcome::kGranted:
      return "granted";
    case lock::RequestOutcome::kAlreadyHeld:
      return "alreadyheld";
    case lock::RequestOutcome::kBlocked:
      return "blocked";
  }
  return "?";
}

bool Terminated(TxnState state) {
  return state == TxnState::kCommitted || state == TxnState::kAborted;
}

}  // namespace

ClientScriptRunner::ClientScriptRunner(LockClient* client,
                                       ClientScriptOptions options)
    : client_(client), options_(options) {}

Result<lock::TransactionId> ClientScriptRunner::MapTxn(uint32_t script_id) {
  auto it = txn_of_script_.find(script_id);
  if (it != txn_of_script_.end()) {
    Result<TxnState> state = client_->State(it->second);
    if (state.ok() && !Terminated(*state)) return it->second;
    // The previous incarnation was aborted (victim) or is otherwise
    // done; the classic runner lets the id re-register, so Begin anew.
    script_of_txn_.erase(it->second);
    txn_of_script_.erase(it);
  }
  Result<lock::TransactionId> tid = client_->Begin();
  if (!tid.ok()) return tid;
  txn_of_script_[script_id] = *tid;
  script_of_txn_[*tid] = script_id;
  return tid;
}

Status ClientScriptRunner::DoAcquire(const std::vector<std::string>& args,
                                     std::string* out) {
  if (args.size() != 4) {
    return Status::InvalidArgument("usage: acquire <txn> <resource> <mode>");
  }
  std::optional<uint32_t> tid = ParseId(args[1]);
  std::optional<uint32_t> rid = ParseId(args[2]);
  std::optional<lock::LockMode> mode = lock::LockModeFromString(args[3]);
  if (!tid || !rid || !mode) {
    return Status::InvalidArgument(
        common::Format("cannot parse acquire arguments '%s %s %s'",
                       args[1].c_str(), args[2].c_str(), args[3].c_str()));
  }
  Result<lock::TransactionId> mapped = MapTxn(*tid);
  if (!mapped.ok()) return mapped.status();
  Result<lock::RequestOutcome> outcome =
      client_->Acquire(*mapped, *rid, *mode);
  if (!outcome.ok()) return outcome.status();
  last_outcome_ = *outcome;
  *out += common::Format("T%u <- %s on R%u: %s\n", *tid, args[3].c_str(),
                         *rid, OutcomeName(*outcome).c_str());
  return Status::OK();
}

Status ClientScriptRunner::DoExpect(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Status::InvalidArgument(
        "usage: expect granted|blocked|alreadyheld");
  }
  if (!last_outcome_.has_value()) {
    return Status::FailedPrecondition("no acquire to check");
  }
  const std::string actual = OutcomeName(*last_outcome_);
  if (actual != args[1]) {
    return Status::Internal(common::Format(
        "expectation failed: wanted %s, got %s", args[1].c_str(),
        actual.c_str()));
  }
  return Status::OK();
}

Status ClientScriptRunner::DoExpectAborted(
    const std::vector<std::string>& args) {
  if (!last_detect_.has_value()) {
    return Status::FailedPrecondition("no detect to check");
  }
  std::vector<lock::TransactionId> wanted;
  for (size_t i = 1; i < args.size(); ++i) {
    std::optional<uint32_t> script_id = ParseId(args[i]);
    if (!script_id) {
      return Status::InvalidArgument(
          common::Format("bad transaction id '%s'", args[i].c_str()));
    }
    auto it = txn_of_script_.find(*script_id);
    if (it == txn_of_script_.end()) {
      return Status::InvalidArgument(common::Format(
          "T%u has no service transaction to check", *script_id));
    }
    wanted.push_back(it->second);
  }
  if (wanted != last_detect_->aborted) {
    std::vector<std::string> got;
    for (lock::TransactionId tid : last_detect_->aborted) {
      got.push_back(common::Format("T%u", tid));
    }
    return Status::Internal(common::Format(
        "expectation failed: aborted = {%s}",
        common::Join(got, ", ").c_str()));
  }
  return Status::OK();
}

Status ClientScriptRunner::ExecuteLine(std::string_view line,
                                       std::string* out) {
  size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> args;
  for (std::string& token :
       common::Split(std::string(line), ' ', /*skip_empty=*/true)) {
    args.push_back(std::move(token));
  }
  if (args.empty()) return Status::OK();
  if (options_.echo) {
    *out += "> ";
    *out += common::Join(args, " ");
    *out += "\n";
  }

  const std::string& cmd = args[0];
  if (cmd == "acquire") return DoAcquire(args, out);
  if (cmd == "release") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: release <txn>");
    }
    std::optional<uint32_t> script_id = ParseId(args[1]);
    if (!script_id) return Status::InvalidArgument("bad transaction id");
    auto it = txn_of_script_.find(*script_id);
    if (it == txn_of_script_.end()) {
      return Status::NotFound(
          common::Format("T%u has no service transaction", *script_id));
    }
    // Strict-2PL release-everything == voluntary abort.  Tolerate a
    // transaction the detector already aborted: its locks are gone.
    Status released = client_->Abort(it->second);
    if (!released.ok() && !released.IsFailedPrecondition()) return released;
    script_of_txn_.erase(it->second);
    txn_of_script_.erase(it);
    *out += common::Format("released T%u\n", *script_id);
    return Status::OK();
  }
  if (cmd == "cost") {
    if (args.size() != 3) {
      return Status::InvalidArgument("usage: cost <txn> <value>");
    }
    std::optional<uint32_t> script_id = ParseId(args[1]);
    if (!script_id) return Status::InvalidArgument("bad transaction id");
    Result<lock::TransactionId> mapped = MapTxn(*script_id);
    if (!mapped.ok()) return mapped.status();
    return client_->SetCost(*mapped, std::strtod(args[2].c_str(), nullptr));
  }
  if (cmd == "detect") {
    Result<DetectResult> detect = client_->Detect();
    if (!detect.ok()) return detect.status();
    last_detect_ = *detect;
    *out += last_detect_->report;
    return Status::OK();
  }
  static const std::map<std::string, ServiceView> kViews = {
      {"table", ServiceView::kTable}, {"graph", ServiceView::kGraph},
      {"dot", ServiceView::kDot},     {"tst", ServiceView::kTst},
      {"cycles", ServiceView::kCycles}, {"oracle", ServiceView::kOracle},
      {"costs", ServiceView::kCosts}};
  if (auto view = kViews.find(cmd); view != kViews.end()) {
    Result<std::string> text = client_->View(view->second);
    if (!text.ok()) return text.status();
    *out += *text;
    return Status::OK();
  }
  if (cmd == "expect") return DoExpect(args);
  if (cmd == "expect-deadlock") {
    if (args.size() != 2 || (args[1] != "yes" && args[1] != "no")) {
      return Status::InvalidArgument("usage: expect-deadlock yes|no");
    }
    Result<bool> actual = client_->HasDeadlock();
    if (!actual.ok()) return actual.status();
    if (*actual != (args[1] == "yes")) {
      return Status::Internal(common::Format(
          "expectation failed: deadlock = %s", *actual ? "yes" : "no"));
    }
    return Status::OK();
  }
  if (cmd == "expect-aborted") return DoExpectAborted(args);
  if (cmd == "postmortem") {
    if (!last_detect_.has_value()) {
      return Status::FailedPrecondition("no detect to report on");
    }
    if (last_detect_->post_mortems.empty()) {
      *out += "no cycles resolved by the last detect\n";
      return Status::OK();
    }
    *out += last_detect_->post_mortems;
    return Status::OK();
  }
  if (cmd == "obs") {
    return Status::InvalidArgument(
        "'obs' is not available through a lock client (the event stream "
        "lives in the service process)");
  }
  if (cmd == "reset") {
    for (const auto& [script_id, tid] : txn_of_script_) {
      Status aborted = client_->Abort(tid);
      // Already-terminated transactions are fine; anything else is not.
      if (!aborted.ok() && !aborted.IsFailedPrecondition()) return aborted;
    }
    txn_of_script_.clear();
    script_of_txn_.clear();
    last_outcome_.reset();
    last_detect_.reset();
    return Status::OK();
  }
  return Status::InvalidArgument(
      common::Format("unknown command '%s'", cmd.c_str()));
}

Status ClientScriptRunner::ExecuteScript(std::string_view text,
                                         std::string* out) {
  size_t line_number = 0;
  for (const std::string& line : common::Split(text, '\n')) {
    ++line_number;
    Status status = ExecuteLine(line, out);
    if (!status.ok()) {
      return Status::Internal(common::Format(
          "line %zu: %s", line_number,
          std::string(status.message()).c_str()));
    }
  }
  return Status::OK();
}

}  // namespace twbg::txn
