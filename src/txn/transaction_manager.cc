// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/transaction_manager.h"

#include "common/string_util.h"

namespace twbg::txn {

namespace {

// Detectors inherit the manager-wide bus unless one was set explicitly.
TransactionManagerOptions Normalize(TransactionManagerOptions options) {
  if (options.detector.event_bus == nullptr) {
    options.detector.event_bus = options.event_bus;
  }
  return options;
}

}  // namespace

TransactionManager::TransactionManager(TransactionManagerOptions options)
    : options_(Normalize(options)),
      periodic_(options_.detector),
      continuous_(options_.detector) {
  lock_manager_.set_event_bus(options_.event_bus);
}

lock::TransactionId TransactionManager::Begin() {
  const lock::TransactionId tid = next_tid_++;
  Transaction txn;
  txn.tid = tid;
  txn.state = TxnState::kActive;
  txn.begin_ts = next_ts_++;
  txns_[tid] = txn;
  RefreshCost(tid);
  if (obs::Enabled(options_.event_bus)) {
    obs::Event event;
    event.kind = obs::EventKind::kTxnBegin;
    event.tid = tid;
    options_.event_bus->Emit(event);
  }
  return tid;
}

Result<AcquireStatus> TransactionManager::Acquire(lock::TransactionId tid,
                                                  lock::ResourceId rid,
                                                  lock::LockMode mode) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  Transaction& txn = it->second;
  if (txn.state != TxnState::kActive) {
    return Status::FailedPrecondition(
        common::Format("T%u is %s and cannot request locks", tid,
                       std::string(ToString(txn.state)).c_str()));
  }
  Result<lock::RequestOutcome> outcome = lock_manager_.Acquire(tid, rid, mode);
  if (!outcome.ok()) return outcome.status();
  txn.ops_executed++;
  RefreshCost(tid);
  switch (*outcome) {
    case lock::RequestOutcome::kGranted:
      txn.locks_granted++;
      RefreshCost(tid);
      return AcquireStatus::kGranted;
    case lock::RequestOutcome::kAlreadyHeld:
      return AcquireStatus::kGranted;
    case lock::RequestOutcome::kBlocked:
      break;
  }
  txn.state = TxnState::kBlocked;
  if (options_.detection_mode == DetectionMode::kContinuous) {
    core::ResolutionReport report =
        continuous_.OnBlock(lock_manager_, costs_, tid);
    ApplyReport(report);
    if (txn.state == TxnState::kAborted) {
      return AcquireStatus::kAbortedAsVictim;
    }
    if (txn.state == TxnState::kActive) {
      // The resolution unblocked us and the lock is now held.
      return AcquireStatus::kGranted;
    }
  }
  return AcquireStatus::kBlocked;
}

Status TransactionManager::Commit(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  Transaction& txn = it->second;
  if (txn.state != TxnState::kActive) {
    return Status::FailedPrecondition(
        common::Format("T%u is %s and cannot commit", tid,
                       std::string(ToString(txn.state)).c_str()));
  }
  txn.state = TxnState::kCommitted;
  if (obs::Enabled(options_.event_bus)) {
    obs::Event event;
    event.kind = obs::EventKind::kTxnCommit;
    event.tid = tid;
    options_.event_bus->Emit(event);
  }
  costs_.Erase(tid);
  std::vector<lock::TransactionId> granted = lock_manager_.ReleaseAll(tid);
  for (lock::TransactionId g : granted) {
    auto git = txns_.find(g);
    if (git != txns_.end() && git->second.state == TxnState::kBlocked) {
      git->second.state = TxnState::kActive;
      git->second.locks_granted++;
      RefreshCost(g);
    }
  }
  return Status::OK();
}

Status TransactionManager::Abort(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  Transaction& txn = it->second;
  if (txn.terminated()) {
    return Status::FailedPrecondition(
        common::Format("T%u is already %s", tid,
                       std::string(ToString(txn.state)).c_str()));
  }
  txn.state = TxnState::kAborted;
  if (obs::Enabled(options_.event_bus)) {
    obs::Event event;
    event.kind = obs::EventKind::kTxnAbort;
    event.tid = tid;
    event.a = 0;  // voluntary, not a deadlock victim
    options_.event_bus->Emit(event);
  }
  costs_.Erase(tid);
  std::vector<lock::TransactionId> granted = lock_manager_.ReleaseAll(tid);
  for (lock::TransactionId g : granted) {
    auto git = txns_.find(g);
    if (git != txns_.end() && git->second.state == TxnState::kBlocked) {
      git->second.state = TxnState::kActive;
      git->second.locks_granted++;
      RefreshCost(g);
    }
  }
  return Status::OK();
}

core::ResolutionReport TransactionManager::RunDetection() {
  core::ResolutionReport report = periodic_.RunPass(lock_manager_, costs_);
  ApplyReport(report);
  return report;
}

void TransactionManager::ApplyReport(const core::ResolutionReport& report) {
  for (lock::TransactionId victim : report.aborted) {
    auto it = txns_.find(victim);
    if (it == txns_.end()) continue;
    it->second.state = TxnState::kAborted;
    it->second.deadlock_victim = true;
    costs_.Erase(victim);
    if (obs::Enabled(options_.event_bus)) {
      obs::Event event;
      event.kind = obs::EventKind::kTxnAbort;
      event.tid = victim;
      event.a = 1;  // deadlock victim (TDR-1)
      options_.event_bus->Emit(event);
    }
  }
  for (lock::TransactionId g : report.granted) {
    auto it = txns_.find(g);
    if (it != txns_.end() && it->second.state == TxnState::kBlocked) {
      it->second.state = TxnState::kActive;
      it->second.locks_granted++;
      RefreshCost(g);
    }
  }
}

void TransactionManager::RefreshCost(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end() || it->second.terminated()) return;
  const Transaction& txn = it->second;
  double cost = 1.0;
  switch (options_.cost_policy) {
    case CostPolicy::kUnit:
      cost = 1.0;
      break;
    case CostPolicy::kLocksHeld:
      cost = 1.0 + static_cast<double>(txn.locks_granted);
      break;
    case CostPolicy::kAge:
      // Older transactions (smaller ts) represent more lost work; make
      // them expensive to abort.  next_ts_ grows, so this stays positive.
      cost = 1.0 + static_cast<double>(next_ts_ - txn.begin_ts);
      break;
    case CostPolicy::kOpsDone:
      cost = 1.0 + static_cast<double>(txn.ops_executed);
      break;
  }
  costs_.Set(tid, cost);
}

Result<TxnState> TransactionManager::State(lock::TransactionId tid) const {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  return it->second.state;
}

const Transaction* TransactionManager::Find(lock::TransactionId tid) const {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

std::vector<lock::TransactionId> TransactionManager::Blocked() const {
  std::vector<lock::TransactionId> out;
  for (const auto& [tid, txn] : txns_) {
    if (txn.state == TxnState::kBlocked) out.push_back(tid);
  }
  return out;
}

size_t TransactionManager::NumLive() const {
  size_t n = 0;
  for (const auto& [tid, txn] : txns_) n += !txn.terminated();
  return n;
}

Status TransactionManager::CheckInvariants() const {
  TWBG_RETURN_IF_ERROR(lock_manager_.CheckInvariants());
  for (const auto& [tid, txn] : txns_) {
    const bool lm_blocked = lock_manager_.IsBlocked(tid);
    if ((txn.state == TxnState::kBlocked) != lm_blocked) {
      return Status::Internal(common::Format(
          "T%u state %s disagrees with lock manager (blocked=%d)", tid,
          std::string(ToString(txn.state)).c_str(), lm_blocked ? 1 : 0));
    }
    if (txn.terminated() && lock_manager_.Info(tid) != nullptr) {
      return Status::Internal(
          common::Format("terminated T%u still owns locks", tid));
    }
  }
  return Status::OK();
}

}  // namespace twbg::txn
