// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/transaction_manager.h"

#include <cmath>

#include "common/string_util.h"

namespace twbg::txn {

namespace {

// Detectors inherit the manager-wide bus unless one was set explicitly.
TransactionManagerOptions Normalize(TransactionManagerOptions options) {
  if (options.detector.event_bus == nullptr) {
    options.detector.event_bus = options.event_bus;
  }
  return options;
}

}  // namespace

Status TransactionManagerOptions::Validate() const {
  if (!(detector.tdr2_cost_divisor > 0.0) ||
      !std::isfinite(detector.tdr2_cost_divisor)) {
    return Status::InvalidArgument(
        "DetectorOptions: tdr2_cost_divisor must be positive and finite");
  }
  if (detector.st_cost_multiplier < 0.0 || detector.st_cost_increment < 0.0) {
    return Status::InvalidArgument(
        "DetectorOptions: ST cost adjustments must be non-negative");
  }
  return robustness.Validate();
}

Result<std::unique_ptr<TransactionManager>> TransactionManager::Create(
    TransactionManagerOptions options) {
  TWBG_RETURN_IF_ERROR(options.Validate());
  return std::make_unique<TransactionManager>(std::move(options));
}

TransactionManager::TransactionManager(TransactionManagerOptions options)
    : options_(Normalize(std::move(options))),
      default_admission_(options_.robustness.admission),
      periodic_(options_.detector),
      continuous_(options_.detector) {
  TWBG_CHECK(options_.Validate().ok());
  lock_manager_.set_event_bus(options_.event_bus);
}

const robustness::AdmissionPolicy& TransactionManager::admission() const {
  if (options_.admission_policy != nullptr) return *options_.admission_policy;
  return default_admission_;
}

Result<lock::TransactionId> TransactionManager::Begin() {
  robustness::AdmissionContext ctx;
  ctx.inflight_txns = NumLive();
  Status admitted = admission().AdmitBegin(ctx);
  if (!admitted.ok()) {
    if (obs::Enabled(options_.event_bus)) {
      obs::Event event;
      event.kind = obs::EventKind::kAdmissionReject;
      event.a = ctx.inflight_txns;
      event.b = options_.robustness.admission.max_inflight_txns;
      options_.event_bus->Emit(event);
    }
    return admitted;
  }
  const lock::TransactionId tid = next_tid_++;
  Transaction txn;
  txn.tid = tid;
  txn.state = TxnState::kActive;
  txn.begin_ts = next_ts_++;
  if (options_.robustness.deadline.txn_budget != 0) {
    txn.budget_deadline = now_ + options_.robustness.deadline.txn_budget;
  }
  txns_[tid] = txn;
  RefreshCost(tid);
  if (obs::Enabled(options_.event_bus)) {
    obs::Event event;
    event.kind = obs::EventKind::kTxnBegin;
    event.tid = tid;
    options_.event_bus->Emit(event);
  }
  return tid;
}

Status TransactionManager::Acquire(lock::TransactionId tid,
                                   lock::ResourceId rid, lock::LockMode mode,
                                   const AcquireOptions& acquire_options) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  Transaction& txn = it->second;
  if (txn.state != TxnState::kActive) {
    return Status::FailedPrecondition(
        common::Format("T%u is %s and cannot request locks", tid,
                       std::string(ToString(txn.state)).c_str()));
  }
  // Admission (backpressure): shed requests that would join an already
  // deep waiter queue.  Holders are exempt — a conversion waits in the
  // holder list, and stalling an existing holder sheds no queue load.
  {
    const lock::ResourceState* state = lock_manager_.table().Find(rid);
    if (state != nullptr && state->FindHolder(tid) == nullptr) {
      robustness::AdmissionContext ctx;
      ctx.inflight_txns = NumLive();
      ctx.queue_depth = state->queue().size();
      Status admitted = admission().AdmitAcquire(ctx);
      if (!admitted.ok()) {
        if (obs::Enabled(options_.event_bus)) {
          obs::Event event;
          event.kind = obs::EventKind::kAdmissionReject;
          event.tid = tid;
          event.rid = rid;
          event.a = ctx.queue_depth;
          event.b = options_.robustness.admission.queue_depth_watermark;
          options_.event_bus->Emit(event);
        }
        return admitted;
      }
    }
  }
  Result<lock::RequestOutcome> outcome = lock_manager_.Acquire(tid, rid, mode);
  if (!outcome.ok()) return outcome.status();
  txn.ops_executed++;
  RefreshCost(tid);
  switch (*outcome) {
    case lock::RequestOutcome::kGranted:
      txn.locks_granted++;
      RefreshCost(tid);
      return Status::OK();
    case lock::RequestOutcome::kAlreadyHeld:
      return Status::OK();
    case lock::RequestOutcome::kBlocked:
      break;
  }
  txn.state = TxnState::kBlocked;
  // Register the wait deadline: per-call override, else the configured
  // default; 0 means this wait never expires.
  if (acquire_options.deadline_at.has_value()) {
    txn.wait_deadline = *acquire_options.deadline_at;
  } else if (options_.robustness.deadline.lock_wait != 0) {
    txn.wait_deadline = now_ + options_.robustness.deadline.lock_wait;
  } else {
    txn.wait_deadline = 0;
  }
  if (options_.detection_mode == DetectionMode::kContinuous) {
    core::ResolutionReport report =
        continuous_.OnBlock(lock_manager_, costs_, tid);
    ApplyReport(report);
    if (txn.state == TxnState::kAborted) {
      return Status::DeadlockVictim(common::Format(
          "T%u closed a deadlock cycle and was aborted", tid));
    }
    if (txn.state == TxnState::kActive) {
      // The resolution unblocked us and the lock is now held.
      return Status::OK();
    }
  }
  return Status::WouldBlock(
      common::Format("T%u must wait for R%u", tid, rid));
}

Status TransactionManager::Commit(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  Transaction& txn = it->second;
  if (txn.state != TxnState::kActive) {
    return Status::FailedPrecondition(
        common::Format("T%u is %s and cannot commit", tid,
                       std::string(ToString(txn.state)).c_str()));
  }
  txn.state = TxnState::kCommitted;
  if (obs::Enabled(options_.event_bus)) {
    obs::Event event;
    event.kind = obs::EventKind::kTxnCommit;
    event.tid = tid;
    options_.event_bus->Emit(event);
  }
  costs_.Erase(tid);
  Reactivate(lock_manager_.ReleaseAll(tid));
  return Status::OK();
}

Status TransactionManager::Abort(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  Transaction& txn = it->second;
  if (txn.terminated()) {
    return Status::FailedPrecondition(
        common::Format("T%u is already %s", tid,
                       std::string(ToString(txn.state)).c_str()));
  }
  txn.state = TxnState::kAborted;
  if (obs::Enabled(options_.event_bus)) {
    obs::Event event;
    event.kind = obs::EventKind::kTxnAbort;
    event.tid = tid;
    event.a = 0;  // voluntary, not a deadlock victim
    options_.event_bus->Emit(event);
  }
  costs_.Erase(tid);
  Reactivate(lock_manager_.ReleaseAll(tid));
  return Status::OK();
}

core::ResolutionReport TransactionManager::RunDetection() {
  core::ResolutionReport report = periodic_.RunPass(lock_manager_, costs_);
  ApplyReport(report);
  return report;
}

void TransactionManager::AdvanceTime(uint64_t now) {
  TWBG_CHECK(now >= now_);
  now_ = now;
}

Status TransactionManager::CancelWait(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  if (it->second.state != TxnState::kBlocked) {
    return Status::FailedPrecondition(
        common::Format("T%u is not blocked; nothing to cancel", tid));
  }
  Result<std::vector<lock::TransactionId>> granted =
      lock_manager_.CancelWait(tid);
  if (!granted.ok()) return granted.status();
  it->second.state = TxnState::kActive;
  it->second.wait_deadline = 0;
  Reactivate(*granted);
  return Status::OK();
}

ExpiryReport TransactionManager::ExpireDeadlines() {
  ExpiryReport report;
  // Snapshot candidates first: each cancellation can unblock others, and
  // aborts mutate txns_ state.
  std::vector<lock::TransactionId> candidates;
  for (const auto& [tid, txn] : txns_) {
    if (txn.terminated()) continue;
    const bool wait_hit = txn.state == TxnState::kBlocked &&
                          txn.wait_deadline != 0 && txn.wait_deadline <= now_;
    const bool budget_hit =
        txn.budget_deadline != 0 && txn.budget_deadline <= now_;
    if (wait_hit || budget_hit) candidates.push_back(tid);
  }
  for (lock::TransactionId tid : candidates) {
    auto it = txns_.find(tid);
    if (it == txns_.end() || it->second.terminated()) continue;
    Transaction& txn = it->second;
    const bool budget_hit =
        txn.budget_deadline != 0 && txn.budget_deadline <= now_;
    if (txn.state == TxnState::kBlocked && txn.wait_deadline != 0 &&
        txn.wait_deadline <= now_) {
      // Capture wait context before the cancellation clears it.
      const lock::ResourceId rid =
          lock_manager_.BlockedOn(tid).value_or(0);
      const lock::TxnLockInfo* info = lock_manager_.Info(tid);
      const lock::LockMode mode =
          info != nullptr ? info->blocked_mode : lock::LockMode::kNL;
      const uint64_t span = lock_manager_.WaitSpan(tid);
      Result<std::vector<lock::TransactionId>> granted =
          lock_manager_.CancelWait(tid);
      TWBG_CHECK(granted.ok());
      txn.state = TxnState::kActive;
      txn.wait_deadline = 0;
      txn.deadline_expiries++;
      const bool escalate =
          budget_hit ||
          (options_.robustness.deadline.abort_after != 0 &&
           txn.deadline_expiries >= options_.robustness.deadline.abort_after);
      if (obs::Enabled(options_.event_bus)) {
        obs::Event event;
        event.kind = obs::EventKind::kDeadlineExpired;
        event.tid = tid;
        event.rid = rid;
        event.mode = mode;
        event.span = span;
        event.a = txn.deadline_expiries;
        event.b = escalate ? 1 : 0;
        options_.event_bus->Emit(event);
      }
      report.expired.push_back(tid);
      Reactivate(*granted, &report.granted);
      if (escalate) {
        TWBG_CHECK(Abort(tid).ok());
        report.aborted.push_back(tid);
      }
    } else if (budget_hit && txn.state == TxnState::kActive) {
      // Budget ran out while runnable: abort at the sweep.
      TWBG_CHECK(Abort(tid).ok());
      report.aborted.push_back(tid);
    }
  }
  return report;
}

void TransactionManager::ApplyReport(const core::ResolutionReport& report) {
  for (lock::TransactionId victim : report.aborted) {
    auto it = txns_.find(victim);
    if (it == txns_.end()) continue;
    it->second.state = TxnState::kAborted;
    it->second.deadlock_victim = true;
    costs_.Erase(victim);
    if (obs::Enabled(options_.event_bus)) {
      obs::Event event;
      event.kind = obs::EventKind::kTxnAbort;
      event.tid = victim;
      event.a = 1;  // deadlock victim (TDR-1)
      options_.event_bus->Emit(event);
    }
  }
  Reactivate(report.granted);
}

void TransactionManager::Reactivate(
    const std::vector<lock::TransactionId>& granted,
    std::vector<lock::TransactionId>* out) {
  for (lock::TransactionId g : granted) {
    auto it = txns_.find(g);
    if (it != txns_.end() && it->second.state == TxnState::kBlocked) {
      it->second.state = TxnState::kActive;
      it->second.wait_deadline = 0;
      it->second.locks_granted++;
      RefreshCost(g);
      if (out != nullptr) out->push_back(g);
    }
  }
}

void TransactionManager::RefreshCost(lock::TransactionId tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end() || it->second.terminated()) return;
  const Transaction& txn = it->second;
  double cost = 1.0;
  switch (options_.cost_policy) {
    case CostPolicy::kUnit:
      cost = 1.0;
      break;
    case CostPolicy::kLocksHeld:
      cost = 1.0 + static_cast<double>(txn.locks_granted);
      break;
    case CostPolicy::kAge:
      // Older transactions (smaller ts) represent more lost work; make
      // them expensive to abort.  next_ts_ grows, so this stays positive.
      cost = 1.0 + static_cast<double>(next_ts_ - txn.begin_ts);
      break;
    case CostPolicy::kOpsDone:
      cost = 1.0 + static_cast<double>(txn.ops_executed);
      break;
  }
  costs_.Set(tid, cost);
}

Result<TxnState> TransactionManager::State(lock::TransactionId tid) const {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  return it->second.state;
}

const Transaction* TransactionManager::Find(lock::TransactionId tid) const {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

std::vector<lock::TransactionId> TransactionManager::Blocked() const {
  std::vector<lock::TransactionId> out;
  for (const auto& [tid, txn] : txns_) {
    if (txn.state == TxnState::kBlocked) out.push_back(tid);
  }
  return out;
}

size_t TransactionManager::NumLive() const {
  size_t n = 0;
  for (const auto& [tid, txn] : txns_) n += !txn.terminated();
  return n;
}

Status TransactionManager::CheckInvariants() const {
  TWBG_RETURN_IF_ERROR(lock_manager_.CheckInvariants());
  for (const auto& [tid, txn] : txns_) {
    const bool lm_blocked = lock_manager_.IsBlocked(tid);
    if ((txn.state == TxnState::kBlocked) != lm_blocked) {
      return Status::Internal(common::Format(
          "T%u state %s disagrees with lock manager (blocked=%d)", tid,
          std::string(ToString(txn.state)).c_str(), lm_blocked ? 1 : 0));
    }
    if (txn.terminated() && lock_manager_.Info(tid) != nullptr) {
      return Status::Internal(
          common::Format("terminated T%u still owns locks", tid));
    }
  }
  return Status::OK();
}

}  // namespace twbg::txn
