// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Thread-safe strict-2PL lock service.  Two engines behind one API:
//
//   * kContinuous (the default, and the only mode of the legacy
//     constructor): one mutex around a sequential TransactionManager with
//     the continuous companion algorithm — every deadlock is resolved
//     inside the request that would have completed the cycle, so no
//     watcher thread is needed and no wait can hang.
//
//   * kPeriodic: the lock table is striped into `num_shards` hash-sharded
//     partitions, each with its own mutex, LockManager (own version-stamp
//     domain and mutation journal) and contention counters.  Acquires
//     touch exactly one shard; commits/aborts lock only the shards the
//     transaction touched.  Deadlocks are resolved by the periodic pass
//     (§5) — run by a dedicated detector thread every `detection_period`,
//     or by explicit RunDetectionPass() calls.  Each pass stamps a new
//     snapshot epoch.  Two pass strategies (SnapshotStrategy):
//
//       - kEpochDelta (the default, "pauseless"): each shard publishes
//         its mutation-journal delta plus a slim mirror of its wait map
//         into a detector-owned epoch mirror (txn/epoch_snapshot.h) under
//         its own mutex — an O(delta + active transactions) pause,
//         independent of table size — and the component-parallel Step 1/2
//         walk runs over the sealed mirrors while client traffic proceeds
//         on the live shards.  Resolution applies as a *validated
//         change-list*: every decision carries the version stamps of the
//         evidence it was derived from (core::VictimDecision::evidence);
//         the apply phase re-checks the stamps under the shard locks and
//         drops — as kResolutionRejected, retried next pass — any
//         decision whose evidence moved between seal and apply.  A
//         validated decision's evidence is byte-identical live and
//         sealed, so the cycle it resolves exists at apply time: no
//         phantom victim is possible, and a persistent deadlock (which
//         cannot mutate: every member is blocked) validates on the next
//         pass at the latest.
//       - kStopTheWorld: the pass briefly stops the world (all shard
//         locks), drains the journals into the per-shard incremental
//         graph caches and detects in place.  The event stream recorded
//         under a pass is a true linearization suitable for replay
//         oracles, at the cost of pauses that grow with table size.
//
// Robustness layer (optional, all off by default; see docs/ROBUSTNESS.md):
//
//   * lock-wait deadlines (microseconds): an expired waiter withdraws its
//     request with full queue-invariant maintenance and AcquireBlocking
//     returns kDeadlineExceeded; after `deadline.abort_after` expiries the
//     transaction is aborted server-side.  Deadline-armed (and
//     fault-injected) waits park in a polling loop, so they also survive
//     dropped wakeups.
//   * admission control: Begin is shed at `admission.max_inflight_txns`
//     live transactions, a blocking acquire at
//     `admission.queue_depth_watermark` blocked transactions in the
//     target shard — both with kResourceExhausted (kAdmissionReject
//     event), to be retried after backoff (AcquireWithRetry).
//   * graceful degradation: when a detection pass pauses the service
//     longer than `degradation.pause_budget_ns` — for kEpochDelta the
//     recorded pause is max(longest shard publish, apply critical
//     section); for kStopTheWorld it is the whole pass — the next
//     `degraded_passes` scheduled passes run a cheap timeout-resolver
//     sweep (abort transactions observed blocked for `sweep_patience`
//     consecutive sweeps) instead of full detection, with a kDegraded
//     event emitted when the engine degrades.
//   * deterministic fault injection: a robustness::FaultPlan addressed by
//     (txn, per-txn operation index) injects crash-txn and delay-grant
//     faults at AcquireBlocking entry, drop-wakeup at the notifier's
//     terminate broadcast, and stall-shard at the target shard's next
//     acquire.
//
// Lock ordering (deadlock-free by construction): shard mutexes in
// ascending shard index, then the transaction-table mutex, then the
// observability mutex.  Every bus emission happens under the
// observability mutex, so attaching a bus serializes the service's
// emission points — sinks see one totally ordered stream that is a true
// linearization of the lock-state history (the replay-parity stress suite
// depends on this).  Sink callbacks must not call back into the service.
//
// Wait-span caveat: in periodic mode wait-span ids are per-shard domains
// (each shard's LockManager numbers its own spans), so span values are
// not comparable with a single-manager run; kinds/tids/rids/counters are.

#ifndef TWBG_TXN_CONCURRENT_SERVICE_H_
#define TWBG_TXN_CONCURRENT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/parallel_detector.h"
#include "obs/span.h"
#include "obs/span_sinks.h"
#include "sched/period_controller.h"
#include "txn/epoch_snapshot.h"
#include "txn/robustness/robustness.h"
#include "txn/transaction_manager.h"

namespace twbg::txn {

/// How a periodic pass observes the sharded lock state (see the file
/// comment for the full protocol descriptions).
enum class SnapshotStrategy {
  /// Pauseless: per-shard O(delta) journal publish into a sealed epoch
  /// mirror, detection off to the side, stamp-validated change-list
  /// apply.  The default.
  kEpochDelta,
  /// Hold every shard mutex for the whole pass.  Larger pauses, but the
  /// recorded event stream is a true linearization (replay oracles).
  kStopTheWorld,
};

/// Configuration of a ConcurrentLockService (see Create).
struct ConcurrentServiceOptions {
  /// Lock-table partitions, in [1, 64].  Resources are hash-assigned to
  /// shards; more shards mean less mutex contention between independent
  /// acquires.  Must be 1 in kContinuous mode.
  size_t num_shards = 1;
  /// kContinuous resolves deadlocks inline on every block (single-mutex
  /// engine); kPeriodic resolves them in periodic passes over the sharded
  /// engine (see snapshot_strategy for how a pass observes the shards).
  DetectionMode detection_mode = DetectionMode::kContinuous;
  /// How the periodic pass snapshots the shards (kPeriodic only; ignored
  /// in kContinuous mode).
  SnapshotStrategy snapshot_strategy = SnapshotStrategy::kEpochDelta;
  /// Period of the dedicated detector thread (kPeriodic only); zero means
  /// no thread — the caller drives RunDetectionPass itself.  With a
  /// non-fixed `scheduler` policy this is only the *initial* period; the
  /// controller retunes it after every full pass (see
  /// current_detection_period()).
  std::chrono::microseconds detection_period{0};
  /// Closed-loop scheduling of the detector thread (docs/TUNING.md).
  /// Units are MICROSECONDS (min_period/max_period bound the retuned
  /// period; pass costs are fed to the controller in µs too).  The default
  /// kFixedPeriod policy never moves the period — byte-identical to the
  /// pre-scheduler service, so adaptive scheduling is strictly opt-in.
  /// A non-fixed policy requires kPeriodic mode and detection_period > 0.
  sched::SchedulerOptions scheduler;
  /// Worker threads for the parallel pass (kPeriodic only); zero runs the
  /// pass entirely on the invoking thread.
  size_t detection_threads = 0;
  /// Victim-cost metric, as in TransactionManagerOptions.
  CostPolicy cost_policy = CostPolicy::kLocksHeld;
  /// Detector tuning; `detector.event_bus` defaults to `event_bus`.
  core::DetectorOptions detector;
  /// Structured-event bus (not owned; may be null).  Attaching a bus
  /// serializes the service — see the file comment.
  obs::EventBus* event_bus = nullptr;
  /// Causal span tracer (not owned; may be null).  Attaching one
  /// serializes the service exactly like a bus: every span call happens
  /// under the observability mutex, satisfying the tracer's single-writer
  /// contract.  In kPeriodic mode the service opens txn spans at Begin /
  /// Terminate, the shard lock managers open/close the wait spans, and
  /// each pass emits a kPass span with kPublish / kApply / kResolution
  /// children (pauseless) — the engine's own detector tracer stays unset
  /// because the component-parallel walk runs on worker threads.  In
  /// kContinuous mode the tracer is forwarded to the inner manager's
  /// sequential detector (pass / step / resolution spans).  Required when
  /// scheduler.use_span_estimates is set.
  obs::SpanTracer* span_tracer = nullptr;
  /// Robustness knobs.  Deadline units are MICROSECONDS here (wall
  /// clock); `deadline.txn_budget` is not enforced by the service (it
  /// belongs to the discrete-time hosts).  All disabled by default.
  robustness::RobustnessOptions robustness;
  /// Deterministic faults to inject (empty = none).  See the file
  /// comment for how each FaultKind maps onto the service.
  robustness::FaultPlan fault_plan;
  /// Test hook (kEpochDelta only; may be null): runs on the pass thread
  /// after the epoch is sealed and detected but before the validated
  /// apply, with NO service lock held — so a test can race commits/aborts
  /// into the seal-to-apply window deterministically.
  std::function<void()> post_seal_hook;

  /// Rejects out-of-domain combinations — num_shards outside [1, 64],
  /// kContinuous combined with sharding / a detection period / detection
  /// threads, scheduler.use_span_estimates without a span tracer, bad
  /// robustness knobs.
  Status Validate() const;
};

/// A read-only rendering of service state, served by RenderView.  The
/// text formats match core::ScriptRunner's corresponding commands, so a
/// script driven through a LockClient prints the same views as one driven
/// against a raw LockManager.
enum class ServiceView {
  /// The lock table (every shard; multi-shard tables are concatenated
  /// with `-- shard N --` headers).
  kTable,
  /// H/W-TWBG adjacency-list rendering (requires num_shards == 1).
  kGraph,
  /// H/W-TWBG in Graphviz dot syntax (requires num_shards == 1).
  kDot,
  /// Transaction Steps Table (requires num_shards == 1).
  kTst,
  /// Elementary cycles, one `cycle {...}` line each (num_shards == 1).
  kCycles,
  /// Reduction-oracle verdict: `deadlocked=... stuck={...}`
  /// (num_shards == 1).
  kOracle,
  /// Per-transaction abort costs, one `T<id>: <cost>` line each.
  kCosts,
};

/// Cumulative per-shard contention counters (kPeriodic mode).
struct ShardStats {
  /// Lock attempts that found the shard mutex already held.
  uint64_t acquire_waits = 0;
  /// Operations routed to the shard (acquires, releases, passes).
  uint64_t ops = 0;
  /// Total shard-mutex hold time, nanoseconds.
  uint64_t hold_ns = 0;
};

/// Thread-safe strict-2PL lock service with deadlock resolution.  See the
/// file comment for the two engines and the locking discipline.
class ConcurrentLockService {
 public:
  /// Validates `options` (ConcurrentServiceOptions::Validate) and builds
  /// the service; invalid combinations are rejected with InvalidArgument
  /// rather than silently coerced.  The only way to construct a service —
  /// the legacy TransactionManagerOptions constructor shim was removed.
  static Result<std::unique_ptr<ConcurrentLockService>> Create(
      ConcurrentServiceOptions options);

  ConcurrentLockService(const ConcurrentLockService&) = delete;
  ConcurrentLockService& operator=(const ConcurrentLockService&) = delete;

  /// Stops and joins the detector thread, if any.  No other thread may be
  /// inside a call when destruction begins.
  ~ConcurrentLockService();

  /// Starts a transaction.  kResourceExhausted when admission control
  /// sheds the Begin (retry after backoff).
  Result<lock::TransactionId> Begin();

  /// Acquires `mode` on `rid`, blocking the calling thread until granted.
  /// Canonical outcomes:
  ///   kOk                 granted;
  ///   kDeadlockVictim     chosen as deadlock victim (locks gone; Begin a
  ///                       new transaction to retry);
  ///   kDeadlineExceeded   the configured lock-wait deadline expired; the
  ///                       request was withdrawn (transaction still alive
  ///                       and holding its other locks) — unless the
  ///                       abort-after-N policy escalated, in which case
  ///                       the message says so and the transaction is
  ///                       aborted;
  ///   kResourceExhausted  admission control shed the request.
  Status AcquireBlocking(lock::TransactionId tid, lock::ResourceId rid,
                         lock::LockMode mode);

  /// Non-blocking acquire (kPeriodic mode only): starts the request and
  /// returns its immediate outcome instead of parking the calling thread.
  ///   kGranted      lock held;
  ///   kAlreadyHeld  `tid` already holds `mode` (or stronger) on `rid`;
  ///   kBlocked      queued; the transaction is kBlocked until a release
  ///                 or a detection pass reactivates (or aborts) it —
  ///                 poll State(tid) for the transition (kActive: granted;
  ///                 kAborted: deadlock victim).
  /// Admission watermarks apply exactly as in AcquireBlocking
  /// (kResourceExhausted); lock-wait deadlines and fault injection do
  /// not (they are parked-waiter machinery).  This is the seam the
  /// network daemon serves requests through: one reactor thread can
  /// multiplex hundreds of blocked clients without one parked thread
  /// per waiter.
  Result<lock::RequestOutcome> AcquireAsync(lock::TransactionId tid,
                                            lock::ResourceId rid,
                                            lock::LockMode mode);

  /// Pins `tid`'s abort cost to `cost` (kPeriodic mode only): the value
  /// replaces the policy-computed cost and is no longer refreshed on
  /// subsequent operations, mirroring ScriptRunner's `cost` command.
  /// kFailedPrecondition for a terminated transaction or the continuous
  /// engine; kNotFound for an unknown one.
  Status SetCost(lock::TransactionId tid, double cost);

  /// True when the current wait-for state contains a cycle (H/W-TWBG
  /// HasCycle over the live table).  Requires num_shards == 1 (the
  /// continuous engine qualifies); kFailedPrecondition otherwise —
  /// merged multi-shard graph construction is ROADMAP item 2.
  Result<bool> HasDeadlock();

  /// Renders `view` of the current state (formats documented on
  /// ServiceView).  Graph-derived views require num_shards == 1;
  /// kTable / kCosts work for any configuration.  Stops the world for
  /// the duration — a diagnostics surface, never a hot path.
  Result<std::string> RenderView(ServiceView view);

  /// Live (kActive or kBlocked) transactions right now.
  size_t live_transactions() const;

  /// Commits and releases; wakes any waiter this unblocks.
  Status Commit(lock::TransactionId tid);

  /// Aborts voluntarily and releases; wakes any waiter this unblocks.
  Status Abort(lock::TransactionId tid);

  /// Snapshot of a transaction's state.
  Result<TxnState> State(lock::TransactionId tid) const;

  /// Number of deadlock victims so far (detector-chosen aborts only;
  /// deadline and sweep aborts are counted separately).
  size_t deadlock_victims() const;

  /// Runs one detection-resolution pass now, on the calling thread, and
  /// returns its report.  In kPeriodic mode this is the same pass the
  /// detector thread runs (all shard locks held for its duration) — or,
  /// while degraded, the timeout-resolver sweep; in kContinuous mode it
  /// is a safety-net periodic pass over the inner manager.
  core::ResolutionReport RunDetectionPass();

  /// Number of completed periodic passes (the snapshot epoch).  Each pass
  /// observes — and leaves behind — a consistent cross-shard snapshot;
  /// the epoch stamps which one.  Always 0 in kContinuous mode.
  uint64_t snapshot_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Number of lock-table shards (1 in kContinuous mode).
  size_t num_shards() const;

  /// Contention counters of shard `shard` (kPeriodic mode).
  ShardStats shard_stats(size_t shard) const;

  /// Client-visible pause of every completed *full* detection pass,
  /// nanoseconds, in pass order (kPeriodic mode; empty otherwise).  For
  /// kEpochDelta this is max(longest shard publish, apply critical
  /// section); for kStopTheWorld it is the whole pass.  Degraded
  /// timeout-sweep passes are recorded separately in
  /// sweep_pause_times_ns().
  std::vector<uint64_t> pause_times_ns() const;

  /// Every individual shard publish pause, nanoseconds, in capture order
  /// (kEpochDelta passes only; num_shards entries per pass).
  std::vector<uint64_t> publish_pause_times_ns() const;

  /// Pause of every degraded timeout-sweep pass, nanoseconds, in pass
  /// order.
  std::vector<uint64_t> sweep_pause_times_ns() const;

  /// Seal-to-apply detection lag of every completed kEpochDelta pass,
  /// nanoseconds, in pass order: how stale the sealed epoch was when the
  /// validated change-list reached the live shards.
  std::vector<uint64_t> detection_lag_ns() const;

  /// Resolution commands dropped by stamp validation so far (kEpochDelta
  /// passes; each is retried by a later pass).
  uint64_t resolutions_rejected() const {
    return resolutions_rejected_.load(std::memory_order_relaxed);
  }

  // -- closed-loop scheduling telemetry --

  /// The detection period currently in effect, microseconds — the
  /// configured detection_period until the controller retunes it (always
  /// so under the default kFixedPeriod policy).  0 when no detector
  /// thread was configured.
  uint64_t current_detection_period_us() const {
    return current_period_us_.load(std::memory_order_acquire);
  }

  /// Period retunes the controller has applied so far (each also emitted
  /// as a kPeriodRetuned event when a bus is attached).
  uint64_t period_retunes() const {
    return period_retunes_.load(std::memory_order_relaxed);
  }

  // -- robustness telemetry --

  /// Lock waits cancelled by deadline so far.
  uint64_t deadline_expiries() const {
    return deadline_expiries_.load(std::memory_order_relaxed);
  }
  /// Transactions aborted by deadline escalation (abort-after-N).
  uint64_t deadline_aborts() const {
    return deadline_aborts_.load(std::memory_order_relaxed);
  }
  /// Begins/acquires shed by admission control.
  uint64_t admission_rejects() const {
    return admission_rejects_.load(std::memory_order_relaxed);
  }
  /// Transactions aborted by the degraded timeout-resolver sweep.
  uint64_t sweep_aborts() const {
    return sweep_aborts_.load(std::memory_order_relaxed);
  }
  /// Scheduled passes that still run the cheap sweep before full
  /// detection resumes (0 = not degraded).
  uint32_t degraded_passes_remaining() const {
    return degraded_remaining_.load(std::memory_order_relaxed);
  }
  /// The fault injector (fault counts), or nullptr when no plan was set.
  const robustness::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  /// Verifies lock-table invariants (per shard), transaction-state /
  /// lock-manager agreement, and that no waiter leaked (every blocked
  /// table entry belongs to a live kBlocked transaction).  Stops the
  /// world for the duration.  `deep` as in LockManager::CheckInvariants.
  Status CheckInvariants(bool deep = true);

  /// Stop-the-world forensic dump: every shard's lock table plus every
  /// live transaction's state and wait target.  For diagnosing stalled
  /// workloads (e.g. a stuck benchmark cell); never on a hot path.
  std::string DebugDump();

  const ConcurrentServiceOptions& options() const { return options_; }

 private:
  // One lock-table partition.  The mutex guards the LockManager and the
  // contention counters; the condition variable parks waiters blocked on
  // this shard's resources.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    lock::LockManager lm;
    uint64_t acquire_waits = 0;
    uint64_t ops = 0;
    uint64_t hold_ns = 0;
  };

  // Per-transaction record of the sharded engine (guarded by txn_mu_;
  // `state` is additionally atomic because waiter wake predicates read it
  // under the shard mutex only).
  struct TxnRecord {
    std::atomic<TxnState> state{TxnState::kActive};
    uint64_t begin_ts = 0;
    uint64_t locks_granted = 0;
    uint64_t ops_executed = 0;
    bool deadlock_victim = false;
    // SetCost pinned this transaction's cost: RefreshCostLocked must not
    // overwrite it.
    bool cost_pinned = false;
    // Robustness bookkeeping: waits of this transaction cancelled by
    // deadline (abort-after-N policy), and consecutive degraded sweeps
    // that observed it blocked (timeout resolution).
    uint32_t deadline_expiries = 0;
    uint32_t blocked_sweeps = 0;
    // Bit s set => an operation of this transaction was routed to shard
    // s.  Never shrinks; commits/aborts lock exactly these shards (which
    // is why num_shards is capped at 64).
    uint64_t shard_mask = 0;
  };

  class PassHost;  // core::ShardedDetectionHost over the shard set

  explicit ConcurrentLockService(ConcurrentServiceOptions options);

  size_t ShardIndex(lock::ResourceId rid) const;

  // Locks every shard whose mask bit is set, ascending, maintaining the
  // contention counters.  `hold` starts timing once all are held.
  std::vector<std::unique_lock<std::mutex>> LockShards(
      uint64_t mask, common::Stopwatch& hold);

  // Sharded-engine operation bodies (mode_ == kPeriodic).
  Result<lock::TransactionId> PeriodicBegin();
  Status PeriodicAcquire(lock::TransactionId tid, lock::ResourceId rid,
                         lock::LockMode mode);
  Status PeriodicTerminate(lock::TransactionId tid, bool commit);
  core::ResolutionReport RunPeriodicPass();
  // The kStopTheWorld pass body: all shard locks for the whole pass.
  core::ResolutionReport RunStopTheWorldPass();
  // The kEpochDelta pass body: publish -> seal -> detect -> validated
  // apply.  Serialized by pass_mu_ (the shared epoch mirrors).
  core::ResolutionReport RunPauselessPass();
  // The degraded pass body: aborts transactions blocked for
  // `sweep_patience` consecutive sweeps.  Same locks as the full pass.
  core::ResolutionReport RunTimeoutSweep();

  // Continuous-engine bodies (mode_ == kContinuous).
  Status ContinuousAcquire(lock::TransactionId tid, lock::ResourceId rid,
                           lock::LockMode mode);

  // Deadline-timeout body of PeriodicAcquire: cancels tid's wait (or
  // reports the grant/abort that raced in).  Runs with the shard mutex
  // held; takes txn_mu_/obs_mu_ internally.  Sets `escalate` when the
  // abort-after-N policy fires (caller aborts after unlocking).
  Status CancelPeriodicWait(lock::TransactionId tid, Shard& shard,
                            bool* escalate);

  // Releases every lock/queue position of `tid` across the shards in
  // `mask` in global ascending-rid order, reactivating granted waiters'
  // records, and emits the single kLockRelease summary (iff some shard
  // knew the transaction — mirroring LockManager::ReleaseAll).  Requires
  // the masked shard mutexes, txn_mu_ and (when a bus is attached)
  // obs_mu_ to be held.  Returns the granted transactions in grant order.
  std::vector<lock::TransactionId> ReleaseAllShardsLocked(
      lock::TransactionId tid, uint64_t mask);

  // Mirrors TransactionManager::ApplyReport under the pass's locks:
  // victims to kAborted (flagged, costs erased, kTxnAbort a=1), granted
  // waiters back to kActive.
  void ApplyReportLocked(const core::ResolutionReport& report);

  // Transitions granted waiters' records kBlocked -> kActive (txn_mu_
  // held).
  void ReactivateLocked(const std::vector<lock::TransactionId>& granted);

  // Emits one kShardContention per shard (pass locks held, bus active).
  void PublishShardStatsLocked();

  // Recomputes `tid`'s abort cost per the policy (txn_mu_ held).
  void RefreshCostLocked(lock::TransactionId tid, const TxnRecord& rec);

  // Emits `event` under obs_mu_ alone (no other service lock held).
  void EmitStandalone(obs::Event event);

  // True when a bus or a span tracer is attached: obs_mu_ must be held
  // around the shard lock managers' mutating calls (they emit on both).
  bool observed() const { return bus_ != nullptr || tracer_ != nullptr; }

  // Span-tracer twins of EmitStandalone: open/close a span under obs_mu_
  // alone (no other service lock held).  Return 0 / no-op when the tracer
  // is absent or inactive.
  uint64_t OpenSpanStandalone(obs::SpanKind kind, uint32_t track,
                              uint64_t parent);
  void CloseSpanStandalone(uint64_t id, uint64_t a, uint64_t b,
                           std::string label = {});

  // Feeds the period controller (if any) with a completed full pass and
  // applies/announces the retune it decides.  Called with no service
  // lock held.  `pass_ns` is the pass's detection cost (whole pass for
  // kStopTheWorld, publish+detect+apply for kEpochDelta).
  void UpdateSchedulerAfterPass(uint64_t pass_ns,
                                const core::ResolutionReport& report);

  // The degradation ladder's pause budget rescaled to the period
  // currently in effect: a retuned period moves the budget
  // proportionally, keeping the allowed pause *fraction* constant.
  // Identity when no controller is attached or the period never moved.
  uint64_t EffectivePauseBudgetNs() const;

  // Detector-thread body: run a pass every detection_period until told
  // to stop.
  void DetectorLoop();

  ConcurrentServiceOptions options_;
  DetectionMode mode_;

  // -- continuous engine (mode_ == kContinuous) --
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<TransactionManager> tm_;
  size_t cont_deadlock_victims_ = 0;
  // Per-transaction deadline-expiry counts (the inner manager's clock is
  // unused; the service implements wall-clock deadlines itself).
  std::map<lock::TransactionId, uint32_t> cont_expiries_;

  // -- sharded periodic engine (mode_ == kPeriodic) --
  std::vector<std::unique_ptr<Shard>> shards_;

  // Transaction table; guards txns_, costs_, next_tid_, next_ts_,
  // live_txns_ and deadlock_victims_.  Acquired after any shard mutexes,
  // before obs_mu_.
  mutable std::mutex txn_mu_;
  std::map<lock::TransactionId, TxnRecord> txns_;
  core::CostTable costs_;
  lock::TransactionId next_tid_ = 1;
  uint64_t next_ts_ = 1;
  size_t live_txns_ = 0;
  size_t deadlock_victims_ = 0;

  // Serializes every emission on the shared bus and span tracer
  // (innermost lock; only taken when one of them is attached).
  std::mutex obs_mu_;
  obs::EventBus* bus_ = nullptr;
  obs::SpanTracer* tracer_ = nullptr;
  // Measured scheduler inputs (scheduler.use_span_estimates): subscribed
  // to tracer_, drained by UpdateSchedulerAfterPass under obs_mu_.
  std::unique_ptr<obs::SpanEstimator> estimator_;

  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<core::ParallelPeriodicDetector> detector_;
  std::unique_ptr<PassHost> pass_host_;
  std::atomic<uint64_t> epoch_{0};

  // -- pauseless pass state (snapshot_strategy == kEpochDelta) --
  // Serializes pauseless passes: the epoch mirrors are shared detector
  // state.  Outermost — never acquired while holding any other service
  // lock.
  std::mutex pass_mu_;
  std::vector<ShardSnapshot> snapshots_;
  std::unique_ptr<SnapshotWalkHost> snapshot_host_;

  // -- robustness state --
  std::unique_ptr<robustness::FaultInjector> injector_;
  std::atomic<uint64_t> deadline_expiries_{0};
  std::atomic<uint64_t> deadline_aborts_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> sweep_aborts_{0};
  std::atomic<uint32_t> degraded_remaining_{0};
  std::atomic<uint64_t> resolutions_rejected_{0};

  mutable std::mutex stats_mu_;
  std::vector<uint64_t> pause_times_ns_;
  std::vector<uint64_t> publish_pause_times_ns_;
  std::vector<uint64_t> sweep_pause_times_ns_;
  std::vector<uint64_t> detection_lag_ns_;

  // -- closed-loop scheduling state --
  // Controller calls are serialized by sched_mu_ (taken with no other
  // service lock held); the current period is mirrored into an atomic so
  // the detector thread reads it lock-free.
  std::mutex sched_mu_;
  std::unique_ptr<sched::PeriodController> controller_;
  std::chrono::steady_clock::time_point last_pass_time_;
  bool sched_seen_pass_ = false;
  uint64_t base_period_us_ = 0;
  std::atomic<uint64_t> current_period_us_{0};
  std::atomic<uint64_t> period_retunes_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread detector_thread_;
};

/// Client-side retry helper: calls AcquireBlocking, and on
/// kDeadlineExceeded / kResourceExhausted sleeps a decorrelated-jitter
/// backoff (robustness::RetryBackoff over `seed` — deterministic delays)
/// and retries.  When `retry.max_attempts` is exhausted the transaction
/// is aborted (the client-side abort-after-N policy) and the last error
/// is returned.  Other codes (kOk, kDeadlockVictim, misuse) return
/// immediately.  `attempts_out`, when non-null, receives the number of
/// AcquireBlocking calls made.
Status AcquireWithRetry(ConcurrentLockService& service,
                        lock::TransactionId tid, lock::ResourceId rid,
                        lock::LockMode mode,
                        const robustness::RetryOptions& retry, uint64_t seed,
                        uint32_t* attempts_out = nullptr);

}  // namespace twbg::txn

#endif  // TWBG_TXN_CONCURRENT_SERVICE_H_
