// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Thread-safe facade over the transaction manager.  The paper's model —
// and this library's core — is sequential transaction processing; this
// wrapper serializes all operations under one mutex and turns "blocked"
// into a real thread wait: AcquireBlocking parks the calling thread on a
// condition variable until the lock is granted (some other transaction's
// commit/abort, or a TDR-2 repositioning, unblocks it) or until a deadlock
// resolution aborts it.
//
// Detection runs in continuous mode, so every deadlock is resolved inside
// the request that would have completed the cycle — no watcher thread is
// needed and no wait can hang.

#ifndef TWBG_TXN_CONCURRENT_SERVICE_H_
#define TWBG_TXN_CONCURRENT_SERVICE_H_

#include <condition_variable>
#include <mutex>

#include "txn/transaction_manager.h"

namespace twbg::txn {

/// Thread-safe strict-2PL lock service with inline deadlock resolution.
///
/// Observability: `options.event_bus` is forwarded to the inner
/// TransactionManager unchanged.  Every emission happens while `mu_` is
/// held, so sinks see a serialized, totally ordered stream even with
/// concurrent callers — but sink callbacks must not call back into this
/// service (that would self-deadlock on `mu_`).
class ConcurrentLockService {
 public:
  /// `options.detection_mode` is forced to kContinuous.
  explicit ConcurrentLockService(TransactionManagerOptions options = {});

  ConcurrentLockService(const ConcurrentLockService&) = delete;
  ConcurrentLockService& operator=(const ConcurrentLockService&) = delete;

  /// Starts a transaction.
  lock::TransactionId Begin();

  /// Acquires `mode` on `rid`, blocking the calling thread until granted.
  /// Returns Aborted when this transaction was chosen as a deadlock
  /// victim (its locks are gone; Begin a new transaction to retry).
  Status AcquireBlocking(lock::TransactionId tid, lock::ResourceId rid,
                         lock::LockMode mode);

  /// Commits and releases; wakes any waiter this unblocks.
  Status Commit(lock::TransactionId tid);

  /// Aborts voluntarily and releases; wakes any waiter this unblocks.
  Status Abort(lock::TransactionId tid);

  /// Snapshot of a transaction's state.
  Result<TxnState> State(lock::TransactionId tid) const;

  /// Number of deadlock victims so far.
  size_t deadlock_victims() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TransactionManager tm_;
  size_t deadlock_victims_ = 0;
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_CONCURRENT_SERVICE_H_
