// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Transaction record: the strict-2PL lifecycle state machine plus the
// accounting (locks taken, operations executed, restarts) that feeds the
// victim-selection cost metrics of §5.

#ifndef TWBG_TXN_TRANSACTION_H_
#define TWBG_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>

#include "lock/types.h"

namespace twbg::txn {

/// Lifecycle of a transaction under strict two-phase locking.
enum class TxnState : uint8_t {
  /// Running; may issue lock requests.
  kActive,
  /// Waiting for a lock; may not issue requests (Axiom 1).
  kBlocked,
  /// Committed; all locks released.
  kCommitted,
  /// Aborted (voluntarily or as a deadlock victim); all locks released.
  kAborted,
};

std::string_view ToString(TxnState state);

/// Bookkeeping for one transaction execution.
struct Transaction {
  lock::TransactionId tid = lock::kInvalidTransaction;
  TxnState state = TxnState::kActive;
  /// Logical begin timestamp (monotone per TransactionManager).
  uint64_t begin_ts = 0;
  /// Number of lock requests granted so far (locks currently held under
  /// strict 2PL, since nothing is released before the end).
  uint64_t locks_granted = 0;
  /// Operations executed (a proxy for CPU/IO work done).
  uint64_t ops_executed = 0;
  /// How many times this logical transaction has been restarted after a
  /// deadlock abort (maintained by the simulator / caller).
  uint32_t restarts = 0;
  /// True when the abort was decided by a deadlock detector.
  bool deadlock_victim = false;
  /// Robustness layer: absolute logical deadline of the current lock wait
  /// (0 = none).  Set on every block, consumed by ExpireDeadlines.
  uint64_t wait_deadline = 0;
  /// Absolute logical deadline of the whole transaction (0 = none),
  /// stamped at Begin from DeadlineOptions::txn_budget.
  uint64_t budget_deadline = 0;
  /// How many of this transaction's lock waits expired (feeds the
  /// abort-after-N policy).
  uint32_t deadline_expiries = 0;

  bool terminated() const {
    return state == TxnState::kCommitted || state == TxnState::kAborted;
  }
};

}  // namespace twbg::txn

#endif  // TWBG_TXN_TRANSACTION_H_
