// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/transaction.h"

namespace twbg::txn {

std::string_view ToString(TxnState state) {
  switch (state) {
    case TxnState::kActive:
      return "Active";
    case TxnState::kBlocked:
      return "Blocked";
    case TxnState::kCommitted:
      return "Committed";
    case TxnState::kAborted:
      return "Aborted";
  }
  return "?";
}

}  // namespace twbg::txn
