// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/mgl.h"

#include <algorithm>

#include "common/string_util.h"

namespace twbg::txn {

Status ResourceHierarchy::DeclareChild(lock::ResourceId parent,
                                       lock::ResourceId child) {
  if (parent == child) {
    return Status::InvalidArgument("a resource cannot parent itself");
  }
  auto it = parent_.find(child);
  if (it != parent_.end() && it->second.has_value()) {
    return Status::FailedPrecondition(
        common::Format("R%u already has a parent", child));
  }
  // Reject cycles: parent must not be a descendant of child.
  std::optional<lock::ResourceId> walk = parent;
  while (walk.has_value()) {
    if (*walk == child) {
      return Status::InvalidArgument("hierarchy cycle");
    }
    auto pit = parent_.find(*walk);
    walk = pit == parent_.end() ? std::nullopt : pit->second;
  }
  parent_.try_emplace(parent, std::nullopt);
  parent_[child] = parent;
  return Status::OK();
}

std::optional<lock::ResourceId> ResourceHierarchy::Parent(
    lock::ResourceId rid) const {
  auto it = parent_.find(rid);
  return it == parent_.end() ? std::nullopt : it->second;
}

std::vector<lock::ResourceId> ResourceHierarchy::PathFromRoot(
    lock::ResourceId rid) const {
  std::vector<lock::ResourceId> path;
  std::optional<lock::ResourceId> walk = rid;
  while (walk.has_value()) {
    path.push_back(*walk);
    walk = Parent(*walk);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

lock::LockMode IntentionFor(lock::LockMode mode) {
  switch (mode) {
    case lock::LockMode::kIS:
    case lock::LockMode::kS:
      return lock::LockMode::kIS;
    case lock::LockMode::kIX:
    case lock::LockMode::kSIX:
    case lock::LockMode::kX:
      return lock::LockMode::kIX;
    case lock::LockMode::kNL:
      break;
  }
  return lock::LockMode::kNL;
}

Status MglAcquirer::Lock(lock::TransactionId tid, lock::ResourceId target,
                         lock::LockMode mode) {
  if (HasPendingPlan(tid)) {
    return Status::FailedPrecondition(common::Format(
        "T%u has a suspended MGL plan; call Advance first", tid));
  }
  if (mode == lock::LockMode::kNL) {
    return Status::InvalidArgument("cannot lock NL");
  }
  Plan plan;
  std::vector<lock::ResourceId> path = hierarchy_->PathFromRoot(target);
  const lock::LockMode intention = IntentionFor(mode);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    plan.steps.emplace_back(path[i], intention);
  }
  plan.steps.emplace_back(target, mode);
  return Drive(tid, std::move(plan));
}

Status MglAcquirer::Advance(lock::TransactionId tid) {
  auto it = plans_.find(tid);
  if (it == plans_.end()) {
    return Status::NotFound(common::Format("no suspended plan for T%u", tid));
  }
  Plan plan = std::move(it->second);
  plans_.erase(it);
  return Drive(tid, std::move(plan));
}

bool MglAcquirer::HasPendingPlan(lock::TransactionId tid) const {
  return plans_.find(tid) != plans_.end();
}

void MglAcquirer::CancelPlan(lock::TransactionId tid) { plans_.erase(tid); }

Status MglAcquirer::Drive(lock::TransactionId tid, Plan plan) {
  while (plan.next < plan.steps.size()) {
    const auto& [rid, mode] = plan.steps[plan.next];
    Status outcome = tm_->Acquire(tid, rid, mode);
    if (outcome.ok()) {
      ++plan.next;
      continue;
    }
    if (outcome.IsWouldBlock()) {
      // The blocked request will be granted in place; resume after it.
      ++plan.next;
      plans_[tid] = std::move(plan);
    }
    // kDeadlockVictim and misuse codes propagate; the plan is dropped
    // (the transaction is dead or the call was invalid).
    return outcome;
  }
  return Status::OK();
}

}  // namespace twbg::txn
