// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// twbg::LockClient — the one client surface of the lock service.
//
// Everything that *uses* the service (the REPL, scenario scripts,
// benches, tests) programs against this interface; everything that
// *provides* it implements it.  Two implementations ship:
//
//   * txn::InProcessClient (this header): wraps a ConcurrentLockService
//     in the same address space.  Zero-copy, zero-syscall — the baseline
//     the wire implementation is differentially tested against.
//   * net::TcpClient (net/tcp_client.h): speaks the length-prefixed
//     binary protocol of docs/SERVICE.md to a twbg-serverd daemon.
//
// The interface is deliberately *non-blocking at the lock layer*:
// Acquire returns the immediate outcome (granted / alreadyheld /
// blocked) and a blocked caller observes the grant — or its selection
// as a deadlock victim — through Await/State.  That shape is what lets
// one daemon reactor thread multiplex hundreds of blocked clients, and
// it maps 1:1 onto ConcurrentLockService::AcquireAsync.
//
// Thread contract: one LockClient instance serves one logical client
// session; calls on a single instance must be externally serialized.
// Concurrency comes from many clients, not from sharing one.

#ifndef TWBG_TXN_LOCK_CLIENT_H_
#define TWBG_TXN_LOCK_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "txn/concurrent_service.h"

namespace twbg {

/// Alias of the service-side view selector: LockClient::View renders the
/// same diagnostics over the wire.
using ServiceView = txn::ServiceView;

/// Outcome of LockClient::Detect — the client-visible projection of a
/// core::ResolutionReport (the full report object stays server-side; its
/// rendered text is what the differential tests compare byte-for-byte).
struct DetectResult {
  /// core::ResolutionReport::ToString() of the pass.
  std::string report;
  /// Victims aborted by the pass, in resolution order.
  std::vector<lock::TransactionId> aborted;
  /// Elementary cycles the pass resolved.
  uint64_t cycles_detected = 0;
  /// Concatenated core::CyclePostMortem::ToString() renderings; empty
  /// when the pass resolved nothing or post-mortem collection is off.
  std::string post_mortems;
};

/// Service-level counters surfaced to clients (LockClient::Stats).  The
/// session_* fields are only meaningful for network clients; an
/// in-process client reports zeroes there.
struct ClientStats {
  uint64_t live_txns = 0;
  uint64_t deadlock_victims = 0;
  uint64_t snapshot_epoch = 0;
  uint64_t num_shards = 0;
  uint64_t admission_rejects = 0;
  uint64_t resolutions_rejected = 0;
  /// Sessions currently connected to the daemon (0 in-process).
  uint64_t sessions_active = 0;
  /// Sessions accepted since the daemon started (0 in-process).
  uint64_t sessions_total = 0;
  /// Transactions aborted by dead-peer cleanup (0 in-process).
  uint64_t orphan_aborts = 0;
};

/// Abstract client of the lock service.  All methods are Status-first
/// and mirror ConcurrentLockService's canonical outcomes; see the file
/// comment for the blocking model and the thread contract.
class LockClient {
 public:
  virtual ~LockClient() = default;

  /// Starts a transaction.  kResourceExhausted when admission control
  /// (or a draining daemon) sheds the Begin — retry after backoff.
  virtual Result<lock::TransactionId> Begin() = 0;

  /// Requests `mode` on `rid` and returns the immediate outcome without
  /// blocking.  On kBlocked, call Await(tid) (or poll State) to learn
  /// whether the wait ended in a grant or a victim abort.
  virtual Result<lock::RequestOutcome> Acquire(lock::TransactionId tid,
                                               lock::ResourceId rid,
                                               lock::LockMode mode) = 0;

  /// Blocks the *client* until a kBlocked transaction leaves the wait:
  /// kOk when the lock was granted, kDeadlockVictim when a detection
  /// pass aborted it.  Immediately kOk for an active transaction.
  virtual Status Await(lock::TransactionId tid) = 0;

  /// Commits and releases; wakes any waiter this unblocks.
  virtual Status Commit(lock::TransactionId tid) = 0;

  /// Aborts voluntarily and releases; wakes any waiter this unblocks.
  virtual Status Abort(lock::TransactionId tid) = 0;

  /// Snapshot of the transaction's state.
  virtual Result<txn::TxnState> State(lock::TransactionId tid) = 0;

  /// Pins the transaction's abort cost (ConcurrentLockService::SetCost).
  virtual Status SetCost(lock::TransactionId tid, double cost) = 0;

  /// Runs one detection-resolution pass now and returns its projection.
  virtual Result<DetectResult> Detect() = 0;

  /// True when the current wait-for state contains a cycle.
  virtual Result<bool> HasDeadlock() = 0;

  /// Renders a diagnostic view of the service state (ServiceView).
  virtual Result<std::string> View(ServiceView view) = 0;

  /// Service/session counters.
  virtual Result<ClientStats> Stats() = 0;
};

namespace txn {

/// LockClient over a ConcurrentLockService in this process.
class InProcessClient final : public LockClient {
 public:
  /// Wraps `service` (not owned; must outlive the client).  The service
  /// must run the kPeriodic engine — the non-blocking Acquire contract
  /// is AcquireAsync's, which the continuous engine cannot provide.
  static Result<std::unique_ptr<InProcessClient>> Create(
      ConcurrentLockService* service);

  Result<lock::TransactionId> Begin() override;
  Result<lock::RequestOutcome> Acquire(lock::TransactionId tid,
                                       lock::ResourceId rid,
                                       lock::LockMode mode) override;
  Status Await(lock::TransactionId tid) override;
  Status Commit(lock::TransactionId tid) override;
  Status Abort(lock::TransactionId tid) override;
  Result<TxnState> State(lock::TransactionId tid) override;
  Status SetCost(lock::TransactionId tid, double cost) override;
  Result<DetectResult> Detect() override;
  Result<bool> HasDeadlock() override;
  Result<std::string> View(ServiceView view) override;
  Result<ClientStats> Stats() override;

 private:
  explicit InProcessClient(ConcurrentLockService* service)
      : service_(service) {}

  ConcurrentLockService* service_;
};

/// Builds a DetectResult projection from a full resolution report (shared
/// by InProcessClient and the daemon's Detect handler).
DetectResult ProjectReport(const core::ResolutionReport& report);

}  // namespace txn
}  // namespace twbg

#endif  // TWBG_TXN_LOCK_CLIENT_H_
