// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/lock_client.h"

#include <chrono>
#include <thread>

#include "common/string_util.h"

namespace twbg::txn {

namespace {

// Await polls the transaction's atomic state at this granularity.  A
// grant or victim abort flips the state from another thread (a releasing
// client or the detector), so there is no wakeup to subscribe to — the
// same reason the daemon reactor polls its pending awaits.
constexpr std::chrono::microseconds kAwaitPoll{200};

}  // namespace

DetectResult ProjectReport(const core::ResolutionReport& report) {
  DetectResult result;
  result.report = report.ToString();
  result.aborted = report.aborted;
  result.cycles_detected = report.cycles_detected;
  for (const core::CyclePostMortem& pm : report.post_mortems) {
    result.post_mortems += pm.ToString();
  }
  return result;
}

Result<std::unique_ptr<InProcessClient>> InProcessClient::Create(
    ConcurrentLockService* service) {
  if (service == nullptr) {
    return Status::InvalidArgument("service must not be null");
  }
  if (service->options().detection_mode != DetectionMode::kPeriodic) {
    return Status::InvalidArgument(
        "InProcessClient requires a kPeriodic service (the non-blocking "
        "Acquire contract is AcquireAsync's)");
  }
  return std::unique_ptr<InProcessClient>(new InProcessClient(service));
}

Result<lock::TransactionId> InProcessClient::Begin() {
  return service_->Begin();
}

Result<lock::RequestOutcome> InProcessClient::Acquire(lock::TransactionId tid,
                                                      lock::ResourceId rid,
                                                      lock::LockMode mode) {
  return service_->AcquireAsync(tid, rid, mode);
}

Status InProcessClient::Await(lock::TransactionId tid) {
  while (true) {
    Result<TxnState> state = service_->State(tid);
    if (!state.ok()) return state.status();
    switch (*state) {
      case TxnState::kActive:
        return Status::OK();
      case TxnState::kBlocked:
        break;
      case TxnState::kAborted:
        return Status::DeadlockVictim(common::Format(
            "T%u aborted as deadlock victim while waiting", tid));
      case TxnState::kCommitted:
        return Status::FailedPrecondition(
            common::Format("T%u is committed; nothing to await", tid));
    }
    std::this_thread::sleep_for(kAwaitPoll);
  }
}

Status InProcessClient::Commit(lock::TransactionId tid) {
  return service_->Commit(tid);
}

Status InProcessClient::Abort(lock::TransactionId tid) {
  return service_->Abort(tid);
}

Result<TxnState> InProcessClient::State(lock::TransactionId tid) {
  return service_->State(tid);
}

Status InProcessClient::SetCost(lock::TransactionId tid, double cost) {
  return service_->SetCost(tid, cost);
}

Result<DetectResult> InProcessClient::Detect() {
  return ProjectReport(service_->RunDetectionPass());
}

Result<bool> InProcessClient::HasDeadlock() { return service_->HasDeadlock(); }

Result<std::string> InProcessClient::View(ServiceView view) {
  return service_->RenderView(view);
}

Result<ClientStats> InProcessClient::Stats() {
  ClientStats stats;
  stats.live_txns = service_->live_transactions();
  stats.deadlock_victims = service_->deadlock_victims();
  stats.snapshot_epoch = service_->snapshot_epoch();
  stats.num_shards = service_->num_shards();
  stats.admission_rejects = service_->admission_rejects();
  stats.resolutions_rejected = service_->resolutions_rejected();
  return stats;
}

}  // namespace twbg::txn
