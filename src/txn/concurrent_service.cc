// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/concurrent_service.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "core/oracle.h"
#include "core/tst.h"
#include "core/twbg.h"
#include "lock/resource_state.h"
#include "obs/sinks.h"

namespace twbg::txn {

namespace {

constexpr size_t kMaxShards = 64;  // shard_mask is a uint64_t bitmask

// Debug tripwire for the pauseless pass: nonzero while this thread runs
// the detached detect phase over the sealed mirrors, during which it must
// never touch live shard state (checked at the shard-locking entry
// points).  The publish handshake and the validated apply run outside the
// guard.
thread_local int t_in_sealed_detect = 0;

// Deadline-armed and fault-exposed waits poll at this granularity instead
// of relying on a wakeup, so they observe deadline expiry promptly and
// survive dropped notifications.
constexpr std::chrono::microseconds kWaitPoll{500};

ConcurrentServiceOptions NormalizeConcurrent(ConcurrentServiceOptions options) {
  if (options.detector.event_bus == nullptr) {
    options.detector.event_bus = options.event_bus;
  }
  return options;
}

obs::Event FaultEvent(const robustness::Fault& fault) {
  obs::Event event;
  event.kind = obs::EventKind::kFaultInjected;
  event.tid = fault.txn;
  if (fault.kind == robustness::FaultKind::kStallShard) {
    event.rid = static_cast<lock::ResourceId>(fault.shard);  // shard index
  }
  event.a = static_cast<uint64_t>(fault.kind);
  event.b = fault.at;
  event.value = static_cast<double>(fault.duration);
  event.detail = fault.ToString();
  return event;
}

}  // namespace

Status ConcurrentServiceOptions::Validate() const {
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument(common::Format(
        "num_shards must be in [1, %zu], got %zu", kMaxShards, num_shards));
  }
  if (detection_mode == DetectionMode::kContinuous) {
    // Continuous detection runs inside every blocking acquire and needs
    // the whole lock state under one mutex; reject — rather than silently
    // ignore — options that only make sense for the sharded engine.
    if (num_shards != 1) {
      return Status::InvalidArgument(
          "continuous detection requires num_shards == 1 "
          "(use kPeriodic for a sharded service)");
    }
    if (detection_period.count() != 0) {
      return Status::InvalidArgument(
          "continuous detection has no detector thread; "
          "detection_period must be 0");
    }
    if (detection_threads != 0) {
      return Status::InvalidArgument(
          "continuous detection runs inline; detection_threads must be 0");
    }
  }
  Status sched_status = scheduler.Validate();
  if (!sched_status.ok()) return sched_status;
  if (scheduler.use_span_estimates && span_tracer == nullptr) {
    return Status::InvalidArgument(
        "scheduler.use_span_estimates requires span_tracer");
  }
  if (scheduler.policy != sched::SchedulerPolicy::kFixedPeriod) {
    // Closed-loop scheduling retunes the detector thread's wait; it is
    // meaningless without a detector thread to drive.
    if (detection_mode != DetectionMode::kPeriodic ||
        detection_period.count() <= 0) {
      return Status::InvalidArgument(
          "adaptive scheduling (scheduler.policy != kFixedPeriod) requires "
          "kPeriodic mode with detection_period > 0");
    }
  }
  return robustness.Validate();
}

// What the parallel pass sees of the shard set.  Every method runs with
// all shard mutexes, txn_mu_ and (when observing) obs_mu_ held by the
// pass, so plain cross-shard reads and serial mutations are safe.
class ConcurrentLockService::PassHost final
    : public core::ShardedDetectionHost {
 public:
  explicit PassHost(ConcurrentLockService& service) : service_(service) {}

  size_t num_shards() const override { return service_.shards_.size(); }
  const lock::LockTable& shard_table(size_t shard) const override {
    return service_.shards_[shard]->lm.table();
  }

  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return shard(rid).lm.table().Find(rid);
  }
  // A transaction can be known to several shards; only the shard of the
  // resource it is blocked on carries its wait info (blocked_on set).
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    const lock::TxnLockInfo* any = nullptr;
    for (const auto& s : service_.shards_) {
      const lock::TxnLockInfo* info = s->lm.Info(tid);
      if (info == nullptr) continue;
      if (info->blocked_on.has_value()) return info;
      if (any == nullptr) any = info;
    }
    return any;
  }
  Status ApplyTdr2Direct(lock::ResourceId rid,
                         lock::TransactionId junction) override {
    lock::ResourceState* state =
        shard(rid).lm.mutable_table().FindMutableDeferred(rid);
    if (state == nullptr) {
      return Status::NotFound(common::Format("R%u is not locked", rid));
    }
    return state->ApplyTdr2(junction);
  }
  void NoteTdr2Applied(lock::ResourceId rid) override {
    shard(rid).lm.mutable_table().NoteMutation(rid);
  }

  std::vector<lock::TransactionId> ReleaseAll(
      lock::TransactionId tid) override {
    auto it = service_.txns_.find(tid);
    const uint64_t mask =
        it == service_.txns_.end() ? ~uint64_t{0} : it->second.shard_mask;
    return service_.ReleaseAllShardsLocked(tid, mask);
  }
  std::vector<lock::TransactionId> Reschedule(lock::ResourceId rid) override {
    return shard(rid).lm.Reschedule(rid);
  }

 private:
  Shard& shard(lock::ResourceId rid) const {
    return *service_.shards_[service_.ShardIndex(rid)];
  }

  ConcurrentLockService& service_;
};

Result<std::unique_ptr<ConcurrentLockService>> ConcurrentLockService::Create(
    ConcurrentServiceOptions options) {
  TWBG_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<ConcurrentLockService>(
      new ConcurrentLockService(std::move(options)));
}

ConcurrentLockService::ConcurrentLockService(ConcurrentServiceOptions options)
    : options_(NormalizeConcurrent(std::move(options))),
      mode_(options_.detection_mode) {
  if (!options_.fault_plan.empty()) {
    injector_ = std::make_unique<robustness::FaultInjector>(options_.fault_plan);
  }
  if (mode_ == DetectionMode::kContinuous) {
    TransactionManagerOptions tm_options;
    tm_options.detection_mode = DetectionMode::kContinuous;
    tm_options.cost_policy = options_.cost_policy;
    tm_options.detector = options_.detector;
    // The inner manager's continuous detector runs under mu_, so the
    // tracer's single-writer contract holds; it emits the pass / step /
    // resolution spans for this mode.
    if (tm_options.detector.span_tracer == nullptr) {
      tm_options.detector.span_tracer = options_.span_tracer;
    }
    tm_options.event_bus = options_.event_bus;
    // The inner manager runs the Begin-time admission check; deadlines
    // stay with the service (the manager's clock is logical, ours is wall
    // time) and are implemented in ContinuousAcquire.
    tm_options.robustness.admission = options_.robustness.admission;
    tm_ = std::make_unique<TransactionManager>(tm_options);
    return;
  }
  bus_ = options_.event_bus;
  tracer_ = options_.span_tracer;
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->lm.set_event_bus(bus_);
    shards_.back()->lm.set_span_tracer(tracer_);
  }
  if (options_.detection_threads > 0) {
    pool_ = std::make_unique<common::ThreadPool>(options_.detection_threads);
  }
  core::DetectorOptions detector_options = options_.detector;
  // The component-parallel walk runs on pool workers; span emission there
  // would break the tracer's single-writer contract, so the sharded
  // engine's detector never carries the tracer — the service emits the
  // pass / publish / apply / resolution spans itself, under obs_mu_.
  detector_options.span_tracer = nullptr;
  if (options_.snapshot_strategy == SnapshotStrategy::kEpochDelta) {
    // Pauseless resolutions are validated against the live shards before
    // they apply, so every decision must carry its evidence stamps.
    detector_options.capture_evidence = true;
    snapshots_.reserve(options_.num_shards);
    for (size_t s = 0; s < options_.num_shards; ++s) {
      snapshots_.emplace_back(shards_[s]->lm.table().policy());
    }
    snapshot_host_ = std::make_unique<SnapshotWalkHost>(
        snapshots_, [this](lock::ResourceId rid) { return ShardIndex(rid); });
  }
  detector_ = std::make_unique<core::ParallelPeriodicDetector>(
      detector_options, pool_.get());
  pass_host_ = std::make_unique<PassHost>(*this);
  if (options_.scheduler.use_span_estimates) {
    // Validate() guarantees tracer_ is set with the flag on.
    estimator_ = std::make_unique<obs::SpanEstimator>();
    tracer_->Subscribe(estimator_.get());
    std::scoped_lock ol(obs_mu_);
    estimator_->Reset(tracer_->now());
  }
  if (options_.detection_period.count() > 0) {
    const uint64_t initial_us =
        static_cast<uint64_t>(options_.detection_period.count());
    controller_ = sched::MakePeriodController(options_.scheduler, initial_us);
    base_period_us_ = initial_us;
    current_period_us_.store(initial_us, std::memory_order_release);
    detector_thread_ = std::thread(&ConcurrentLockService::DetectorLoop, this);
  }
}

ConcurrentLockService::~ConcurrentLockService() {
  if (detector_thread_.joinable()) {
    {
      std::scoped_lock lk(stop_mu_);
      stopping_ = true;
    }
    stop_cv_.notify_all();
    detector_thread_.join();
  }
  if (estimator_ != nullptr) tracer_->Unsubscribe(estimator_.get());
}

size_t ConcurrentLockService::ShardIndex(lock::ResourceId rid) const {
  // Fibonacci hashing spreads dense rid ranges across shards.
  const uint64_t h = static_cast<uint64_t>(rid) * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>((h >> 32) % shards_.size());
}

std::vector<std::unique_lock<std::mutex>> ConcurrentLockService::LockShards(
    uint64_t mask, common::Stopwatch& hold) {
  TWBG_DCHECK(t_in_sealed_detect == 0);
  std::vector<std::unique_lock<std::mutex>> locks;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    Shard& shard = *shards_[s];
    std::unique_lock<std::mutex> sl(shard.mu, std::try_to_lock);
    const bool contended = !sl.owns_lock();
    if (contended) sl.lock();
    shard.ops++;
    if (contended) shard.acquire_waits++;
    locks.push_back(std::move(sl));
  }
  hold.Reset();
  return locks;
}

void ConcurrentLockService::EmitStandalone(obs::Event event) {
  if (bus_ == nullptr) return;
  std::scoped_lock ol(obs_mu_);
  if (bus_->active()) bus_->Emit(event);
}

uint64_t ConcurrentLockService::OpenSpanStandalone(obs::SpanKind kind,
                                                   uint32_t track,
                                                   uint64_t parent) {
  if (tracer_ == nullptr) return 0;
  std::scoped_lock ol(obs_mu_);
  if (!tracer_->active()) return 0;
  return tracer_->Open(kind, track, parent);
}

void ConcurrentLockService::CloseSpanStandalone(uint64_t id, uint64_t a,
                                                uint64_t b,
                                                std::string label) {
  if (id == 0 || tracer_ == nullptr) return;
  std::scoped_lock ol(obs_mu_);
  tracer_->Close(id, a, b, std::move(label));
}

Result<lock::TransactionId> ConcurrentLockService::Begin() {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    Result<lock::TransactionId> tid = tm_->Begin();
    if (!tid.ok() && tid.status().IsResourceExhausted()) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    return tid;
  }
  return PeriodicBegin();
}

Result<lock::TransactionId> ConcurrentLockService::PeriodicBegin() {
  std::scoped_lock tl(txn_mu_);
  const robustness::AdmissionOptions& adm = options_.robustness.admission;
  if (adm.max_inflight_txns != 0) {
    robustness::AdmissionContext ctx;
    ctx.inflight_txns = live_txns_;
    Status admitted = robustness::WatermarkAdmission(adm).AdmitBegin(ctx);
    if (!admitted.ok()) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      if (bus_ != nullptr) {
        std::scoped_lock ol(obs_mu_);
        if (bus_->active()) {
          obs::Event event;
          event.kind = obs::EventKind::kAdmissionReject;
          event.a = live_txns_;
          event.b = adm.max_inflight_txns;
          bus_->Emit(event);
        }
      }
      return admitted;
    }
  }
  const lock::TransactionId tid = next_tid_++;
  TxnRecord& rec = txns_[tid];
  rec.begin_ts = next_ts_++;
  ++live_txns_;
  RefreshCostLocked(tid, rec);
  if (observed()) {
    std::scoped_lock ol(obs_mu_);
    if (obs::Enabled(bus_)) {
      obs::Event event;
      event.kind = obs::EventKind::kTxnBegin;
      event.tid = tid;
      bus_->Emit(event);
    }
    if (obs::Tracing(tracer_)) tracer_->OpenTxn(tid, "client");
  }
  return tid;
}

Status ConcurrentLockService::AcquireBlocking(lock::TransactionId tid,
                                              lock::ResourceId rid,
                                              lock::LockMode mode) {
  if (mode_ == DetectionMode::kPeriodic) {
    return PeriodicAcquire(tid, rid, mode);
  }
  return ContinuousAcquire(tid, rid, mode);
}

Status ConcurrentLockService::ContinuousAcquire(lock::TransactionId tid,
                                                lock::ResourceId rid,
                                                lock::LockMode mode) {
  uint64_t grant_delay_us = 0;
  if (injector_ != nullptr) {
    // Read the transaction's operation index (the schedule address) and
    // fire any fault planted there.
    std::optional<robustness::Fault> fault;
    std::optional<robustness::Fault> stall;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const Transaction* txn = tm_->Find(tid);
      if (txn != nullptr && txn->state == TxnState::kActive) {
        fault = injector_->TakeAcquireFault(tid, txn->ops_executed);
      }
      stall = injector_->TakeShardStall(0);  // the single "shard"
      obs::EventBus* bus = options_.event_bus;
      if (fault.has_value() && obs::Enabled(bus)) bus->Emit(FaultEvent(*fault));
      if (stall.has_value() && obs::Enabled(bus)) bus->Emit(FaultEvent(*stall));
      if (stall.has_value()) {
        std::this_thread::sleep_for(std::chrono::microseconds(stall->duration));
      }
      if (fault.has_value() &&
          fault->kind == robustness::FaultKind::kCrashTxn) {
        Status aborted = tm_->Abort(tid);
        if (!aborted.ok()) return aborted;
      }
    }
    if (fault.has_value()) {
      if (fault->kind == robustness::FaultKind::kCrashTxn) {
        cv_.notify_all();
        return Status::Aborted(
            common::Format("T%u crashed by injected fault", tid));
      }
      grant_delay_us = fault->duration;
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  Status outcome = tm_->Acquire(tid, rid, mode);
  // The continuous detector may have resolved a deadlock inside Acquire:
  // wake anyone it granted or aborted.
  cv_.notify_all();
  if (outcome.IsDeadlockVictim()) {
    ++cont_deadlock_victims_;
    return outcome;
  }
  if (outcome.IsResourceExhausted()) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  if (outcome.ok()) {
    lock.unlock();
    if (grant_delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(grant_delay_us));
    }
    return outcome;
  }
  if (!outcome.IsWouldBlock()) return outcome;

  // Park until the lock manager grants us (state back to Active) or a
  // later resolution kills us.  Progress is guaranteed: continuous
  // detection leaves no deadlock behind, so every wait ends with some
  // transaction's commit/abort — or with our deadline.
  const uint64_t deadline_us = options_.robustness.deadline.lock_wait;
  const auto blocked = [&] {
    Result<TxnState> state = tm_->State(tid);
    return state.ok() && *state == TxnState::kBlocked;
  };
  if (deadline_us == 0 && injector_ == nullptr) {
    cv_.wait(lock, [&] { return !blocked(); });
  } else {
    const auto expiry =
        std::chrono::steady_clock::now() + std::chrono::microseconds(deadline_us);
    while (blocked()) {
      if (deadline_us != 0 && std::chrono::steady_clock::now() >= expiry) {
        // Still blocked under mu_, so nothing can race the cancellation:
        // this is the single resolution of the wait.
        const lock::LockManager& lm = tm_->lock_manager();
        const lock::TxnLockInfo* info = lm.Info(tid);
        TWBG_CHECK(info != nullptr && info->blocked_on.has_value());
        const lock::ResourceId wait_rid = *info->blocked_on;
        const lock::LockMode wait_mode = info->blocked_mode;
        const uint64_t span = info->wait_span;
        TWBG_CHECK(tm_->CancelWait(tid).ok());
        const uint32_t expiries = ++cont_expiries_[tid];
        deadline_expiries_.fetch_add(1, std::memory_order_relaxed);
        const uint32_t abort_after = options_.robustness.deadline.abort_after;
        const bool escalate = abort_after != 0 && expiries >= abort_after;
        obs::EventBus* bus = options_.event_bus;
        if (obs::Enabled(bus)) {
          obs::Event event;
          event.kind = obs::EventKind::kDeadlineExpired;
          event.tid = tid;
          event.rid = wait_rid;
          event.mode = wait_mode;
          event.span = span;
          event.a = expiries;
          event.b = escalate ? 1 : 0;
          bus->Emit(event);
        }
        if (escalate) {
          deadline_aborts_.fetch_add(1, std::memory_order_relaxed);
          TWBG_CHECK(tm_->Abort(tid).ok());
          lock.unlock();
          cv_.notify_all();
          return Status::DeadlineExceeded(common::Format(
              "T%u wait on R%u exceeded its deadline; aborted after %u "
              "expired waits",
              tid, wait_rid, expiries));
        }
        lock.unlock();
        cv_.notify_all();  // waiters granted by the withdrawal
        return Status::DeadlineExceeded(common::Format(
            "T%u wait on R%u exceeded its deadline", tid, wait_rid));
      }
      cv_.wait_for(lock, kWaitPoll);
    }
  }
  Result<TxnState> state = tm_->State(tid);
  if (state.ok() && *state == TxnState::kActive) {
    lock.unlock();
    if (grant_delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(grant_delay_us));
    }
    return Status::OK();
  }
  ++cont_deadlock_victims_;
  return Status::DeadlockVictim(
      common::Format("T%u aborted as deadlock victim while waiting", tid));
}

Status ConcurrentLockService::PeriodicAcquire(lock::TransactionId tid,
                                              lock::ResourceId rid,
                                              lock::LockMode mode) {
  TWBG_DCHECK(t_in_sealed_detect == 0);
  const size_t shard_index = ShardIndex(rid);
  Shard& shard = *shards_[shard_index];

  uint64_t grant_delay_us = 0;
  if (injector_ != nullptr) {
    // Fire acquire-addressed faults before taking any shard mutex: the
    // crash path re-enters PeriodicTerminate, which locks shards itself
    // (lock order forbids doing that while one is held).
    std::optional<robustness::Fault> fault;
    {
      std::scoped_lock tl(txn_mu_);
      auto it = txns_.find(tid);
      if (it != txns_.end() &&
          it->second.state.load(std::memory_order_relaxed) ==
              TxnState::kActive) {
        fault = injector_->TakeAcquireFault(tid, it->second.ops_executed);
      }
    }
    if (fault.has_value()) {
      EmitStandalone(FaultEvent(*fault));
      if (fault->kind == robustness::FaultKind::kCrashTxn) {
        Status aborted = PeriodicTerminate(tid, /*commit=*/false);
        if (!aborted.ok()) return aborted;
        return Status::Aborted(
            common::Format("T%u crashed by injected fault", tid));
      }
      grant_delay_us = fault->duration;
    }
    if (std::optional<robustness::Fault> stall =
            injector_->TakeShardStall(static_cast<uint32_t>(shard_index))) {
      EmitStandalone(FaultEvent(*stall));
      // Hold the shard mutex through the stall: every operation routed
      // here piles up behind it, exactly an unresponsive partition.
      std::scoped_lock stall_lock(shard.mu);
      std::this_thread::sleep_for(std::chrono::microseconds(stall->duration));
    }
  }

  std::unique_lock<std::mutex> sl(shard.mu, std::try_to_lock);
  const bool contended = !sl.owns_lock();
  if (contended) sl.lock();
  common::Stopwatch hold;
  shard.ops++;
  if (contended) shard.acquire_waits++;

  TxnRecord* rec = nullptr;
  lock::RequestOutcome outcome;
  {
    std::scoped_lock tl(txn_mu_);
    auto it = txns_.find(tid);
    if (it == txns_.end()) {
      return Status::NotFound(common::Format("unknown transaction T%u", tid));
    }
    rec = &it->second;
    const TxnState state = rec->state.load(std::memory_order_relaxed);
    if (state != TxnState::kActive) {
      return Status::FailedPrecondition(
          common::Format("T%u is %s and cannot request locks", tid,
                         std::string(ToString(state)).c_str()));
    }
    // Record the routing before the request: commits/aborts must lock
    // this shard even if the request errors after registering the txn.
    rec->shard_mask |= uint64_t{1} << shard_index;
    // Backpressure: shed requests that would deepen an already saturated
    // shard.  Holders are exempt — a conversion must be allowed through
    // or the holder could never finish and drain the queue.
    const uint64_t watermark = options_.robustness.admission.queue_depth_watermark;
    if (watermark != 0) {
      const lock::ResourceState* res = shard.lm.table().Find(rid);
      const bool holder = res != nullptr && res->FindHolder(tid) != nullptr;
      if (!holder) {
        robustness::AdmissionContext ctx;
        ctx.inflight_txns = live_txns_;
        ctx.queue_depth = shard.lm.BlockedTransactions().size();
        Status admitted = robustness::WatermarkAdmission(
                              options_.robustness.admission)
                              .AdmitAcquire(ctx);
        if (!admitted.ok()) {
          admission_rejects_.fetch_add(1, std::memory_order_relaxed);
          if (bus_ != nullptr) {
            std::scoped_lock ol(obs_mu_);
            if (bus_->active()) {
              obs::Event event;
              event.kind = obs::EventKind::kAdmissionReject;
              event.tid = tid;
              event.rid = rid;
              event.a = ctx.queue_depth;
              event.b = watermark;
              bus_->Emit(event);
            }
          }
          shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
          return admitted;
        }
      }
    }
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (observed()) ol.lock();
    Result<lock::RequestOutcome> result = shard.lm.Acquire(tid, rid, mode);
    if (!result.ok()) {
      shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
      return result.status();
    }
    rec->ops_executed++;
    RefreshCostLocked(tid, *rec);
    outcome = *result;
    switch (outcome) {
      case lock::RequestOutcome::kGranted:
        rec->locks_granted++;
        RefreshCostLocked(tid, *rec);
        break;
      case lock::RequestOutcome::kAlreadyHeld:
        break;
      case lock::RequestOutcome::kBlocked:
        rec->state.store(TxnState::kBlocked, std::memory_order_relaxed);
        break;
    }
  }
  shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
  if (outcome != lock::RequestOutcome::kBlocked) {
    sl.unlock();
    if (grant_delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(grant_delay_us));
    }
    return Status::OK();
  }

  // Park on the shard of the resource we are blocked on.  We have held
  // shard.mu continuously since the lock manager queued us, and anyone
  // who grants or aborts us does so while holding this same mutex (the
  // rid is in our shard_mask and in the granter's release set; the
  // detector holds every shard) — so the state change cannot slip in
  // between our predicate check and the park, and no wakeup is missed.
  const auto unblocked = [rec] {
    return rec->state.load(std::memory_order_relaxed) != TxnState::kBlocked;
  };
  const uint64_t deadline_us = options_.robustness.deadline.lock_wait;
  if (deadline_us == 0 && injector_ == nullptr) {
    shard.cv.wait(sl, unblocked);
  } else {
    // Deadline-armed / fault-exposed waits poll: a deadline must be
    // noticed without anyone waking us, and a dropped wakeup must not
    // strand us.
    const auto expiry = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(deadline_us);
    while (!unblocked()) {
      if (deadline_us != 0 && std::chrono::steady_clock::now() >= expiry) {
        bool escalate = false;
        Status expired = CancelPeriodicWait(tid, shard, &escalate);
        if (expired.ok()) break;  // a grant raced in: single resolution
        sl.unlock();
        shard.cv.notify_all();  // waiters granted by the withdrawal
        if (escalate) {
          Status aborted = PeriodicTerminate(tid, /*commit=*/false);
          TWBG_CHECK(aborted.ok());
        }
        return expired;
      }
      shard.cv.wait_for(sl, kWaitPoll);
    }
  }
  if (rec->state.load(std::memory_order_relaxed) == TxnState::kActive) {
    sl.unlock();
    if (grant_delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(grant_delay_us));
    }
    return Status::OK();
  }
  return Status::DeadlockVictim(
      common::Format("T%u aborted as deadlock victim while waiting", tid));
}

Result<lock::RequestOutcome> ConcurrentLockService::AcquireAsync(
    lock::TransactionId tid, lock::ResourceId rid, lock::LockMode mode) {
  if (mode_ != DetectionMode::kPeriodic) {
    return Status::FailedPrecondition(
        "AcquireAsync requires kPeriodic mode (the continuous engine "
        "resolves deadlocks inside blocking acquires; use AcquireBlocking)");
  }
  TWBG_DCHECK(t_in_sealed_detect == 0);
  const size_t shard_index = ShardIndex(rid);
  Shard& shard = *shards_[shard_index];

  std::unique_lock<std::mutex> sl(shard.mu, std::try_to_lock);
  const bool contended = !sl.owns_lock();
  if (contended) sl.lock();
  common::Stopwatch hold;
  shard.ops++;
  if (contended) shard.acquire_waits++;

  // Mirrors the registration half of PeriodicAcquire exactly — routing
  // mask, admission watermark, lock-manager request, state/cost updates —
  // but returns the outcome instead of parking on the shard cv.  A later
  // grant flips the record's atomic state via ReactivateLocked whether or
  // not a thread is parked, so callers observe it through State(tid).
  std::scoped_lock tl(txn_mu_);
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  TxnRecord& rec = it->second;
  const TxnState state = rec.state.load(std::memory_order_relaxed);
  if (state != TxnState::kActive) {
    return Status::FailedPrecondition(
        common::Format("T%u is %s and cannot request locks", tid,
                       std::string(ToString(state)).c_str()));
  }
  rec.shard_mask |= uint64_t{1} << shard_index;
  const uint64_t watermark = options_.robustness.admission.queue_depth_watermark;
  if (watermark != 0) {
    const lock::ResourceState* res = shard.lm.table().Find(rid);
    const bool holder = res != nullptr && res->FindHolder(tid) != nullptr;
    if (!holder) {
      robustness::AdmissionContext ctx;
      ctx.inflight_txns = live_txns_;
      ctx.queue_depth = shard.lm.BlockedTransactions().size();
      Status admitted =
          robustness::WatermarkAdmission(options_.robustness.admission)
              .AdmitAcquire(ctx);
      if (!admitted.ok()) {
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        if (bus_ != nullptr) {
          std::scoped_lock ol(obs_mu_);
          if (bus_->active()) {
            obs::Event event;
            event.kind = obs::EventKind::kAdmissionReject;
            event.tid = tid;
            event.rid = rid;
            event.a = ctx.queue_depth;
            event.b = watermark;
            bus_->Emit(event);
          }
        }
        shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
        return admitted;
      }
    }
  }
  std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
  if (observed()) ol.lock();
  Result<lock::RequestOutcome> result = shard.lm.Acquire(tid, rid, mode);
  if (!result.ok()) {
    shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
    return result.status();
  }
  rec.ops_executed++;
  RefreshCostLocked(tid, rec);
  switch (*result) {
    case lock::RequestOutcome::kGranted:
      rec.locks_granted++;
      RefreshCostLocked(tid, rec);
      break;
    case lock::RequestOutcome::kAlreadyHeld:
      break;
    case lock::RequestOutcome::kBlocked:
      rec.state.store(TxnState::kBlocked, std::memory_order_relaxed);
      break;
  }
  shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
  return *result;
}

Status ConcurrentLockService::SetCost(lock::TransactionId tid, double cost) {
  if (mode_ != DetectionMode::kPeriodic) {
    return Status::FailedPrecondition(
        "SetCost requires kPeriodic mode (the continuous engine's costs "
        "are policy-managed by its inner TransactionManager)");
  }
  std::scoped_lock tl(txn_mu_);
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  TxnRecord& rec = it->second;
  const TxnState state = rec.state.load(std::memory_order_relaxed);
  if (state == TxnState::kCommitted || state == TxnState::kAborted) {
    return Status::FailedPrecondition(common::Format(
        "T%u is %s; cannot set the cost of a terminated transaction", tid,
        std::string(ToString(state)).c_str()));
  }
  rec.cost_pinned = true;
  costs_.Set(tid, cost);
  return Status::OK();
}

Status ConcurrentLockService::CancelPeriodicWait(lock::TransactionId tid,
                                                 Shard& shard,
                                                 bool* escalate) {
  *escalate = false;
  std::scoped_lock tl(txn_mu_);
  auto it = txns_.find(tid);
  TWBG_CHECK(it != txns_.end());
  TxnRecord& rec = it->second;
  const TxnState state = rec.state.load(std::memory_order_relaxed);
  // The shard mutex has been held since the deadline check, and both
  // resolvers (terminating releasers and the stop-the-world pass) change
  // waiter states only while holding it — whichever of {grant, abort,
  // expiry} we observe first under txn_mu_ is the wait's single
  // resolution.
  if (state == TxnState::kActive) return Status::OK();
  if (state != TxnState::kBlocked) {
    return Status::DeadlockVictim(
        common::Format("T%u aborted as deadlock victim while waiting", tid));
  }
  std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
  if (observed()) ol.lock();
  const lock::TxnLockInfo* info = shard.lm.Info(tid);
  TWBG_CHECK(info != nullptr && info->blocked_on.has_value());
  const lock::ResourceId wait_rid = *info->blocked_on;
  const lock::LockMode wait_mode = info->blocked_mode;
  const uint64_t span = info->wait_span;
  Result<std::vector<lock::TransactionId>> granted = shard.lm.CancelWait(tid);
  TWBG_CHECK(granted.ok());
  rec.state.store(TxnState::kActive, std::memory_order_relaxed);
  rec.deadline_expiries++;
  rec.blocked_sweeps = 0;
  deadline_expiries_.fetch_add(1, std::memory_order_relaxed);
  ReactivateLocked(*granted);
  const uint32_t abort_after = options_.robustness.deadline.abort_after;
  *escalate = abort_after != 0 && rec.deadline_expiries >= abort_after;
  if (*escalate) deadline_aborts_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled(bus_)) {
    obs::Event event;
    event.kind = obs::EventKind::kDeadlineExpired;
    event.tid = tid;
    event.rid = wait_rid;
    event.mode = wait_mode;
    event.span = span;
    event.a = rec.deadline_expiries;
    event.b = *escalate ? 1 : 0;
    bus_->Emit(event);
  }
  if (*escalate) {
    return Status::DeadlineExceeded(common::Format(
        "T%u wait on R%u exceeded its deadline; aborted after %u expired "
        "waits",
        tid, wait_rid, rec.deadline_expiries));
  }
  return Status::DeadlineExceeded(common::Format(
      "T%u wait on R%u exceeded its deadline", tid, wait_rid));
}

Status ConcurrentLockService::Commit(lock::TransactionId tid) {
  if (mode_ == DetectionMode::kPeriodic) {
    return PeriodicTerminate(tid, /*commit=*/true);
  }
  Status status;
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    status = tm_->Commit(tid);
    if (status.ok() && injector_ != nullptr) {
      drop = injector_->TakeDropWakeup(tid);
      if (drop && obs::Enabled(options_.event_bus)) {
        robustness::Fault fault;
        fault.kind = robustness::FaultKind::kDropWakeup;
        fault.txn = tid;
        options_.event_bus->Emit(FaultEvent(fault));
      }
    }
  }
  // A dropped wakeup swallows the notification; polling waiters (always
  // the case when an injector is present) recover on their next poll.
  if (!drop) cv_.notify_all();
  return status;
}

Status ConcurrentLockService::Abort(lock::TransactionId tid) {
  if (mode_ == DetectionMode::kPeriodic) {
    return PeriodicTerminate(tid, /*commit=*/false);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Status status = tm_->Abort(tid);
  cv_.notify_all();
  return status;
}

Status ConcurrentLockService::PeriodicTerminate(lock::TransactionId tid,
                                                bool commit) {
  // Lock ordering requires the shard mutexes before txn_mu_, so peek at
  // the mask first.  Only this transaction's own thread grows it, and
  // the protocol forbids concurrent operations on one transaction, so
  // the mask is stable; the state is re-validated under the full locks
  // (a detection pass may abort the transaction in between).
  uint64_t mask = 0;
  {
    std::scoped_lock tl(txn_mu_);
    auto it = txns_.find(tid);
    if (it == txns_.end()) {
      return Status::NotFound(common::Format("unknown transaction T%u", tid));
    }
    mask = it->second.shard_mask;
  }

  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(mask, hold);
  {
    std::scoped_lock tl(txn_mu_);
    auto it = txns_.find(tid);
    if (it == txns_.end()) {
      return Status::NotFound(common::Format("unknown transaction T%u", tid));
    }
    TxnRecord& rec = it->second;
    const TxnState state = rec.state.load(std::memory_order_relaxed);
    if (commit && state != TxnState::kActive) {
      return Status::FailedPrecondition(
          common::Format("T%u is %s and cannot commit", tid,
                         std::string(ToString(state)).c_str()));
    }
    if (!commit &&
        (state == TxnState::kCommitted || state == TxnState::kAborted)) {
      return Status::FailedPrecondition(
          common::Format("T%u is already %s", tid,
                         std::string(ToString(state)).c_str()));
    }
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (observed()) ol.lock();
    rec.state.store(commit ? TxnState::kCommitted : TxnState::kAborted,
                    std::memory_order_relaxed);
    --live_txns_;
    if (obs::Enabled(bus_)) {
      obs::Event event;
      event.kind =
          commit ? obs::EventKind::kTxnCommit : obs::EventKind::kTxnAbort;
      event.tid = tid;
      event.a = 0;  // kTxnAbort: voluntary, not a deadlock victim
      bus_->Emit(event);
    }
    if (obs::Tracing(tracer_)) tracer_->CloseTxn(tid, /*aborted=*/!commit);
    costs_.Erase(tid);
    ReactivateLocked(ReleaseAllShardsLocked(tid, mask));
  }
  // A planned drop-wakeup fault swallows this termination's broadcast;
  // the waiters it would have woken recover via their polling waits.
  const bool drop = injector_ != nullptr && injector_->TakeDropWakeup(tid);
  if (drop) {
    robustness::Fault fault;
    fault.kind = robustness::FaultKind::kDropWakeup;
    fault.txn = tid;
    EmitStandalone(FaultEvent(fault));
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if ((mask & (uint64_t{1} << s)) == 0) continue;
      shards_[s]->cv.notify_all();
    }
  }
  // Attribute the critical section to every shard held through it (all
  // were held for its whole duration; the locks are still owned here).
  const uint64_t hold_ns = static_cast<uint64_t>(hold.ElapsedNanos());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    shards_[s]->hold_ns += hold_ns;
  }
  shard_locks.clear();
  return Status::OK();
}

std::vector<lock::TransactionId> ConcurrentLockService::ReleaseAllShardsLocked(
    lock::TransactionId tid, uint64_t mask) {
  // Union of the transaction's touched resources across its shards,
  // released in global ascending-rid order — the exact order a single
  // lock manager's ReleaseAll would use, so the kLockWakeup stream (and
  // hence the recorded linearization) matches the sequential engine.
  std::vector<lock::ResourceId> rids;
  bool known = false;
  bool was_blocked = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    const lock::TxnLockInfo* info = shards_[s]->lm.Info(tid);
    if (info == nullptr) continue;
    known = true;
    was_blocked |= info->blocked_on.has_value();
    rids.insert(rids.end(), info->touched.begin(), info->touched.end());
  }
  if (!known) return {};  // mirror ReleaseAll: unknown tid emits nothing
  // The per-rid ReleaseOn path closes only the *granted* waiters' spans
  // (NoteGranted); the released transaction's own pending wait ends here,
  // the way LockManager::ReleaseAll would end it.
  if (was_blocked && obs::Tracing(tracer_)) {
    tracer_->CloseWait(tid, obs::WaitOutcome::kAborted);
  }
  std::sort(rids.begin(), rids.end());

  std::vector<lock::TransactionId> granted;
  for (lock::ResourceId rid : rids) {
    Shard& shard = *shards_[ShardIndex(rid)];
    const std::vector<lock::TransactionId> g = shard.lm.ReleaseOn(tid, rid);
    granted.insert(granted.end(), g.begin(), g.end());
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    shards_[s]->lm.Forget(tid);
  }
  if (obs::Enabled(bus_)) {
    // The one release summary, same shape as LockManager::ReleaseAll.
    obs::Event event;
    event.kind = obs::EventKind::kLockRelease;
    event.tid = tid;
    event.a = rids.size();
    event.b = granted.size();
    bus_->Emit(event);
  }
  return granted;
}

core::ResolutionReport ConcurrentLockService::RunDetectionPass() {
  if (mode_ == DetectionMode::kPeriodic) return RunPeriodicPass();
  std::lock_guard<std::mutex> lock(mu_);
  core::ResolutionReport report = tm_->RunDetection();
  cv_.notify_all();
  return report;
}

core::ResolutionReport ConcurrentLockService::RunPeriodicPass() {
  if (degraded_remaining_.load(std::memory_order_relaxed) > 0) {
    return RunTimeoutSweep();
  }
  if (options_.snapshot_strategy == SnapshotStrategy::kStopTheWorld) {
    return RunStopTheWorldPass();
  }
  return RunPauselessPass();
}

core::ResolutionReport ConcurrentLockService::RunStopTheWorldPass() {
  // Stop the world: all shard locks (ascending), the transaction table,
  // then the bus.  Everything the pass reads is a consistent cross-shard
  // snapshot; everything it mutates and emits lands atomically between
  // two application operations, which is what makes the recorded event
  // stream replayable against the sequential engine.
  common::Stopwatch pause;
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  core::ResolutionReport report;
  {
    std::scoped_lock tl(txn_mu_);
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (observed()) ol.lock();
    const uint64_t pass_span =
        obs::Tracing(tracer_) ? tracer_->Open(obs::SpanKind::kPass) : 0;
    report = detector_->RunPass(*pass_host_, costs_);
    ApplyReportLocked(report);
    if (obs::Enabled(bus_)) PublishShardStatsLocked();
    if (pass_span != 0) {
      // Pass-span close contract: a = cycles resolved, b = cost ns.
      tracer_->Close(pass_span, report.cycles_detected,
                     static_cast<uint64_t>(pause.ElapsedNanos()));
    }
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  const uint64_t pause_ns = static_cast<uint64_t>(pause.ElapsedNanos());
  const uint64_t hold_ns = static_cast<uint64_t>(hold.ElapsedNanos());
  for (auto& shard : shards_) {
    shard->hold_ns += hold_ns;
    shard->cv.notify_all();
  }
  shard_locks.clear();
  {
    std::scoped_lock stl(stats_mu_);
    pause_times_ns_.push_back(pause_ns);
  }
  // Graceful degradation: a pass that blew its pause budget switches the
  // next K scheduled passes to the cheap timeout-resolver sweep.  The
  // budget is judged against the period in effect during THIS pass, so
  // the retune below cannot excuse the pause that motivated it.
  const uint64_t budget_ns = EffectivePauseBudgetNs();
  if (budget_ns != 0 && pause_ns > budget_ns) {
    const uint32_t passes = options_.robustness.degradation.degraded_passes;
    degraded_remaining_.store(passes, std::memory_order_relaxed);
    obs::Event event;
    event.kind = obs::EventKind::kDegraded;
    event.a = passes;
    event.b = pause_ns / 1000;               // the offending pause, µs
    event.value = static_cast<double>(budget_ns) / 1000.0;  // budget, µs
    EmitStandalone(std::move(event));
  }
  UpdateSchedulerAfterPass(pause_ns, report);
  return report;
}

core::ResolutionReport ConcurrentLockService::RunPauselessPass() {
  // The epoch mirrors are shared detector state: one pauseless pass at a
  // time.  pass_mu_ is outermost — nothing below takes it, and it is
  // never acquired while any other service lock is held.
  std::scoped_lock pass_lock(pass_mu_);
  common::Stopwatch pass_clock;
  const uint64_t sealing_epoch = epoch_.load(std::memory_order_acquire) + 1;
  const uint64_t pass_span = OpenSpanStandalone(obs::SpanKind::kPass, 0, 0);

  // Phase 1 — publish: capture each shard's journal delta under its own
  // mutex (the only pause a client ever observes, O(delta)), then fold it
  // into the mirror outside the lock.
  uint64_t max_publish_ns = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    ShardCaptureStats capture;
    uint64_t publish_ns = 0;
    const uint64_t publish_span = OpenSpanStandalone(
        obs::SpanKind::kPublish, static_cast<uint32_t>(s), pass_span);
    {
      std::unique_lock<std::mutex> sl(shard.mu, std::try_to_lock);
      const bool contended = !sl.owns_lock();
      if (contended) sl.lock();
      shard.ops++;
      if (contended) shard.acquire_waits++;
      common::Stopwatch publish;
      capture = snapshots_[s].Capture(shard.lm);
      publish_ns = static_cast<uint64_t>(publish.ElapsedNanos());
      shard.hold_ns += publish_ns;
    }
    snapshots_[s].Fold();
    // Publish-span counters: a = dirty resources captured, b = the
    // client-visible publish pause in nanoseconds (the span's duration
    // also covers the fold, which runs off the shard lock).
    CloseSpanStandalone(publish_span, capture.dirty, publish_ns);
    max_publish_ns = std::max(max_publish_ns, publish_ns);
    {
      std::scoped_lock stl(stats_mu_);
      publish_pause_times_ns_.push_back(publish_ns);
    }
    obs::Event event;
    event.kind = obs::EventKind::kSnapshotPublish;
    event.rid = static_cast<lock::ResourceId>(s);  // shard index
    event.a = capture.dirty;
    event.b = capture.full_sweep ? 1 : 0;
    event.span = sealing_epoch;
    event.value = static_cast<double>(publish_ns);
    EmitStandalone(std::move(event));
  }
  common::Stopwatch seal_clock;  // measures the seal-to-apply lag

  // The walk decides victims on a cost snapshot; the validated apply
  // replays the TDR-2 ST bumps onto the live table.
  core::CostTable costs_copy;
  {
    std::scoped_lock tl(txn_mu_);
    costs_copy = costs_;
  }

  // Phase 2 — detect, lock-free over the sealed mirrors while client
  // traffic proceeds on the live shards.  Events are recorded on a local
  // bus; the apply phase replays the validated subset into the shared
  // stream so sinks never see resolutions that were later rejected.
  std::vector<const lock::LockTable*> tables;
  tables.reserve(snapshots_.size());
  for (const ShardSnapshot& snapshot : snapshots_) {
    tables.push_back(&snapshot.table());
  }
  obs::EventBus local_bus;
  obs::CollectorSink recorder;
  bool observing = false;
  if (bus_ != nullptr) {
    std::scoped_lock ol(obs_mu_);
    observing = bus_->active();
    local_bus.set_time(bus_->time());
  }
  if (observing) local_bus.Subscribe(&recorder);
  common::Stopwatch detect_clock;
  core::ParallelPeriodicDetector::DetectOutcome detect;
  {
    ++t_in_sealed_detect;
    detect = detector_->RunDetect(tables, *snapshot_host_, costs_copy,
                                  observing ? &local_bus : nullptr,
                                  detect_clock);
    --t_in_sealed_detect;
  }
  if (options_.post_seal_hook) options_.post_seal_hook();

  // Segment the recorded stream — [kPassStart, kStep1, one segment per
  // decision ([kUprReposition?] kCycleResolved [kCyclePostMortem?]),
  // kStep2] — so each decision's events replay exactly when the decision
  // validates.
  std::vector<core::VictimDecision>& decisions = detect.walk.decisions;
  const std::deque<obs::Event>& recorded = recorder.events();
  std::vector<std::pair<size_t, size_t>> segments;
  if (observing) {
    segments.reserve(decisions.size());
    size_t pos = 2;  // past kPassStart, kStep1
    for (size_t i = 0; i < decisions.size(); ++i) {
      const size_t begin = pos;
      while (recorded[pos].kind != obs::EventKind::kCycleResolved) ++pos;
      ++pos;
      if (pos < recorded.size() &&
          recorded[pos].kind == obs::EventKind::kCyclePostMortem) {
        ++pos;
      }
      segments.emplace_back(begin, pos);
    }
  }

  core::ResolutionReport report;
  report.cycles_detected = detect.walk.cycles;
  report.steps = detect.walk.steps;
  report.num_transactions = detect.num_transactions;
  report.num_edges = detect.num_edges;
  if (detect.incremental) {
    report.num_dirty_resources = detect.cache.num_dirty_resources;
    report.num_cached_resources = detect.cache.num_cached_resources;
    report.edges_rebuilt = detect.cache.edges_rebuilt;
    report.edges_reused = detect.cache.edges_reused;
  }

  // Phase 3 — validated apply: under the full pass locks, re-check every
  // decision's evidence stamps against the live shards.  A match means
  // the sealed state it was derived from IS the live state now (equal
  // versions guarantee identical content), so the cycle exists at this
  // instant and the resolution is sound; a mismatch means the evidence
  // moved between seal and apply, and the decision is dropped — the
  // cycle, if it persists, cannot mutate further (every member is
  // blocked) and re-derives cleanly next pass.
  common::Stopwatch apply_pause;
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  const uint64_t lag_ns = static_cast<uint64_t>(seal_clock.ElapsedNanos());
  {
    std::scoped_lock tl(txn_mu_);
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (observed()) ol.lock();
    const bool live_obs = observing && obs::Enabled(bus_);
    const uint64_t apply_span =
        obs::Tracing(tracer_)
            ? tracer_->Open(obs::SpanKind::kApply, 0, pass_span)
            : 0;
    const auto replay = [&](size_t index) { bus_->Emit(recorded[index]); };
    if (live_obs) {
      replay(0);  // kPassStart
      replay(1);  // kStep1
    }

    // A TDR-2 replay gives the live resource a fresh version stamp (the
    // stamp domain is process-wide), while later decisions in the same
    // component derived their evidence from the mirror's post-apply
    // stamp.  The overlay maps each repositioned resource to (the mirror
    // stamp later evidence should cite, the live stamp our replay
    // produced) so chained decisions validate.
    std::map<lock::ResourceId, std::pair<uint64_t, uint64_t>> overlay;
    std::vector<char> valid(decisions.size(), 0);
    for (size_t i = 0; i < decisions.size(); ++i) {
      const core::VictimDecision& decision = decisions[i];
      const core::VictimCandidate& victim = decision.victim();
      bool stamps_hold = true;
      for (const auto& [rid, stamp] : decision.evidence) {
        const lock::ResourceState* live =
            shards_[ShardIndex(rid)]->lm.table().Find(rid);
        if (live == nullptr) {
          stamps_hold = false;
          break;
        }
        const auto it = overlay.find(rid);
        if (it != overlay.end()) {
          if (stamp != it->second.first ||
              live->version() != it->second.second) {
            stamps_hold = false;
            break;
          }
        } else if (live->version() != stamp) {
          stamps_hold = false;
          break;
        }
      }
      if (!stamps_hold) {
        ++report.rejected;
        resolutions_rejected_.fetch_add(1, std::memory_order_relaxed);
        if (live_obs) {
          obs::Event event;
          event.kind = obs::EventKind::kResolutionRejected;
          event.tid = victim.junction;
          event.rid = victim.kind == core::VictimKind::kReposition
                          ? victim.resource
                          : 0;
          event.a = decision.cycle.size();
          event.b = victim.kind == core::VictimKind::kReposition;
          event.value = victim.cost;
          bus_->Emit(std::move(event));
        }
        continue;
      }
      valid[i] = 1;
      // The sealed detect ran tracer-less (worker threads), so the
      // resolution span of a validated decision is minted here, at the
      // moment the resolution actually lands on the live shards.
      uint64_t res_span = 0;
      if (obs::Tracing(tracer_)) {
        res_span = tracer_->Open(obs::SpanKind::kResolution, 0, pass_span);
        tracer_->SetContext(res_span, victim.junction,
                            victim.kind == core::VictimKind::kReposition
                                ? victim.resource
                                : 0);
      }
      if (victim.kind == core::VictimKind::kReposition) {
        Shard& shard = *shards_[ShardIndex(victim.resource)];
        lock::ResourceState* state =
            shard.lm.mutable_table().FindMutableDeferred(victim.resource);
        TWBG_CHECK(state != nullptr);  // stamps hold: same state as sealed
        const Status applied = state->ApplyTdr2(victim.junction);
        TWBG_CHECK(applied.ok());  // identical queue => same outcome
        shard.lm.mutable_table().NoteMutation(victim.resource);
        overlay[victim.resource] = {decision.applied_version,
                                    state->version()};
        for (lock::TransactionId st : victim.st) {
          costs_.Bump(st, options_.detector.st_cost_multiplier,
                      options_.detector.st_cost_increment);
        }
      }
      if (live_obs) {
        for (size_t e = segments[i].first; e < segments[i].second; ++e) {
          obs::Event event = recorded[e];
          if (event.kind == obs::EventKind::kCyclePostMortem) {
            // Forensic <-> timeline join: the recorded post-mortem was
            // captured span-less on the local bus; stamp it with the
            // resolution span minted above before it reaches the sinks.
            event.span = res_span;
          }
          bus_->Emit(std::move(event));
        }
      }
      if (res_span != 0) {
        const bool reposition =
            victim.kind == core::VictimKind::kReposition;
        tracer_->Close(res_span, decision.cycle.size(), reposition ? 1 : 0,
                       reposition ? "TDR-2" : "TDR-1");
      }
    }
    if (live_obs) replay(recorded.size() - 1);  // kStep2

    // Step 3 over the validated subset, mirroring core::ApplyResolution:
    // rebuild the abortion and change lists from the surviving decisions
    // (same order, same dedup the walk applied).
    std::vector<lock::TransactionId> order;
    std::vector<lock::ResourceId> change_list;
    for (size_t i = 0; i < decisions.size(); ++i) {
      if (valid[i] == 0) continue;
      const core::VictimCandidate& victim = decisions[i].victim();
      if (victim.kind == core::VictimKind::kAbort) {
        order.push_back(victim.junction);
      } else if (std::find(change_list.begin(), change_list.end(),
                           victim.resource) == change_list.end()) {
        change_list.push_back(victim.resource);
      }
    }
    switch (options_.detector.abort_order) {
      case core::AbortOrder::kInsertion:
        break;
      case core::AbortOrder::kReverseInsertion:
        std::reverse(order.begin(), order.end());
        break;
      case core::AbortOrder::kCostDescending:
        std::stable_sort(order.begin(), order.end(),
                         [&](lock::TransactionId a, lock::TransactionId b) {
                           return costs_.Get(a) > costs_.Get(b);
                         });
        break;
      case core::AbortOrder::kCostAscending:
        std::stable_sort(order.begin(), order.end(),
                         [&](lock::TransactionId a, lock::TransactionId b) {
                           return costs_.Get(a) < costs_.Get(b);
                         });
        break;
    }
    std::set<lock::TransactionId> granted_set;
    for (lock::TransactionId tid : order) {
      if (granted_set.count(tid) != 0) {
        report.spared.push_back(tid);
        continue;
      }
      const auto it = txns_.find(tid);
      const uint64_t mask =
          it == txns_.end() ? ~uint64_t{0} : it->second.shard_mask;
      const std::vector<lock::TransactionId> granted =
          ReleaseAllShardsLocked(tid, mask);
      report.aborted.push_back(tid);
      costs_.Erase(tid);
      for (lock::TransactionId g : granted) {
        granted_set.insert(g);
        report.granted.push_back(g);
      }
    }
    for (lock::ResourceId rid : change_list) {
      for (lock::TransactionId g :
           shards_[ShardIndex(rid)]->lm.Reschedule(rid)) {
        granted_set.insert(g);
        report.granted.push_back(g);
      }
    }
    report.repositioned = std::move(change_list);
    for (size_t i = 0; i < decisions.size(); ++i) {
      if (valid[i] == 0) continue;
      if (i < detect.walk.post_mortems.size()) {
        report.post_mortems.push_back(
            std::move(detect.walk.post_mortems[i]));
      }
      report.decisions.push_back(std::move(decisions[i]));
    }

    if (live_obs) {
      obs::Event end;
      end.kind = obs::EventKind::kPassEnd;
      end.a = report.cycles_detected;
      end.b = report.aborted.size();
      end.span = lag_ns;  // seal-to-apply lag (zero in STW streams)
      end.value = static_cast<double>(pass_clock.ElapsedNanos());
      bus_->Emit(std::move(end));
    }
    ApplyReportLocked(report);
    if (obs::Enabled(bus_)) PublishShardStatsLocked();
    if (apply_span != 0) {
      // Apply-span counters: a = decisions applied, b = rejected.
      tracer_->Close(apply_span, report.decisions.size(), report.rejected);
    }
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  const uint64_t apply_ns = static_cast<uint64_t>(apply_pause.ElapsedNanos());
  const uint64_t hold_ns = static_cast<uint64_t>(hold.ElapsedNanos());
  for (auto& shard : shards_) {
    shard->hold_ns += hold_ns;
    shard->cv.notify_all();
  }
  shard_locks.clear();
  // The client-visible pause of a pauseless pass is whichever critical
  // section was longest: a single shard publish or the validated apply.
  const uint64_t pause_ns = std::max(max_publish_ns, apply_ns);
  {
    std::scoped_lock stl(stats_mu_);
    pause_times_ns_.push_back(pause_ns);
    detection_lag_ns_.push_back(lag_ns);
  }
  const uint64_t budget_ns = EffectivePauseBudgetNs();
  if (budget_ns != 0 && pause_ns > budget_ns) {
    const uint32_t passes = options_.robustness.degradation.degraded_passes;
    degraded_remaining_.store(passes, std::memory_order_relaxed);
    obs::Event event;
    event.kind = obs::EventKind::kDegraded;
    event.a = passes;
    event.b = pause_ns / 1000;               // the offending pause, µs
    event.value = static_cast<double>(budget_ns) / 1000.0;  // budget, µs
    EmitStandalone(std::move(event));
  }
  // Pass-span close contract: a = cycles actually resolved (detected
  // minus stamp-rejected — a rejected decision resolves nothing and is
  // re-derived next pass), b = the full pass cost in nanoseconds.
  const uint64_t pass_ns = static_cast<uint64_t>(pass_clock.ElapsedNanos());
  const uint64_t resolved =
      report.cycles_detected >= report.rejected
          ? report.cycles_detected - report.rejected
          : 0;
  CloseSpanStandalone(pass_span, resolved, pass_ns);
  // Full pass cost (publish + detect + validated apply), not just the
  // client-visible pause: the controller trades detector CPU for staleness.
  UpdateSchedulerAfterPass(pass_ns, report);
  return report;
}

core::ResolutionReport ConcurrentLockService::RunTimeoutSweep() {
  common::Stopwatch pause;
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  core::ResolutionReport report;
  {
    std::scoped_lock tl(txn_mu_);
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (observed()) ol.lock();
    // Timeout resolution (the fallback the paper's algorithm replaces):
    // abort whoever has been observed blocked for `sweep_patience`
    // consecutive sweeps.  Crude — it may abort transactions that are
    // merely waiting, not deadlocked — but O(transactions) cheap, which
    // is the point while degraded.
    const uint32_t patience = options_.robustness.degradation.sweep_patience;
    std::vector<lock::TransactionId> victims;
    for (auto& [tid, rec] : txns_) {
      if (rec.state.load(std::memory_order_relaxed) != TxnState::kBlocked) {
        rec.blocked_sweeps = 0;
        continue;
      }
      if (++rec.blocked_sweeps >= patience) victims.push_back(tid);
    }
    for (lock::TransactionId victim : victims) {
      TxnRecord& rec = txns_.at(victim);
      rec.state.store(TxnState::kAborted, std::memory_order_relaxed);
      // Deliberately NOT flagged deadlock_victim: a timeout abort is a
      // guess, not a detected cycle; it lands in sweep_aborts() instead.
      --live_txns_;
      sweep_aborts_.fetch_add(1, std::memory_order_relaxed);
      costs_.Erase(victim);
      if (obs::Enabled(bus_)) {
        obs::Event event;
        event.kind = obs::EventKind::kTxnAbort;
        event.tid = victim;
        event.a = 0;  // not a deadlock victim
        bus_->Emit(event);
      }
      if (obs::Tracing(tracer_)) tracer_->CloseTxn(victim, /*aborted=*/true);
      const std::vector<lock::TransactionId> granted =
          ReleaseAllShardsLocked(victim, rec.shard_mask);
      ReactivateLocked(granted);
      report.aborted.push_back(victim);
      report.granted.insert(report.granted.end(), granted.begin(),
                            granted.end());
    }
    if (obs::Enabled(bus_)) PublishShardStatsLocked();
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    // Serialized by the shard locks, so no lost update; the guard keeps a
    // racing second sweep (manual pass vs detector thread) from wrapping.
    const uint32_t remaining = degraded_remaining_.load(std::memory_order_relaxed);
    if (remaining > 0) {
      degraded_remaining_.store(remaining - 1, std::memory_order_relaxed);
    }
  }
  const uint64_t pause_ns = static_cast<uint64_t>(pause.ElapsedNanos());
  const uint64_t hold_ns = static_cast<uint64_t>(hold.ElapsedNanos());
  for (auto& shard : shards_) {
    shard->hold_ns += hold_ns;
    shard->cv.notify_all();
  }
  shard_locks.clear();
  {
    // A degraded sweep is not a detection pass: its pause lands in its
    // own series so pause percentiles of full passes stay uncontaminated.
    std::scoped_lock stl(stats_mu_);
    sweep_pause_times_ns_.push_back(pause_ns);
  }
  return report;
}

void ConcurrentLockService::ApplyReportLocked(
    const core::ResolutionReport& report) {
  for (lock::TransactionId victim : report.aborted) {
    auto it = txns_.find(victim);
    if (it == txns_.end()) continue;
    it->second.state.store(TxnState::kAborted, std::memory_order_relaxed);
    it->second.deadlock_victim = true;
    --live_txns_;
    ++deadlock_victims_;
    costs_.Erase(victim);
    if (obs::Enabled(bus_)) {
      obs::Event event;
      event.kind = obs::EventKind::kTxnAbort;
      event.tid = victim;
      event.a = 1;  // deadlock victim (TDR-1)
      bus_->Emit(event);
    }
    if (obs::Tracing(tracer_)) tracer_->CloseTxn(victim, /*aborted=*/true);
  }
  ReactivateLocked(report.granted);
}

void ConcurrentLockService::ReactivateLocked(
    const std::vector<lock::TransactionId>& granted) {
  for (lock::TransactionId g : granted) {
    auto it = txns_.find(g);
    if (it == txns_.end()) continue;
    TxnRecord& rec = it->second;
    if (rec.state.load(std::memory_order_relaxed) != TxnState::kBlocked) {
      continue;
    }
    rec.state.store(TxnState::kActive, std::memory_order_relaxed);
    rec.locks_granted++;
    rec.blocked_sweeps = 0;
    RefreshCostLocked(g, rec);
  }
}

void ConcurrentLockService::PublishShardStatsLocked() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    obs::Event event;
    event.kind = obs::EventKind::kShardContention;
    event.rid = static_cast<lock::ResourceId>(s);  // shard index
    event.a = shard.acquire_waits;
    event.b = shard.ops;
    event.value = static_cast<double>(shard.hold_ns);
    bus_->Emit(event);
  }
}

void ConcurrentLockService::RefreshCostLocked(lock::TransactionId tid,
                                              const TxnRecord& rec) {
  if (rec.cost_pinned) return;  // SetCost owns this transaction's cost
  const TxnState state = rec.state.load(std::memory_order_relaxed);
  if (state == TxnState::kCommitted || state == TxnState::kAborted) return;
  double cost = 1.0;
  switch (options_.cost_policy) {
    case CostPolicy::kUnit:
      cost = 1.0;
      break;
    case CostPolicy::kLocksHeld:
      cost = 1.0 + static_cast<double>(rec.locks_granted);
      break;
    case CostPolicy::kAge:
      cost = 1.0 + static_cast<double>(next_ts_ - rec.begin_ts);
      break;
    case CostPolicy::kOpsDone:
      cost = 1.0 + static_cast<double>(rec.ops_executed);
      break;
  }
  costs_.Set(tid, cost);
}

void ConcurrentLockService::DetectorLoop() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  while (!stopping_) {
    // Re-read every iteration: a retune applied after the previous pass
    // takes effect on the very next wait.
    const std::chrono::microseconds wait(
        current_period_us_.load(std::memory_order_acquire));
    if (stop_cv_.wait_for(lk, wait, [this] { return stopping_; })) {
      break;
    }
    lk.unlock();
    RunPeriodicPass();
    lk.lock();
  }
}

uint64_t ConcurrentLockService::EffectivePauseBudgetNs() const {
  const uint64_t base_ns = options_.robustness.degradation.pause_budget_ns;
  if (base_ns == 0 || controller_ == nullptr || base_period_us_ == 0) {
    return base_ns;
  }
  const uint64_t period_us = current_period_us_.load(std::memory_order_acquire);
  if (period_us == 0 || period_us == base_period_us_) return base_ns;
  // Longer periods amortize a pass over more work, so a proportionally
  // longer pause keeps the same duty cycle; shorter periods tighten it.
  const double scaled = static_cast<double>(base_ns) *
                        static_cast<double>(period_us) /
                        static_cast<double>(base_period_us_);
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

void ConcurrentLockService::UpdateSchedulerAfterPass(
    uint64_t pass_ns, const core::ResolutionReport& report) {
  if (controller_ == nullptr) return;
  // Snapshot the blocked population under txn_mu_ alone before touching
  // any scheduling state (sched_mu_ is a leaf lock: nothing else is ever
  // taken under it).
  uint64_t blocked = 0;
  {
    std::scoped_lock tl(txn_mu_);
    for (const auto& [tid, rec] : txns_) {
      if (rec.state.load(std::memory_order_relaxed) == TxnState::kBlocked) {
        ++blocked;
      }
    }
  }
  // Drain the estimator window (if any) before sched_mu_ — like the
  // blocked snapshot above, so sched_mu_ stays a leaf lock.
  obs::SpanSampleStats stats;
  if (estimator_ != nullptr) {
    std::scoped_lock ol(obs_mu_);
    stats = estimator_->Take(tracer_->now());
  }
  std::optional<sched::PeriodRetune> retune;
  {
    std::scoped_lock sl(sched_mu_);
    const auto now = std::chrono::steady_clock::now();
    // First pass has no predecessor; charge it one nominal period.
    uint64_t elapsed_us = current_period_us_.load(std::memory_order_relaxed);
    if (sched_seen_pass_) {
      elapsed_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - last_pass_time_)
              .count());
      if (elapsed_us == 0) elapsed_us = 1;
    }
    last_pass_time_ = now;
    sched_seen_pass_ = true;
    sched::PassSample sample;
    if (estimator_ != nullptr) {
      // Span-measured inputs (SchedulerOptions::use_span_estimates): the
      // window is delimited by the tracer's clock, cycles come from the
      // closed pass spans' resolved counts (stamp-rejected decisions
      // excluded, unlike report.cycles_detected), C from the pass spans'
      // cost counters, and B is time-averaged over the window's closed
      // wait spans instead of sampled at pass end.
      sample.elapsed = std::max<uint64_t>(stats.window_ns / 1000, 1);
      const uint64_t passes = std::max<uint64_t>(stats.passes, 1);
      sample.detection_cost =
          static_cast<double>(stats.pass_cost) / 1000.0 /
          static_cast<double>(passes);
      sample.cycles_resolved = stats.cycles;
      sample.blocked_txns = static_cast<uint64_t>(stats.avg_blocked() + 0.5);
    } else {
      sample.elapsed = elapsed_us;
      // Cost in the controller's time unit (µs), same as the period.
      sample.detection_cost = static_cast<double>(pass_ns) / 1000.0;
      sample.cycles_resolved = report.cycles_detected;
      sample.blocked_txns = blocked;
    }
    retune = controller_->OnPassComplete(sample);
    if (retune.has_value()) {
      current_period_us_.store(retune->new_period, std::memory_order_release);
    }
  }
  if (!retune.has_value()) return;
  period_retunes_.fetch_add(1, std::memory_order_relaxed);
  obs::Event event;
  event.kind = obs::EventKind::kPeriodRetuned;
  event.a = retune->old_period;
  event.b = retune->new_period;
  event.value = retune->deadlock_rate;
  EmitStandalone(std::move(event));
}

Result<TxnState> ConcurrentLockService::State(lock::TransactionId tid) const {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return tm_->State(tid);
  }
  std::scoped_lock tl(txn_mu_);
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  return it->second.state.load(std::memory_order_relaxed);
}

size_t ConcurrentLockService::live_transactions() const {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return tm_->NumLive();
  }
  std::scoped_lock tl(txn_mu_);
  return live_txns_;
}

Result<bool> ConcurrentLockService::HasDeadlock() {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return core::HwTwbg::Build(tm_->lock_manager().table()).HasCycle();
  }
  if (shards_.size() != 1) {
    return Status::FailedPrecondition(
        "HasDeadlock requires num_shards == 1 (merged multi-shard graph "
        "construction is not implemented)");
  }
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  return core::HwTwbg::Build(shards_[0]->lm.table()).HasCycle();
}

Result<std::string> ConcurrentLockService::RenderView(ServiceView view) {
  // Stop the world so the rendering is a consistent snapshot, then build
  // the view off the (single) live table.  The formats deliberately match
  // core::ScriptRunner's commands — see ServiceView.
  std::unique_lock<std::mutex> cont_lock(mu_, std::defer_lock);
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  common::Stopwatch hold;
  if (mode_ == DetectionMode::kContinuous) {
    cont_lock.lock();
  } else {
    shard_locks = LockShards(~uint64_t{0}, hold);
  }

  if (view == ServiceView::kTable) {
    if (mode_ == DetectionMode::kContinuous) {
      return tm_->lock_manager().table().ToString();
    }
    if (shards_.size() == 1) return shards_[0]->lm.table().ToString();
    std::string out;
    for (size_t s = 0; s < shards_.size(); ++s) {
      out += common::Format("-- shard %zu --\n", s);
      out += shards_[s]->lm.table().ToString();
    }
    return out;
  }
  if (view == ServiceView::kCosts) {
    std::string out;
    if (mode_ == DetectionMode::kContinuous) {
      for (lock::TransactionId tid :
           tm_->lock_manager().KnownTransactions()) {
        out += common::Format("T%u: %.2f\n", tid, tm_->costs().Get(tid));
      }
      return out;
    }
    std::scoped_lock tl(txn_mu_);
    // Known to the lock table (shard order), as ScriptRunner prints.
    for (const auto& shard : shards_) {
      for (lock::TransactionId tid : shard->lm.KnownTransactions()) {
        out += common::Format("T%u: %.2f\n", tid, costs_.Get(tid));
      }
    }
    return out;
  }

  // The graph-derived views need the whole wait-for state in one table.
  const lock::LockTable* table = nullptr;
  if (mode_ == DetectionMode::kContinuous) {
    table = &tm_->lock_manager().table();
  } else if (shards_.size() == 1) {
    table = &shards_[0]->lm.table();
  } else {
    return Status::FailedPrecondition(
        "graph views require num_shards == 1 (merged multi-shard graph "
        "construction is not implemented)");
  }
  switch (view) {
    case ServiceView::kGraph:
      return core::HwTwbg::Build(*table).ToString();
    case ServiceView::kDot:
      return core::HwTwbg::Build(*table).ToDot();
    case ServiceView::kTst:
      return core::Tst::Build(*table).ToString();
    case ServiceView::kCycles: {
      std::string out;
      for (const auto& cycle :
           core::HwTwbg::Build(*table).ElementaryCycles()) {
        std::vector<std::string> names;
        for (lock::TransactionId tid : cycle) {
          names.push_back(common::Format("T%u", tid));
        }
        out += common::Format("cycle {%s}\n", common::Join(names, ", ").c_str());
      }
      return out;
    }
    case ServiceView::kOracle: {
      core::OracleResult oracle = core::AnalyzeByReduction(*table);
      std::vector<std::string> names;
      for (lock::TransactionId tid : oracle.stuck) {
        names.push_back(common::Format("T%u", tid));
      }
      return common::Format("deadlocked=%s stuck={%s}\n",
                            oracle.deadlocked ? "yes" : "no",
                            common::Join(names, ", ").c_str());
    }
    case ServiceView::kTable:
    case ServiceView::kCosts:
      break;  // handled above
  }
  return Status::Internal("unhandled view");
}

size_t ConcurrentLockService::deadlock_victims() const {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return cont_deadlock_victims_;
  }
  std::scoped_lock tl(txn_mu_);
  return deadlock_victims_;
}

size_t ConcurrentLockService::num_shards() const {
  return mode_ == DetectionMode::kContinuous ? 1 : shards_.size();
}

ShardStats ConcurrentLockService::shard_stats(size_t shard) const {
  ShardStats stats;
  if (mode_ == DetectionMode::kContinuous || shard >= shards_.size()) {
    return stats;
  }
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> sl(s.mu);
  stats.acquire_waits = s.acquire_waits;
  stats.ops = s.ops;
  stats.hold_ns = s.hold_ns;
  return stats;
}

std::vector<uint64_t> ConcurrentLockService::pause_times_ns() const {
  std::scoped_lock stl(stats_mu_);
  return pause_times_ns_;
}

std::vector<uint64_t> ConcurrentLockService::publish_pause_times_ns() const {
  std::scoped_lock stl(stats_mu_);
  return publish_pause_times_ns_;
}

std::vector<uint64_t> ConcurrentLockService::sweep_pause_times_ns() const {
  std::scoped_lock stl(stats_mu_);
  return sweep_pause_times_ns_;
}

std::vector<uint64_t> ConcurrentLockService::detection_lag_ns() const {
  std::scoped_lock stl(stats_mu_);
  return detection_lag_ns_;
}

Status ConcurrentLockService::CheckInvariants(bool deep) {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return tm_->CheckInvariants();
  }
  // Stop the world so the cross-shard picture is consistent.
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  std::scoped_lock tl(txn_mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status status = shards_[s]->lm.CheckInvariants(deep);
    if (!status.ok()) {
      return Status::Internal(common::Format(
          "shard %zu: %s", s, std::string(status.message()).c_str()));
    }
  }
  for (const auto& [tid, rec] : txns_) {
    const TxnState state = rec.state.load(std::memory_order_relaxed);
    size_t blocked_in = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const lock::TxnLockInfo* info = shards_[s]->lm.Info(tid);
      if (info == nullptr) continue;
      if (state == TxnState::kCommitted || state == TxnState::kAborted) {
        return Status::Internal(common::Format(
            "terminated T%u is still known to shard %zu (leaked locks)", tid,
            s));
      }
      if (info->blocked_on.has_value()) ++blocked_in;
    }
    if (state == TxnState::kBlocked && blocked_in != 1) {
      return Status::Internal(common::Format(
          "T%u is kBlocked but blocked in %zu shards (expected exactly 1)",
          tid, blocked_in));
    }
    if (state != TxnState::kBlocked && blocked_in != 0) {
      return Status::Internal(common::Format(
          "T%u is not kBlocked but waits in %zu shards", tid, blocked_in));
    }
  }
  // No leaked waiters: every blocked lock-table entry must belong to a
  // live transaction the service also believes is blocked.
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (lock::TransactionId tid : shards_[s]->lm.BlockedTransactions()) {
      auto it = txns_.find(tid);
      if (it == txns_.end() ||
          it->second.state.load(std::memory_order_relaxed) !=
              TxnState::kBlocked) {
        return Status::Internal(common::Format(
            "shard %zu holds a blocked entry for T%u, which the service "
            "does not consider blocked (leaked waiter)",
            s, tid));
      }
    }
  }
  return Status::OK();
}

std::string ConcurrentLockService::DebugDump() {
  std::string out;
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return tm_->lock_manager().table().ToString();
  }
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  std::scoped_lock tl(txn_mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    out += common::Format("shard %zu:\n", s);
    out += shards_[s]->lm.table().ToString();
    for (lock::TransactionId tid : shards_[s]->lm.KnownTransactions()) {
      const lock::TxnLockInfo* info = shards_[s]->lm.Info(tid);
      if (info == nullptr || !info->blocked_on.has_value()) continue;
      out += common::Format("  T%u waits on R%u\n", tid, *info->blocked_on);
    }
  }
  for (const auto& [tid, rec] : txns_) {
    out += common::Format(
        "T%u state=%d victim=%d granted=%llu\n", tid,
        static_cast<int>(rec.state.load(std::memory_order_relaxed)),
        rec.deadlock_victim ? 1 : 0,
        static_cast<unsigned long long>(rec.locks_granted));
  }
  return out;
}

Status AcquireWithRetry(ConcurrentLockService& service,
                        lock::TransactionId tid, lock::ResourceId rid,
                        lock::LockMode mode,
                        const robustness::RetryOptions& retry, uint64_t seed,
                        uint32_t* attempts_out) {
  robustness::RetryBackoff backoff(retry, seed);
  uint32_t attempts = 0;
  for (;;) {
    Status status = service.AcquireBlocking(tid, rid, mode);
    ++attempts;
    if (attempts_out != nullptr) *attempts_out = attempts;
    if (!status.IsDeadlineExceeded() && !status.IsResourceExhausted()) {
      return status;
    }
    // A deadline expiry may have escalated into a server-side abort
    // (abort-after-N): the transaction is gone and a retry could only
    // return FailedPrecondition, so surface the deadline status as final.
    if (status.IsDeadlineExceeded()) {
      Result<TxnState> state = service.State(tid);
      if (state.ok() && *state == TxnState::kAborted) return status;
    }
    if (backoff.Exhausted()) {
      // Client-side abort-after-N: give up on the whole transaction.  The
      // abort may no-op if a server-side escalation already killed it.
      (void)service.Abort(tid);
      return status;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff.NextDelay()));
  }
}

}  // namespace twbg::txn
