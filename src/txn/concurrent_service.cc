// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/concurrent_service.h"

#include <algorithm>

#include "common/string_util.h"
#include "lock/resource_state.h"

namespace twbg::txn {

namespace {

constexpr size_t kMaxShards = 64;  // shard_mask is a uint64_t bitmask

TransactionManagerOptions ForceContinuous(TransactionManagerOptions options) {
  options.detection_mode = DetectionMode::kContinuous;
  return options;
}

ConcurrentServiceOptions NormalizeConcurrent(ConcurrentServiceOptions options) {
  if (options.detector.event_bus == nullptr) {
    options.detector.event_bus = options.event_bus;
  }
  return options;
}

}  // namespace

// What the parallel pass sees of the shard set.  Every method runs with
// all shard mutexes, txn_mu_ and (when observing) obs_mu_ held by the
// pass, so plain cross-shard reads and serial mutations are safe.
class ConcurrentLockService::PassHost final
    : public core::ShardedDetectionHost {
 public:
  explicit PassHost(ConcurrentLockService& service) : service_(service) {}

  size_t num_shards() const override { return service_.shards_.size(); }
  const lock::LockTable& shard_table(size_t shard) const override {
    return service_.shards_[shard]->lm.table();
  }

  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return shard(rid).lm.table().Find(rid);
  }
  // A transaction can be known to several shards; only the shard of the
  // resource it is blocked on carries its wait info (blocked_on set).
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    const lock::TxnLockInfo* any = nullptr;
    for (const auto& s : service_.shards_) {
      const lock::TxnLockInfo* info = s->lm.Info(tid);
      if (info == nullptr) continue;
      if (info->blocked_on.has_value()) return info;
      if (any == nullptr) any = info;
    }
    return any;
  }
  Status ApplyTdr2Direct(lock::ResourceId rid,
                         lock::TransactionId junction) override {
    lock::ResourceState* state =
        shard(rid).lm.mutable_table().FindMutableDeferred(rid);
    if (state == nullptr) {
      return Status::NotFound(common::Format("R%u is not locked", rid));
    }
    return state->ApplyTdr2(junction);
  }
  void NoteTdr2Applied(lock::ResourceId rid) override {
    shard(rid).lm.mutable_table().NoteMutation(rid);
  }

  std::vector<lock::TransactionId> ReleaseAll(
      lock::TransactionId tid) override {
    auto it = service_.txns_.find(tid);
    const uint64_t mask =
        it == service_.txns_.end() ? ~uint64_t{0} : it->second.shard_mask;
    return service_.ReleaseAllShardsLocked(tid, mask);
  }
  std::vector<lock::TransactionId> Reschedule(lock::ResourceId rid) override {
    return shard(rid).lm.Reschedule(rid);
  }

 private:
  Shard& shard(lock::ResourceId rid) const {
    return *service_.shards_[service_.ShardIndex(rid)];
  }

  ConcurrentLockService& service_;
};

Result<std::unique_ptr<ConcurrentLockService>> ConcurrentLockService::Create(
    ConcurrentServiceOptions options) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument(common::Format(
        "num_shards must be in [1, %zu], got %zu", kMaxShards,
        options.num_shards));
  }
  if (options.detection_mode == DetectionMode::kContinuous) {
    // Continuous detection runs inside every blocking acquire and needs
    // the whole lock state under one mutex; reject — rather than silently
    // ignore — options that only make sense for the sharded engine.
    if (options.num_shards != 1) {
      return Status::InvalidArgument(
          "continuous detection requires num_shards == 1 "
          "(use kPeriodic for a sharded service)");
    }
    if (options.detection_period.count() != 0) {
      return Status::InvalidArgument(
          "continuous detection has no detector thread; "
          "detection_period must be 0");
    }
    if (options.detection_threads != 0) {
      return Status::InvalidArgument(
          "continuous detection runs inline; detection_threads must be 0");
    }
  }
  return std::unique_ptr<ConcurrentLockService>(
      new ConcurrentLockService(std::move(options)));
}

ConcurrentLockService::ConcurrentLockService(TransactionManagerOptions options)
    : mode_(DetectionMode::kContinuous),
      tm_(std::make_unique<TransactionManager>(ForceContinuous(options))) {
  options_.detection_mode = DetectionMode::kContinuous;
  options_.cost_policy = options.cost_policy;
  options_.detector = options.detector;
  options_.event_bus = options.event_bus;
}

ConcurrentLockService::ConcurrentLockService(ConcurrentServiceOptions options)
    : options_(NormalizeConcurrent(std::move(options))),
      mode_(options_.detection_mode) {
  if (mode_ == DetectionMode::kContinuous) {
    TransactionManagerOptions tm_options;
    tm_options.detection_mode = DetectionMode::kContinuous;
    tm_options.cost_policy = options_.cost_policy;
    tm_options.detector = options_.detector;
    tm_options.event_bus = options_.event_bus;
    tm_ = std::make_unique<TransactionManager>(tm_options);
    return;
  }
  bus_ = options_.event_bus;
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->lm.set_event_bus(bus_);
  }
  if (options_.detection_threads > 0) {
    pool_ = std::make_unique<common::ThreadPool>(options_.detection_threads);
  }
  detector_ = std::make_unique<core::ParallelPeriodicDetector>(
      options_.detector, pool_.get());
  pass_host_ = std::make_unique<PassHost>(*this);
  if (options_.detection_period.count() > 0) {
    detector_thread_ = std::thread(&ConcurrentLockService::DetectorLoop, this);
  }
}

ConcurrentLockService::~ConcurrentLockService() {
  if (detector_thread_.joinable()) {
    {
      std::scoped_lock lk(stop_mu_);
      stopping_ = true;
    }
    stop_cv_.notify_all();
    detector_thread_.join();
  }
}

size_t ConcurrentLockService::ShardIndex(lock::ResourceId rid) const {
  // Fibonacci hashing spreads dense rid ranges across shards.
  const uint64_t h = static_cast<uint64_t>(rid) * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>((h >> 32) % shards_.size());
}

std::vector<std::unique_lock<std::mutex>> ConcurrentLockService::LockShards(
    uint64_t mask, common::Stopwatch& hold) {
  std::vector<std::unique_lock<std::mutex>> locks;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    Shard& shard = *shards_[s];
    std::unique_lock<std::mutex> sl(shard.mu, std::try_to_lock);
    const bool contended = !sl.owns_lock();
    if (contended) sl.lock();
    shard.ops++;
    if (contended) shard.acquire_waits++;
    locks.push_back(std::move(sl));
  }
  hold.Reset();
  return locks;
}

lock::TransactionId ConcurrentLockService::Begin() {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return tm_->Begin();
  }
  return PeriodicBegin();
}

lock::TransactionId ConcurrentLockService::PeriodicBegin() {
  std::scoped_lock tl(txn_mu_);
  const lock::TransactionId tid = next_tid_++;
  TxnRecord& rec = txns_[tid];
  rec.begin_ts = next_ts_++;
  RefreshCostLocked(tid, rec);
  if (bus_ != nullptr) {
    std::scoped_lock ol(obs_mu_);
    if (bus_->active()) {
      obs::Event event;
      event.kind = obs::EventKind::kTxnBegin;
      event.tid = tid;
      bus_->Emit(event);
    }
  }
  return tid;
}

Status ConcurrentLockService::AcquireBlocking(lock::TransactionId tid,
                                              lock::ResourceId rid,
                                              lock::LockMode mode) {
  if (mode_ == DetectionMode::kPeriodic) {
    return PeriodicAcquire(tid, rid, mode);
  }
  std::unique_lock<std::mutex> lock(mu_);
  Result<AcquireStatus> outcome = tm_->Acquire(tid, rid, mode);
  if (!outcome.ok()) return outcome.status();
  // The continuous detector may have resolved a deadlock inside Acquire:
  // wake anyone it granted or aborted.
  cv_.notify_all();
  switch (*outcome) {
    case AcquireStatus::kGranted:
      return Status::OK();
    case AcquireStatus::kAbortedAsVictim:
      ++cont_deadlock_victims_;
      return Status::Aborted(
          common::Format("T%u aborted as deadlock victim", tid));
    case AcquireStatus::kBlocked:
      break;
  }
  // Park until the lock manager grants us (state back to Active) or a
  // later resolution kills us.  Progress is guaranteed: continuous
  // detection leaves no deadlock behind, so every wait ends with some
  // transaction's commit/abort.
  cv_.wait(lock, [&] {
    Result<TxnState> state = tm_->State(tid);
    return state.ok() && *state != TxnState::kBlocked;
  });
  Result<TxnState> state = tm_->State(tid);
  if (state.ok() && *state == TxnState::kActive) return Status::OK();
  ++cont_deadlock_victims_;
  return Status::Aborted(
      common::Format("T%u aborted as deadlock victim while waiting", tid));
}

Status ConcurrentLockService::PeriodicAcquire(lock::TransactionId tid,
                                              lock::ResourceId rid,
                                              lock::LockMode mode) {
  const size_t shard_index = ShardIndex(rid);
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> sl(shard.mu, std::try_to_lock);
  const bool contended = !sl.owns_lock();
  if (contended) sl.lock();
  common::Stopwatch hold;
  shard.ops++;
  if (contended) shard.acquire_waits++;

  TxnRecord* rec = nullptr;
  lock::RequestOutcome outcome;
  {
    std::scoped_lock tl(txn_mu_);
    auto it = txns_.find(tid);
    if (it == txns_.end()) {
      return Status::NotFound(common::Format("unknown transaction T%u", tid));
    }
    rec = &it->second;
    const TxnState state = rec->state.load(std::memory_order_relaxed);
    if (state != TxnState::kActive) {
      return Status::FailedPrecondition(
          common::Format("T%u is %s and cannot request locks", tid,
                         std::string(ToString(state)).c_str()));
    }
    // Record the routing before the request: commits/aborts must lock
    // this shard even if the request errors after registering the txn.
    rec->shard_mask |= uint64_t{1} << shard_index;
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (bus_ != nullptr) ol.lock();
    Result<lock::RequestOutcome> result = shard.lm.Acquire(tid, rid, mode);
    if (!result.ok()) {
      shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
      return result.status();
    }
    rec->ops_executed++;
    RefreshCostLocked(tid, *rec);
    outcome = *result;
    switch (outcome) {
      case lock::RequestOutcome::kGranted:
        rec->locks_granted++;
        RefreshCostLocked(tid, *rec);
        break;
      case lock::RequestOutcome::kAlreadyHeld:
        break;
      case lock::RequestOutcome::kBlocked:
        rec->state.store(TxnState::kBlocked, std::memory_order_relaxed);
        break;
    }
  }
  shard.hold_ns += static_cast<uint64_t>(hold.ElapsedNanos());
  if (outcome != lock::RequestOutcome::kBlocked) return Status::OK();

  // Park on the shard of the resource we are blocked on.  We have held
  // shard.mu continuously since the lock manager queued us, and anyone
  // who grants or aborts us does so while holding this same mutex (the
  // rid is in our shard_mask and in the granter's release set; the
  // detector holds every shard) — so the state change cannot slip in
  // between our predicate check and the park, and no wakeup is missed.
  shard.cv.wait(sl, [rec] {
    return rec->state.load(std::memory_order_relaxed) != TxnState::kBlocked;
  });
  if (rec->state.load(std::memory_order_relaxed) == TxnState::kActive) {
    return Status::OK();
  }
  return Status::Aborted(
      common::Format("T%u aborted as deadlock victim while waiting", tid));
}

Status ConcurrentLockService::Commit(lock::TransactionId tid) {
  if (mode_ == DetectionMode::kPeriodic) {
    return PeriodicTerminate(tid, /*commit=*/true);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Status status = tm_->Commit(tid);
  cv_.notify_all();
  return status;
}

Status ConcurrentLockService::Abort(lock::TransactionId tid) {
  if (mode_ == DetectionMode::kPeriodic) {
    return PeriodicTerminate(tid, /*commit=*/false);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Status status = tm_->Abort(tid);
  cv_.notify_all();
  return status;
}

Status ConcurrentLockService::PeriodicTerminate(lock::TransactionId tid,
                                                bool commit) {
  // Lock ordering requires the shard mutexes before txn_mu_, so peek at
  // the mask first.  Only this transaction's own thread grows it, and
  // the protocol forbids concurrent operations on one transaction, so
  // the mask is stable; the state is re-validated under the full locks
  // (a detection pass may abort the transaction in between).
  uint64_t mask = 0;
  {
    std::scoped_lock tl(txn_mu_);
    auto it = txns_.find(tid);
    if (it == txns_.end()) {
      return Status::NotFound(common::Format("unknown transaction T%u", tid));
    }
    mask = it->second.shard_mask;
  }

  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(mask, hold);
  {
    std::scoped_lock tl(txn_mu_);
    auto it = txns_.find(tid);
    if (it == txns_.end()) {
      return Status::NotFound(common::Format("unknown transaction T%u", tid));
    }
    TxnRecord& rec = it->second;
    const TxnState state = rec.state.load(std::memory_order_relaxed);
    if (commit && state != TxnState::kActive) {
      return Status::FailedPrecondition(
          common::Format("T%u is %s and cannot commit", tid,
                         std::string(ToString(state)).c_str()));
    }
    if (!commit &&
        (state == TxnState::kCommitted || state == TxnState::kAborted)) {
      return Status::FailedPrecondition(
          common::Format("T%u is already %s", tid,
                         std::string(ToString(state)).c_str()));
    }
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (bus_ != nullptr) ol.lock();
    rec.state.store(commit ? TxnState::kCommitted : TxnState::kAborted,
                    std::memory_order_relaxed);
    if (obs::Enabled(bus_)) {
      obs::Event event;
      event.kind =
          commit ? obs::EventKind::kTxnCommit : obs::EventKind::kTxnAbort;
      event.tid = tid;
      event.a = 0;  // kTxnAbort: voluntary, not a deadlock victim
      bus_->Emit(event);
    }
    costs_.Erase(tid);
    const std::vector<lock::TransactionId> granted =
        ReleaseAllShardsLocked(tid, mask);
    for (lock::TransactionId g : granted) {
      auto git = txns_.find(g);
      if (git != txns_.end() &&
          git->second.state.load(std::memory_order_relaxed) ==
              TxnState::kBlocked) {
        git->second.state.store(TxnState::kActive, std::memory_order_relaxed);
        git->second.locks_granted++;
        RefreshCostLocked(g, git->second);
      }
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    shards_[s]->cv.notify_all();
  }
  // Attribute the critical section to every shard held through it (all
  // were held for its whole duration; the locks are still owned here).
  const uint64_t hold_ns = static_cast<uint64_t>(hold.ElapsedNanos());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    shards_[s]->hold_ns += hold_ns;
  }
  shard_locks.clear();
  return Status::OK();
}

std::vector<lock::TransactionId> ConcurrentLockService::ReleaseAllShardsLocked(
    lock::TransactionId tid, uint64_t mask) {
  // Union of the transaction's touched resources across its shards,
  // released in global ascending-rid order — the exact order a single
  // lock manager's ReleaseAll would use, so the kLockWakeup stream (and
  // hence the recorded linearization) matches the sequential engine.
  std::vector<lock::ResourceId> rids;
  bool known = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    const lock::TxnLockInfo* info = shards_[s]->lm.Info(tid);
    if (info == nullptr) continue;
    known = true;
    rids.insert(rids.end(), info->touched.begin(), info->touched.end());
  }
  if (!known) return {};  // mirror ReleaseAll: unknown tid emits nothing
  std::sort(rids.begin(), rids.end());

  std::vector<lock::TransactionId> granted;
  for (lock::ResourceId rid : rids) {
    Shard& shard = *shards_[ShardIndex(rid)];
    const std::vector<lock::TransactionId> g = shard.lm.ReleaseOn(tid, rid);
    granted.insert(granted.end(), g.begin(), g.end());
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    shards_[s]->lm.Forget(tid);
  }
  if (obs::Enabled(bus_)) {
    // The one release summary, same shape as LockManager::ReleaseAll.
    obs::Event event;
    event.kind = obs::EventKind::kLockRelease;
    event.tid = tid;
    event.a = rids.size();
    event.b = granted.size();
    bus_->Emit(event);
  }
  return granted;
}

core::ResolutionReport ConcurrentLockService::RunDetectionPass() {
  if (mode_ == DetectionMode::kPeriodic) return RunPeriodicPass();
  std::lock_guard<std::mutex> lock(mu_);
  core::ResolutionReport report = tm_->RunDetection();
  cv_.notify_all();
  return report;
}

core::ResolutionReport ConcurrentLockService::RunPeriodicPass() {
  // Stop the world: all shard locks (ascending), the transaction table,
  // then the bus.  Everything the pass reads is a consistent cross-shard
  // snapshot; everything it mutates and emits lands atomically between
  // two application operations, which is what makes the recorded event
  // stream replayable against the sequential engine.
  common::Stopwatch pause;
  common::Stopwatch hold;
  std::vector<std::unique_lock<std::mutex>> shard_locks =
      LockShards(~uint64_t{0}, hold);
  core::ResolutionReport report;
  {
    std::scoped_lock tl(txn_mu_);
    std::unique_lock<std::mutex> ol(obs_mu_, std::defer_lock);
    if (bus_ != nullptr) ol.lock();
    report = detector_->RunPass(*pass_host_, costs_);
    ApplyReportLocked(report);
    if (obs::Enabled(bus_)) PublishShardStatsLocked();
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  const uint64_t pause_ns = static_cast<uint64_t>(pause.ElapsedNanos());
  const uint64_t hold_ns = static_cast<uint64_t>(hold.ElapsedNanos());
  for (auto& shard : shards_) {
    shard->hold_ns += hold_ns;
    shard->cv.notify_all();
  }
  shard_locks.clear();
  {
    std::scoped_lock stl(stats_mu_);
    pause_times_ns_.push_back(pause_ns);
  }
  return report;
}

void ConcurrentLockService::ApplyReportLocked(
    const core::ResolutionReport& report) {
  for (lock::TransactionId victim : report.aborted) {
    auto it = txns_.find(victim);
    if (it == txns_.end()) continue;
    it->second.state.store(TxnState::kAborted, std::memory_order_relaxed);
    it->second.deadlock_victim = true;
    ++deadlock_victims_;
    costs_.Erase(victim);
    if (obs::Enabled(bus_)) {
      obs::Event event;
      event.kind = obs::EventKind::kTxnAbort;
      event.tid = victim;
      event.a = 1;  // deadlock victim (TDR-1)
      bus_->Emit(event);
    }
  }
  for (lock::TransactionId g : report.granted) {
    auto it = txns_.find(g);
    if (it != txns_.end() &&
        it->second.state.load(std::memory_order_relaxed) ==
            TxnState::kBlocked) {
      it->second.state.store(TxnState::kActive, std::memory_order_relaxed);
      it->second.locks_granted++;
      RefreshCostLocked(g, it->second);
    }
  }
}

void ConcurrentLockService::PublishShardStatsLocked() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    obs::Event event;
    event.kind = obs::EventKind::kShardContention;
    event.rid = static_cast<lock::ResourceId>(s);  // shard index
    event.a = shard.acquire_waits;
    event.b = shard.ops;
    event.value = static_cast<double>(shard.hold_ns);
    bus_->Emit(event);
  }
}

void ConcurrentLockService::RefreshCostLocked(lock::TransactionId tid,
                                              const TxnRecord& rec) {
  const TxnState state = rec.state.load(std::memory_order_relaxed);
  if (state == TxnState::kCommitted || state == TxnState::kAborted) return;
  double cost = 1.0;
  switch (options_.cost_policy) {
    case CostPolicy::kUnit:
      cost = 1.0;
      break;
    case CostPolicy::kLocksHeld:
      cost = 1.0 + static_cast<double>(rec.locks_granted);
      break;
    case CostPolicy::kAge:
      cost = 1.0 + static_cast<double>(next_ts_ - rec.begin_ts);
      break;
    case CostPolicy::kOpsDone:
      cost = 1.0 + static_cast<double>(rec.ops_executed);
      break;
  }
  costs_.Set(tid, cost);
}

void ConcurrentLockService::DetectorLoop() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lk, options_.detection_period,
                          [this] { return stopping_; })) {
      break;
    }
    lk.unlock();
    RunPeriodicPass();
    lk.lock();
  }
}

Result<TxnState> ConcurrentLockService::State(lock::TransactionId tid) const {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return tm_->State(tid);
  }
  std::scoped_lock tl(txn_mu_);
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    return Status::NotFound(common::Format("unknown transaction T%u", tid));
  }
  return it->second.state.load(std::memory_order_relaxed);
}

size_t ConcurrentLockService::deadlock_victims() const {
  if (mode_ == DetectionMode::kContinuous) {
    std::lock_guard<std::mutex> lock(mu_);
    return cont_deadlock_victims_;
  }
  std::scoped_lock tl(txn_mu_);
  return deadlock_victims_;
}

size_t ConcurrentLockService::num_shards() const {
  return mode_ == DetectionMode::kContinuous ? 1 : shards_.size();
}

ShardStats ConcurrentLockService::shard_stats(size_t shard) const {
  ShardStats stats;
  if (mode_ == DetectionMode::kContinuous || shard >= shards_.size()) {
    return stats;
  }
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> sl(s.mu);
  stats.acquire_waits = s.acquire_waits;
  stats.ops = s.ops;
  stats.hold_ns = s.hold_ns;
  return stats;
}

std::vector<uint64_t> ConcurrentLockService::pause_times_ns() const {
  std::scoped_lock stl(stats_mu_);
  return pause_times_ns_;
}

}  // namespace twbg::txn
