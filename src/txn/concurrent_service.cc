// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "txn/concurrent_service.h"

#include "common/string_util.h"

namespace twbg::txn {

namespace {

TransactionManagerOptions ForceContinuous(TransactionManagerOptions options) {
  options.detection_mode = DetectionMode::kContinuous;
  return options;
}

}  // namespace

ConcurrentLockService::ConcurrentLockService(
    TransactionManagerOptions options)
    : tm_(ForceContinuous(options)) {}

lock::TransactionId ConcurrentLockService::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  return tm_.Begin();
}

Status ConcurrentLockService::AcquireBlocking(lock::TransactionId tid,
                                              lock::ResourceId rid,
                                              lock::LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  Result<AcquireStatus> outcome = tm_.Acquire(tid, rid, mode);
  if (!outcome.ok()) return outcome.status();
  // The continuous detector may have resolved a deadlock inside Acquire:
  // wake anyone it granted or aborted.
  cv_.notify_all();
  switch (*outcome) {
    case AcquireStatus::kGranted:
      return Status::OK();
    case AcquireStatus::kAbortedAsVictim:
      ++deadlock_victims_;
      return Status::Aborted(
          common::Format("T%u aborted as deadlock victim", tid));
    case AcquireStatus::kBlocked:
      break;
  }
  // Park until the lock manager grants us (state back to Active) or a
  // later resolution kills us.  Progress is guaranteed: continuous
  // detection leaves no deadlock behind, so every wait ends with some
  // transaction's commit/abort.
  cv_.wait(lock, [&] {
    Result<TxnState> state = tm_.State(tid);
    return state.ok() && *state != TxnState::kBlocked;
  });
  Result<TxnState> state = tm_.State(tid);
  if (state.ok() && *state == TxnState::kActive) return Status::OK();
  ++deadlock_victims_;
  return Status::Aborted(
      common::Format("T%u aborted as deadlock victim while waiting", tid));
}

Status ConcurrentLockService::Commit(lock::TransactionId tid) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status = tm_.Commit(tid);
  cv_.notify_all();
  return status;
}

Status ConcurrentLockService::Abort(lock::TransactionId tid) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status = tm_.Abort(tid);
  cv_.notify_all();
  return status;
}

Result<TxnState> ConcurrentLockService::State(
    lock::TransactionId tid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tm_.State(tid);
}

size_t ConcurrentLockService::deadlock_victims() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadlock_victims_;
}

}  // namespace twbg::txn
