// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/wfg_detector.h"

#include <map>
#include <vector>

#include "graph/digraph.h"

namespace twbg::baselines {

namespace {

// Builds the classic TWFG over the current lock table: blocked -> holder
// edges only.  Returns the dense graph plus the tid mapping.
struct Twfg {
  graph::Digraph graph{0};
  std::vector<lock::TransactionId> tids;
  std::map<lock::TransactionId, graph::NodeId> dense;
};

Twfg BuildTwfg(const lock::LockTable& table, size_t* work) {
  Twfg result;
  for (const auto& [rid, state] : table) {
    for (const lock::HolderEntry& h : state.holders()) {
      result.dense.emplace(h.tid, 0);
    }
    for (const lock::QueueEntry& q : state.queue()) {
      result.dense.emplace(q.tid, 0);
    }
  }
  graph::NodeId index = 0;
  for (auto& [tid, node] : result.dense) {
    node = index++;
    result.tids.push_back(tid);
  }
  result.graph = graph::Digraph(result.tids.size());
  for (const auto& [rid, state] : table) {
    // A waiter is any blocked converter or queue member; it waits for
    // every holder whose *granted* mode conflicts with its blocked mode.
    auto add_waits = [&](lock::TransactionId waiter, lock::LockMode bm) {
      for (const lock::HolderEntry& h : state.holders()) {
        if (h.tid == waiter) continue;
        ++*work;
        if (!lock::Compatible(bm, h.granted)) {
          result.graph.AddEdge(result.dense.at(waiter), result.dense.at(h.tid));
        }
      }
    };
    for (const lock::HolderEntry& h : state.holders()) {
      if (h.IsBlocked()) add_waits(h.tid, h.blocked);
    }
    for (const lock::QueueEntry& q : state.queue()) {
      add_waits(q.tid, q.blocked);
    }
  }
  return result;
}

}  // namespace

StrategyOutcome WfgStrategy::OnPeriodic(lock::LockManager& manager,
                                        core::CostTable& costs) {
  StrategyOutcome outcome;
  // Abort one min-cost victim per detected cycle until acyclic.
  for (;;) {
    Twfg twfg = BuildTwfg(manager.table(), &outcome.work);
    std::optional<std::vector<graph::NodeId>> cycle = twfg.graph.FindCycle();
    outcome.work += twfg.graph.num_edges() + twfg.graph.num_nodes();
    if (!cycle.has_value()) break;
    ++outcome.cycles_found;
    lock::TransactionId victim = twfg.tids[(*cycle)[0]];
    double best = costs.Get(victim);
    for (graph::NodeId node : *cycle) {
      lock::TransactionId tid = twfg.tids[node];
      if (costs.Get(tid) < best) {
        best = costs.Get(tid);
        victim = tid;
      }
    }
    manager.ReleaseAll(victim);
    costs.Erase(victim);
    outcome.aborted.push_back(victim);
  }
  return outcome;
}

}  // namespace twbg::baselines
