// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/wfg_detector.h"

#include <algorithm>
#include <map>
#include <vector>

#include "graph/digraph.h"

namespace twbg::baselines {

namespace {

// Recomputes one resource's (waiter, holder) conflict pairs.  A waiter is
// any blocked converter or queue member; it waits for every holder whose
// *granted* mode conflicts with its blocked mode.
void ComputePairs(const lock::ResourceState& state, size_t* work,
                  std::vector<std::pair<lock::TransactionId,
                                        lock::TransactionId>>& waits,
                  std::vector<lock::TransactionId>& txns) {
  auto add_waits = [&](lock::TransactionId waiter, lock::LockMode bm) {
    for (const lock::HolderEntry& h : state.holders()) {
      if (h.tid == waiter) continue;
      ++*work;
      if (!lock::Compatible(bm, h.granted)) {
        waits.emplace_back(waiter, h.tid);
      }
    }
  };
  for (const lock::HolderEntry& h : state.holders()) {
    txns.push_back(h.tid);
    if (h.IsBlocked()) add_waits(h.tid, h.blocked);
  }
  for (const lock::QueueEntry& q : state.queue()) {
    txns.push_back(q.tid);
    add_waits(q.tid, q.blocked);
  }
}

}  // namespace

void WfgStrategy::Sync(const lock::LockTable& table, size_t* work) {
  std::vector<lock::ResourceId> dirty;
  const bool journal_ok =
      table.uid() == table_uid_ && table.DirtySince(synced_seq_, &dirty);
  if (journal_ok) {
    for (lock::ResourceId rid : dirty) {
      const lock::ResourceState* state = table.Find(rid);
      auto it = cache_.find(rid);
      if (state == nullptr) {
        if (it != cache_.end()) cache_.erase(it);
        continue;
      }
      if (it == cache_.end()) {
        it = cache_.emplace(rid, ResourcePairs{}).first;
      } else if (it->second.version == state->version()) {
        continue;
      }
      it->second.waits.clear();
      it->second.txns.clear();
      ComputePairs(*state, work, it->second.waits, it->second.txns);
      it->second.version = state->version();
    }
  } else {
    auto it = cache_.begin();
    for (const auto& [rid, state] : table) {
      while (it != cache_.end() && it->first < rid) it = cache_.erase(it);
      if (it == cache_.end() || it->first != rid) {
        it = cache_.emplace_hint(it, rid, ResourcePairs{});
      }
      if (it->second.version != state.version()) {
        it->second.waits.clear();
        it->second.txns.clear();
        ComputePairs(state, work, it->second.waits, it->second.txns);
        it->second.version = state.version();
      }
      ++it;
    }
    cache_.erase(it, cache_.end());
  }
  table_uid_ = table.uid();
  synced_seq_ = table.mutation_seq();
}

StrategyOutcome WfgStrategy::OnPeriodic(lock::LockManager& manager,
                                        core::CostTable& costs) {
  StrategyOutcome outcome;
  // Abort one min-cost victim per detected cycle until acyclic.
  for (;;) {
    Sync(manager.table(), &outcome.work);
    // Assemble the dense graph from the cached per-resource pairs.
    std::map<lock::TransactionId, graph::NodeId> dense;
    for (const auto& [rid, entry] : cache_) {
      for (lock::TransactionId tid : entry.txns) dense.emplace(tid, 0);
    }
    std::vector<lock::TransactionId> tids;
    tids.reserve(dense.size());
    graph::NodeId index = 0;
    for (auto& [tid, node] : dense) {
      node = index++;
      tids.push_back(tid);
    }
    graph::Digraph dg(tids.size());
    for (const auto& [rid, entry] : cache_) {
      for (const auto& [waiter, holder] : entry.waits) {
        dg.AddEdge(dense.at(waiter), dense.at(holder));
      }
    }
    std::optional<std::vector<graph::NodeId>> cycle = dg.FindCycle();
    outcome.work += dg.num_edges() + dg.num_nodes();
    if (!cycle.has_value()) break;
    ++outcome.cycles_found;
    lock::TransactionId victim = tids[(*cycle)[0]];
    double best = costs.Get(victim);
    for (graph::NodeId node : *cycle) {
      lock::TransactionId tid = tids[node];
      if (costs.Get(tid) < best) {
        best = costs.Get(tid);
        victim = tid;
      }
    }
    manager.ReleaseAll(victim);
    costs.Erase(victim);
    outcome.aborted.push_back(victim);
  }
  return outcome;
}

}  // namespace twbg::baselines
