// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Factory over every detection strategy, for experiments that sweep all
// schemes by name.

#ifndef TWBG_BASELINES_FACTORY_H_
#define TWBG_BASELINES_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "baselines/strategy.h"
#include "core/detector.h"

namespace twbg::baselines {

/// Names understood by MakeStrategy, in presentation order.
std::vector<std::string_view> AllStrategyNames();

/// Creates a strategy by name ("hwtwbg-periodic", "hwtwbg-continuous",
/// "wfg-periodic", "acd-periodic", "jiang-continuous",
/// "elmagarmid-continuous", "timeout", "none"); nullptr for unknown names.
/// `options` configures the H/W-TWBG strategies only.
std::unique_ptr<DetectionStrategy> MakeStrategy(
    std::string_view name, const core::DetectorOptions& options = {});

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_FACTORY_H_
