// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Classic transaction-wait-for-graph detector: the textbook scheme the
// paper's graph model improves upon.  Edges run from a blocked transaction
// to every *holder* whose granted mode conflicts with its blocked mode.
//
// Because the classic TWFG is blind to queue order (FIFO waits) and to
// waiter-vs-waiter conflicts, it misses deadlocks in which a transaction
// is stalled purely behind another waiter — the FIFO deadlock of the
// examples catalog is invisible to it.  The simulator's stall recovery
// quantifies those misses.
//
// The per-resource waits-for pairs are cached keyed on the resource
// state's version (same invalidation contract as core::GraphBuilder, see
// docs/PERFORMANCE.md), so each detection round recomputes conflict pairs
// only for resources mutated since the previous round.

#ifndef TWBG_BASELINES_WFG_DETECTOR_H_
#define TWBG_BASELINES_WFG_DETECTOR_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "baselines/strategy.h"

namespace twbg::baselines {

/// Periodic classic-WFG detection with min-cost victim aborts.
class WfgStrategy : public DetectionStrategy {
 public:
  WfgStrategy() = default;

  std::string_view name() const override { return "wfg-periodic"; }
  bool is_continuous() const override { return false; }

  StrategyOutcome OnPeriodic(lock::LockManager& manager,
                             core::CostTable& costs) override;

 private:
  struct ResourcePairs {
    uint64_t version = 0;
    /// (waiter, holder) conflict pairs of the resource.
    std::vector<std::pair<lock::TransactionId, lock::TransactionId>> waits;
    /// Transactions appearing on the resource (graph vertices).
    std::vector<lock::TransactionId> txns;
  };

  // Brings cache_ up to date; `work` counts the conflict checks actually
  // performed (cached resources cost none).
  void Sync(const lock::LockTable& table, size_t* work);

  std::map<lock::ResourceId, ResourcePairs> cache_;
  uint64_t table_uid_ = 0;
  uint64_t synced_seq_ = 0;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_WFG_DETECTOR_H_
