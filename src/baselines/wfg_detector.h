// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Classic transaction-wait-for-graph detector: the textbook scheme the
// paper's graph model improves upon.  Edges run from a blocked transaction
// to every *holder* whose granted mode conflicts with its blocked mode.
//
// Because the classic TWFG is blind to queue order (FIFO waits) and to
// waiter-vs-waiter conflicts, it misses deadlocks in which a transaction
// is stalled purely behind another waiter — the FIFO deadlock of the
// examples catalog is invisible to it.  The simulator's stall recovery
// quantifies those misses.

#ifndef TWBG_BASELINES_WFG_DETECTOR_H_
#define TWBG_BASELINES_WFG_DETECTOR_H_

#include "baselines/strategy.h"

namespace twbg::baselines {

/// Periodic classic-WFG detection with min-cost victim aborts.
class WfgStrategy : public DetectionStrategy {
 public:
  WfgStrategy() = default;

  std::string_view name() const override { return "wfg-periodic"; }
  bool is_continuous() const override { return false; }

  StrategyOutcome OnPeriodic(lock::LockManager& manager,
                             core::CostTable& costs) override;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_WFG_DETECTOR_H_
