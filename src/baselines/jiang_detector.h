// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Jiang, "Deadlock Detection is Really Cheap" (SIGMOD Record 1988): a
// continuous detector that keeps the full wait-for relation (an
// (n+1) x n matrix in the original) and, when a request blocks, finds
// cycles through the requester and lists ALL participators of every cycle.
//
// The paper under reproduction notes that listing all participators when a
// deadlock sits in multiple cycles costs O(3^(n/3)) in the worst case;
// this implementation reproduces that behaviour by exhaustively
// enumerating the simple cycles through the blocked transaction (bounded
// by `max_paths` as a safety valve) and counts the enumeration effort in
// `work`, which is the axis the complexity experiment compares.

#ifndef TWBG_BASELINES_JIANG_DETECTOR_H_
#define TWBG_BASELINES_JIANG_DETECTOR_H_

#include "baselines/strategy.h"
#include "core/graph_builder.h"

namespace twbg::baselines {

/// Continuous full-relation detection with exhaustive participator
/// listing; aborts the min-cost participator.
class JiangStrategy : public DetectionStrategy {
 public:
  explicit JiangStrategy(size_t max_paths = 1u << 20)
      : max_paths_(max_paths) {}

  std::string_view name() const override { return "jiang-continuous"; }
  bool is_continuous() const override { return true; }

  StrategyOutcome OnBlock(lock::LockManager& manager, core::CostTable& costs,
                          lock::TransactionId blocked) override;

 private:
  size_t max_paths_;
  core::GraphBuilder builder_;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_JIANG_DETECTOR_H_
