// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Timeout-based deadlock "resolution": no graph at all; any transaction
// blocked for more than `timeout_periods` detection periods is aborted.
// The classic cheap scheme — and the classic source of false aborts
// (victims that were merely waiting, not deadlocked), which the simulator
// measures against the oracle.

#ifndef TWBG_BASELINES_TIMEOUT_RESOLVER_H_
#define TWBG_BASELINES_TIMEOUT_RESOLVER_H_

#include <map>

#include "baselines/strategy.h"

namespace twbg::baselines {

/// Aborts transactions blocked for more than `timeout_periods` consecutive
/// OnPeriodic invocations.
class TimeoutStrategy : public DetectionStrategy {
 public:
  explicit TimeoutStrategy(size_t timeout_periods = 3)
      : timeout_periods_(timeout_periods) {}

  std::string_view name() const override { return "timeout"; }
  bool is_continuous() const override { return false; }

  StrategyOutcome OnPeriodic(lock::LockManager& manager,
                             core::CostTable& costs) override;

 private:
  size_t timeout_periods_;
  size_t now_ = 0;
  /// tid -> period at which we first saw it blocked.
  std::map<lock::TransactionId, size_t> blocked_since_;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_TIMEOUT_RESOLVER_H_
