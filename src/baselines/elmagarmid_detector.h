// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Elmagarmid (Ph.D. dissertation, Ohio State 1985): continuous detection
// over T-table/R-table structures whose "resolution scheme always aborts
// the current blocker whenever there is a deadlock" — simple, O(n+e), but
// "far from being optimal": the victim is whichever request completed the
// cycle, regardless of how much work it carries.
//
// We run it over our lock table (a strict superset of the T/R tables) and
// interpret "current blocker" as the transaction whose freshly blocked
// request closed the cycle.

#ifndef TWBG_BASELINES_ELMAGARMID_DETECTOR_H_
#define TWBG_BASELINES_ELMAGARMID_DETECTOR_H_

#include "baselines/strategy.h"
#include "core/graph_builder.h"

namespace twbg::baselines {

/// Continuous detection; the victim is always the requester that closed
/// the cycle (cost-blind).
class ElmagarmidStrategy : public DetectionStrategy {
 public:
  ElmagarmidStrategy() = default;

  std::string_view name() const override { return "elmagarmid-continuous"; }
  bool is_continuous() const override { return true; }

  StrategyOutcome OnBlock(lock::LockManager& manager, core::CostTable& costs,
                          lock::TransactionId blocked) override;

 private:
  core::GraphBuilder builder_;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_ELMAGARMID_DETECTOR_H_
