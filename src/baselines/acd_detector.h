// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Agrawal, Carey & DeWitt, "Deadlock Detection is Cheap" (SIGMOD Record
// 1983), with Chin's correction: a periodic detector using O(n) storage by
// keeping a SINGLE wait-for edge per blocked transaction — when a request
// is blocked by several holders, one representative (here: the first
// conflicting holder in list order) stands in for all of them.
//
// The paper under reproduction criticizes exactly this compression:
// "detection of some deadlocks can be delayed and some transactions may
// hold resources or wait for other transactions unnecessarily".  With one
// out-edge per node the wait graph is functional, so detection is a
// pointer chase; the price is deadlocks whose cycle runs through a
// non-representative blocker stay invisible until earlier aborts happen to
// re-route the representatives.

#ifndef TWBG_BASELINES_ACD_DETECTOR_H_
#define TWBG_BASELINES_ACD_DETECTOR_H_

#include "baselines/strategy.h"

namespace twbg::baselines {

/// Periodic single-representative-edge detection (O(n) space).
class AcdStrategy : public DetectionStrategy {
 public:
  AcdStrategy() = default;

  std::string_view name() const override { return "acd-periodic"; }
  bool is_continuous() const override { return false; }

  StrategyOutcome OnPeriodic(lock::LockManager& manager,
                             core::CostTable& costs) override;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_ACD_DETECTOR_H_
