// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Timestamp-based deadlock PREVENTION (Rosenkrantz et al.), the
// alternative strategy family the paper's reference [2] (Agrawal, Carey &
// McVoy) benchmarks detection against:
//
//   * wait-die  — an older requester may wait for a younger holder, but a
//                 younger requester "dies" (aborts itself) rather than
//                 wait for an older one;
//   * wound-wait — an older requester "wounds" (aborts) younger
//                 conflicting holders; a younger requester waits.
//
// Both order waits by age, so no wait cycle can form — deadlock freedom
// without any graph, paid for with aborts of transactions that were never
// deadlocked.  Timestamps must survive restarts (a re-executed
// transaction keeps its original age) or the schemes livelock; the
// simulator feeds that through the OnSpawn hook using the logical
// transaction id, which is exactly spawn order.
//
// Adaptation to this lock model (FIFO queues + conversions): at block
// time we police every wait edge the block creates, in both directions:
//
//   * outgoing — the requester waits for all holders whose effective
//     (granted-or-pending) mode conflicts with its blocked mode, and for
//     its queue predecessor (FIFO order is a wait edge too);
//   * incoming — a blocking CONVERSION also makes existing waiters wait
//     for the converter's new pending mode (other blocked converters and
//     the first conflicting queue member); those edges are policed
//     against the age rule as well.
//
// With lock conversions in play a rare reschedule-time edge can still
// slip past block-time policing; the simulator's stall recovery quantifies
// any residue (measured ~zero on conversion-free workloads, tiny
// otherwise).

#ifndef TWBG_BASELINES_PREVENTION_H_
#define TWBG_BASELINES_PREVENTION_H_

#include <map>

#include "baselines/strategy.h"

namespace twbg::baselines {

/// Shared machinery for the two schemes.
class PreventionStrategy : public DetectionStrategy {
 public:
  bool is_continuous() const override { return true; }

  void OnSpawn(lock::TransactionId tid, size_t logical) override {
    timestamps_[tid] = logical;
  }

  StrategyOutcome OnBlock(lock::LockManager& manager, core::CostTable& costs,
                          lock::TransactionId blocked) override;

 protected:
  /// True when `a` is older (has priority over) `b`.
  bool Older(lock::TransactionId a, lock::TransactionId b) const;

  /// Scheme-specific reaction; fills `outcome.aborted` (locks released).
  /// `waits_for` are the requester's new outgoing wait edges; `waited_by`
  /// are existing waiters that now wait on the requester (conversion
  /// blocks only).
  virtual void React(lock::LockManager& manager, core::CostTable& costs,
                     lock::TransactionId blocked,
                     const std::vector<lock::TransactionId>& waits_for,
                     const std::vector<lock::TransactionId>& waited_by,
                     StrategyOutcome& outcome) = 0;

 private:
  // Unknown transactions (driven outside the simulator) default to their
  // tid, which is allocation order.
  std::map<lock::TransactionId, size_t> timestamps_;
};

/// Wait-die: younger requesters abort themselves instead of waiting for
/// older holders.
class WaitDieStrategy : public PreventionStrategy {
 public:
  std::string_view name() const override { return "wait-die"; }

 protected:
  void React(lock::LockManager& manager, core::CostTable& costs,
             lock::TransactionId blocked,
             const std::vector<lock::TransactionId>& waits_for,
             const std::vector<lock::TransactionId>& waited_by,
             StrategyOutcome& outcome) override;
};

/// Wound-wait: older requesters abort younger conflicting holders.
class WoundWaitStrategy : public PreventionStrategy {
 public:
  std::string_view name() const override { return "wound-wait"; }

 protected:
  void React(lock::LockManager& manager, core::CostTable& costs,
             lock::TransactionId blocked,
             const std::vector<lock::TransactionId>& waits_for,
             const std::vector<lock::TransactionId>& waited_by,
             StrategyOutcome& outcome) override;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_PREVENTION_H_
