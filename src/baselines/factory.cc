// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/factory.h"

#include "baselines/acd_detector.h"
#include "baselines/elmagarmid_detector.h"
#include "baselines/hwtwbg_strategy.h"
#include "baselines/jiang_detector.h"
#include "baselines/prevention.h"
#include "baselines/timeout_resolver.h"
#include "baselines/wfg_detector.h"

namespace twbg::baselines {

std::vector<std::string_view> AllStrategyNames() {
  return {"hwtwbg-periodic", "hwtwbg-continuous",    "wfg-periodic",
          "acd-periodic",    "jiang-continuous",     "elmagarmid-continuous",
          "wait-die",        "wound-wait",           "timeout",
          "none"};
}

std::unique_ptr<DetectionStrategy> MakeStrategy(
    std::string_view name, const core::DetectorOptions& options) {
  if (name == "hwtwbg-periodic") {
    return std::make_unique<HwTwbgPeriodicStrategy>(options);
  }
  if (name == "hwtwbg-continuous") {
    return std::make_unique<HwTwbgContinuousStrategy>(options);
  }
  if (name == "wfg-periodic") return std::make_unique<WfgStrategy>();
  if (name == "acd-periodic") return std::make_unique<AcdStrategy>();
  if (name == "jiang-continuous") return std::make_unique<JiangStrategy>();
  if (name == "elmagarmid-continuous") {
    return std::make_unique<ElmagarmidStrategy>();
  }
  if (name == "wait-die") return std::make_unique<WaitDieStrategy>();
  if (name == "wound-wait") return std::make_unique<WoundWaitStrategy>();
  if (name == "timeout") {
    // 10 periods: long enough that ordinary queue waits usually survive,
    // short enough that deadlocks clear without driver intervention.
    return std::make_unique<TimeoutStrategy>(10);
  }
  if (name == "none") return std::make_unique<NullStrategy>();
  return nullptr;
}

}  // namespace twbg::baselines
