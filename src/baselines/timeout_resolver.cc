// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/timeout_resolver.h"

#include <vector>

namespace twbg::baselines {

StrategyOutcome TimeoutStrategy::OnPeriodic(lock::LockManager& manager,
                                            core::CostTable& costs) {
  StrategyOutcome outcome;
  ++now_;
  // Refresh the blocked-since table from ground truth.
  std::vector<lock::TransactionId> blocked = manager.BlockedTransactions();
  outcome.work = blocked.size();
  std::map<lock::TransactionId, size_t> refreshed;
  for (lock::TransactionId tid : blocked) {
    auto it = blocked_since_.find(tid);
    refreshed[tid] = it == blocked_since_.end() ? now_ : it->second;
  }
  blocked_since_ = std::move(refreshed);
  // Abort the longest-blocked expired transaction (one per invocation:
  // real timeout processing drains gradually, and a mass abort would
  // thundering-herd the restarts).
  auto victim = blocked_since_.end();
  for (auto it = blocked_since_.begin(); it != blocked_since_.end(); ++it) {
    if (now_ - it->second < timeout_periods_) continue;
    if (victim == blocked_since_.end() || it->second < victim->second) {
      victim = it;
    }
  }
  if (victim != blocked_since_.end()) {
    manager.ReleaseAll(victim->first);
    costs.Erase(victim->first);
    outcome.aborted.push_back(victim->first);
    blocked_since_.erase(victim);
  }
  return outcome;
}

}  // namespace twbg::baselines
