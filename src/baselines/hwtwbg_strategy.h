// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Strategy adapters exposing the paper's periodic and continuous H/W-TWBG
// detectors through the DetectionStrategy interface.

#ifndef TWBG_BASELINES_HWTWBG_STRATEGY_H_
#define TWBG_BASELINES_HWTWBG_STRATEGY_H_

#include "baselines/strategy.h"
#include "core/continuous_detector.h"
#include "core/periodic_detector.h"

namespace twbg::baselines {

/// The paper's §5 periodic detection-resolution algorithm.
class HwTwbgPeriodicStrategy : public DetectionStrategy {
 public:
  explicit HwTwbgPeriodicStrategy(core::DetectorOptions options = {})
      : detector_(options) {}

  std::string_view name() const override { return "hwtwbg-periodic"; }
  bool is_continuous() const override { return false; }

  StrategyOutcome OnPeriodic(lock::LockManager& manager,
                             core::CostTable& costs) override {
    core::ResolutionReport report = detector_.RunPass(manager, costs);
    StrategyOutcome outcome;
    outcome.aborted = report.aborted;
    outcome.cycles_found = report.cycles_detected;
    outcome.work = report.steps;
    outcome.repositioned = report.repositioned.size();
    outcome.num_dirty_resources = report.num_dirty_resources;
    outcome.num_cached_resources = report.num_cached_resources;
    outcome.edges_rebuilt = report.edges_rebuilt;
    outcome.edges_reused = report.edges_reused;
    return outcome;
  }

 private:
  core::PeriodicDetector detector_;
};

/// The continuous companion (detect on every block).
class HwTwbgContinuousStrategy : public DetectionStrategy {
 public:
  explicit HwTwbgContinuousStrategy(core::DetectorOptions options = {})
      : detector_(options) {}

  std::string_view name() const override { return "hwtwbg-continuous"; }
  bool is_continuous() const override { return true; }

  StrategyOutcome OnBlock(lock::LockManager& manager, core::CostTable& costs,
                          lock::TransactionId blocked) override {
    core::ResolutionReport report =
        detector_.OnBlock(manager, costs, blocked);
    StrategyOutcome outcome;
    outcome.aborted = report.aborted;
    outcome.cycles_found = report.cycles_detected;
    outcome.work = report.steps;
    outcome.repositioned = report.repositioned.size();
    outcome.num_dirty_resources = report.num_dirty_resources;
    outcome.num_cached_resources = report.num_cached_resources;
    outcome.edges_rebuilt = report.edges_rebuilt;
    outcome.edges_reused = report.edges_reused;
    return outcome;
  }

 private:
  core::ContinuousDetector detector_;
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_HWTWBG_STRATEGY_H_
