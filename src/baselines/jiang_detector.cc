// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/jiang_detector.h"

#include <map>
#include <set>
#include <vector>

#include "core/twbg.h"

namespace twbg::baselines {

namespace {

// Exhaustive DFS enumerating every simple cycle through `origin` in the
// waited-by relation.  Returns the union of participators; `work` counts
// every path extension (the exponential blow-up the paper critiques).
class CycleEnumerator {
 public:
  CycleEnumerator(const std::map<lock::TransactionId,
                                 std::vector<lock::TransactionId>>& adjacency,
                  lock::TransactionId origin, size_t max_paths, size_t* work)
      : adjacency_(adjacency),
        origin_(origin),
        max_paths_(max_paths),
        work_(work) {}

  // Returns participators of all cycles through origin; count in cycles_.
  std::set<lock::TransactionId> Run() {
    Dfs(origin_);
    return participators_;
  }

  size_t cycles() const { return cycles_; }

 private:
  void Dfs(lock::TransactionId node) {
    if (paths_ >= max_paths_) return;
    on_path_.insert(node);
    path_.push_back(node);
    auto it = adjacency_.find(node);
    if (it != adjacency_.end()) {
      for (lock::TransactionId next : it->second) {
        ++*work_;
        ++paths_;
        if (next == origin_) {
          ++cycles_;
          participators_.insert(path_.begin(), path_.end());
        } else if (on_path_.find(next) == on_path_.end()) {
          Dfs(next);
        }
        if (paths_ >= max_paths_) break;
      }
    }
    path_.pop_back();
    on_path_.erase(node);
  }

  const std::map<lock::TransactionId, std::vector<lock::TransactionId>>&
      adjacency_;
  const lock::TransactionId origin_;
  const size_t max_paths_;
  size_t* work_;
  size_t paths_ = 0;
  size_t cycles_ = 0;
  std::set<lock::TransactionId> on_path_;
  std::vector<lock::TransactionId> path_;
  std::set<lock::TransactionId> participators_;
};

}  // namespace

StrategyOutcome JiangStrategy::OnBlock(lock::LockManager& manager,
                                       core::CostTable& costs,
                                       lock::TransactionId blocked) {
  StrategyOutcome outcome;
  // Loop because aborting one participator can leave further cycles
  // through the (still blocked) requester.
  for (;;) {
    core::HwTwbg graph = core::HwTwbg::Build(manager.table());
    outcome.work += graph.edges().size();
    std::map<lock::TransactionId, std::vector<lock::TransactionId>> adjacency;
    for (const core::TwbgEdge& e : graph.edges()) {
      adjacency[e.from].push_back(e.to);
    }
    CycleEnumerator enumerator(adjacency, blocked, max_paths_, &outcome.work);
    std::set<lock::TransactionId> participators = enumerator.Run();
    if (participators.empty()) break;
    outcome.cycles_found += enumerator.cycles();
    lock::TransactionId victim = *participators.begin();
    for (lock::TransactionId tid : participators) {
      if (costs.Get(tid) < costs.Get(victim)) victim = tid;
    }
    manager.ReleaseAll(victim);
    costs.Erase(victim);
    outcome.aborted.push_back(victim);
    if (victim == blocked) break;  // the requester itself died
  }
  return outcome;
}

}  // namespace twbg::baselines
