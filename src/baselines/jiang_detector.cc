// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/jiang_detector.h"

#include <set>
#include <vector>

#include "core/twbg.h"

namespace twbg::baselines {

namespace {

// Exhaustive DFS enumerating every simple cycle through `origin` in the
// waited-by relation.  Returns the union of participators; `work` counts
// every path extension (the exponential blow-up the paper critiques).
// Operates directly on the graph's CSR adjacency — no per-invocation
// adjacency map.
class CycleEnumerator {
 public:
  CycleEnumerator(const core::HwTwbg& graph, lock::TransactionId origin,
                  size_t max_paths, size_t* work)
      : graph_(graph),
        origin_(origin),
        max_paths_(max_paths),
        work_(work),
        on_path_(graph.nodes().size(), 0) {}

  // Returns participators of all cycles through origin; count in cycles_.
  std::set<lock::TransactionId> Run() {
    const size_t origin_dense = graph_.DenseIndex(origin_);
    if (origin_dense < graph_.nodes().size()) Dfs(origin_dense);
    return participators_;
  }

  size_t cycles() const { return cycles_; }

 private:
  void Dfs(size_t dense) {
    if (paths_ >= max_paths_) return;
    on_path_[dense] = 1;
    path_.push_back(graph_.nodes()[dense]);
    for (uint32_t edge_index : graph_.OutEdgeIndices(dense)) {
      ++*work_;
      ++paths_;
      const lock::TransactionId next = graph_.edges()[edge_index].to;
      if (next == origin_) {
        ++cycles_;
        participators_.insert(path_.begin(), path_.end());
      } else {
        const size_t next_dense = graph_.DenseIndex(next);
        if (on_path_[next_dense] == 0) Dfs(next_dense);
      }
      if (paths_ >= max_paths_) break;
    }
    path_.pop_back();
    on_path_[dense] = 0;
  }

  const core::HwTwbg& graph_;
  const lock::TransactionId origin_;
  const size_t max_paths_;
  size_t* work_;
  size_t paths_ = 0;
  size_t cycles_ = 0;
  std::vector<char> on_path_;
  std::vector<lock::TransactionId> path_;
  std::set<lock::TransactionId> participators_;
};

}  // namespace

StrategyOutcome JiangStrategy::OnBlock(lock::LockManager& manager,
                                       core::CostTable& costs,
                                       lock::TransactionId blocked) {
  StrategyOutcome outcome;
  // Loop because aborting one participator can leave further cycles
  // through the (still blocked) requester.
  for (;;) {
    core::HwTwbg graph = builder_.BuildGraph(manager.table());
    outcome.work += graph.edges().size();
    CycleEnumerator enumerator(graph, blocked, max_paths_, &outcome.work);
    std::set<lock::TransactionId> participators = enumerator.Run();
    if (participators.empty()) break;
    outcome.cycles_found += enumerator.cycles();
    lock::TransactionId victim = *participators.begin();
    for (lock::TransactionId tid : participators) {
      if (costs.Get(tid) < costs.Get(victim)) victim = tid;
    }
    manager.ReleaseAll(victim);
    costs.Erase(victim);
    outcome.aborted.push_back(victim);
    if (victim == blocked) break;  // the requester itself died
  }
  return outcome;
}

}  // namespace twbg::baselines
