// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/prevention.h"

#include <algorithm>
#include <vector>

namespace twbg::baselines {

bool PreventionStrategy::Older(lock::TransactionId a,
                               lock::TransactionId b) const {
  auto ts = [this](lock::TransactionId tid) {
    auto it = timestamps_.find(tid);
    return it == timestamps_.end() ? static_cast<size_t>(tid) : it->second;
  };
  const size_t ta = ts(a);
  const size_t tb = ts(b);
  if (ta != tb) return ta < tb;
  return a < b;  // deterministic tie-break for equal ages
}

StrategyOutcome PreventionStrategy::OnBlock(lock::LockManager& manager,
                                            core::CostTable& costs,
                                            lock::TransactionId blocked) {
  StrategyOutcome outcome;
  const lock::TxnLockInfo* info = manager.Info(blocked);
  if (info == nullptr || !info->blocked_on.has_value()) return outcome;
  const lock::ResourceState* state = manager.table().Find(*info->blocked_on);
  if (state == nullptr) return outcome;
  const lock::LockMode bm = info->blocked_mode;
  const lock::HolderEntry* own_entry = state->FindHolder(blocked);
  const bool is_converter = own_entry != nullptr;

  // Outgoing wait edges: conflicting holders (by effective mode) plus,
  // for queue members, EVERY queue member ahead of us.  The whole
  // ahead-set must be policed at block time: an ahead member granted
  // later becomes a holder we wait on, and that edge gets no block event
  // of its own.
  std::vector<lock::TransactionId> waits_for;
  for (const lock::HolderEntry& h : state->holders()) {
    ++outcome.work;
    if (h.tid == blocked) continue;
    if (!lock::Compatible(bm, h.EffectiveMode())) waits_for.push_back(h.tid);
  }
  if (!is_converter) {
    for (const lock::QueueEntry& q : state->queue()) {
      ++outcome.work;
      if (q.tid == blocked) break;
      if (std::find(waits_for.begin(), waits_for.end(), q.tid) ==
          waits_for.end()) {
        waits_for.push_back(q.tid);
      }
    }
  }

  // Incoming wait edges created by a blocking conversion: parties whose
  // pending requests now also conflict with our pending mode.
  std::vector<lock::TransactionId> waited_by;
  if (is_converter) {
    for (const lock::HolderEntry& h : state->holders()) {
      ++outcome.work;
      if (h.tid == blocked || !h.IsBlocked()) continue;
      if (!lock::Compatible(h.blocked, bm)) waited_by.push_back(h.tid);
    }
    for (const lock::QueueEntry& q : state->queue()) {
      ++outcome.work;
      if (!lock::Compatible(q.blocked, own_entry->granted) ||
          !lock::Compatible(q.blocked, bm)) {
        // First queue member conflicting with us; only the edge created
        // by the NEW pending mode needs policing here.
        if (lock::Compatible(q.blocked, own_entry->granted)) {
          waited_by.push_back(q.tid);
        }
        break;
      }
    }
  }

  if (waits_for.empty() && waited_by.empty()) return outcome;
  React(manager, costs, blocked, waits_for, waited_by, outcome);
  return outcome;
}

void WaitDieStrategy::React(
    lock::LockManager& manager, core::CostTable& costs,
    lock::TransactionId blocked,
    const std::vector<lock::TransactionId>& waits_for,
    const std::vector<lock::TransactionId>& waited_by,
    StrategyOutcome& outcome) {
  // Wait-die invariant: every wait edge runs old -> young.
  // Outgoing: we may wait only if older than everyone we wait for.
  const bool may_wait =
      std::all_of(waits_for.begin(), waits_for.end(),
                  [&](lock::TransactionId other) {
                    return Older(blocked, other);
                  });
  if (!may_wait) {
    manager.ReleaseAll(blocked);
    costs.Erase(blocked);
    outcome.aborted.push_back(blocked);
    return;  // we are gone; the incoming edges died with us
  }
  // Incoming: younger parties now waiting on us must die.
  for (lock::TransactionId waiter : waited_by) {
    if (!Older(waiter, blocked)) {
      manager.ReleaseAll(waiter);
      costs.Erase(waiter);
      outcome.aborted.push_back(waiter);
    }
  }
}

void WoundWaitStrategy::React(
    lock::LockManager& manager, core::CostTable& costs,
    lock::TransactionId blocked,
    const std::vector<lock::TransactionId>& waits_for,
    const std::vector<lock::TransactionId>& waited_by,
    StrategyOutcome& outcome) {
  // Wound-wait invariant: every wait edge runs young -> old.
  // Incoming: an OLDER party now waiting on us wounds us.
  for (lock::TransactionId waiter : waited_by) {
    if (Older(waiter, blocked)) {
      manager.ReleaseAll(blocked);
      costs.Erase(blocked);
      outcome.aborted.push_back(blocked);
      return;
    }
  }
  // Outgoing: wound every younger party we would otherwise wait for.
  for (lock::TransactionId other : waits_for) {
    if (Older(blocked, other)) {
      manager.ReleaseAll(other);
      costs.Erase(other);
      outcome.aborted.push_back(other);
    }
  }
}

}  // namespace twbg::baselines
