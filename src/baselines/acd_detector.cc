// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/acd_detector.h"

#include <map>
#include <optional>

namespace twbg::baselines {

namespace {

// One representative wait-for edge per blocked transaction: the first
// holder (in holder-list order) whose granted mode conflicts with the
// blocked mode.  FIFO-only waiters (no conflicting holder) get no edge —
// the compression the paper criticizes.
std::map<lock::TransactionId, lock::TransactionId> BuildRepresentativeEdges(
    const lock::LockTable& table, size_t* work) {
  std::map<lock::TransactionId, lock::TransactionId> waits_for;
  for (const auto& [rid, state] : table) {
    auto representative =
        [&](lock::TransactionId waiter,
            lock::LockMode bm) -> std::optional<lock::TransactionId> {
      for (const lock::HolderEntry& h : state.holders()) {
        ++*work;
        if (h.tid != waiter && !lock::Compatible(bm, h.granted)) {
          return h.tid;
        }
      }
      return std::nullopt;
    };
    for (const lock::HolderEntry& h : state.holders()) {
      if (!h.IsBlocked()) continue;
      if (auto rep = representative(h.tid, h.blocked)) {
        waits_for[h.tid] = *rep;
      }
    }
    for (const lock::QueueEntry& q : state.queue()) {
      if (auto rep = representative(q.tid, q.blocked)) {
        waits_for[q.tid] = *rep;
      }
    }
  }
  return waits_for;
}

}  // namespace

StrategyOutcome AcdStrategy::OnPeriodic(lock::LockManager& manager,
                                        core::CostTable& costs) {
  StrategyOutcome outcome;
  // In a functional graph every node has out-degree <= 1, so cycles are
  // found by pointer chasing with visit stamps (the O(n) time bound of the
  // original paper).
  for (;;) {
    std::map<lock::TransactionId, lock::TransactionId> waits_for =
        BuildRepresentativeEdges(manager.table(), &outcome.work);
    std::map<lock::TransactionId, int> stamp;  // 0 unvisited
    int round = 0;
    std::optional<std::vector<lock::TransactionId>> cycle;
    for (const auto& [start, ignored] : waits_for) {
      if (cycle.has_value()) break;
      if (stamp[start] != 0) continue;
      ++round;
      std::vector<lock::TransactionId> path;
      lock::TransactionId walk = start;
      while (true) {
        ++outcome.work;
        auto st = stamp.find(walk);
        if (st != stamp.end() && st->second != 0) {
          if (st->second == round) {
            // Found a cycle: the path suffix from `walk`.
            auto begin = path.begin();
            while (*begin != walk) ++begin;
            cycle.emplace(begin, path.end());
          }
          break;
        }
        stamp[walk] = round;
        path.push_back(walk);
        auto next = waits_for.find(walk);
        if (next == waits_for.end()) break;  // runnable or edge-less waiter
        walk = next->second;
      }
    }
    if (!cycle.has_value()) break;
    ++outcome.cycles_found;
    lock::TransactionId victim = (*cycle)[0];
    for (lock::TransactionId tid : *cycle) {
      if (costs.Get(tid) < costs.Get(victim)) victim = tid;
    }
    manager.ReleaseAll(victim);
    costs.Erase(victim);
    outcome.aborted.push_back(victim);
  }
  return outcome;
}

}  // namespace twbg::baselines
