// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Common interface over deadlock handling schemes, used by the simulator
// and the comparison experiments: the paper's periodic and continuous
// H/W-TWBG algorithms, and the four baselines the paper's introduction
// discusses (classic wait-for-graph detection, Agrawal/Carey/DeWitt's
// O(n) single-edge scheme, Jiang's continuous exhaustive scheme, and
// Elmagarmid's abort-the-blocker scheme), plus timeouts and a null
// strategy.
//
// Contract: a strategy that decides to abort transactions must release
// their locks itself (lock_manager.ReleaseAll) and report them in
// `aborted`; the driver owns transaction state transitions.

#ifndef TWBG_BASELINES_STRATEGY_H_
#define TWBG_BASELINES_STRATEGY_H_

#include <string_view>
#include <vector>

#include "core/cost_table.h"
#include "lock/lock_manager.h"

namespace twbg::baselines {

/// What one detector invocation did.
struct StrategyOutcome {
  /// Victims aborted (their locks are already released).
  std::vector<lock::TransactionId> aborted;
  /// Deadlock cycles the invocation found.
  size_t cycles_found = 0;
  /// Algorithm-specific work units (edges walked, paths enumerated, ...)
  /// — the cost axis of the comparison experiments.
  size_t work = 0;
  /// Resolutions that aborted nobody (H/W-TWBG TDR-2 only).
  size_t repositioned = 0;
  /// Incremental graph-cache statistics of the invocation (zeros for
  /// strategies or paths that build from scratch); see
  /// core::GraphCacheStats.
  size_t num_dirty_resources = 0;
  size_t num_cached_resources = 0;
  size_t edges_rebuilt = 0;
  size_t edges_reused = 0;
};

/// A deadlock handling scheme.
class DetectionStrategy {
 public:
  virtual ~DetectionStrategy() = default;

  virtual std::string_view name() const = 0;

  /// True when the scheme reacts to individual blocks (OnBlock); false for
  /// purely periodic schemes (OnPeriodic).  Both hooks are always safe to
  /// call.
  virtual bool is_continuous() const = 0;

  /// Called when an execution starts (fresh or restarted).  `logical` is
  /// the workload-order id, stable across restarts — prevention schemes
  /// use it as the transaction's timestamp.
  virtual void OnSpawn(lock::TransactionId tid, size_t logical) {
    (void)tid;
    (void)logical;
  }

  /// Called right after `blocked` failed to acquire a lock.
  virtual StrategyOutcome OnBlock(lock::LockManager& manager,
                                  core::CostTable& costs,
                                  lock::TransactionId blocked) {
    (void)manager;
    (void)costs;
    (void)blocked;
    return {};
  }

  /// Called once per detection period by the driver.
  virtual StrategyOutcome OnPeriodic(lock::LockManager& manager,
                                     core::CostTable& costs) {
    (void)manager;
    (void)costs;
    return {};
  }
};

/// No deadlock handling at all — the driver's stall-recovery path (and
/// the "how bad is doing nothing" baseline).
class NullStrategy : public DetectionStrategy {
 public:
  std::string_view name() const override { return "none"; }
  bool is_continuous() const override { return false; }
};

}  // namespace twbg::baselines

#endif  // TWBG_BASELINES_STRATEGY_H_
