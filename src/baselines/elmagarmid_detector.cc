// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/elmagarmid_detector.h"

#include <map>
#include <set>
#include <vector>

#include "core/twbg.h"

namespace twbg::baselines {

StrategyOutcome ElmagarmidStrategy::OnBlock(lock::LockManager& manager,
                                            core::CostTable& costs,
                                            lock::TransactionId blocked) {
  StrategyOutcome outcome;
  // Is `blocked` on a cycle?  Equivalently: reachable from itself in the
  // waited-by relation.  One DFS, O(n + e).
  core::HwTwbg graph = core::HwTwbg::Build(manager.table());
  std::map<lock::TransactionId, std::vector<lock::TransactionId>> adjacency;
  for (const core::TwbgEdge& e : graph.edges()) {
    adjacency[e.from].push_back(e.to);
  }
  std::set<lock::TransactionId> visited;
  std::vector<lock::TransactionId> stack{blocked};
  bool on_cycle = false;
  while (!stack.empty() && !on_cycle) {
    lock::TransactionId node = stack.back();
    stack.pop_back();
    auto it = adjacency.find(node);
    if (it == adjacency.end()) continue;
    for (lock::TransactionId next : it->second) {
      ++outcome.work;
      if (next == blocked) {
        on_cycle = true;
        break;
      }
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  if (on_cycle) {
    ++outcome.cycles_found;
    manager.ReleaseAll(blocked);  // always abort the current blocker
    costs.Erase(blocked);
    outcome.aborted.push_back(blocked);
  }
  return outcome;
}

}  // namespace twbg::baselines
