// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "baselines/elmagarmid_detector.h"

#include <vector>

#include "core/twbg.h"

namespace twbg::baselines {

StrategyOutcome ElmagarmidStrategy::OnBlock(lock::LockManager& manager,
                                            core::CostTable& costs,
                                            lock::TransactionId blocked) {
  StrategyOutcome outcome;
  // Is `blocked` on a cycle?  Equivalently: reachable from itself in the
  // waited-by relation.  One DFS over the CSR adjacency, O(n + e).
  core::HwTwbg graph = builder_.BuildGraph(manager.table());
  const size_t n = graph.nodes().size();
  std::vector<char> visited(n, 0);
  std::vector<size_t> stack;
  const size_t blocked_dense = graph.DenseIndex(blocked);
  if (blocked_dense < n) stack.push_back(blocked_dense);
  bool on_cycle = false;
  while (!stack.empty() && !on_cycle) {
    const size_t node = stack.back();
    stack.pop_back();
    for (uint32_t edge_index : graph.OutEdgeIndices(node)) {
      ++outcome.work;
      const lock::TransactionId next = graph.edges()[edge_index].to;
      if (next == blocked) {
        on_cycle = true;
        break;
      }
      const size_t next_dense = graph.DenseIndex(next);
      if (visited[next_dense] == 0) {
        visited[next_dense] = 1;
        stack.push_back(next_dense);
      }
    }
  }
  if (on_cycle) {
    ++outcome.cycles_found;
    manager.ReleaseAll(blocked);  // always abort the current blocker
    costs.Erase(blocked);
    outcome.aborted.push_back(blocked);
  }
  return outcome;
}

}  // namespace twbg::baselines
