// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Johnson's algorithm for listing all elementary circuits of a directed
// graph (SIAM J. Computing 4(1), 1975 — the paper's reference [15]).
//
// The periodic detector deliberately does NOT enumerate all circuits (its
// cycle count c' is bounded by min(c, n)); Johnson's enumeration serves as
//   * the ground-truth oracle for cycle counts in tests, and
//   * the baseline quantifying what full enumeration costs (the paper's
//     critique of Jiang's participator listing, which is exponential in
//     the worst case).

#ifndef TWBG_GRAPH_JOHNSON_H_
#define TWBG_GRAPH_JOHNSON_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace twbg::graph {

/// Enumerates elementary circuits (no repeated node except first == last;
/// reported without the repeat).  Stops after `max_circuits` to bound the
/// worst case (3^(n/3) circuits exist for complete graphs).
std::vector<std::vector<NodeId>> ElementaryCircuits(
    const Digraph& graph, size_t max_circuits = 1u << 20);

/// Number of elementary circuits, capped at `max_circuits`.
size_t CountElementaryCircuits(const Digraph& graph,
                               size_t max_circuits = 1u << 20);

}  // namespace twbg::graph

#endif  // TWBG_GRAPH_JOHNSON_H_
