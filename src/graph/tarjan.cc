// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "graph/tarjan.h"

#include <algorithm>

namespace twbg::graph {

std::vector<std::vector<NodeId>> StronglyConnectedComponents(
    const Digraph& graph) {
  const size_t n = graph.num_nodes();
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  std::vector<std::vector<NodeId>> components;
  uint32_t next_index = 0;

  // Iterative Tarjan: frames of (node, edge cursor).
  std::vector<std::pair<NodeId, size_t>> frames;
  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      auto& [node, cursor] = frames.back();
      if (cursor < graph.OutEdges(node).size()) {
        NodeId next = graph.OutEdges(node)[cursor++];
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          scc_stack.push_back(next);
          on_stack[next] = true;
          frames.emplace_back(next, 0);
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
      } else {
        if (lowlink[node] == index[node]) {
          std::vector<NodeId> component;
          for (;;) {
            NodeId member = scc_stack.back();
            scc_stack.pop_back();
            on_stack[member] = false;
            component.push_back(member);
            if (member == node) break;
          }
          components.push_back(std::move(component));
        }
        NodeId finished = node;
        frames.pop_back();
        if (!frames.empty()) {
          NodeId parent = frames.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
        }
      }
    }
  }
  return components;
}

std::vector<std::vector<NodeId>> CyclicComponents(const Digraph& graph) {
  std::vector<std::vector<NodeId>> cyclic;
  for (auto& component : StronglyConnectedComponents(graph)) {
    if (component.size() > 1) {
      cyclic.push_back(std::move(component));
      continue;
    }
    NodeId node = component[0];
    for (NodeId next : graph.OutEdges(node)) {
      if (next == node) {
        cyclic.push_back(std::move(component));
        break;
      }
    }
  }
  return cyclic;
}

}  // namespace twbg::graph
