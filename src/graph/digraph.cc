// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "graph/digraph.h"

#include "common/macros.h"

namespace twbg::graph {

void Digraph::AddEdge(NodeId from, NodeId to) {
  TWBG_CHECK(from < adjacency_.size());
  TWBG_CHECK(to < adjacency_.size());
  adjacency_[from].push_back(to);
  ++num_edges_;
}

namespace {

enum class Color : uint8_t { kWhite, kGray, kBlack };

}  // namespace

bool Digraph::HasCycle() const { return FindCycle().has_value(); }

std::optional<std::vector<NodeId>> Digraph::FindCycle() const {
  const size_t n = adjacency_.size();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<NodeId> parent(n, 0);
  // Iterative DFS with an explicit (node, edge-index) stack.
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    color[root] = Color::kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [node, edge_index] = stack.back();
      if (edge_index < adjacency_[node].size()) {
        NodeId next = adjacency_[node][edge_index++];
        if (color[next] == Color::kGray) {
          // Back edge: recover the cycle next -> ... -> node -> next.
          std::vector<NodeId> cycle;
          NodeId walk = node;
          cycle.push_back(walk);
          while (walk != next) {
            walk = parent[walk];
            cycle.push_back(walk);
          }
          std::vector<NodeId> ordered(cycle.rbegin(), cycle.rend());
          return ordered;
        }
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          parent[next] = node;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace twbg::graph
