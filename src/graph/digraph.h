// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Minimal directed-graph container over dense node indices, plus iterative
// cycle detection.  Used by the test oracles, the baselines and the
// complexity experiments; the H/W-TWBG itself lives in core/ with labeled
// edges and its own TST-style representation.

#ifndef TWBG_GRAPH_DIGRAPH_H_
#define TWBG_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace twbg::graph {

using NodeId = uint32_t;

/// Adjacency-list digraph with nodes 0..n-1.  Parallel edges are allowed;
/// algorithms treat them as a single relation.
class Digraph {
 public:
  explicit Digraph(size_t num_nodes) : adjacency_(num_nodes) {}

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Adds edge from -> to.  Both ids must be < num_nodes().
  void AddEdge(NodeId from, NodeId to);

  const std::vector<NodeId>& OutEdges(NodeId node) const {
    return adjacency_[node];
  }

  /// True when the graph contains a directed cycle (iterative
  /// three-color DFS).
  bool HasCycle() const;

  /// Returns the nodes of some directed cycle in order (first node is
  /// repeated implicitly), or nullopt when acyclic.
  std::optional<std::vector<NodeId>> FindCycle() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace twbg::graph

#endif  // TWBG_GRAPH_DIGRAPH_H_
