// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "graph/johnson.h"

#include <algorithm>
#include <set>

#include "graph/tarjan.h"

namespace twbg::graph {

namespace {

// State for one run of Johnson's circuit enumeration.
class JohnsonState {
 public:
  JohnsonState(const Digraph& graph, size_t max_circuits)
      : graph_(graph),
        max_circuits_(max_circuits),
        blocked_(graph.num_nodes(), false),
        block_map_(graph.num_nodes()) {}

  std::vector<std::vector<NodeId>> Run() {
    const size_t n = graph_.num_nodes();
    // Process SCCs in increasing least-vertex order, per Johnson.
    for (NodeId start = 0; start < n && circuits_.size() < max_circuits_;
         ++start) {
      // Subgraph induced by nodes >= start; find the SCC containing the
      // least vertex.
      std::vector<NodeId> component = LeastScc(start);
      if (component.empty()) continue;
      start_ = *std::min_element(component.begin(), component.end());
      in_component_.assign(n, false);
      for (NodeId v : component) in_component_[v] = true;
      for (NodeId v : component) {
        blocked_[v] = false;
        block_map_[v].clear();
      }
      Circuit(start_);
      start = start_;  // outer loop increments past it
    }
    return std::move(circuits_);
  }

 private:
  // SCC with >= 2 nodes (or self-loop) containing the smallest possible
  // least vertex >= `from`; empty when none.
  std::vector<NodeId> LeastScc(NodeId from) {
    const size_t n = graph_.num_nodes();
    Digraph sub(n);
    for (NodeId u = from; u < n; ++u) {
      for (NodeId v : graph_.OutEdges(u)) {
        if (v >= from) sub.AddEdge(u, v);
      }
    }
    std::vector<std::vector<NodeId>> cyclic = CyclicComponents(sub);
    std::vector<NodeId> best;
    NodeId best_min = UINT32_MAX;
    for (auto& component : cyclic) {
      NodeId least = *std::min_element(component.begin(), component.end());
      if (least < best_min) {
        best_min = least;
        best = std::move(component);
      }
    }
    return best;
  }

  void Unblock(NodeId u) {
    blocked_[u] = false;
    for (NodeId w : block_map_[u]) {
      if (blocked_[w]) Unblock(w);
    }
    block_map_[u].clear();
  }

  bool Circuit(NodeId v) {
    if (circuits_.size() >= max_circuits_) return true;
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (NodeId w : graph_.OutEdges(v)) {
      if (!in_component_[w]) continue;
      if (w == start_) {
        circuits_.push_back(path_);
        found = true;
        if (circuits_.size() >= max_circuits_) break;
      } else if (!blocked_[w]) {
        if (Circuit(w)) found = true;
        if (circuits_.size() >= max_circuits_) break;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (NodeId w : graph_.OutEdges(v)) {
        if (!in_component_[w]) continue;
        block_map_[w].insert(v);
      }
    }
    path_.pop_back();
    return found;
  }

  const Digraph& graph_;
  const size_t max_circuits_;
  NodeId start_ = 0;
  std::vector<bool> blocked_;
  std::vector<bool> in_component_;
  std::vector<std::set<NodeId>> block_map_;
  std::vector<NodeId> path_;
  std::vector<std::vector<NodeId>> circuits_;
};

}  // namespace

std::vector<std::vector<NodeId>> ElementaryCircuits(const Digraph& graph,
                                                    size_t max_circuits) {
  // Deduplicate parallel edges first: circuits are node sequences.
  Digraph dedup(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    std::set<NodeId> seen;
    for (NodeId v : graph.OutEdges(u)) {
      if (seen.insert(v).second) dedup.AddEdge(u, v);
    }
  }
  JohnsonState state(dedup, max_circuits);
  return state.Run();
}

size_t CountElementaryCircuits(const Digraph& graph, size_t max_circuits) {
  return ElementaryCircuits(graph, max_circuits).size();
}

}  // namespace twbg::graph
