// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Tarjan's strongly-connected-components algorithm (iterative).  SCCs of
// size > 1 (or with a self loop) are exactly the cycle-carrying regions of
// a wait graph; baselines and oracles use this to find deadlocked groups.

#ifndef TWBG_GRAPH_TARJAN_H_
#define TWBG_GRAPH_TARJAN_H_

#include <vector>

#include "graph/digraph.h"

namespace twbg::graph {

/// Returns all strongly connected components; each component lists its
/// nodes.  Components are emitted in reverse topological order.
std::vector<std::vector<NodeId>> StronglyConnectedComponents(
    const Digraph& graph);

/// Components that contain at least one cycle: size > 1, or a single node
/// with a self loop.
std::vector<std::vector<NodeId>> CyclicComponents(const Digraph& graph);

}  // namespace twbg::graph

#endif  // TWBG_GRAPH_TARJAN_H_
