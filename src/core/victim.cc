// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/victim.h"

#include "common/string_util.h"

namespace twbg::core {

std::string VictimCandidate::ToString() const {
  if (kind == VictimKind::kAbort) {
    return common::Format("abort T%u (cost %.2f)", junction, cost);
  }
  std::vector<std::string> st_names;
  for (lock::TransactionId tid : st) {
    st_names.push_back(common::Format("T%u", tid));
  }
  return common::Format("reposition {%s} on R%u at junction T%u (cost %.2f)",
                        common::Join(st_names, ", ").c_str(), resource,
                        junction, cost);
}

std::string VictimDecision::ToString() const {
  std::vector<std::string> cycle_names;
  for (lock::TransactionId tid : cycle) {
    cycle_names.push_back(common::Format("T%u", tid));
  }
  std::string out = common::Format(
      "cycle {%s}: ", common::Join(cycle_names, ", ").c_str());
  std::vector<std::string> parts;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::string c = candidates[i].ToString();
    if (i == chosen) c = "[" + c + "]";
    parts.push_back(std::move(c));
  }
  out += common::Join(parts, "; ");
  return out;
}

namespace {

// Adapts a single LockTable to the ResourceLookup interface.
class TableLookup final : public ResourceLookup {
 public:
  explicit TableLookup(const lock::LockTable& table) : table_(table) {}
  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return table_.Find(rid);
  }

 private:
  const lock::LockTable& table_;
};

}  // namespace

std::vector<VictimCandidate> EnumerateCandidates(
    const std::vector<CycleEdgeView>& cycle, const ResourceLookup& resources,
    const CostTable& costs, const DetectorOptions& options) {
  std::vector<VictimCandidate> candidates;
  const size_t n = cycle.size();
  for (size_t i = 0; i < n; ++i) {
    const TwbgEdge& out = cycle[i].out;
    if (!out.IsH()) continue;  // junctions are H-edge tails
    const lock::TransactionId junction = cycle[i].node;

    VictimCandidate abort;
    abort.kind = VictimKind::kAbort;
    abort.junction = junction;
    abort.cost = costs.Get(junction);
    candidates.push_back(std::move(abort));

    if (!options.enable_tdr2) continue;
    const TwbgEdge& in = cycle[(i + n - 1) % n].out;
    if (!in.IsW()) continue;  // TDR-2 needs a W-labeled incoming edge
    const lock::ResourceState* state = resources.FindResource(in.rid);
    if (state == nullptr) continue;
    Result<lock::ResourceState::AvSt> split = state->ComputeAvSt(junction);
    if (!split.ok() || split->st.empty()) continue;

    VictimCandidate repos;
    repos.kind = VictimKind::kReposition;
    repos.junction = junction;
    repos.resource = in.rid;
    double total = 0.0;
    for (const lock::QueueEntry& q : split->st) {
      repos.st.push_back(q.tid);
      total += costs.Get(q.tid);
    }
    for (const lock::QueueEntry& q : split->av) repos.av.push_back(q.tid);
    repos.cost = total / options.tdr2_cost_divisor;
    candidates.push_back(std::move(repos));
  }
  return candidates;
}

std::vector<VictimCandidate> EnumerateCandidates(
    const std::vector<CycleEdgeView>& cycle, const lock::LockTable& table,
    const CostTable& costs, const DetectorOptions& options) {
  return EnumerateCandidates(cycle, TableLookup(table), costs, options);
}

Result<std::vector<VictimCandidate>> EnumerateCandidates(
    const HwTwbg& graph, const std::vector<lock::TransactionId>& cycle,
    const lock::LockTable& table, const CostTable& costs,
    const DetectorOptions& options) {
  std::vector<CycleEdgeView> views;
  const size_t n = cycle.size();
  for (size_t i = 0; i < n; ++i) {
    const TwbgEdge* e = graph.FindEdge(cycle[i], cycle[(i + 1) % n]);
    if (e == nullptr) {
      return Status::InvalidArgument(common::Format(
          "no edge T%u -> T%u", cycle[i], cycle[(i + 1) % n]));
    }
    views.push_back(CycleEdgeView{cycle[i], *e});
  }
  return EnumerateCandidates(views, table, costs, options);
}

size_t SelectVictim(const std::vector<VictimCandidate>& candidates) {
  TWBG_CHECK(!candidates.empty());
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    const VictimCandidate& a = candidates[i];
    const VictimCandidate& b = candidates[best];
    if (a.cost < b.cost) {
      best = i;
      continue;
    }
    if (a.cost > b.cost) continue;
    // Tie: prefer repositioning (no abort), then the lower junction id.
    const bool a_repos = a.kind == VictimKind::kReposition;
    const bool b_repos = b.kind == VictimKind::kReposition;
    if (a_repos != b_repos) {
      if (a_repos) best = i;
      continue;
    }
    if (a.junction < b.junction) best = i;
  }
  return best;
}

}  // namespace twbg::core
