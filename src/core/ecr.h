// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Edge Construction Rules (ECR 1-3, §4) for the Holder/Waiter-Transaction
// Waited-By Graph.  An edge Ti -> Tj means "the completion of Ti is waited
// by Tj" (Tj waits for Ti):
//
//   ECR-1 (H): for holder-list entries (Ti,gmi,bmi) preceding (Tj,gmj,bmj):
//          !Comp(gmi,bmj) or !Comp(bmi,bmj)  =>  Ti -> Tj
//          !Comp(gmj,bmi)                    =>  Tj -> Ti
//          (UPR ordering makes the rule asymmetric: the earlier entry is
//          never delayed by a later entry's *pending* mode.)
//   ECR-2 (H): each holder points to the FIRST queue member whose blocked
//          mode conflicts with the holder's granted or blocked mode.
//   ECR-3 (W): adjacent queue members Ti before Tj give Ti -> Tj.
//
// The paper encodes the label in the edge record's `lock` field: an
// H-labeled edge carries NL; a W-labeled edge carries the *source's*
// blocked mode.  We keep that encoding.

#ifndef TWBG_CORE_ECR_H_
#define TWBG_CORE_ECR_H_

#include <string>
#include <vector>

#include "lock/lock_table.h"
#include "lock/types.h"

namespace twbg::core {

/// One H/W-TWBG edge.  `to == 0` marks the paper's sentinel W-edge for the
/// last queue member (present only when requested); it is not a real edge.
struct TwbgEdge {
  lock::TransactionId from = lock::kInvalidTransaction;
  lock::TransactionId to = lock::kInvalidTransaction;
  /// kNL for H-labeled edges; the source's blocked mode for W-labeled ones.
  lock::LockMode lock = lock::LockMode::kNL;
  /// Resource whose holder list / queue induced the edge.
  lock::ResourceId rid = 0;

  bool IsH() const { return lock == lock::LockMode::kNL; }
  bool IsW() const { return !IsH(); }
  bool IsSentinel() const { return to == lock::kInvalidTransaction; }

  /// "T1 -H(R1)-> T2" / "T5 -W(R1)-> T6".
  std::string ToString() const;

  friend bool operator==(const TwbgEdge&, const TwbgEdge&) = default;
};

/// Applies ECR 1-3 to every resource (ascending rid) and returns the edge
/// list in deterministic construction order: per resource, ECR-1 pairs,
/// then ECR-2, then ECR-3.  Sentinel W-edges (to == 0) are emitted only
/// when `include_sentinels`.
std::vector<TwbgEdge> BuildEcrEdges(const lock::LockTable& table,
                                    bool include_sentinels);

/// Applies ECR 1-3 to a single resource, appending to `edges` in the same
/// deterministic order.  Building every resource in ascending rid order
/// reproduces BuildEcrEdges exactly (the scoped TST construction relies
/// on this).
void AppendEcrEdgesForResource(const lock::ResourceState& state,
                               bool include_sentinels,
                               std::vector<TwbgEdge>& edges);

}  // namespace twbg::core

#endif  // TWBG_CORE_ECR_H_
