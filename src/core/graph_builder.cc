// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/graph_builder.h"

#include <algorithm>

namespace twbg::core {

void GraphBuilder::Rebuild(const lock::ResourceState& state,
                           ResourceCache& entry) {
  ReleaseTxns(entry.txns);
  total_edges_ -= entry.edges.size();
  entry.edges.clear();
  entry.txns.clear();
  AppendEcrEdgesForResource(state, /*include_sentinels=*/true, entry.edges);
  for (const lock::HolderEntry& h : state.holders()) {
    entry.txns.push_back(h.tid);
  }
  for (const lock::QueueEntry& q : state.queue()) {
    entry.txns.push_back(q.tid);
  }
  RetainTxns(entry.txns);
  entry.version = state.version();
  total_edges_ += entry.edges.size();
  ++stats_.num_dirty_resources;
  stats_.edges_rebuilt += entry.edges.size();
}

void GraphBuilder::Drop(ResourceCache& entry) {
  ReleaseTxns(entry.txns);
  total_edges_ -= entry.edges.size();
}

void GraphBuilder::RetainTxns(const std::vector<lock::TransactionId>& txns) {
  for (lock::TransactionId tid : txns) {
    if (++txn_refs_[tid] == 1) membership_changed_ = true;
  }
}

void GraphBuilder::ReleaseTxns(const std::vector<lock::TransactionId>& txns) {
  for (lock::TransactionId tid : txns) {
    auto it = txn_refs_.find(tid);
    if (--it->second == 0) {
      txn_refs_.erase(it);
      membership_changed_ = true;
    }
  }
}

void GraphBuilder::RefreshTxns() {
  if (!membership_changed_) return;
  txns_.clear();
  txns_.reserve(txn_refs_.size());
  for (const auto& [tid, refs] : txn_refs_) txns_.push_back(tid);
  membership_changed_ = false;
}

void GraphBuilder::Sync(const lock::LockTable& table) {
  stats_ = {};
  dirty_scratch_.clear();
  const bool journal_ok =
      table.uid() == table_uid_ &&
      table.DirtySince(synced_seq_, &dirty_scratch_);
  if (journal_ok) {
    for (lock::ResourceId rid : dirty_scratch_) {
      const lock::ResourceState* state = table.Find(rid);
      auto it = cache_.find(rid);
      if (state == nullptr) {
        // Mutated away entirely (released and reclaimed).
        if (it != cache_.end()) {
          Drop(it->second);
          cache_.erase(it);
        }
        continue;
      }
      if (it == cache_.end()) {
        it = cache_.emplace(rid, ResourceCache{}).first;
      } else if (it->second.version == state->version()) {
        // Journal marking is conservative (FindMutable counts as a
        // mutation); the version proves the content did not change.
        continue;
      }
      Rebuild(*state, it->second);
    }
  } else {
    // First refresh, a different/copied table, or the journal was trimmed
    // past our sync point: version-compare every resource.  Unchanged
    // entries (equal version — guaranteed identical content, versions are
    // never reused) still serve their cached edges.
    stats_.full_sweep = true;
    auto it = cache_.begin();
    for (const auto& [rid, state] : table) {
      while (it != cache_.end() && it->first < rid) {
        Drop(it->second);
        it = cache_.erase(it);
      }
      if (it != cache_.end() && it->first == rid) {
        if (it->second.version != state.version()) Rebuild(state, it->second);
        ++it;
      } else {
        it = cache_.emplace_hint(it, rid, ResourceCache{});
        Rebuild(state, it->second);
        ++it;
      }
    }
    while (it != cache_.end()) {
      Drop(it->second);
      it = cache_.erase(it);
    }
  }
  table_uid_ = table.uid();
  synced_seq_ = table.mutation_seq();
  stats_.num_cached_resources = cache_.size() - stats_.num_dirty_resources;
  stats_.edges_reused = total_edges_ - stats_.edges_rebuilt;
}

void GraphBuilder::Refresh(const lock::LockTable& table) {
  Sync(table);
  RefreshTxns();
}

Tst& GraphBuilder::RefreshTst(const lock::LockTable& table) {
  Sync(table);
  RefreshTxns();
  edge_scratch_.clear();
  edge_scratch_.reserve(total_edges_);
  for (const auto& [rid, entry] : cache_) {
    edge_scratch_.insert(edge_scratch_.end(), entry.edges.begin(),
                         entry.edges.end());
  }
  tst_.Assemble(edge_scratch_, txns_);
  return tst_;
}

HwTwbg GraphBuilder::BuildGraph(const lock::LockTable& table) {
  Sync(table);
  RefreshTxns();
  std::vector<TwbgEdge> edges;
  edges.reserve(total_edges_);
  for (const auto& [rid, entry] : cache_) {
    for (const TwbgEdge& e : entry.edges) {
      if (!e.IsSentinel()) edges.push_back(e);
    }
  }
  return HwTwbg::FromParts(std::move(edges), txns_);
}

}  // namespace twbg::core
