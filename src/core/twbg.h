// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The Holder/Waiter-Transaction Waited-By Graph (H/W-TWBG, §4) as an
// analyzable labeled digraph: cycle existence, elementary-cycle
// enumeration (via Johnson, for analysis and tests — the detector itself
// never enumerates), TRRP decomposition of cycles, and DOT export.
//
// Properties established by the paper and checked by our property tests:
//   P1 no cycle consists of W edges only (Lemma 1);
//   P2 no cycle is a single TRRP (Lemma 2);
//   P3 every cycle has >= 2 TRRPs (Lemma 3);
//   P4 cycle exists <=> the system is deadlocked (Theorem 1).

#ifndef TWBG_CORE_TWBG_H_
#define TWBG_CORE_TWBG_H_

#include <map>
#include <string>
#include <vector>

#include "core/ecr.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// A Transaction Resource Request Path: one H-labeled edge followed by the
/// (possibly empty) run of W-labeled edges after it.  `nodes` lists the
/// vertices in order (nodes[0] is the H-edge tail, the holder side);
/// `rid` is the resource whose holder list / queue induced the path.
struct Trrp {
  std::vector<lock::TransactionId> nodes;
  lock::ResourceId rid = 0;

  /// "(T7, T8, T9, T3) on R2" — the paper's notation.
  std::string ToString() const;
};

/// Immutable snapshot of the H/W-TWBG for a lock table.
class HwTwbg {
 public:
  /// Builds the graph by ECR 1-3 (no sentinel edges).
  static HwTwbg Build(const lock::LockTable& table);

  /// All real edges in construction order.
  const std::vector<TwbgEdge>& edges() const { return edges_; }

  /// All vertices (transactions appearing in the lock table), ascending.
  const std::vector<lock::TransactionId>& nodes() const { return nodes_; }

  /// Outgoing edges of `tid` (possibly empty).
  std::vector<TwbgEdge> OutEdges(lock::TransactionId tid) const;

  /// True when the graph has a directed cycle (i.e. the system is
  /// deadlocked, by Theorem 1).
  bool HasCycle() const;

  /// All elementary cycles as vertex sequences, capped at `max_cycles`.
  std::vector<std::vector<lock::TransactionId>> ElementaryCycles(
      size_t max_cycles = 1u << 20) const;

  /// Decomposes a cycle into its TRRPs.  The cycle is rotated so the first
  /// TRRP starts at the cycle's first H-edge tail (one exists by Lemma 1).
  /// Returns an error when `cycle` is not a cycle of this graph.
  Result<std::vector<Trrp>> DecomposeCycle(
      const std::vector<lock::TransactionId>& cycle) const;

  /// Label lookup: the unique edge from -> to, if present.
  const TwbgEdge* FindEdge(lock::TransactionId from,
                           lock::TransactionId to) const;

  /// Graphviz DOT (H edges solid, W edges dashed, annotated with rids).
  std::string ToDot() const;

  /// One edge per line.
  std::string ToString() const;

 private:
  std::vector<TwbgEdge> edges_;
  std::vector<lock::TransactionId> nodes_;
  std::map<lock::TransactionId, uint32_t> dense_;  // tid -> dense index
};

}  // namespace twbg::core

#endif  // TWBG_CORE_TWBG_H_
