// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The Holder/Waiter-Transaction Waited-By Graph (H/W-TWBG, §4) as an
// analyzable labeled digraph: cycle existence, elementary-cycle
// enumeration (via Johnson, for analysis and tests — the detector itself
// never enumerates), TRRP decomposition of cycles, and DOT export.
//
// Adjacency is a CSR (compressed sparse row) index over the construction-
// order edge list: nodes are sorted, looked up by binary search, and each
// node's out-edges are a contiguous slice of edge indices — OutEdges and
// FindEdge cost O(out-degree), not O(E).  See docs/PERFORMANCE.md.
//
// Properties established by the paper and checked by our property tests:
//   P1 no cycle consists of W edges only (Lemma 1);
//   P2 no cycle is a single TRRP (Lemma 2);
//   P3 every cycle has >= 2 TRRPs (Lemma 3);
//   P4 cycle exists <=> the system is deadlocked (Theorem 1).

#ifndef TWBG_CORE_TWBG_H_
#define TWBG_CORE_TWBG_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ecr.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// A Transaction Resource Request Path: one H-labeled edge followed by the
/// (possibly empty) run of W-labeled edges after it.  `nodes` lists the
/// vertices in order (nodes[0] is the H-edge tail, the holder side);
/// `rid` is the resource whose holder list / queue induced the path.
struct Trrp {
  std::vector<lock::TransactionId> nodes;
  lock::ResourceId rid = 0;

  /// "(T7, T8, T9, T3) on R2" — the paper's notation.
  std::string ToString() const;
};

/// Immutable snapshot of the H/W-TWBG for a lock table.
class HwTwbg {
 public:
  /// Builds the graph by ECR 1-3 (no sentinel edges).
  static HwTwbg Build(const lock::LockTable& table);

  /// Assembles the graph from a pre-built real-edge list (construction
  /// order, no sentinels) and the full vertex set — used by the
  /// incremental core::GraphBuilder.  `nodes` need not be sorted/unique.
  static HwTwbg FromParts(std::vector<TwbgEdge> edges,
                          std::vector<lock::TransactionId> nodes);

  /// All real edges in construction order.
  const std::vector<TwbgEdge>& edges() const { return edges_; }

  /// All vertices (transactions appearing in the lock table), ascending.
  const std::vector<lock::TransactionId>& nodes() const { return nodes_; }

  /// Dense index of `tid` in nodes(), or nodes().size() when absent.
  size_t DenseIndex(lock::TransactionId tid) const;

  /// Out-edges of the node at `dense_index` as indices into edges(), in
  /// construction order.  O(1).
  std::span<const uint32_t> OutEdgeIndices(size_t dense_index) const {
    return std::span<const uint32_t>(
        edge_index_.data() + offsets_[dense_index],
        offsets_[dense_index + 1] - offsets_[dense_index]);
  }

  /// Outgoing edges of `tid` (possibly empty).  O(out-degree).
  std::vector<TwbgEdge> OutEdges(lock::TransactionId tid) const;

  /// True when the graph has a directed cycle (i.e. the system is
  /// deadlocked, by Theorem 1).
  bool HasCycle() const;

  /// All elementary cycles as vertex sequences, capped at `max_cycles`.
  std::vector<std::vector<lock::TransactionId>> ElementaryCycles(
      size_t max_cycles = 1u << 20) const;

  /// Decomposes a cycle into its TRRPs.  The cycle is rotated so the first
  /// TRRP starts at the cycle's first H-edge tail (one exists by Lemma 1).
  /// Returns an error when `cycle` is not a cycle of this graph.
  Result<std::vector<Trrp>> DecomposeCycle(
      const std::vector<lock::TransactionId>& cycle) const;

  /// Label lookup: the unique edge from -> to, if present.  O(out-degree).
  const TwbgEdge* FindEdge(lock::TransactionId from,
                           lock::TransactionId to) const;

  /// Graphviz DOT (H edges solid, W edges dashed, annotated with rids).
  std::string ToDot() const;

  /// One edge per line.
  std::string ToString() const;

 private:
  // Sorts/uniques nodes_ and builds the CSR index from edges_.
  void BuildIndex();

  std::vector<TwbgEdge> edges_;
  std::vector<lock::TransactionId> nodes_;  // sorted, unique
  // CSR over dense node indices: node i's out-edges are
  // edge_index_[offsets_[i] .. offsets_[i+1]), each an index into edges_.
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> edge_index_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_TWBG_H_
