// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/continuous_detector.h"

#include "common/stopwatch.h"
#include "core/scoped_tst.h"
#include "core/tst.h"

namespace twbg::core {

ResolutionReport ContinuousDetector::OnBlock(lock::LockManager& manager,
                                             CostTable& costs,
                                             lock::TransactionId blocked) {
  obs::EventBus* bus = options_.event_bus;
  const bool observing = obs::Enabled(bus);
  obs::SpanTracer* tracer = options_.span_tracer;
  const bool tracing = obs::Tracing(tracer);
  common::Stopwatch pass_clock;
  if (observing) {
    obs::Event start;
    start.kind = obs::EventKind::kPassStart;
    start.tid = blocked;
    start.a = 0;  // continuous
    bus->Emit(start);
  }
  const uint64_t pass_span = tracing ? tracer->Open(obs::SpanKind::kPass) : 0;
  if (tracing) tracer->SetContext(pass_span, blocked, 0);
  uint64_t step_span =
      tracing ? tracer->Open(obs::SpanKind::kStep1, 0, pass_span) : 0;

  // A scoped build is already proportional to the blocked transaction's
  // wait neighbourhood; the incremental cache serves the full-table path.
  Tst scratch;
  Tst* tst;
  if (options_.scoped_continuous_build) {
    scratch = BuildReachableTst(manager, blocked).tst;
    tst = &scratch;
  } else if (options_.incremental_build) {
    tst = &builder_.RefreshTst(manager.table());
  } else {
    scratch = Tst::Build(manager.table());
    tst = &scratch;
  }
  const size_t num_transactions = tst->size();
  const size_t num_edges = tst->NumEdges();
  const bool from_cache =
      !options_.scoped_continuous_build && options_.incremental_build;
  if (tracing) {
    tracer->Close(step_span, builder_.stats().edges_reused,
                  builder_.stats().edges_rebuilt);
    step_span = tracer->Open(obs::SpanKind::kStep2, 0, pass_span);
  }
  const int64_t step1_ns = observing ? pass_clock.ElapsedNanos() : 0;
  if (observing) {
    obs::Event step1;
    step1.kind = obs::EventKind::kStep1;
    if (from_cache) {
      step1.a = builder_.stats().num_dirty_resources;
      step1.b = builder_.stats().num_cached_resources;
    }
    step1.value = static_cast<double>(step1_ns);
    bus->Emit(step1);
  }

  // Every new edge created by this block is incident to `blocked`, so any
  // newly formed cycle passes through it; a walk rooted there finds it.
  WalkOutcome walk = RunWalk(*tst, {blocked}, manager, costs, options_);
  if (tracing) tracer->Close(step_span, walk.steps);
  if (observing) {
    obs::Event step2;
    step2.kind = obs::EventKind::kStep2;
    step2.a = walk.cycles;
    step2.b = walk.steps;
    step2.value = static_cast<double>(pass_clock.ElapsedNanos() - step1_ns);
    bus->Emit(step2);
  }

  ResolutionReport report =
      ApplyResolution(std::move(walk), manager, costs, options_);
  report.num_transactions = num_transactions;
  report.num_edges = num_edges;
  if (from_cache) {
    const GraphCacheStats& stats = builder_.stats();
    report.num_dirty_resources = stats.num_dirty_resources;
    report.num_cached_resources = stats.num_cached_resources;
    report.edges_rebuilt = stats.edges_rebuilt;
    report.edges_reused = stats.edges_reused;
  }
  if (observing) {
    obs::Event end;
    end.kind = obs::EventKind::kPassEnd;
    end.tid = blocked;
    end.a = report.cycles_detected;
    end.b = report.aborted.size();
    end.value = static_cast<double>(pass_clock.ElapsedNanos());
    bus->Emit(end);
  }
  if (tracing) {
    // Pass-span close contract (SpanEstimator): a = cycles resolved,
    // b = the pass's cost in nanoseconds.
    tracer->Close(pass_span, report.cycles_detected,
                  static_cast<uint64_t>(pass_clock.ElapsedNanos()));
  }
  return report;
}

}  // namespace twbg::core
