// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/continuous_detector.h"

#include "core/scoped_tst.h"
#include "core/tst.h"

namespace twbg::core {

ResolutionReport ContinuousDetector::OnBlock(lock::LockManager& manager,
                                             CostTable& costs,
                                             lock::TransactionId blocked) {
  Tst tst = options_.scoped_continuous_build
                ? BuildReachableTst(manager, blocked).tst
                : Tst::Build(manager.table());
  const size_t num_transactions = tst.size();
  const size_t num_edges = tst.NumEdges();

  // Every new edge created by this block is incident to `blocked`, so any
  // newly formed cycle passes through it; a walk rooted there finds it.
  WalkOutcome walk = RunWalk(tst, {blocked}, manager, costs, options_);

  ResolutionReport report =
      ApplyResolution(std::move(walk), manager, costs, options_);
  report.num_transactions = num_transactions;
  report.num_edges = num_edges;
  return report;
}

}  // namespace twbg::core
