// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/continuous_detector.h"

#include "core/scoped_tst.h"
#include "core/tst.h"

namespace twbg::core {

ResolutionReport ContinuousDetector::OnBlock(lock::LockManager& manager,
                                             CostTable& costs,
                                             lock::TransactionId blocked) {
  // A scoped build is already proportional to the blocked transaction's
  // wait neighbourhood; the incremental cache serves the full-table path.
  Tst scratch;
  Tst* tst;
  if (options_.scoped_continuous_build) {
    scratch = BuildReachableTst(manager, blocked).tst;
    tst = &scratch;
  } else if (options_.incremental_build) {
    tst = &builder_.RefreshTst(manager.table());
  } else {
    scratch = Tst::Build(manager.table());
    tst = &scratch;
  }
  const size_t num_transactions = tst->size();
  const size_t num_edges = tst->NumEdges();

  // Every new edge created by this block is incident to `blocked`, so any
  // newly formed cycle passes through it; a walk rooted there finds it.
  WalkOutcome walk = RunWalk(*tst, {blocked}, manager, costs, options_);

  ResolutionReport report =
      ApplyResolution(std::move(walk), manager, costs, options_);
  report.num_transactions = num_transactions;
  report.num_edges = num_edges;
  if (!options_.scoped_continuous_build && options_.incremental_build) {
    const GraphCacheStats& stats = builder_.stats();
    report.num_dirty_resources = stats.num_dirty_resources;
    report.num_cached_resources = stats.num_cached_resources;
    report.edges_rebuilt = stats.edges_rebuilt;
    report.edges_reused = stats.edges_reused;
  }
  return report;
}

}  // namespace twbg::core
