// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/periodic_detector.h"

#include "core/tst.h"

namespace twbg::core {

ResolutionReport PeriodicDetector::RunPass(lock::LockManager& manager,
                                           CostTable& costs) {
  // Step 1: construct the TST (W + H edges) and initialize the walk state
  // — incrementally from the per-resource edge cache, or from scratch.
  Tst scratch;
  Tst* tst;
  if (options_.incremental_build) {
    tst = &builder_.RefreshTst(manager.table());
  } else {
    scratch = Tst::Build(manager.table());
    tst = &scratch;
  }
  const size_t num_transactions = tst->size();
  const size_t num_edges = tst->NumEdges();

  // Step 2: directed walk from every vertex in id order.
  WalkOutcome walk =
      RunWalk(*tst, tst->Transactions(), manager, costs, options_);

  // Step 3: confirm aborts and grants.
  ResolutionReport report =
      ApplyResolution(std::move(walk), manager, costs, options_);
  report.num_transactions = num_transactions;
  report.num_edges = num_edges;
  if (options_.incremental_build) {
    const GraphCacheStats& stats = builder_.stats();
    report.num_dirty_resources = stats.num_dirty_resources;
    report.num_cached_resources = stats.num_cached_resources;
    report.edges_rebuilt = stats.edges_rebuilt;
    report.edges_reused = stats.edges_reused;
  }
  return report;
}

}  // namespace twbg::core
