// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/parallel_engine.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "obs/sinks.h"

namespace twbg::core {

namespace {

size_t Find(std::vector<size_t>& parent, size_t v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}

void Unite(std::vector<size_t>& parent, size_t a, size_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

// WalkHost a single component's walk runs against: reads go straight to
// the parallel host; the TDR-2 mutation is applied directly (journal
// deferred) and its kUprReposition recorded on the component-local bus.
class ComponentWalkHost final : public WalkHost {
 public:
  ComponentWalkHost(ParallelWalkHost& parent, obs::EventBus* local_bus)
      : parent_(parent), local_bus_(local_bus) {}

  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return parent_.FindResource(rid);
  }
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    return parent_.FindWaitInfo(tid);
  }
  Status ApplyTdr2(lock::ResourceId rid,
                   lock::TransactionId junction) override {
    Status status = parent_.ApplyTdr2Direct(rid, junction);
    if (status.ok() && obs::Enabled(local_bus_)) {
      // Same shape LockManager::ApplyTdr2 emits on the sequential pass.
      obs::Event event;
      event.kind = obs::EventKind::kUprReposition;
      event.tid = junction;
      event.rid = rid;
      local_bus_->Emit(event);
    }
    return status;
  }

 private:
  ParallelWalkHost& parent_;
  obs::EventBus* local_bus_;
};

// Everything one component's walk produced, recorded privately so the
// merge phase can reassemble the exact sequential stream.
struct ComponentRun {
  WalkOutcome outcome;
  CostTable costs;  // private copy; in-component entries merged back
  obs::EventBus bus;
  obs::CollectorSink sink;
  // [begin, end) ranges into sink.events() per decision.
  std::vector<std::pair<size_t, size_t>> decision_events;
};

}  // namespace

TstPartition PartitionTst(const Tst& tst) {
  const size_t n = tst.size();
  TstPartition partition;
  std::vector<size_t> parent(n);
  for (size_t v = 0; v < n; ++v) parent[v] = v;
  for (size_t v = 0; v < n; ++v) {
    const size_t degree = tst.EntryAt(v).waited.size();
    for (size_t offset = 0; offset < degree; ++offset) {
      const size_t t = tst.EdgeTargetIndex(v, offset);
      if (t == Tst::kNoVertex || t >= n) continue;  // sentinel / unknown
      Unite(parent, v, t);
    }
  }
  partition.component_of.resize(n);
  for (size_t v = 0; v < n; ++v) {
    const size_t root = Find(parent, v);
    if (root == v) {
      // First (smallest) member: ascending v assigns component indices in
      // component-root order.
      partition.component_of[v] = partition.components.size();
      partition.components.emplace_back();
    } else {
      partition.component_of[v] = partition.component_of[root];
    }
    partition.components[partition.component_of[v]].push_back(v);
  }
  return partition;
}

WalkOutcome RunWalkComponentParallel(Tst& tst, ParallelWalkHost& host,
                                     CostTable& costs,
                                     const DetectorOptions& options,
                                     common::ThreadPool* pool,
                                     size_t* num_components) {
  const TstPartition partition = PartitionTst(tst);
  const size_t n_comp = partition.components.size();
  if (num_components != nullptr) *num_components = n_comp;

  const bool observing = obs::Enabled(options.event_bus);
  std::vector<ComponentRun> runs(n_comp);

  auto run_component = [&](size_t c) {
    ComponentRun& run = runs[c];
    DetectorOptions local = options;
    if (options.event_bus != nullptr) {
      // Mirror the sequential pass exactly: the local bus is active iff
      // the real one is (post-mortem assembly keys on that), and carries
      // the real logical time (nothing advances it mid-pass).
      run.bus.set_time(options.event_bus->time());
      if (observing) run.bus.Subscribe(&run.sink);
      local.event_bus = &run.bus;
    }
    run.costs = costs;
    ComponentWalkHost component_host(host, observing ? &run.bus : nullptr);
    std::vector<lock::TransactionId> roots;
    roots.reserve(partition.components[c].size());
    for (size_t index : partition.components[c]) {
      roots.push_back(tst.TidAt(index));
    }
    run.outcome = RunWalk(tst, roots, component_host, run.costs, local);
    // Segment the recorded stream into one event range per decision:
    // [kUprReposition?] kCycleResolved [kCyclePostMortem?].
    const auto& events = run.sink.events();
    size_t start = 0;
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind != obs::EventKind::kCycleResolved) continue;
      size_t end = i + 1;
      if (end < events.size() &&
          events[end].kind == obs::EventKind::kCyclePostMortem) {
        ++end;
      }
      run.decision_events.emplace_back(start, end);
      start = end;
      i = end - 1;
    }
    TWBG_DCHECK(!observing ||
                run.decision_events.size() == run.outcome.decisions.size());
  };

  if (pool != nullptr) {
    pool->ParallelFor(n_comp, run_component);
  } else {
    for (size_t c = 0; c < n_comp; ++c) run_component(c);
  }

  // Serial merge: interleave per-component decision streams by ascending
  // root id — the order the sequential outer loop would have made them.
  WalkOutcome merged;
  std::vector<size_t> pos(n_comp, 0);
  for (;;) {
    size_t best = n_comp;
    for (size_t c = 0; c < n_comp; ++c) {
      if (pos[c] >= runs[c].outcome.decisions.size()) continue;
      if (best == n_comp || runs[c].outcome.decision_roots[pos[c]] <
                                runs[best].outcome.decision_roots[pos[best]]) {
        best = c;
      }
    }
    if (best == n_comp) break;
    ComponentRun& run = runs[best];
    const size_t p = pos[best]++;
    VictimDecision decision = std::move(run.outcome.decisions[p]);
    const VictimCandidate& victim = decision.candidates[decision.chosen];
    if (victim.kind == VictimKind::kAbort) {
      merged.abortion_list.push_back(victim.junction);
    } else {
      host.NoteTdr2Applied(victim.resource);
      if (std::find(merged.change_list.begin(), merged.change_list.end(),
                    victim.resource) == merged.change_list.end()) {
        merged.change_list.push_back(victim.resource);
      }
    }
    if (observing && p < run.decision_events.size()) {
      const auto [begin, end] = run.decision_events[p];
      for (size_t i = begin; i < end; ++i) {
        // The real bus re-stamps seq/time on delivery.
        options.event_bus->Emit(run.sink.events()[i]);
      }
    }
    if (p < run.outcome.post_mortems.size()) {
      merged.post_mortems.push_back(
          std::move(run.outcome.post_mortems[p]));
    }
    merged.decision_roots.push_back(run.outcome.decision_roots[p]);
    merged.decisions.push_back(std::move(decision));
    ++merged.cycles;
  }

  // Fold per-component step counts and cost mutations back.  Cost reads
  // and writes during a walk are confined to that component's members
  // (see header), so copying the members' entries back is exact.
  for (size_t c = 0; c < n_comp; ++c) {
    merged.steps += runs[c].outcome.steps;
    const auto& entries = runs[c].costs.entries();
    for (size_t index : partition.components[c]) {
      auto it = entries.find(tst.TidAt(index));
      if (it != entries.end()) costs.Set(it->first, it->second);
    }
  }
  return merged;
}

}  // namespace twbg::core
