// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/detection_engine.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "core/post_mortem.h"
#include "core/victim.h"

namespace twbg::core {

namespace {

// Resolves the cycle closed by the edge v -> w (w has a non-zero ancestor,
// i.e. lies on the active walk path).  v and w are dense indices into
// `tst`.  Implements the paper's victim-selection: backtrack from v to w
// recovering the cycle, enumerate TDR candidates, apply the cheapest,
// clear the backtracked ancestors (except w's).
//
// Returns false without mutating anything when the recovered cycle is not
// a cycle of any consistent TWBG.  On a consistent table that cannot
// happen (Lemmata 3 and 4.1); it happens only when the walk runs over an
// epoch snapshot whose shards were captured at slightly different times
// (see ShardedTstBuilder::RefreshTst).  The caller skips the closing edge
// — whatever real deadlock hides behind the skew is re-derived from a
// fresh capture next pass, mirroring how the pauseless apply phase drops
// stale decisions.
bool HandleCycle(size_t v, size_t w, lock::TransactionId root, Tst& tst,
                 WalkHost& host, CostTable& costs,
                 const DetectorOptions& options, WalkOutcome& outcome) {
  // Recover the cycle vertices in walk order w .. v.
  std::vector<size_t> reversed;
  size_t u = v;
  while (u != w) {
    reversed.push_back(u);
    const int64_t up = tst.EntryAt(u).ancestor;
    // w lies on the active path, so we must reach it before running off
    // the root of the walk.
    TWBG_CHECK(up > 0);
    u = static_cast<size_t>(up - 1);
  }
  reversed.push_back(w);
  std::vector<size_t> cycle_index(reversed.rbegin(), reversed.rend());
  std::vector<lock::TransactionId> cycle;
  cycle.reserve(cycle_index.size());
  for (size_t index : cycle_index) cycle.push_back(tst.TidAt(index));

  // Each on-path vertex's `current` points at the edge the walk took from
  // it; for v that is the closing edge v -> w.
  std::vector<CycleEdgeView> views;
  views.reserve(cycle.size());
  for (size_t i = 0; i < cycle.size(); ++i) {
    const TstEntry& entry = tst.EntryAt(cycle_index[i]);
    if (entry.CurrentIsNil()) {
      // A vertex cleared by an earlier resolution (the Lemma 4.1 shield)
      // reappeared on a cycle — capture skew; drop the cycle.
      return false;
    }
    views.push_back(CycleEdgeView{cycle[i], entry.CurrentEdge()});
    TWBG_CHECK(views.back().out.to == cycle[(i + 1) % cycle.size()]);
  }

  // A kResolution span brackets everything from candidate enumeration to
  // the forensic post-mortem, parented under the open pass span.
  obs::SpanTracer* tracer = options.span_tracer;
  const bool tracing = obs::Tracing(tracer);
  const uint64_t res_span =
      tracing ? tracer->Open(obs::SpanKind::kResolution, 0,
                             tracer->current_pass())
              : 0;

  std::vector<VictimCandidate> candidates =
      EnumerateCandidates(views, host, costs, options);
  if (candidates.empty()) {
    // Lemma 3 guarantees >= 2 junctions on any cycle of a consistent
    // TWBG; an empty enumeration means capture skew — drop the cycle.
    if (tracing) tracer->Close(res_span, cycle.size(), false, "skew-drop");
    return false;
  }
  const size_t chosen = SelectVictim(candidates);
  const VictimCandidate& victim = candidates[chosen];

  // Stamp the evidence before the resolution mutates any of it: every
  // distinct resource the cycle's edges traverse, with its current
  // version.  A pauseless apply phase re-checks these against the live
  // shards — any mismatch means the cycle was derived from state that has
  // since moved, and the decision is dropped as stale.
  std::vector<std::pair<lock::ResourceId, uint64_t>> evidence;
  if (options.capture_evidence) {
    for (const CycleEdgeView& view : views) {
      const lock::ResourceId rid = view.out.rid;
      if (rid == 0) continue;
      bool seen = false;
      for (const auto& entry : evidence) seen = seen || entry.first == rid;
      if (seen) continue;
      const lock::ResourceState* state = host.FindResource(rid);
      TWBG_CHECK(state != nullptr);  // the edge was built from this state
      evidence.emplace_back(rid, state->version());
    }
  }
  uint64_t applied_version = 0;

  if (victim.kind == VictimKind::kAbort) {
    tst.At(victim.junction).SetCurrentNil();
    // A victim's nil current shields it from every later cycle, so it can
    // never be selected twice.
    TWBG_DCHECK(std::find(outcome.abortion_list.begin(),
                          outcome.abortion_list.end(),
                          victim.junction) == outcome.abortion_list.end());
    outcome.abortion_list.push_back(victim.junction);
  } else {
    // TDR-2: reposition the live queue now; grants happen at Step 3.
    Status status = host.ApplyTdr2(victim.resource, victim.junction);
    TWBG_CHECK(status.ok());
    if (options.capture_evidence) {
      const lock::ResourceState* state = host.FindResource(victim.resource);
      TWBG_CHECK(state != nullptr);
      applied_version = state->version();
    }
    for (lock::TransactionId tid : victim.st) {
      costs.Bump(tid, options.st_cost_multiplier, options.st_cost_increment);
    }
    if (std::find(outcome.change_list.begin(), outcome.change_list.end(),
                  victim.resource) == outcome.change_list.end()) {
      outcome.change_list.push_back(victim.resource);
    }
    // Lemma 4.1: AV members cannot be in any deadlock cycle any more.
    for (lock::TransactionId tid : victim.av) {
      if (tst.Contains(tid)) tst.At(tid).SetCurrentNil();
    }
  }

  if (tracing) {
    tracer->SetContext(
        res_span, victim.junction,
        victim.kind == VictimKind::kReposition ? victim.resource : 0);
  }
  const bool observing = obs::Enabled(options.event_bus);
  if (observing) {
    obs::Event event;
    event.kind = obs::EventKind::kCycleResolved;
    event.tid = victim.junction;
    event.rid = victim.kind == VictimKind::kReposition ? victim.resource : 0;
    event.a = cycle.size();
    event.b = victim.kind == VictimKind::kReposition;
    event.value = victim.cost;
    options.event_bus->Emit(event);
  }

  if (observing || options.collect_post_mortems) {
    // Assemble the forensic record while the evidence is live: cycle
    // members are still blocked (TDR-1 victims release only at Step 3)
    // and the TDR-2 repositioning, if any, is already visible.
    const uint64_t now =
        options.event_bus != nullptr ? options.event_bus->time() : 0;
    CyclePostMortem pm =
        BuildPostMortem(views, candidates, chosen, host, host, now);
    if (observing) {
      obs::Event event;
      event.kind = obs::EventKind::kCyclePostMortem;
      event.tid = pm.junction;
      event.rid = pm.resource;
      event.a = pm.members.size();
      event.b = pm.rule == VictimKind::kReposition;
      event.value = pm.cost;
      // The resolution span's id: the join key from this event's forensic
      // wait chain to the timeline slice that resolved the cycle.
      event.span = res_span;
      event.detail = pm.Summary();
      options.event_bus->Emit(std::move(event));
    }
    outcome.post_mortems.push_back(std::move(pm));
  }
  if (tracing) {
    tracer->Close(res_span, cycle.size(),
                  victim.kind == VictimKind::kReposition,
                  victim.kind == VictimKind::kReposition ? "TDR-2" : "TDR-1");
  }

  // Clear the backtracked ancestors; w stays marked (walk resumes there).
  for (size_t index : cycle_index) {
    if (index != w) tst.EntryAt(index).ancestor = 0;
  }

  VictimDecision decision;
  decision.cycle = std::move(cycle);
  decision.candidates = std::move(candidates);
  decision.chosen = chosen;
  decision.evidence = std::move(evidence);
  decision.applied_version = applied_version;
  outcome.decisions.push_back(std::move(decision));
  outcome.decision_roots.push_back(root);
  ++outcome.cycles;
  return true;
}

}  // namespace

WalkOutcome RunWalk(Tst& tst, const std::vector<lock::TransactionId>& roots,
                    WalkHost& host, CostTable& costs,
                    const DetectorOptions& options) {
  WalkOutcome outcome;
  // The periodic pass passes Transactions() verbatim, so the cursor makes
  // every root lookup O(1); out-of-order roots fall back to binary search.
  size_t cursor = 0;
  for (lock::TransactionId root : roots) {
    size_t r;
    if (cursor < tst.size() && tst.TidAt(cursor) == root) {
      r = cursor++;
    } else {
      r = tst.IndexOf(root);
      if (r >= tst.size()) continue;
      cursor = r + 1;
    }
    tst.EntryAt(r).ancestor = TstEntry::kRoot;
    int64_t v = static_cast<int64_t>(r);
    while (v != TstEntry::kRoot) {
      ++outcome.steps;
      TstEntry& entry = tst.EntryAt(static_cast<size_t>(v));
      if (entry.CurrentIsNil()) {
        // Dead end: everything reachable is resolved; backtrack.
        const int64_t up = entry.ancestor;
        entry.ancestor = 0;
        v = up == TstEntry::kRoot ? TstEntry::kRoot : up - 1;
        continue;
      }
      const TwbgEdge& edge = entry.CurrentEdge();
      if (edge.IsSentinel()) {
        ++entry.current;  // skip the end-of-queue sentinel
        continue;
      }
      const size_t t =
          tst.EdgeTargetIndex(static_cast<size_t>(v), entry.current);
      TWBG_CHECK(t < tst.size());
      TstEntry& next = tst.EntryAt(t);
      if (next.CurrentIsNil()) {
        ++entry.current;  // skip: finished or victim vertex
        continue;
      }
      if (next.ancestor != 0) {
        // Closing edge: edge.to lies on the active path — a cycle.
        if (HandleCycle(static_cast<size_t>(v), t, root, tst, host, costs,
                        options, outcome)) {
          v = static_cast<int64_t>(t);  // resume at the re-entered vertex
        } else {
          ++entry.current;  // skew-inconsistent cycle dropped: skip edge
        }
      } else {
        next.ancestor = v + 1;
        v = static_cast<int64_t>(t);
      }
    }
  }
  return outcome;
}

WalkOutcome RunWalk(Tst& tst, const std::vector<lock::TransactionId>& roots,
                    lock::LockManager& manager, CostTable& costs,
                    const DetectorOptions& options) {
  LockManagerWalkHost host(manager);
  return RunWalk(tst, roots, host, costs, options);
}

ResolutionReport ApplyResolution(WalkOutcome walk, ResolutionHost& host,
                                 CostTable& costs,
                                 const DetectorOptions& options) {
  ResolutionReport report;
  report.cycles_detected = walk.cycles;
  report.decisions = std::move(walk.decisions);
  report.post_mortems = std::move(walk.post_mortems);
  report.steps = walk.steps;
  report.repositioned = walk.change_list;

  std::vector<lock::TransactionId> order = walk.abortion_list;
  switch (options.abort_order) {
    case AbortOrder::kInsertion:
      break;
    case AbortOrder::kReverseInsertion:
      std::reverse(order.begin(), order.end());
      break;
    case AbortOrder::kCostDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](lock::TransactionId a, lock::TransactionId b) {
                         return costs.Get(a) > costs.Get(b);
                       });
      break;
    case AbortOrder::kCostAscending:
      std::stable_sort(order.begin(), order.end(),
                       [&](lock::TransactionId a, lock::TransactionId b) {
                         return costs.Get(a) < costs.Get(b);
                       });
      break;
  }

  std::set<lock::TransactionId> granted_set;
  for (lock::TransactionId tid : order) {
    if (granted_set.count(tid) != 0) {
      // An earlier abort already unblocked this victim — spare it.
      report.spared.push_back(tid);
      continue;
    }
    std::vector<lock::TransactionId> granted = host.ReleaseAll(tid);
    report.aborted.push_back(tid);
    costs.Erase(tid);
    for (lock::TransactionId g : granted) {
      granted_set.insert(g);
      report.granted.push_back(g);
    }
  }
  for (lock::ResourceId rid : walk.change_list) {
    for (lock::TransactionId g : host.Reschedule(rid)) {
      granted_set.insert(g);
      report.granted.push_back(g);
    }
  }
  return report;
}

ResolutionReport ApplyResolution(WalkOutcome walk, lock::LockManager& manager,
                                 CostTable& costs,
                                 const DetectorOptions& options) {
  LockManagerResolutionHost host(manager);
  return ApplyResolution(std::move(walk), host, costs, options);
}

std::string ResolutionReport::ToString() const {
  std::string out = common::Format(
      "cycles=%zu aborted=%zu spared=%zu granted=%zu repositioned=%zu "
      "steps=%zu (n=%zu, e=%zu)\n",
      cycles_detected, aborted.size(), spared.size(), granted.size(),
      repositioned.size(), steps, num_transactions, num_edges);
  if (num_dirty_resources + num_cached_resources > 0) {
    out += common::Format(
        "  graph-cache: dirty=%zu cached=%zu edges-rebuilt=%zu "
        "edges-reused=%zu\n",
        num_dirty_resources, num_cached_resources, edges_rebuilt,
        edges_reused);
  }
  // Only pauseless passes ever reject; omitting the line when 0 keeps
  // quiesced reports byte-identical across engines.
  if (rejected > 0) {
    out += common::Format("  rejected: %zu stale (retried next pass)\n",
                          rejected);
  }
  for (const VictimDecision& d : decisions) {
    out += "  ";
    out += d.ToString();
    out += "\n";
  }
  auto list = [&out](const char* name,
                     const std::vector<lock::TransactionId>& tids) {
    out += common::Format("  %s: {", name);
    std::vector<std::string> parts;
    for (lock::TransactionId tid : tids) {
      parts.push_back(common::Format("T%u", tid));
    }
    out += common::Join(parts, ", ");
    out += "}\n";
  };
  list("abortion-list", aborted);
  list("spared", spared);
  list("grant-list", granted);
  return out;
}

}  // namespace twbg::core
