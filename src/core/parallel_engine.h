// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Component-parallel Step 2: partition the flat TST into weakly-connected
// components and run the directed walk per component on a worker pool.
//
// Why this is exact (byte-identical to the sequential walk): a walk
// starting at root r only ever follows TST edges, so it never leaves r's
// weak component — every vertex visited, every ancestor/current mutated,
// every cycle found and every cost read or bumped (cycle members, TDR-2
// ST/AV members — all appear on a cycle resource, hence in-component)
// belongs to r's component.  Components therefore share no walk state,
// and running them concurrently over one shared Tst is race-free.  The
// sequential pass processes roots in ascending tid order, so its decision
// stream is the per-component decision streams merged by ascending root
// id — which is exactly how Merge() reassembles the outcome, making
// decisions, abortion list, change list, costs and emitted events
// byte-identical to RunWalk over the same state.
//
// In-walk mutations that would race are deferred: TDR-2 repositions the
// ResourceState directly (its version self-stamps, keeping derived caches
// correct) while the mutation journal append and the kUprReposition /
// kCycleResolved / kCyclePostMortem events are recorded per component and
// replayed — in merged decision order — during the serial merge.

#ifndef TWBG_CORE_PARALLEL_ENGINE_H_
#define TWBG_CORE_PARALLEL_ENGINE_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/detection_engine.h"

namespace twbg::core {

/// Weakly-connected-component partition of a TST's dense vertices.
struct TstPartition {
  /// Dense vertex indices per component, each ascending.  Components are
  /// ordered by their smallest member (the "component root"), which makes
  /// the partition — and everything derived from it — deterministic.
  std::vector<std::vector<size_t>> components;
  /// Component index of every dense vertex.
  std::vector<size_t> component_of;
};

/// Partitions `tst` into weakly-connected components (union-find over the
/// precomputed edge targets; sentinels and out-of-table targets ignored).
TstPartition PartitionTst(const Tst& tst);

/// Lock-state host for the component-parallel walk.  FindResource and
/// FindWaitInfo must be safe for concurrent readers (the pass holds all
/// shard locks, so plain lookups qualify).  ApplyTdr2Direct must mutate
/// the resource WITHOUT journaling or event emission — both are deferred
/// into the serial merge phase, which calls NoteTdr2Applied once per
/// repositioning decision in merged order.
class ParallelWalkHost : public ResourceLookup, public WaitInfoLookup {
 public:
  /// Applies the TDR-2 repositioning on `rid` at `junction`, mutating the
  /// resource state only (no journal, no events).  Called from worker
  /// threads, but only ever for resources of the calling component.
  virtual Status ApplyTdr2Direct(lock::ResourceId rid,
                                 lock::TransactionId junction) = 0;
  /// Serial deferred journaling of one applied TDR-2 (merge phase).
  virtual void NoteTdr2Applied(lock::ResourceId rid) = 0;
};

/// Runs the Step 2 walk component-parallel over `pool` (nullptr or a
/// single-component TST degrade to a serial loop through the identical
/// code path) and returns the merged outcome.  Equivalent to
/// RunWalk(tst, tst.Transactions(), ...) — same decisions, same order,
/// same events on `options.event_bus`, same cost-table mutations.
/// `num_components`, when non-null, receives the partition size.
WalkOutcome RunWalkComponentParallel(Tst& tst, ParallelWalkHost& host,
                                     CostTable& costs,
                                     const DetectorOptions& options,
                                     common::ThreadPool* pool,
                                     size_t* num_components = nullptr);

}  // namespace twbg::core

#endif  // TWBG_CORE_PARALLEL_ENGINE_H_
