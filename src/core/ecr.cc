// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/ecr.h"

#include <algorithm>

#include "common/string_util.h"

namespace twbg::core {

using lock::Compatible;
using lock::HolderEntry;
using lock::LockMode;
using lock::QueueEntry;
using lock::ResourceState;

std::string TwbgEdge::ToString() const {
  const char* label = IsH() ? "H" : "W";
  if (IsSentinel()) {
    return common::Format("T%u -%s(R%u)-> (end)", from, label, rid);
  }
  return common::Format("T%u -%s(R%u)-> T%u", from, label, rid, to);
}

namespace {

// ECR-1: H-labeled edges among holder-list entries of one resource.
void BuildEcr1(const ResourceState& state, std::vector<TwbgEdge>& edges) {
  const auto& holders = state.holders();
  for (size_t i = 0; i < holders.size(); ++i) {
    for (size_t j = i + 1; j < holders.size(); ++j) {
      const HolderEntry& hi = holders[i];
      const HolderEntry& hj = holders[j];
      // Tj (later) waits for Ti (earlier) when Ti's granted or pending
      // mode conflicts with Tj's pending mode.
      if (!Compatible(hi.granted, hj.blocked) ||
          !Compatible(hi.blocked, hj.blocked)) {
        edges.push_back(TwbgEdge{hi.tid, hj.tid, LockMode::kNL, state.rid()});
      }
      // Ti (earlier) waits for Tj (later) only through Tj's granted mode.
      if (!Compatible(hj.granted, hi.blocked)) {
        edges.push_back(TwbgEdge{hj.tid, hi.tid, LockMode::kNL, state.rid()});
      }
    }
  }
}

// ECR-2: each holder -> first conflicting queue member.
void BuildEcr2(const ResourceState& state, std::vector<TwbgEdge>& edges) {
  for (const HolderEntry& h : state.holders()) {
    for (const QueueEntry& q : state.queue()) {
      if (!Compatible(q.blocked, h.granted) ||
          !Compatible(q.blocked, h.blocked)) {
        edges.push_back(TwbgEdge{h.tid, q.tid, LockMode::kNL, state.rid()});
        break;  // only the first such member
      }
    }
  }
}

// ECR-3: W-labeled edges along the queue, optionally with the sentinel
// edge (bm, 0) for the last member.
void BuildEcr3(const ResourceState& state, bool include_sentinels,
               std::vector<TwbgEdge>& edges) {
  const auto& queue = state.queue();
  for (size_t i = 0; i < queue.size(); ++i) {
    const bool last = (i + 1 == queue.size());
    if (last && !include_sentinels) break;
    const lock::TransactionId to =
        last ? lock::kInvalidTransaction : queue[i + 1].tid;
    edges.push_back(TwbgEdge{queue[i].tid, to, queue[i].blocked, state.rid()});
  }
}

}  // namespace

void AppendEcrEdgesForResource(const lock::ResourceState& state,
                               bool include_sentinels,
                               std::vector<TwbgEdge>& edges) {
  // Every ECR-2/3 edge has a distinct source (holder or queue member);
  // ECR-1 typically adds far fewer than its h^2 bound.  Reserving one
  // slot per participant avoids most growth reallocations; doubling when
  // we do grow keeps repeated per-resource appends amortized-linear
  // (plain reserve(size + k) in a loop would realloc every call).
  const size_t want =
      edges.size() + state.holders().size() + state.queue().size();
  if (want > edges.capacity()) {
    edges.reserve(std::max(want, edges.capacity() * 2));
  }
  BuildEcr1(state, edges);
  BuildEcr2(state, edges);
  BuildEcr3(state, include_sentinels, edges);
}

std::vector<TwbgEdge> BuildEcrEdges(const lock::LockTable& table,
                                    bool include_sentinels) {
  std::vector<TwbgEdge> edges;
  size_t participants = 0;
  for (const auto& [rid, state] : table) {
    participants += state.holders().size() + state.queue().size();
  }
  edges.reserve(participants);
  for (const auto& [rid, state] : table) {
    AppendEcrEdgesForResource(state, include_sentinels, edges);
  }
  return edges;
}

}  // namespace twbg::core
