// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/tst.h"

#include <algorithm>

#include "common/string_util.h"

namespace twbg::core {

Tst::Tst(const Tst& other)
    : tids_(other.tids_),
      entries_(other.entries_),
      edges_(other.edges_),
      edge_targets_(other.edge_targets_),
      offsets_(other.offsets_),
      fill_(other.fill_) {
  RepointSpans();
}

Tst& Tst::operator=(const Tst& other) {
  if (this == &other) return *this;
  tids_ = other.tids_;
  entries_ = other.entries_;
  edges_ = other.edges_;
  edge_targets_ = other.edge_targets_;
  offsets_ = other.offsets_;
  fill_ = other.fill_;
  RepointSpans();
  return *this;
}

void Tst::RepointSpans() {
  // Groups are laid out contiguously in tids_ order and cover all of
  // edges_, so the copied span sizes determine the offsets.
  size_t offset = 0;
  for (TstEntry& entry : entries_) {
    entry.waited = std::span<const TwbgEdge>(edges_.data() + offset,
                                             entry.waited.size());
    offset += entry.waited.size();
  }
}

Tst Tst::Build(const lock::LockTable& table) {
  std::vector<lock::TransactionId> txns;
  for (const auto& [rid, state] : table) {
    for (const lock::HolderEntry& h : state.holders()) txns.push_back(h.tid);
    for (const lock::QueueEntry& q : state.queue()) txns.push_back(q.tid);
  }
  return FromEdges(BuildEcrEdges(table, /*include_sentinels=*/true), txns);
}

Tst Tst::FromEdges(const std::vector<TwbgEdge>& edges,
                   const std::vector<lock::TransactionId>& txns) {
  Tst tst;
  tst.Assemble(edges, txns);
  return tst;
}

void Tst::Assemble(const std::vector<TwbgEdge>& edges,
                   const std::vector<lock::TransactionId>& txns) {
  tids_.clear();
  tids_.reserve(txns.size());
  tids_.insert(tids_.end(), txns.begin(), txns.end());
  for (const TwbgEdge& e : edges) tids_.push_back(e.from);
  std::sort(tids_.begin(), tids_.end());
  tids_.erase(std::unique(tids_.begin(), tids_.end()), tids_.end());

  const size_t n = tids_.size();
  entries_.assign(n, TstEntry{});

  // Counting sort of the edges into per-vertex groups.
  offsets_.assign(n + 1, 0);
  for (const TwbgEdge& e : edges) ++offsets_[IndexOf(e.from) + 1];
  for (size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  edges_.resize(edges.size());
  fill_.assign(offsets_.begin(), offsets_.end() - 1);

  // W edges first (each queue member has exactly one, so "first" is
  // well-defined), then H edges in construction order.
  for (const TwbgEdge& e : edges) {
    if (!e.IsW()) continue;
    const size_t i = IndexOf(e.from);
    TWBG_CHECK(fill_[i] == offsets_[i]);  // at most one W edge per vertex
    edges_[fill_[i]++] = e;
    entries_[i].pr = e.rid;
  }
  for (const TwbgEdge& e : edges) {
    if (e.IsH()) edges_[fill_[IndexOf(e.from)]++] = e;
  }

  for (size_t i = 0; i < n; ++i) {
    entries_[i].waited = std::span<const TwbgEdge>(
        edges_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  edge_targets_.resize(edges_.size());
  for (size_t j = 0; j < edges_.size(); ++j) {
    edge_targets_[j] =
        edges_[j].IsSentinel() ? kNoVertex : IndexOf(edges_[j].to);
  }
}

size_t Tst::IndexOf(lock::TransactionId tid) const {
  auto it = std::lower_bound(tids_.begin(), tids_.end(), tid);
  if (it == tids_.end() || *it != tid) return tids_.size();
  return static_cast<size_t>(it - tids_.begin());
}

TstEntry& Tst::At(lock::TransactionId tid) {
  const size_t i = IndexOf(tid);
  TWBG_CHECK(i < entries_.size());
  return entries_[i];
}

const TstEntry& Tst::At(lock::TransactionId tid) const {
  const size_t i = IndexOf(tid);
  TWBG_CHECK(i < entries_.size());
  return entries_[i];
}

bool Tst::Contains(lock::TransactionId tid) const {
  return IndexOf(tid) < tids_.size();
}

std::string Tst::ToString() const {
  std::string out;
  for (size_t i = 0; i < tids_.size(); ++i) {
    const TstEntry& entry = entries_[i];
    out += common::Format("T%u: pr=", tids_[i]);
    out += entry.pr.has_value() ? common::Format("R%u", *entry.pr) : "-";
    out += " waited=[";
    std::vector<std::string> parts;
    for (const TwbgEdge& e : entry.waited) {
      if (e.IsSentinel()) {
        parts.push_back(common::Format(
            "(%s, end)", std::string(lock::ToString(e.lock)).c_str()));
      } else {
        parts.push_back(common::Format(
            "(%s, T%u)", std::string(lock::ToString(e.lock)).c_str(), e.to));
      }
    }
    out += common::Join(parts, " ");
    out += "]\n";
  }
  return out;
}

}  // namespace twbg::core
