// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/tst.h"

#include "common/string_util.h"

namespace twbg::core {

Tst Tst::Build(const lock::LockTable& table) {
  std::vector<lock::TransactionId> txns;
  for (const auto& [rid, state] : table) {
    for (const lock::HolderEntry& h : state.holders()) txns.push_back(h.tid);
    for (const lock::QueueEntry& q : state.queue()) txns.push_back(q.tid);
  }
  return FromEdges(BuildEcrEdges(table, /*include_sentinels=*/true), txns);
}

Tst Tst::FromEdges(const std::vector<TwbgEdge>& edges,
                   const std::vector<lock::TransactionId>& txns) {
  Tst tst;
  for (lock::TransactionId tid : txns) tst.entries_[tid];
  // W edges first (each queue member has exactly one, so "first" is
  // well-defined), then H edges in construction order.
  for (const TwbgEdge& e : edges) {
    if (e.IsW()) {
      TstEntry& entry = tst.entries_[e.from];
      TWBG_CHECK(entry.waited.empty());  // at most one W edge per vertex
      entry.waited.push_back(e);
      entry.pr = e.rid;
    }
  }
  for (const TwbgEdge& e : edges) {
    if (e.IsH()) tst.entries_[e.from].waited.push_back(e);
  }
  return tst;
}

TstEntry& Tst::At(lock::TransactionId tid) {
  auto it = entries_.find(tid);
  TWBG_CHECK(it != entries_.end());
  return it->second;
}

const TstEntry& Tst::At(lock::TransactionId tid) const {
  auto it = entries_.find(tid);
  TWBG_CHECK(it != entries_.end());
  return it->second;
}

bool Tst::Contains(lock::TransactionId tid) const {
  return entries_.find(tid) != entries_.end();
}

std::vector<lock::TransactionId> Tst::Transactions() const {
  std::vector<lock::TransactionId> out;
  out.reserve(entries_.size());
  for (const auto& [tid, entry] : entries_) out.push_back(tid);
  return out;
}

size_t Tst::NumEdges() const {
  size_t n = 0;
  for (const auto& [tid, entry] : entries_) n += entry.waited.size();
  return n;
}

std::string Tst::ToString() const {
  std::string out;
  for (const auto& [tid, entry] : entries_) {
    out += common::Format("T%u: pr=", tid);
    out += entry.pr.has_value() ? common::Format("R%u", *entry.pr) : "-";
    out += " waited=[";
    std::vector<std::string> parts;
    for (const TwbgEdge& e : entry.waited) {
      if (e.IsSentinel()) {
        parts.push_back(common::Format(
            "(%s, end)", std::string(lock::ToString(e.lock)).c_str()));
      } else {
        parts.push_back(common::Format(
            "(%s, T%u)", std::string(lock::ToString(e.lock)).c_str(), e.to));
      }
    }
    out += common::Join(parts, " ");
    out += "]\n";
  }
  return out;
}

}  // namespace twbg::core
