// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/mds.h"

#include <algorithm>

#include "core/twbg.h"

namespace twbg::core {

std::set<lock::TransactionId> ShrinkToMinimal(
    const lock::LockTable& table, std::set<lock::TransactionId> set) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (lock::TransactionId member :
         std::vector<lock::TransactionId>(set.begin(), set.end())) {
      std::set<lock::TransactionId> candidate = set;
      candidate.erase(member);
      if (IsDeadlockSet(table, candidate)) {
        set = std::move(candidate);
        changed = true;
      }
    }
  }
  return set;
}

std::vector<std::set<lock::TransactionId>> FindMinimalDeadlockSets(
    const lock::LockTable& table, size_t max_cycles) {
  HwTwbg graph = HwTwbg::Build(table);
  std::vector<std::set<lock::TransactionId>> minimal;
  for (const auto& cycle : graph.ElementaryCycles(max_cycles)) {
    std::set<lock::TransactionId> shrunk =
        ShrinkToMinimal(table, {cycle.begin(), cycle.end()});
    if (std::find(minimal.begin(), minimal.end(), shrunk) == minimal.end()) {
      minimal.push_back(std::move(shrunk));
    }
  }
  std::sort(minimal.begin(), minimal.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return minimal;
}

bool IsDeadlockSet(const lock::LockTable& table,
                   const std::set<lock::TransactionId>& candidate) {
  if (candidate.empty()) return false;
  lock::LockTable copy = table;
  // Force-complete everything outside the candidate, repeatedly (releases
  // can cascade grants to outsiders that then also complete).
  for (;;) {
    std::vector<lock::TransactionId> outsiders;
    for (const auto& [rid, state] : copy) {
      for (const lock::HolderEntry& h : state.holders()) {
        if (candidate.count(h.tid) == 0) outsiders.push_back(h.tid);
      }
      for (const lock::QueueEntry& q : state.queue()) {
        if (candidate.count(q.tid) == 0) outsiders.push_back(q.tid);
      }
    }
    if (outsiders.empty()) break;
    for (lock::TransactionId tid : outsiders) {
      std::vector<lock::ResourceId> rids;
      for (const auto& [rid, state] : copy) {
        if (state.Involves(tid)) rids.push_back(rid);
      }
      for (lock::ResourceId rid : rids) {
        copy.FindMutable(rid)->Remove(tid);
        copy.EraseIfFree(rid);
      }
    }
  }
  // Deadlock set: every member still blocked.
  for (lock::TransactionId tid : candidate) {
    bool blocked = false;
    bool present = false;
    for (const auto& [rid, state] : copy) {
      if (state.Involves(tid)) present = true;
      if (state.IsBlockedHere(tid)) blocked = true;
    }
    if (!present || !blocked) return false;
  }
  return true;
}

}  // namespace twbg::core
