// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Per-transaction abort costs used by victim selection (§5).  The paper
// leaves the metric open ("number of locks it holds, starting time, CPU
// and I/O time consumed, ...") and assumes a cost-table Cost(Ti); this is
// that table.  The simulator wires lock counts / work done into it.

#ifndef TWBG_CORE_COST_TABLE_H_
#define TWBG_CORE_COST_TABLE_H_

#include <map>

#include "lock/types.h"

namespace twbg::core {

/// Maps transactions to abort costs.  Unknown transactions default to 1.
class CostTable {
 public:
  CostTable() = default;

  /// Cost of aborting `tid` (default 1.0 when unset).
  double Get(lock::TransactionId tid) const;

  void Set(lock::TransactionId tid, double cost);

  /// cost := cost * multiplier + increment.  Used on ST members after a
  /// TDR-2 repositioning so repeatedly delayed transactions become
  /// expensive to delay again (livelock avoidance, §5 Step 2).
  void Bump(lock::TransactionId tid, double multiplier, double increment);

  /// Forgets `tid` (on commit/abort).
  void Erase(lock::TransactionId tid);

  size_t size() const { return costs_.size(); }

  /// Ordered view of every explicitly set entry.  The component-parallel
  /// walk hands each component a private copy and merges the entries of
  /// that component's members back through this view.
  const std::map<lock::TransactionId, double>& entries() const {
    return costs_;
  }

 private:
  std::map<lock::TransactionId, double> costs_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_COST_TABLE_H_
