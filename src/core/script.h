// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// A tiny textual command language for driving a lock manager and the
// periodic detector — reproducible deadlock scenarios as plain text files,
// used by the interactive example (examples/deadlock_repl) and by tests.
//
// Commands, one per line ('#' starts a comment):
//
//   acquire <txn> <resource> <mode>   issue a lock request (mode: IS, IX,
//                                     S, SIX, X)
//   release <txn>                     commit/abort: release everything
//   cost <txn> <value>                set the abort cost
//   detect                            one periodic detection-resolution
//                                     pass
//   table | graph | tst | dot | cycles | oracle | costs
//                                     print the respective view
//   expect granted|blocked|alreadyheld
//                                     assert the outcome of the last
//                                     acquire
//   expect-deadlock yes|no            assert cycle existence
//   expect-aborted <txn> [...]        assert the last detect's abortees
//   obs                               print the observability report
//                                     (event counts + latency histograms)
//   postmortem                        print the forensic post-mortem of
//                                     every cycle the last detect resolved
//   reset                             fresh lock manager and cost table

#ifndef TWBG_CORE_SCRIPT_H_
#define TWBG_CORE_SCRIPT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/cost_table.h"
#include "core/detector.h"
#include "core/periodic_detector.h"
#include "lock/lock_manager.h"
#include "obs/observer.h"
#include "obs/sinks.h"

namespace twbg::core {

/// Options for a script run.
struct ScriptOptions {
  DetectorOptions detector;
  /// Echo each command before its output.
  bool echo = false;
};

/// Stateful interpreter.  Not thread-safe.
class ScriptRunner {
 public:
  explicit ScriptRunner(ScriptOptions options = {});

  // The bus and its subscribed sinks are wired by address; moving or
  // copying the runner would leave them pointing into the old object.
  ScriptRunner(const ScriptRunner&) = delete;
  ScriptRunner& operator=(const ScriptRunner&) = delete;

  /// Executes one line, appending any output to `*out`.  Unknown commands
  /// and failed expectations return errors; the state is left as-is.
  Status ExecuteLine(std::string_view line, std::string* out);

  /// Executes a whole script, stopping at the first error (reported with
  /// its 1-based line number).
  Status ExecuteScript(std::string_view text, std::string* out);

  lock::LockManager& manager() { return manager_; }
  CostTable& costs() { return costs_; }

  /// Report of the most recent `detect`, if any.
  const std::optional<ResolutionReport>& last_report() const {
    return last_report_;
  }

  /// The runner's event bus — every lock-manager and detector event of
  /// every executed command flows through it.  Subscribe additional sinks
  /// before running commands; the built-in LatencyObserver is always
  /// subscribed.
  obs::EventBus& event_bus() { return bus_; }

  /// Aggregates over everything executed so far (the `obs` command prints
  /// this; `reset` does not clear it).
  const obs::LatencyObserver& observer() const { return observer_; }

  /// Streams every subsequent event as one JSON line to `path`
  /// (truncates; replaces any previous stream target).
  Status StreamEventsTo(const std::string& path);

 private:
  Status DoAcquire(const std::vector<std::string>& args, std::string* out);
  Status DoExpect(const std::vector<std::string>& args);
  Status DoExpectAborted(const std::vector<std::string>& args);

  // bus_ must precede options_/detector_: the constructor points
  // options_.detector.event_bus at it before detector_ is built.
  obs::EventBus bus_;
  obs::LatencyObserver observer_;
  std::unique_ptr<obs::JsonlSink> jsonl_;
  ScriptOptions options_;
  lock::LockManager manager_;
  CostTable costs_;
  PeriodicDetector detector_;
  std::optional<lock::RequestOutcome> last_outcome_;
  std::optional<ResolutionReport> last_report_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_SCRIPT_H_
