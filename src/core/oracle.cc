// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/oracle.h"

#include <algorithm>
#include <map>
#include <set>

namespace twbg::core {

OracleResult AnalyzeByReduction(const lock::LockTable& table,
                                common::Rng* rng) {
  lock::LockTable copy = table;

  // Gather every transaction and its blocked state.
  std::set<lock::TransactionId> all;
  std::set<lock::TransactionId> blocked;
  for (const auto& [rid, state] : copy) {
    for (const lock::HolderEntry& h : state.holders()) {
      all.insert(h.tid);
      if (h.IsBlocked()) blocked.insert(h.tid);
    }
    for (const lock::QueueEntry& q : state.queue()) {
      all.insert(q.tid);
      blocked.insert(q.tid);
    }
  }

  std::vector<lock::TransactionId> runnable;
  for (lock::TransactionId tid : all) {
    if (blocked.count(tid) == 0) runnable.push_back(tid);
  }
  if (rng != nullptr) rng->Shuffle(runnable);

  std::set<lock::TransactionId> retired;
  while (!runnable.empty()) {
    lock::TransactionId tid = runnable.back();
    runnable.pop_back();
    if (!retired.insert(tid).second) continue;
    // Complete `tid`: release all of its locks everywhere.
    std::vector<lock::TransactionId> granted;
    std::vector<lock::ResourceId> rids;
    for (const auto& [rid, state] : copy) {
      if (state.Involves(tid)) rids.push_back(rid);
    }
    for (lock::ResourceId rid : rids) {
      lock::ResourceState* state = copy.FindMutable(rid);
      std::vector<lock::TransactionId> g = state->Remove(tid);
      granted.insert(granted.end(), g.begin(), g.end());
      copy.EraseIfFree(rid);
    }
    for (lock::TransactionId g : granted) {
      // A granted transaction may still be blocked elsewhere?  No: a
      // transaction waits on at most one resource (Axiom 1), so a grant
      // makes it runnable.
      blocked.erase(g);
      runnable.push_back(g);
    }
    if (rng != nullptr && !runnable.empty()) rng->Shuffle(runnable);
  }

  OracleResult result;
  for (lock::TransactionId tid : blocked) {
    if (retired.count(tid) == 0) result.stuck.push_back(tid);
  }
  std::sort(result.stuck.begin(), result.stuck.end());
  result.deadlocked = !result.stuck.empty();
  return result;
}

}  // namespace twbg::core
