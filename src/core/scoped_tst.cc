// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/scoped_tst.h"

#include <map>
#include <set>
#include <vector>

namespace twbg::core {

ScopedTst BuildReachableTst(const lock::LockManager& manager,
                            lock::TransactionId root) {
  ScopedTst result;
  if (manager.Info(root) == nullptr) return result;

  // Phase 1: expand the reachable region.  Out-edges of a transaction all
  // come from resources it touches; process each resource once.
  std::map<lock::ResourceId, std::vector<TwbgEdge>> edges_by_resource;
  std::map<lock::TransactionId, std::vector<lock::TransactionId>> successors;
  std::set<lock::TransactionId> discovered{root};
  std::vector<lock::TransactionId> frontier{root};
  while (!frontier.empty()) {
    lock::TransactionId tid = frontier.back();
    frontier.pop_back();
    const lock::TxnLockInfo* info = manager.Info(tid);
    if (info == nullptr) continue;
    for (lock::ResourceId rid : info->touched) {
      if (edges_by_resource.count(rid) != 0) continue;
      const lock::ResourceState* state = manager.table().Find(rid);
      if (state == nullptr) continue;
      std::vector<TwbgEdge>& edges = edges_by_resource[rid];
      AppendEcrEdgesForResource(*state, /*include_sentinels=*/true, edges);
      for (const TwbgEdge& e : edges) {
        if (!e.IsSentinel()) successors[e.from].push_back(e.to);
      }
    }
    auto it = successors.find(tid);
    if (it == successors.end()) continue;
    for (lock::TransactionId next : it->second) {
      if (discovered.insert(next).second) frontier.push_back(next);
    }
  }
  result.resources_expanded = edges_by_resource.size();

  // Phase 2: assemble deterministically — ascending resource order, every
  // transaction appearing on an expanded resource gets an entry (targets
  // of skip-checked edges must resolve).
  std::vector<TwbgEdge> ordered;
  std::vector<lock::TransactionId> txns;
  for (const auto& [rid, edges] : edges_by_resource) {
    ordered.insert(ordered.end(), edges.begin(), edges.end());
    const lock::ResourceState* state = manager.table().Find(rid);
    for (const lock::HolderEntry& h : state->holders()) txns.push_back(h.tid);
    for (const lock::QueueEntry& q : state->queue()) txns.push_back(q.tid);
  }
  txns.push_back(root);
  result.tst = Tst::FromEdges(ordered, txns);
  return result;
}

}  // namespace twbg::core
