// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The paper's contribution: the periodic deadlock detection and resolution
// algorithm (§5).  Each pass executes:
//
//   Step 1  build the TST: W edges mirror the live queues; H edges are
//           materialized by ECR 1-2; ancestor/current initialized.
//   Step 2  a directed walk from every transaction resolves each detected
//           cycle on the spot by the cheapest TDR candidate (abort, or
//           TDR-2 queue repositioning that aborts nobody).
//   Step 3  abortion-list / change-list reconciliation: victims already
//           unblocked by earlier aborts are spared; victims' locks are
//           released; repositioned queues are rescheduled; the grant list
//           is produced.
//
// Complexity: O(n + e) space and O(n + e * (c' + 1)) time, where c' (the
// cycles actually searched) is bounded by both the number of elementary
// cycles and n.

#ifndef TWBG_CORE_PERIODIC_DETECTOR_H_
#define TWBG_CORE_PERIODIC_DETECTOR_H_

#include "core/cost_table.h"
#include "core/detection_engine.h"
#include "core/detector.h"
#include "core/graph_builder.h"
#include "lock/lock_manager.h"

namespace twbg::core {

/// Owns its options plus the incremental graph cache that carries the TST
/// across passes (with options.incremental_build off, each pass rebuilds
/// from scratch and the detector is stateless again).  Costs live in the
/// caller-provided CostTable so they persist across passes (TDR-2 bumps
/// must be remembered).
class PeriodicDetector {
 public:
  explicit PeriodicDetector(DetectorOptions options = {})
      : options_(options) {}

  /// Runs one full detection-resolution pass over `manager`, resolving
  /// every deadlock.  Victims in the report's `aborted` list have had all
  /// their locks released; the caller terminates/restarts them.
  ResolutionReport RunPass(lock::LockManager& manager, CostTable& costs);

  const DetectorOptions& options() const { return options_; }

 private:
  DetectorOptions options_;
  GraphBuilder builder_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_PERIODIC_DETECTOR_H_
