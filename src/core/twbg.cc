// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/twbg.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "graph/digraph.h"
#include "graph/johnson.h"

namespace twbg::core {

std::string Trrp::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(nodes.size());
  for (lock::TransactionId tid : nodes) {
    parts.push_back(common::Format("T%u", tid));
  }
  return common::Format("(%s) on R%u", common::Join(parts, ", ").c_str(),
                        rid);
}

HwTwbg HwTwbg::Build(const lock::LockTable& table) {
  HwTwbg graph;
  graph.edges_ = BuildEcrEdges(table, /*include_sentinels=*/false);
  std::set<lock::TransactionId> nodes;
  for (const auto& [rid, state] : table) {
    for (const lock::HolderEntry& h : state.holders()) nodes.insert(h.tid);
    for (const lock::QueueEntry& q : state.queue()) nodes.insert(q.tid);
  }
  graph.nodes_.assign(nodes.begin(), nodes.end());
  uint32_t index = 0;
  for (lock::TransactionId tid : graph.nodes_) graph.dense_[tid] = index++;
  return graph;
}

std::vector<TwbgEdge> HwTwbg::OutEdges(lock::TransactionId tid) const {
  std::vector<TwbgEdge> out;
  for (const TwbgEdge& e : edges_) {
    if (e.from == tid) out.push_back(e);
  }
  return out;
}

namespace {

graph::Digraph ToDigraph(const std::vector<TwbgEdge>& edges,
                         const std::map<lock::TransactionId, uint32_t>& dense,
                         size_t num_nodes) {
  graph::Digraph dg(num_nodes);
  for (const TwbgEdge& e : edges) {
    dg.AddEdge(dense.at(e.from), dense.at(e.to));
  }
  return dg;
}

}  // namespace

bool HwTwbg::HasCycle() const {
  return ToDigraph(edges_, dense_, nodes_.size()).HasCycle();
}

std::vector<std::vector<lock::TransactionId>> HwTwbg::ElementaryCycles(
    size_t max_cycles) const {
  graph::Digraph dg = ToDigraph(edges_, dense_, nodes_.size());
  std::vector<std::vector<lock::TransactionId>> out;
  for (const auto& circuit : graph::ElementaryCircuits(dg, max_cycles)) {
    std::vector<lock::TransactionId> cycle;
    cycle.reserve(circuit.size());
    for (graph::NodeId node : circuit) cycle.push_back(nodes_[node]);
    out.push_back(std::move(cycle));
  }
  return out;
}

const TwbgEdge* HwTwbg::FindEdge(lock::TransactionId from,
                                 lock::TransactionId to) const {
  for (const TwbgEdge& e : edges_) {
    if (e.from == from && e.to == to) return &e;
  }
  return nullptr;
}

Result<std::vector<Trrp>> HwTwbg::DecomposeCycle(
    const std::vector<lock::TransactionId>& cycle) const {
  if (cycle.size() < 2) {
    return Status::InvalidArgument("a cycle has at least two vertices");
  }
  const size_t n = cycle.size();
  // Validate edges and find the first H-edge tail to rotate to.
  std::vector<const TwbgEdge*> cycle_edges(n);
  size_t first_h = n;
  for (size_t i = 0; i < n; ++i) {
    const TwbgEdge* e = FindEdge(cycle[i], cycle[(i + 1) % n]);
    if (e == nullptr) {
      return Status::InvalidArgument(common::Format(
          "no edge T%u -> T%u in the graph", cycle[i], cycle[(i + 1) % n]));
    }
    cycle_edges[i] = e;
    if (e->IsH() && first_h == n) first_h = i;
  }
  if (first_h == n) {
    return Status::Internal("all-W cycle: contradicts Lemma 1");
  }
  // Walk from the first H edge, cutting a new TRRP at each H edge.
  std::vector<Trrp> trrps;
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (first_h + step) % n;
    const TwbgEdge* e = cycle_edges[i];
    if (e->IsH()) {
      Trrp trrp;
      trrp.rid = e->rid;
      trrp.nodes.push_back(e->from);
      trrps.push_back(std::move(trrp));
    }
    trrps.back().nodes.push_back(e->to);
  }
  return trrps;
}

std::string HwTwbg::ToDot() const {
  std::string out = "digraph hwtwbg {\n  rankdir=LR;\n";
  for (lock::TransactionId tid : nodes_) {
    out += common::Format("  T%u;\n", tid);
  }
  for (const TwbgEdge& e : edges_) {
    out += common::Format("  T%u -> T%u [label=\"%s R%u\"%s];\n", e.from,
                          e.to, e.IsH() ? "H" : "W", e.rid,
                          e.IsH() ? "" : ", style=dashed");
  }
  out += "}\n";
  return out;
}

std::string HwTwbg::ToString() const {
  std::string out;
  for (const TwbgEdge& e : edges_) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace twbg::core
