// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/twbg.h"

#include <algorithm>

#include "common/string_util.h"
#include "graph/digraph.h"
#include "graph/johnson.h"

namespace twbg::core {

std::string Trrp::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(nodes.size());
  for (lock::TransactionId tid : nodes) {
    parts.push_back(common::Format("T%u", tid));
  }
  return common::Format("(%s) on R%u", common::Join(parts, ", ").c_str(),
                        rid);
}

HwTwbg HwTwbg::Build(const lock::LockTable& table) {
  HwTwbg graph;
  graph.edges_ = BuildEcrEdges(table, /*include_sentinels=*/false);
  for (const auto& [rid, state] : table) {
    for (const lock::HolderEntry& h : state.holders()) {
      graph.nodes_.push_back(h.tid);
    }
    for (const lock::QueueEntry& q : state.queue()) {
      graph.nodes_.push_back(q.tid);
    }
  }
  graph.BuildIndex();
  return graph;
}

HwTwbg HwTwbg::FromParts(std::vector<TwbgEdge> edges,
                         std::vector<lock::TransactionId> nodes) {
  HwTwbg graph;
  graph.edges_ = std::move(edges);
  graph.nodes_ = std::move(nodes);
  graph.BuildIndex();
  return graph;
}

void HwTwbg::BuildIndex() {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  const size_t n = nodes_.size();
  // Counting sort of edge indices by source vertex; stable, so each
  // node's slice preserves construction order.
  offsets_.assign(n + 1, 0);
  for (const TwbgEdge& e : edges_) ++offsets_[DenseIndex(e.from) + 1];
  for (size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  edge_index_.resize(edges_.size());
  std::vector<uint32_t> fill(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    edge_index_[fill[DenseIndex(edges_[i].from)]++] = i;
  }
}

size_t HwTwbg::DenseIndex(lock::TransactionId tid) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), tid);
  if (it == nodes_.end() || *it != tid) return nodes_.size();
  return static_cast<size_t>(it - nodes_.begin());
}

std::vector<TwbgEdge> HwTwbg::OutEdges(lock::TransactionId tid) const {
  std::vector<TwbgEdge> out;
  const size_t dense = DenseIndex(tid);
  if (dense == nodes_.size()) return out;
  const auto slice = OutEdgeIndices(dense);
  out.reserve(slice.size());
  for (uint32_t index : slice) out.push_back(edges_[index]);
  return out;
}

namespace {

graph::Digraph ToDigraph(const HwTwbg& hw) {
  graph::Digraph dg(hw.nodes().size());
  for (const TwbgEdge& e : hw.edges()) {
    dg.AddEdge(static_cast<graph::NodeId>(hw.DenseIndex(e.from)),
               static_cast<graph::NodeId>(hw.DenseIndex(e.to)));
  }
  return dg;
}

}  // namespace

bool HwTwbg::HasCycle() const { return ToDigraph(*this).HasCycle(); }

std::vector<std::vector<lock::TransactionId>> HwTwbg::ElementaryCycles(
    size_t max_cycles) const {
  graph::Digraph dg = ToDigraph(*this);
  std::vector<std::vector<lock::TransactionId>> out;
  for (const auto& circuit : graph::ElementaryCircuits(dg, max_cycles)) {
    std::vector<lock::TransactionId> cycle;
    cycle.reserve(circuit.size());
    for (graph::NodeId node : circuit) cycle.push_back(nodes_[node]);
    out.push_back(std::move(cycle));
  }
  return out;
}

const TwbgEdge* HwTwbg::FindEdge(lock::TransactionId from,
                                 lock::TransactionId to) const {
  const size_t dense = DenseIndex(from);
  if (dense == nodes_.size()) return nullptr;
  for (uint32_t index : OutEdgeIndices(dense)) {
    if (edges_[index].to == to) return &edges_[index];
  }
  return nullptr;
}

Result<std::vector<Trrp>> HwTwbg::DecomposeCycle(
    const std::vector<lock::TransactionId>& cycle) const {
  if (cycle.size() < 2) {
    return Status::InvalidArgument("a cycle has at least two vertices");
  }
  const size_t n = cycle.size();
  // Validate edges and find the first H-edge tail to rotate to.
  std::vector<const TwbgEdge*> cycle_edges(n);
  size_t first_h = n;
  for (size_t i = 0; i < n; ++i) {
    const TwbgEdge* e = FindEdge(cycle[i], cycle[(i + 1) % n]);
    if (e == nullptr) {
      return Status::InvalidArgument(common::Format(
          "no edge T%u -> T%u in the graph", cycle[i], cycle[(i + 1) % n]));
    }
    cycle_edges[i] = e;
    if (e->IsH() && first_h == n) first_h = i;
  }
  if (first_h == n) {
    return Status::Internal("all-W cycle: contradicts Lemma 1");
  }
  // Walk from the first H edge, cutting a new TRRP at each H edge.
  std::vector<Trrp> trrps;
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (first_h + step) % n;
    const TwbgEdge* e = cycle_edges[i];
    if (e->IsH()) {
      Trrp trrp;
      trrp.rid = e->rid;
      trrp.nodes.push_back(e->from);
      trrps.push_back(std::move(trrp));
    }
    trrps.back().nodes.push_back(e->to);
  }
  return trrps;
}

std::string HwTwbg::ToDot() const {
  std::string out = "digraph hwtwbg {\n  rankdir=LR;\n";
  for (lock::TransactionId tid : nodes_) {
    out += common::Format("  T%u;\n", tid);
  }
  for (const TwbgEdge& e : edges_) {
    out += common::Format("  T%u -> T%u [label=\"%s R%u\"%s];\n", e.from,
                          e.to, e.IsH() ? "H" : "W", e.rid,
                          e.IsH() ? "" : ", style=dashed");
  }
  out += "}\n";
  return out;
}

std::string HwTwbg::ToString() const {
  std::string out;
  for (const TwbgEdge& e : edges_) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace twbg::core
