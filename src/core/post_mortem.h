// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Assembly of core::CyclePostMortem forensic records (the structs live in
// core/detector.h next to ResolutionReport, which carries them).  Called
// by the detection engine at the moment a cycle is resolved, while the
// members' wait state and the resource queues are still live.

#ifndef TWBG_CORE_POST_MORTEM_H_
#define TWBG_CORE_POST_MORTEM_H_

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "core/victim.h"
#include "lock/lock_manager.h"

namespace twbg::core {

/// Assembles the post-mortem for a cycle resolved at `views` (walk-order
/// edge views) where candidate `chosen` of `candidates` was applied.
/// Reads the members' live wait state from `manager` and snapshots the
/// cycle's resource queues; `now` is the logical resolution time.
CyclePostMortem BuildPostMortem(
    const std::vector<CycleEdgeView>& views,
    const std::vector<VictimCandidate>& candidates, size_t chosen,
    const lock::LockManager& manager, uint64_t now);

/// Generalized overload reading wait state and queue snapshots through
/// the detection-host lookup interfaces (sharded or component-parallel
/// passes, where no single LockManager owns the state).
CyclePostMortem BuildPostMortem(
    const std::vector<CycleEdgeView>& views,
    const std::vector<VictimCandidate>& candidates, size_t chosen,
    const ResourceLookup& resources, const WaitInfoLookup& waits,
    uint64_t now);

}  // namespace twbg::core

#endif  // TWBG_CORE_POST_MORTEM_H_
