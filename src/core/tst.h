// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The Transaction Status Table (TST) of §5 — the internal structure the
// periodic detection-resolution algorithm walks.  One entry per known
// transaction with:
//
//   * waited  — the outgoing H/W-TWBG edges (who waits on this
//               transaction).  The W-labeled edge, if any, is kept at the
//               front of the list (the paper requires it so that longer
//               cycles through queues are detected before the inner ones,
//               see Example 5.1), followed by H-labeled edges;
//   * pr      — the resource in whose queue the transaction is blocked;
//   * ancestor/current — the directed-walk bookkeeping of Step 2.
//
// The paper encodes "nil" currents as a null pointer; we use an index one
// past the end of `waited`.
//
// Layout: flat, allocation-light.  Entries live in a dense vector parallel
// to a sorted id vector (binary-searched by At), and every entry's
// `waited` list is a span into one central per-TST edge array grouped by
// source vertex.  Assemble() rebuilds the whole structure in place without
// freeing storage, which is what makes the incremental GraphBuilder's
// per-pass refresh cheap.  See docs/PERFORMANCE.md.

#ifndef TWBG_CORE_TST_H_
#define TWBG_CORE_TST_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ecr.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// One TST entry.
struct TstEntry {
  /// 0 = unvisited, kRoot = walk root, otherwise 1 + the dense index (see
  /// Tst::EntryAt) of the vertex we descended from.
  int64_t ancestor = 0;
  /// Index of the next edge to explore in `waited`; >= waited.size()
  /// means "nil" (exhausted, or forced nil for victims / AV members).
  size_t current = 0;
  /// Resource in whose queue this transaction waits, if any.
  std::optional<lock::ResourceId> pr;
  /// Outgoing edges: at most one W edge first (possibly the sentinel with
  /// to == 0), then H edges in ECR construction order.  A view into the
  /// owning Tst's central edge array — never outlives the Tst and is
  /// invalidated by Assemble().
  std::span<const TwbgEdge> waited;

  static constexpr int64_t kRoot = -1;

  bool CurrentIsNil() const { return current >= waited.size(); }
  void SetCurrentNil() { current = waited.size(); }
  const TwbgEdge& CurrentEdge() const { return waited[current]; }
};

/// The TST.  Built fresh by Build() (scratch Step 1) or refreshed in place
/// by core::GraphBuilder (incremental Step 1); the paper materializes only
/// the H edges then (W edges live in its lock table), which is
/// observationally identical.
class Tst {
 public:
  Tst() = default;
  // Copies must re-point the entries' spans at the new edge array; moves
  // keep the heap buffers and need no fixup.
  Tst(const Tst& other);
  Tst& operator=(const Tst& other);
  Tst(Tst&&) = default;
  Tst& operator=(Tst&&) = default;

  /// Builds the complete TST (W edges with sentinels + H edges via ECR)
  /// for every transaction appearing in `table`.
  static Tst Build(const lock::LockTable& table);

  /// Assembles a TST from a pre-built edge list (which must include
  /// sentinel W edges) plus the full vertex set — used by the scoped
  /// builder.  Edge order must follow the ascending-rid ECR construction
  /// order for walk behaviour to match Build().
  static Tst FromEdges(const std::vector<TwbgEdge>& edges,
                       const std::vector<lock::TransactionId>& txns);

  /// Rebuilds the table in place from `edges` (sentinels included, ECR
  /// construction order) and the vertex set `txns` (duplicates and any
  /// order allowed; edge sources are added implicitly).  Resets all walk
  /// state.  Reuses existing storage, so a long-lived Tst refreshed every
  /// pass stops allocating once warm.
  void Assemble(const std::vector<TwbgEdge>& edges,
                const std::vector<lock::TransactionId>& txns);

  TstEntry& At(lock::TransactionId tid);
  const TstEntry& At(lock::TransactionId tid) const;
  bool Contains(lock::TransactionId tid) const;

  /// Position of `tid` in Transactions(), or size() when absent.
  size_t IndexOf(lock::TransactionId tid) const;

  /// Dense accessors — the walk's hot path uses these instead of the
  /// binary-searching At().  `index` must be < size().
  TstEntry& EntryAt(size_t index) { return entries_[index]; }
  const TstEntry& EntryAt(size_t index) const { return entries_[index]; }
  lock::TransactionId TidAt(size_t index) const { return tids_[index]; }

  /// Dense index of waited[edge_offset].to for vertex `index`, precomputed
  /// by Assemble(); kNoVertex for sentinel edges, size() for targets not
  /// in the table.
  size_t EdgeTargetIndex(size_t index, size_t edge_offset) const {
    return edge_targets_[offsets_[index] + edge_offset];
  }

  static constexpr size_t kNoVertex = static_cast<size_t>(-1);

  /// Transaction ids ascending — the Step 2 outer loop order.
  const std::vector<lock::TransactionId>& Transactions() const {
    return tids_;
  }

  size_t size() const { return entries_.size(); }

  /// Total number of edges (including sentinels).
  size_t NumEdges() const { return edges_.size(); }

  /// Figure 5.1-style dump: one line per transaction with pr and the
  /// waited list.
  std::string ToString() const;

 private:
  // Re-points every entry's span at this object's edges_ (after a copy).
  void RepointSpans();

  std::vector<lock::TransactionId> tids_;  // sorted, unique
  std::vector<TstEntry> entries_;          // parallel to tids_
  // Central edge storage: one contiguous group per vertex, in tids_
  // order; within a group the W edge (if any) precedes the H edges.
  std::vector<TwbgEdge> edges_;
  // Parallel to edges_: dense index of each edge's target (kNoVertex for
  // sentinels), so the walk never binary-searches.
  std::vector<size_t> edge_targets_;
  // Assembly scratch (group offsets / fill cursors), kept warm.
  std::vector<size_t> offsets_;
  std::vector<size_t> fill_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_TST_H_
