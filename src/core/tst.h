// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The Transaction Status Table (TST) of §5 — the internal structure the
// periodic detection-resolution algorithm walks.  One entry per known
// transaction with:
//
//   * waited  — the outgoing H/W-TWBG edges (who waits on this
//               transaction).  The W-labeled edge, if any, is kept at the
//               front of the list (the paper requires it so that longer
//               cycles through queues are detected before the inner ones,
//               see Example 5.1), followed by H-labeled edges;
//   * pr      — the resource in whose queue the transaction is blocked;
//   * ancestor/current — the directed-walk bookkeeping of Step 2.
//
// The paper encodes "nil" currents as a null pointer; we use an index one
// past the end of `waited`.

#ifndef TWBG_CORE_TST_H_
#define TWBG_CORE_TST_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/ecr.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// One TST entry.
struct TstEntry {
  /// 0 = unvisited, kRoot = walk root, otherwise the tid of the vertex we
  /// descended from.
  int64_t ancestor = 0;
  /// Index of the next edge to explore in `waited`; >= waited.size()
  /// means "nil" (exhausted, or forced nil for victims / AV members).
  size_t current = 0;
  /// Resource in whose queue this transaction waits, if any.
  std::optional<lock::ResourceId> pr;
  /// Outgoing edges: at most one W edge first (possibly the sentinel with
  /// to == 0), then H edges in ECR construction order.
  std::vector<TwbgEdge> waited;

  static constexpr int64_t kRoot = -1;

  bool CurrentIsNil() const { return current >= waited.size(); }
  void SetCurrentNil() { current = waited.size(); }
  const TwbgEdge& CurrentEdge() const { return waited[current]; }
};

/// The TST.  Built fresh at the start of every periodic pass (Step 1); the
/// paper materializes only the H edges then (W edges live in its lock
/// table), which is observationally identical.
class Tst {
 public:
  /// Builds the complete TST (W edges with sentinels + H edges via ECR)
  /// for every transaction appearing in `table`.
  static Tst Build(const lock::LockTable& table);

  /// Assembles a TST from a pre-built edge list (which must include
  /// sentinel W edges) plus the full vertex set — used by the scoped
  /// builder.  Edge order must follow the ascending-rid ECR construction
  /// order for walk behaviour to match Build().
  static Tst FromEdges(const std::vector<TwbgEdge>& edges,
                       const std::vector<lock::TransactionId>& txns);

  TstEntry& At(lock::TransactionId tid);
  const TstEntry& At(lock::TransactionId tid) const;
  bool Contains(lock::TransactionId tid) const;

  /// Transaction ids ascending — the Step 2 outer loop order.
  std::vector<lock::TransactionId> Transactions() const;

  size_t size() const { return entries_.size(); }

  /// Total number of edges (including sentinels).
  size_t NumEdges() const;

  /// Figure 5.1-style dump: one line per transaction with pr and the
  /// waited list.
  std::string ToString() const;

 private:
  std::map<lock::TransactionId, TstEntry> entries_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_TST_H_
