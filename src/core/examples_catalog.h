// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Canonical lock-table scenarios from the paper, reconstructed through the
// public LockManager API (every grant/block below is produced by the
// scheduler itself, not hand-assembled).  Shared by the unit tests and the
// experiment binaries that regenerate Figures 4.1, 4.2, 5.1 and 5.2.

#ifndef TWBG_CORE_EXAMPLES_CATALOG_H_
#define TWBG_CORE_EXAMPLES_CATALOG_H_

#include "lock/lock_manager.h"

namespace twbg::core {

/// Resource ids used by the catalog scenarios.
inline constexpr lock::ResourceId kR1 = 1;
inline constexpr lock::ResourceId kR2 = 2;

/// Example 4.1 (Figures 4.1 and 5.1):
///   R1(SIX): Holder((T1,IX,SIX) (T2,IS,S) (T3,IX,NL) (T4,IS,NL))
///            Queue((T5,IX) (T6,S) (T7,IX))
///   R2(IS):  Holder((T7,IS,NL)) Queue((T8,X) (T9,IX) (T3,S) (T4,X))
/// Four elementary cycles; TDR-1 candidates {T1,T2,T7,T3} on the 4-TRRP
/// cycle plus the TDR-2 candidate repositioning {T8}.
void BuildExample41(lock::LockManager& manager);

/// Example 5.1 (Figure 5.2):
///   R1(S): Holder((T1,S,NL))           Queue((T2,X) (T3,S))
///   R2(S): Holder((T2,S,NL) (T3,S,NL)) Queue((T1,X))
/// Two cycles {T1,T2,T3} and {T1,T2}; with costs 6/4/1 the paper's run
/// aborts T2 and spares T3.
void BuildExample51(lock::LockManager& manager);

/// A deadlock invisible to the classic wait-for graph:
///   R1(S): Holder((T1,S,NL)) Queue((T2,X) (T3,S))
///   R2(S): Holder((T3,S,NL)) Queue((T1,X))
/// T3 conflicts with no holder of R1 (S vs S) — it is stalled purely by
/// FIFO order behind T2 — so the holder-only TWFG is acyclic, yet the
/// system is deadlocked: T1 waits on T3, T3 waits behind T2, T2 waits on
/// T1.  H/W-TWBG sees the W edge T2 -> T3 and reports the cycle.
void BuildFifoDeadlock(lock::LockManager& manager);

}  // namespace twbg::core

#endif  // TWBG_CORE_EXAMPLES_CATALOG_H_
