// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Graph-free deadlock oracle implementing Definition 1 of the paper's
// appendix directly: the system is deadlocked iff, after repeatedly
// completing every transaction that can currently run (releasing its locks
// and letting the scheduler grant whatever becomes grantable), some
// blocked transaction remains.
//
// This is the ground truth that Theorem 1 (cycle in H/W-TWBG <=> deadlock)
// is property-tested against.  It is exponential in neither time nor
// space — each reduction step removes one transaction — but it is far too
// destructive to use online (it simulates completing transactions), which
// is exactly why the paper builds a graph model instead.

#ifndef TWBG_CORE_ORACLE_H_
#define TWBG_CORE_ORACLE_H_

#include <vector>

#include "common/rng.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// Result of the reduction analysis.
struct OracleResult {
  /// True when some transaction can never proceed without intervention.
  bool deadlocked = false;
  /// Every transaction blocked forever (cycle members plus transactions
  /// queued behind them), ascending by id.
  std::vector<lock::TransactionId> stuck;
};

/// Runs the reduction on a copy of `table`.  When `rng` is non-null the
/// order in which runnable transactions are retired is randomized (used to
/// property-test order independence of the residue); otherwise ascending.
OracleResult AnalyzeByReduction(const lock::LockTable& table,
                                common::Rng* rng = nullptr);

}  // namespace twbg::core

#endif  // TWBG_CORE_ORACLE_H_
