// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/examples_catalog.h"

#include "common/macros.h"

namespace twbg::core {

namespace {

using lock::LockMode;
using lock::RequestOutcome;

// Issues a request and asserts the scheduler's verdict matches the paper.
void Expect(lock::LockManager& manager, lock::TransactionId tid,
            lock::ResourceId rid, LockMode mode, RequestOutcome expected) {
  Result<RequestOutcome> outcome = manager.Acquire(tid, rid, mode);
  TWBG_CHECK(outcome.ok());
  TWBG_CHECK(*outcome == expected);
}

}  // namespace

void BuildExample41(lock::LockManager& manager) {
  // Initial grants on R1.
  Expect(manager, 1, kR1, LockMode::kIX, RequestOutcome::kGranted);
  Expect(manager, 2, kR1, LockMode::kIS, RequestOutcome::kGranted);
  Expect(manager, 3, kR1, LockMode::kIX, RequestOutcome::kGranted);
  Expect(manager, 4, kR1, LockMode::kIS, RequestOutcome::kGranted);
  // T2 upgrades IS->S first (blocked by T1's and T3's IX), then T1
  // upgrades IX->SIX (blocked by T3's IX).  UPR-2 places T1 before T2.
  Expect(manager, 2, kR1, LockMode::kS, RequestOutcome::kBlocked);
  Expect(manager, 1, kR1, LockMode::kS, RequestOutcome::kBlocked);
  // New requestors queue FIFO on R1.
  Expect(manager, 5, kR1, LockMode::kIX, RequestOutcome::kBlocked);
  Expect(manager, 6, kR1, LockMode::kS, RequestOutcome::kBlocked);
  // T7 holds R2 in IS, then queues on R1.
  Expect(manager, 7, kR2, LockMode::kIS, RequestOutcome::kGranted);
  Expect(manager, 7, kR1, LockMode::kIX, RequestOutcome::kBlocked);
  // R2's queue: T8, T9, then T3 (holder of R1) and T4 (holder of R1).
  Expect(manager, 8, kR2, LockMode::kX, RequestOutcome::kBlocked);
  Expect(manager, 9, kR2, LockMode::kIX, RequestOutcome::kBlocked);
  Expect(manager, 3, kR2, LockMode::kS, RequestOutcome::kBlocked);
  Expect(manager, 4, kR2, LockMode::kX, RequestOutcome::kBlocked);
}

void BuildExample51(lock::LockManager& manager) {
  Expect(manager, 1, kR1, LockMode::kS, RequestOutcome::kGranted);
  Expect(manager, 2, kR2, LockMode::kS, RequestOutcome::kGranted);
  Expect(manager, 3, kR2, LockMode::kS, RequestOutcome::kGranted);
  Expect(manager, 2, kR1, LockMode::kX, RequestOutcome::kBlocked);
  Expect(manager, 3, kR1, LockMode::kS, RequestOutcome::kBlocked);
  Expect(manager, 1, kR2, LockMode::kX, RequestOutcome::kBlocked);
}

void BuildFifoDeadlock(lock::LockManager& manager) {
  Expect(manager, 1, kR1, LockMode::kS, RequestOutcome::kGranted);
  Expect(manager, 3, kR2, LockMode::kS, RequestOutcome::kGranted);
  Expect(manager, 2, kR1, LockMode::kX, RequestOutcome::kBlocked);
  Expect(manager, 3, kR1, LockMode::kS, RequestOutcome::kBlocked);
  Expect(manager, 1, kR2, LockMode::kX, RequestOutcome::kBlocked);
}

}  // namespace twbg::core
