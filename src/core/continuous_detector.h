// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Continuous companion of the periodic algorithm (the paper presents the
// periodic scheme "as a companion of the continuous one" [17]): deadlock
// detection runs whenever a lock request blocks, rooted at the newly
// blocked transaction.  Any new cycle necessarily passes through that
// transaction, so a walk rooted there finds and resolves it immediately —
// deadlocks are caught with zero detection latency at the price of a
// detection attempt per block.
//
// This implementation rebuilds the TST per invocation (O(n + e)); the
// incremental edge maintenance of the COMPSAC '91 companion paper is an
// optimization with identical observable behavior.

#ifndef TWBG_CORE_CONTINUOUS_DETECTOR_H_
#define TWBG_CORE_CONTINUOUS_DETECTOR_H_

#include "core/cost_table.h"
#include "core/detection_engine.h"
#include "core/detector.h"
#include "core/graph_builder.h"
#include "lock/lock_manager.h"

namespace twbg::core {

/// Detection-on-block.  Options semantics match PeriodicDetector; the
/// full-table build path (scoped_continuous_build off) goes through the
/// incremental graph cache when incremental_build is on.
class ContinuousDetector {
 public:
  explicit ContinuousDetector(DetectorOptions options = {})
      : options_(options) {}

  /// Call after `blocked` failed to acquire a lock.  Resolves every cycle
  /// reachable from it.
  ResolutionReport OnBlock(lock::LockManager& manager, CostTable& costs,
                           lock::TransactionId blocked);

  const DetectorOptions& options() const { return options_; }

 private:
  DetectorOptions options_;
  GraphBuilder builder_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_CONTINUOUS_DETECTOR_H_
