// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Scoped TST construction for continuous detection: build only the region
// of the H/W-TWBG reachable from one transaction, instead of the whole
// table.  This is the practical optimization behind the continuous
// companion algorithm (Park & Scheuermann, COMPSAC '91): a freshly blocked
// transaction can only be part of cycles in its own wait neighbourhood,
// so detection cost should scale with the size of that neighbourhood, not
// with the whole system.
//
// The construction expands resources breadth-first: out-edges of a
// transaction come exclusively from the resources it touches, so a
// transaction is fully expanded once those resources' ECR edges are in.
// The final TST emits edges in ascending-resource order, making the walk
// behave identically to one over a full Tst::Build (verified by tests).

#ifndef TWBG_CORE_SCOPED_TST_H_
#define TWBG_CORE_SCOPED_TST_H_

#include "core/tst.h"
#include "lock/lock_manager.h"

namespace twbg::core {

/// Result of a scoped construction, with the region size for reporting.
struct ScopedTst {
  Tst tst;
  /// Resources whose ECR edges were materialized.
  size_t resources_expanded = 0;
};

/// Builds the TST restricted to the waited-by closure of `root` (every
/// transaction that transitively waits on it or that it waits on through
/// shared resources).  Returns an empty TST when `root` is unknown.
ScopedTst BuildReachableTst(const lock::LockManager& manager,
                            lock::TransactionId root);

}  // namespace twbg::core

#endif  // TWBG_CORE_SCOPED_TST_H_
