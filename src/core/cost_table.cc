// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/cost_table.h"

namespace twbg::core {

double CostTable::Get(lock::TransactionId tid) const {
  auto it = costs_.find(tid);
  return it == costs_.end() ? 1.0 : it->second;
}

void CostTable::Set(lock::TransactionId tid, double cost) {
  costs_[tid] = cost;
}

void CostTable::Bump(lock::TransactionId tid, double multiplier,
                     double increment) {
  costs_[tid] = Get(tid) * multiplier + increment;
}

void CostTable::Erase(lock::TransactionId tid) { costs_.erase(tid); }

}  // namespace twbg::core
