// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/script.h"

#include <charconv>

#include "common/string_util.h"
#include "core/oracle.h"
#include "core/tst.h"
#include "core/twbg.h"

namespace twbg::core {

namespace {

std::optional<uint32_t> ParseId(std::string_view text) {
  uint32_t value = 0;
  // Allow a leading 'T' or 'R' for readability ("acquire T1 R10 X").
  if (!text.empty() && (text[0] == 'T' || text[0] == 'R')) {
    text.remove_prefix(1);
  }
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::string OutcomeName(lock::RequestOutcome outcome) {
  switch (outcome) {
    case lock::RequestOutcome::kGranted:
      return "granted";
    case lock::RequestOutcome::kAlreadyHeld:
      return "alreadyheld";
    case lock::RequestOutcome::kBlocked:
      return "blocked";
  }
  return "?";
}

// The runner's own bus becomes the detector's unless the caller set one.
// Post-mortems are always collected: the REPL's `postmortem` command must
// work even when no sink is subscribed, and scripts are small enough that
// the assembly cost never matters.
ScriptOptions WithBus(ScriptOptions options, obs::EventBus* bus) {
  if (options.detector.event_bus == nullptr) {
    options.detector.event_bus = bus;
  }
  options.detector.collect_post_mortems = true;
  return options;
}

}  // namespace

ScriptRunner::ScriptRunner(ScriptOptions options)
    : options_(WithBus(std::move(options), &bus_)),
      detector_(options_.detector) {
  manager_.set_event_bus(&bus_);
  bus_.Subscribe(&observer_);
}

Status ScriptRunner::StreamEventsTo(const std::string& path) {
  Result<std::unique_ptr<obs::JsonlSink>> sink = obs::JsonlSink::Open(path);
  if (!sink.ok()) return sink.status();
  if (jsonl_ != nullptr) bus_.Unsubscribe(jsonl_.get());
  jsonl_ = std::move(*sink);
  bus_.Subscribe(jsonl_.get());
  return Status::OK();
}

Status ScriptRunner::DoAcquire(const std::vector<std::string>& args,
                               std::string* out) {
  if (args.size() != 4) {
    return Status::InvalidArgument("usage: acquire <txn> <resource> <mode>");
  }
  std::optional<uint32_t> tid = ParseId(args[1]);
  std::optional<uint32_t> rid = ParseId(args[2]);
  std::optional<lock::LockMode> mode = lock::LockModeFromString(args[3]);
  if (!tid || !rid || !mode) {
    return Status::InvalidArgument(
        common::Format("cannot parse acquire arguments '%s %s %s'",
                       args[1].c_str(), args[2].c_str(), args[3].c_str()));
  }
  Result<lock::RequestOutcome> outcome = manager_.Acquire(*tid, *rid, *mode);
  if (!outcome.ok()) return outcome.status();
  last_outcome_ = *outcome;
  *out += common::Format("T%u <- %s on R%u: %s\n", *tid, args[3].c_str(),
                         *rid, OutcomeName(*outcome).c_str());
  return Status::OK();
}

Status ScriptRunner::DoExpect(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Status::InvalidArgument(
        "usage: expect granted|blocked|alreadyheld");
  }
  if (!last_outcome_.has_value()) {
    return Status::FailedPrecondition("no acquire to check");
  }
  const std::string actual = OutcomeName(*last_outcome_);
  if (actual != args[1]) {
    return Status::Internal(common::Format(
        "expectation failed: wanted %s, got %s", args[1].c_str(),
        actual.c_str()));
  }
  return Status::OK();
}

Status ScriptRunner::DoExpectAborted(const std::vector<std::string>& args) {
  if (!last_report_.has_value()) {
    return Status::FailedPrecondition("no detect to check");
  }
  std::vector<lock::TransactionId> wanted;
  for (size_t i = 1; i < args.size(); ++i) {
    std::optional<uint32_t> tid = ParseId(args[i]);
    if (!tid) {
      return Status::InvalidArgument(
          common::Format("bad transaction id '%s'", args[i].c_str()));
    }
    wanted.push_back(*tid);
  }
  if (wanted != last_report_->aborted) {
    std::vector<std::string> got;
    for (lock::TransactionId tid : last_report_->aborted) {
      got.push_back(common::Format("T%u", tid));
    }
    return Status::Internal(common::Format(
        "expectation failed: aborted = {%s}",
        common::Join(got, ", ").c_str()));
  }
  return Status::OK();
}

Status ScriptRunner::ExecuteLine(std::string_view line, std::string* out) {
  // Strip comments and whitespace.
  size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> args;
  for (std::string& token : common::Split(std::string(line), ' ',
                                          /*skip_empty=*/true)) {
    args.push_back(std::move(token));
  }
  if (args.empty()) return Status::OK();
  if (options_.echo) {
    *out += "> ";
    *out += common::Join(args, " ");
    *out += "\n";
  }

  const std::string& cmd = args[0];
  if (cmd == "acquire") return DoAcquire(args, out);
  if (cmd == "release") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: release <txn>");
    }
    std::optional<uint32_t> tid = ParseId(args[1]);
    if (!tid) return Status::InvalidArgument("bad transaction id");
    std::vector<lock::TransactionId> granted = manager_.ReleaseAll(*tid);
    costs_.Erase(*tid);
    *out += common::Format("released T%u; granted %zu waiter(s)\n", *tid,
                           granted.size());
    return Status::OK();
  }
  if (cmd == "cost") {
    if (args.size() != 3) {
      return Status::InvalidArgument("usage: cost <txn> <value>");
    }
    std::optional<uint32_t> tid = ParseId(args[1]);
    if (!tid) return Status::InvalidArgument("bad transaction id");
    costs_.Set(*tid, std::strtod(args[2].c_str(), nullptr));
    return Status::OK();
  }
  if (cmd == "detect") {
    last_report_ = detector_.RunPass(manager_, costs_);
    *out += last_report_->ToString();
    return Status::OK();
  }
  if (cmd == "table") {
    *out += manager_.table().ToString();
    return Status::OK();
  }
  if (cmd == "graph") {
    *out += HwTwbg::Build(manager_.table()).ToString();
    return Status::OK();
  }
  if (cmd == "dot") {
    *out += HwTwbg::Build(manager_.table()).ToDot();
    return Status::OK();
  }
  if (cmd == "tst") {
    *out += Tst::Build(manager_.table()).ToString();
    return Status::OK();
  }
  if (cmd == "cycles") {
    HwTwbg graph = HwTwbg::Build(manager_.table());
    for (const auto& cycle : graph.ElementaryCycles()) {
      std::vector<std::string> names;
      for (lock::TransactionId tid : cycle) {
        names.push_back(common::Format("T%u", tid));
      }
      *out += common::Format("cycle {%s}\n",
                             common::Join(names, ", ").c_str());
    }
    return Status::OK();
  }
  if (cmd == "oracle") {
    OracleResult oracle = AnalyzeByReduction(manager_.table());
    std::vector<std::string> names;
    for (lock::TransactionId tid : oracle.stuck) {
      names.push_back(common::Format("T%u", tid));
    }
    *out += common::Format("deadlocked=%s stuck={%s}\n",
                           oracle.deadlocked ? "yes" : "no",
                           common::Join(names, ", ").c_str());
    return Status::OK();
  }
  if (cmd == "costs") {
    for (lock::TransactionId tid : manager_.KnownTransactions()) {
      *out += common::Format("T%u: %.2f\n", tid, costs_.Get(tid));
    }
    return Status::OK();
  }
  if (cmd == "expect") return DoExpect(args);
  if (cmd == "expect-deadlock") {
    if (args.size() != 2 || (args[1] != "yes" && args[1] != "no")) {
      return Status::InvalidArgument("usage: expect-deadlock yes|no");
    }
    const bool actual = HwTwbg::Build(manager_.table()).HasCycle();
    if (actual != (args[1] == "yes")) {
      return Status::Internal(common::Format(
          "expectation failed: deadlock = %s", actual ? "yes" : "no"));
    }
    return Status::OK();
  }
  if (cmd == "expect-aborted") return DoExpectAborted(args);
  if (cmd == "postmortem") {
    if (!last_report_.has_value()) {
      return Status::FailedPrecondition("no detect to report on");
    }
    if (last_report_->post_mortems.empty()) {
      *out += "no cycles resolved by the last detect\n";
      return Status::OK();
    }
    for (const CyclePostMortem& pm : last_report_->post_mortems) {
      *out += pm.ToString();
    }
    return Status::OK();
  }
  if (cmd == "obs") {
    *out += observer_.Report();
    if (jsonl_ != nullptr) {
      jsonl_->Flush();
      *out += common::Format(
          "jsonl: %llu line(s) -> %s\n",
          static_cast<unsigned long long>(jsonl_->lines_written()),
          jsonl_->path().c_str());
    }
    return Status::OK();
  }
  if (cmd == "reset") {
    manager_ = lock::LockManager();
    // Assignment wiped the bus attachment; restore it.
    manager_.set_event_bus(&bus_);
    costs_ = CostTable();
    last_outcome_.reset();
    last_report_.reset();
    return Status::OK();
  }
  return Status::InvalidArgument(
      common::Format("unknown command '%s'", cmd.c_str()));
}

Status ScriptRunner::ExecuteScript(std::string_view text, std::string* out) {
  size_t line_number = 0;
  for (const std::string& line : common::Split(text, '\n')) {
    ++line_number;
    Status status = ExecuteLine(line, out);
    if (!status.ok()) {
      return Status::Internal(common::Format(
          "line %zu: %s", line_number, std::string(status.message()).c_str()));
    }
  }
  return Status::OK();
}

}  // namespace twbg::core
