// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Incremental ECR edge cache: keeps one edge vector (sentinels included)
// per resource, keyed on lock::ResourceState::version(), and refreshes
// only the resources the lock table's mutation journal reports dirty.
// A detection pass after k mutations therefore recomputes ECR 1-3 for k
// resources instead of the whole table; concatenating the cached
// per-resource vectors in ascending rid order reproduces BuildEcrEdges
// byte-for-byte (the differential test in tests/incremental_build_test.cc
// proves it).  See docs/PERFORMANCE.md for the invalidation contract.
//
// Each observer (detector instance) owns its own GraphBuilder; the lock
// table's journal is a shared read-only log, so any number of builders can
// track one table independently.  A builder pointed at a different table
// (or a copy — copies get a fresh uid) falls back to a version-compare
// sweep that still reuses every unchanged resource's cached edges.

#ifndef TWBG_CORE_GRAPH_BUILDER_H_
#define TWBG_CORE_GRAPH_BUILDER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/tst.h"
#include "core/twbg.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// What one cache refresh did — surfaced in ResolutionReport and
/// sim/metrics for observability.
struct GraphCacheStats {
  /// Resources whose ECR edges were recomputed this refresh.
  size_t num_dirty_resources = 0;
  /// Resources whose cached edges were reused untouched.
  size_t num_cached_resources = 0;
  /// Edges recomputed vs served from cache (sentinels included).
  size_t edges_rebuilt = 0;
  size_t edges_reused = 0;
  /// True when the journal could not answer (first refresh, table copy,
  /// or the reader fell behind the journal's capacity) and the refresh
  /// fell back to a full version-compare sweep.
  bool full_sweep = false;
};

/// Incremental builder of the detection pass's graph structures.  Not
/// thread-safe itself; the sharded pass gives each shard its own builder
/// (refreshed concurrently against disjoint tables) and merges the
/// per-shard caches serially (core::ShardedTstBuilder).
class GraphBuilder {
 public:
  /// Cached ECR output for one resource.
  struct ResourceCache {
    /// lock::ResourceState::version() the entry was computed at.
    uint64_t version = 0;
    /// ECR 1-3 output for this resource, sentinels included.
    std::vector<TwbgEdge> edges;
    /// Transactions appearing on the resource (holders, then queue).
    std::vector<lock::TransactionId> txns;
  };

  /// Refreshes the cache against `table` and reassembles the persistent
  /// TST (W edges with sentinels + H edges, walk state reset).  The
  /// returned reference stays valid until the next Refresh/Build call and
  /// is identical to Tst::Build(table) in content and walk behaviour.
  Tst& RefreshTst(const lock::LockTable& table);

  /// Refreshes the cache and assembles an H/W-TWBG snapshot (no sentinel
  /// edges) — identical to HwTwbg::Build(table).
  HwTwbg BuildGraph(const lock::LockTable& table);

  /// Brings the cache and vertex set up to date with `table` WITHOUT
  /// assembling a TST — the per-shard half of the sharded Step 1, whose
  /// assembly is a k-way merge across shards (core::ShardedTstBuilder).
  void Refresh(const lock::LockTable& table);

  /// Per-resource cache in ascending rid order, valid after Refresh.
  const std::map<lock::ResourceId, ResourceCache>& cached_resources() const {
    return cache_;
  }

  /// Vertex set (ascending) of the cached resources, valid after Refresh.
  const std::vector<lock::TransactionId>& txns() const { return txns_; }

  /// Statistics of the most recent refresh.
  const GraphCacheStats& stats() const { return stats_; }

 private:
  // Brings cache_ up to date with `table` (journal fast path or full
  // version-compare sweep) and resets stats_.
  void Sync(const lock::LockTable& table);
  void Rebuild(const lock::ResourceState& state, ResourceCache& entry);
  void Drop(ResourceCache& entry);
  // Refcount maintenance for the vertex set.
  void RetainTxns(const std::vector<lock::TransactionId>& txns);
  void ReleaseTxns(const std::vector<lock::TransactionId>& txns);
  // Rebuilds txns_ from txn_refs_ when membership changed.
  void RefreshTxns();

  std::map<lock::ResourceId, ResourceCache> cache_;
  uint64_t table_uid_ = 0;
  uint64_t synced_seq_ = 0;
  size_t total_edges_ = 0;
  // tid -> number of cached resources it appears on.  The key set is the
  // graph's vertex set; txns_ mirrors it sorted, rebuilt only when
  // membership actually changes.
  std::map<lock::TransactionId, uint32_t> txn_refs_;
  bool membership_changed_ = true;
  std::vector<lock::TransactionId> txns_;
  std::vector<TwbgEdge> edge_scratch_;
  std::vector<lock::ResourceId> dirty_scratch_;
  Tst tst_;
  GraphCacheStats stats_;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_GRAPH_BUILDER_H_
