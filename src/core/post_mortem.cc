// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/post_mortem.h"

#include <algorithm>

#include "common/string_util.h"

namespace twbg::core {

std::string PostMortemMember::ToString() const {
  std::string out = edge.ToString();
  if (blocked_on.has_value()) {
    out += common::Format(" [blocked %s on R%u, span=%llu, queued=%llut]",
                          std::string(lock::ToString(blocked_mode)).c_str(),
                          *blocked_on,
                          static_cast<unsigned long long>(wait_span),
                          static_cast<unsigned long long>(time_in_queue));
  } else {
    out += " [holder]";
  }
  return out;
}

std::string CyclePostMortem::ToString() const {
  std::string out = common::Format(
      "post-mortem @t=%llu: %zu-cycle resolved by %s at junction T%u "
      "(cost %.2f)\n",
      static_cast<unsigned long long>(time), members.size(),
      rule == VictimKind::kReposition ? "TDR-2" : "TDR-1", junction, cost);
  if (rule == VictimKind::kReposition) {
    out += common::Format("  repositioned queue: R%u\n", resource);
  }
  out += "  wait chain:\n";
  for (const PostMortemMember& member : members) {
    out += "    ";
    out += member.ToString();
    out += "\n";
  }
  out += "  candidates: ";
  out += rationale;
  out += "\n";
  if (!queue_snapshots.empty()) {
    out += "  queues after resolution:\n";
    for (const std::string& snapshot : queue_snapshots) {
      out += "    ";
      out += snapshot;
      out += "\n";
    }
  }
  return out;
}

std::string CyclePostMortem::Summary() const {
  std::vector<std::string> chain;
  for (const PostMortemMember& member : members) {
    chain.push_back(common::Format(
        "T%u(span=%llu,queued=%llut)", member.tid,
        static_cast<unsigned long long>(member.wait_span),
        static_cast<unsigned long long>(member.time_in_queue)));
  }
  std::string out = common::Format(
      "%s at T%u: chain %s; ",
      rule == VictimKind::kReposition ? "TDR-2" : "TDR-1", junction,
      common::Join(chain, " -> ").c_str());
  out += rationale;
  return out;
}

namespace {

// Adapt a LockManager to the lookup pair the generalized overload takes.
class ManagerLookup final : public ResourceLookup, public WaitInfoLookup {
 public:
  explicit ManagerLookup(const lock::LockManager& manager)
      : manager_(manager) {}
  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return manager_.table().Find(rid);
  }
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    return manager_.Info(tid);
  }

 private:
  const lock::LockManager& manager_;
};

}  // namespace

CyclePostMortem BuildPostMortem(
    const std::vector<CycleEdgeView>& views,
    const std::vector<VictimCandidate>& candidates, size_t chosen,
    const lock::LockManager& manager, uint64_t now) {
  ManagerLookup lookup(manager);
  return BuildPostMortem(views, candidates, chosen, lookup, lookup, now);
}

CyclePostMortem BuildPostMortem(
    const std::vector<CycleEdgeView>& views,
    const std::vector<VictimCandidate>& candidates, size_t chosen,
    const ResourceLookup& resources, const WaitInfoLookup& waits,
    uint64_t now) {
  CyclePostMortem pm;
  pm.time = now;
  const VictimCandidate& victim = candidates[chosen];
  pm.rule = victim.kind;
  pm.junction = victim.junction;
  pm.resource =
      victim.kind == VictimKind::kReposition ? victim.resource : 0;
  pm.cost = victim.cost;

  std::vector<std::string> parts;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::string c = candidates[i].ToString();
    if (i == chosen) c = "[" + c + "]";
    parts.push_back(std::move(c));
  }
  pm.rationale = common::Join(parts, "; ");

  pm.members.reserve(views.size());
  for (const CycleEdgeView& view : views) {
    PostMortemMember member;
    member.tid = view.node;
    member.edge = view.out;
    const lock::TxnLockInfo* info = waits.FindWaitInfo(view.node);
    if (info != nullptr && info->blocked_on.has_value()) {
      member.blocked_on = info->blocked_on;
      member.blocked_mode = info->blocked_mode;
      member.wait_span = info->wait_span;
      member.time_in_queue =
          now >= info->wait_started ? now - info->wait_started : 0;
    }
    pm.members.push_back(std::move(member));
  }

  // Snapshot each distinct resource along the cycle, in edge order.
  std::vector<lock::ResourceId> seen;
  for (const CycleEdgeView& view : views) {
    const lock::ResourceId rid = view.out.rid;
    if (rid == 0 ||
        std::find(seen.begin(), seen.end(), rid) != seen.end()) {
      continue;
    }
    seen.push_back(rid);
    const lock::ResourceState* state = resources.FindResource(rid);
    if (state != nullptr) pm.queue_snapshots.push_back(state->ToString());
  }
  return pm;
}

}  // namespace twbg::core
