// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Victim-candidate enumeration and selection for a detected cycle (§4/§5).
//
// A cycle decomposes into TRRPs (Lemma 3: at least two).  The junctions —
// the tails of the cycle's H-labeled edges — are the TRRP boundaries:
//
//   * every junction is a TDR-1 (abort) candidate with cost Cost(T);
//   * a junction whose incoming cycle edge is W-labeled and whose blocked
//     mode is compatible with the total mode of the resource it queues on
//     is additionally a TDR-2 (reposition, no abort) candidate with cost
//     sum(Cost(ST)) / divisor.
//
// The minimum-cost candidate wins; ties prefer TDR-2 (nobody dies), then
// the lower junction id — both tie-breaks are ours (the paper only asks
// for minimal cost).

#ifndef TWBG_CORE_VICTIM_H_
#define TWBG_CORE_VICTIM_H_

#include <vector>

#include "core/cost_table.h"
#include "core/detector.h"
#include "core/ecr.h"
#include "core/twbg.h"
#include "lock/lock_table.h"

namespace twbg::core {

/// A cycle as (vertex, outgoing cycle edge) pairs: view[i].out leads to
/// view[(i+1) % n].node.  The incoming edge of view[i] is
/// view[(i-1+n) % n].out.
struct CycleEdgeView {
  lock::TransactionId node = lock::kInvalidTransaction;
  TwbgEdge out;
};

/// Enumerates every victim candidate of the cycle, in junction order along
/// the walk.  `resources` is consulted live for the TDR-2 AV/ST split.
std::vector<VictimCandidate> EnumerateCandidates(
    const std::vector<CycleEdgeView>& cycle, const ResourceLookup& resources,
    const CostTable& costs, const DetectorOptions& options);

/// Convenience overload looking resources up in a single lock table.
std::vector<VictimCandidate> EnumerateCandidates(
    const std::vector<CycleEdgeView>& cycle, const lock::LockTable& table,
    const CostTable& costs, const DetectorOptions& options);

/// Convenience overload resolving edges through an HwTwbg snapshot; errors
/// if `cycle` is not a cycle of `graph`.
Result<std::vector<VictimCandidate>> EnumerateCandidates(
    const HwTwbg& graph, const std::vector<lock::TransactionId>& cycle,
    const lock::LockTable& table, const CostTable& costs,
    const DetectorOptions& options);

/// Index of the winning candidate (minimum cost; ties prefer kReposition,
/// then lower junction id).  Requires a non-empty candidate list.
size_t SelectVictim(const std::vector<VictimCandidate>& candidates);

}  // namespace twbg::core

#endif  // TWBG_CORE_VICTIM_H_
