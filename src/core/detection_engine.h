// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The shared detection-resolution engine behind the periodic and
// continuous detectors: the Step 2 directed walk over a TST with
// ancestor/current bookkeeping, in-walk victim selection and application,
// and the Step 3 abortion-list / change-list reconciliation.
//
// The walk and Step 3 talk to the live lock state through two small
// interfaces (WalkHost, ResolutionHost) so the same engine serves a
// single LockManager (the classic sequential pass), a sharded set of
// managers (txn::ConcurrentLockService) and the component-parallel pass
// (core/parallel_engine.h).

#ifndef TWBG_CORE_DETECTION_ENGINE_H_
#define TWBG_CORE_DETECTION_ENGINE_H_

#include <vector>

#include "core/cost_table.h"
#include "core/detector.h"
#include "core/tst.h"
#include "lock/lock_manager.h"

namespace twbg::core {

/// Everything the Step 2 walk needs from the lock state: resource lookup
/// for victim enumeration, wait info for post-mortems, and the TDR-2
/// queue repositioning (the one in-walk mutation).
class WalkHost : public ResourceLookup, public WaitInfoLookup {
 public:
  /// Applies the TDR-2 repositioning on `rid` at `junction` (grants stay
  /// deferred to Step 3) and, when observing, emits kUprReposition.
  virtual Status ApplyTdr2(lock::ResourceId rid,
                           lock::TransactionId junction) = 0;
};

/// WalkHost over a single LockManager — the classic sequential pass.
class LockManagerWalkHost final : public WalkHost {
 public:
  explicit LockManagerWalkHost(lock::LockManager& manager)
      : manager_(manager) {}
  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return manager_.table().Find(rid);
  }
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    return manager_.Info(tid);
  }
  Status ApplyTdr2(lock::ResourceId rid,
                   lock::TransactionId junction) override {
    return manager_.ApplyTdr2(rid, junction);
  }

 private:
  lock::LockManager& manager_;
};

/// The two Step 3 mutations, routed to wherever the locks live.
class ResolutionHost {
 public:
  virtual ~ResolutionHost() = default;
  /// Releases every lock/queue position of `tid` (victim abort); returns
  /// transactions granted by the release, in grant order.
  virtual std::vector<lock::TransactionId> ReleaseAll(
      lock::TransactionId tid) = 0;
  /// Re-runs the grant passes on a change-list resource.
  virtual std::vector<lock::TransactionId> Reschedule(
      lock::ResourceId rid) = 0;
};

/// ResolutionHost over a single LockManager.
class LockManagerResolutionHost final : public ResolutionHost {
 public:
  explicit LockManagerResolutionHost(lock::LockManager& manager)
      : manager_(manager) {}
  std::vector<lock::TransactionId> ReleaseAll(
      lock::TransactionId tid) override {
    return manager_.ReleaseAll(tid);
  }
  std::vector<lock::TransactionId> Reschedule(
      lock::ResourceId rid) override {
    return manager_.Reschedule(rid);
  }

 private:
  lock::LockManager& manager_;
};

/// Intermediate result of the Step 2 walk.
struct WalkOutcome {
  std::vector<VictimDecision> decisions;
  /// Root transaction (the walk's outer-loop variable) under which each
  /// decision was made, parallel to `decisions`.  The component-parallel
  /// pass merges per-component outcomes by ascending root id to reproduce
  /// the sequential decision order exactly.
  std::vector<lock::TransactionId> decision_roots;
  /// Per-cycle forensic records, parallel to `decisions`; empty unless
  /// post-mortems are enabled (see DetectorOptions::collect_post_mortems).
  std::vector<CyclePostMortem> post_mortems;
  /// TDR-1 victims in selection order (pre-sparing).
  std::vector<lock::TransactionId> abortion_list;
  /// Resources repositioned by TDR-2, in application order (change list).
  std::vector<lock::ResourceId> change_list;
  size_t cycles = 0;
  size_t steps = 0;
};

/// Runs the Step 2 directed walk from each root in order.  Detected cycles
/// are resolved on the spot: TDR-1 victims get their `current` forced to
/// nil and join the abortion list; TDR-2 repositions the live queue via
/// `host` (grants deferred to Step 3), bumps ST costs and nils the AV
/// members' currents (Lemma 4.1).
WalkOutcome RunWalk(Tst& tst, const std::vector<lock::TransactionId>& roots,
                    WalkHost& host, CostTable& costs,
                    const DetectorOptions& options);

/// Convenience overload over a single LockManager.
WalkOutcome RunWalk(Tst& tst, const std::vector<lock::TransactionId>& roots,
                    lock::LockManager& manager, CostTable& costs,
                    const DetectorOptions& options);

/// Step 3: processes the abortion list in the configured order (sparing
/// victims an earlier abort already unblocked), releases victims' locks,
/// and reschedules every change-list resource.  Returns the full report.
ResolutionReport ApplyResolution(WalkOutcome walk, ResolutionHost& host,
                                 CostTable& costs,
                                 const DetectorOptions& options);

/// Convenience overload over a single LockManager.
ResolutionReport ApplyResolution(WalkOutcome walk,
                                 lock::LockManager& manager,
                                 CostTable& costs,
                                 const DetectorOptions& options);

}  // namespace twbg::core

#endif  // TWBG_CORE_DETECTION_ENGINE_H_
