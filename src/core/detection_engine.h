// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The shared detection-resolution engine behind the periodic and
// continuous detectors: the Step 2 directed walk over a TST with
// ancestor/current bookkeeping, in-walk victim selection and application,
// and the Step 3 abortion-list / change-list reconciliation.

#ifndef TWBG_CORE_DETECTION_ENGINE_H_
#define TWBG_CORE_DETECTION_ENGINE_H_

#include <vector>

#include "core/cost_table.h"
#include "core/detector.h"
#include "core/tst.h"
#include "lock/lock_manager.h"

namespace twbg::core {

/// Intermediate result of the Step 2 walk.
struct WalkOutcome {
  std::vector<VictimDecision> decisions;
  /// Per-cycle forensic records, parallel to `decisions`; empty unless
  /// post-mortems are enabled (see DetectorOptions::collect_post_mortems).
  std::vector<CyclePostMortem> post_mortems;
  /// TDR-1 victims in selection order (pre-sparing).
  std::vector<lock::TransactionId> abortion_list;
  /// Resources repositioned by TDR-2, in application order (change list).
  std::vector<lock::ResourceId> change_list;
  size_t cycles = 0;
  size_t steps = 0;
};

/// Runs the Step 2 directed walk from each root in order.  Detected cycles
/// are resolved on the spot: TDR-1 victims get their `current` forced to
/// nil and join the abortion list; TDR-2 repositions the live queue in
/// `manager` (grants deferred to Step 3), bumps ST costs and nils the AV
/// members' currents (Lemma 4.1).
WalkOutcome RunWalk(Tst& tst, const std::vector<lock::TransactionId>& roots,
                    lock::LockManager& manager, CostTable& costs,
                    const DetectorOptions& options);

/// Step 3: processes the abortion list in the configured order (sparing
/// victims an earlier abort already unblocked), releases victims' locks,
/// and reschedules every change-list resource.  Returns the full report.
ResolutionReport ApplyResolution(WalkOutcome walk,
                                 lock::LockManager& manager,
                                 CostTable& costs,
                                 const DetectorOptions& options);

}  // namespace twbg::core

#endif  // TWBG_CORE_DETECTION_ENGINE_H_
