// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Minimal deadlock sets (Definitions 1-3 of the paper's appendix).  A
// deadlock set is a group of transactions none of which can proceed even
// if everything outside the group finished; it is minimal when no proper
// subset is itself a deadlock set.
//
// Every elementary cycle's vertex set is a deadlock set (each member
// keeps waiting on its cycle predecessor), but — a subtlety the graph
// view hides — it is not necessarily MINIMAL: completing a mid-queue
// W-chain member merely re-links the queue around it, so such members can
// sometimes be dropped while the rest stays stuck (e.g. T9 in the paper's
// Example 4.1).  We therefore shrink each cycle set against the literal
// Definition 1 check until no single member can be removed, and report
// the deduplicated locally-minimal sets.
//
// Analysis-side tooling (not used by the detector, which resolves cycles
// online): lets experiments and tests reason about the structure of a
// deadlocked state.

#ifndef TWBG_CORE_MDS_H_
#define TWBG_CORE_MDS_H_

#include <set>
#include <vector>

#include "lock/lock_table.h"

namespace twbg::core {

/// Locally-minimal deadlock sets of the current state (each obtained by
/// shrinking an elementary cycle's vertex set until no single member can
/// be dropped), deduplicated and ordered by size then lexicographically.
/// `max_cycles` caps the underlying cycle enumeration.  Empty iff the
/// system is deadlock-free.
std::vector<std::set<lock::TransactionId>> FindMinimalDeadlockSets(
    const lock::LockTable& table, size_t max_cycles = 1u << 16);

/// Greedily removes members of `set` (ascending id, to fixpoint) while
/// the remainder is still a deadlock set.  Requires `set` to be a
/// deadlock set.
std::set<lock::TransactionId> ShrinkToMinimal(
    const lock::LockTable& table, std::set<lock::TransactionId> set);

/// Verifies the defining property directly against the scheduler: with
/// every transaction OUTSIDE `candidate` force-completed (locks released),
/// every member of `candidate` is still blocked.  This is the literal
/// Definition 1 check, independent of the graph model.
bool IsDeadlockSet(const lock::LockTable& table,
                   const std::set<lock::TransactionId>& candidate);

}  // namespace twbg::core

#endif  // TWBG_CORE_MDS_H_
