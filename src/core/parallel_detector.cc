// Copyright (c) the twbg authors. Licensed under the MIT license.

#include "core/parallel_detector.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace twbg::core {

namespace {

// ParallelWalkHost over a single LockManager: reads hit the one table;
// TDR-2 mutates the state directly (ResourceState self-stamps its
// version) and journals via NoteMutation at merge time.
class ManagerParallelHost final : public ParallelWalkHost {
 public:
  explicit ManagerParallelHost(lock::LockManager& manager)
      : manager_(manager) {}

  const lock::ResourceState* FindResource(
      lock::ResourceId rid) const override {
    return manager_.table().Find(rid);
  }
  const lock::TxnLockInfo* FindWaitInfo(
      lock::TransactionId tid) const override {
    return manager_.Info(tid);
  }
  Status ApplyTdr2Direct(lock::ResourceId rid,
                         lock::TransactionId junction) override {
    lock::ResourceState* state =
        manager_.mutable_table().FindMutableDeferred(rid);
    if (state == nullptr) {
      return Status::NotFound(common::Format("R%u is not locked", rid));
    }
    return state->ApplyTdr2(junction);
  }
  void NoteTdr2Applied(lock::ResourceId rid) override {
    manager_.mutable_table().NoteMutation(rid);
  }

 private:
  lock::LockManager& manager_;
};

}  // namespace

Tst& ShardedTstBuilder::RefreshTst(
    const std::vector<const lock::LockTable*>& tables,
    common::ThreadPool* pool) {
  builders_.resize(tables.size());
  auto refresh = [&](size_t shard) { builders_[shard].Refresh(*tables[shard]); };
  if (pool != nullptr) {
    pool->ParallelFor(tables.size(), refresh);
  } else {
    for (size_t shard = 0; shard < tables.size(); ++shard) refresh(shard);
  }

  stats_ = {};
  for (const GraphBuilder& builder : builders_) {
    const GraphCacheStats& s = builder.stats();
    stats_.num_dirty_resources += s.num_dirty_resources;
    stats_.num_cached_resources += s.num_cached_resources;
    stats_.edges_rebuilt += s.edges_rebuilt;
    stats_.edges_reused += s.edges_reused;
    stats_.full_sweep = stats_.full_sweep || s.full_sweep;
  }

  // K-way merge of the per-shard caches by ascending rid (shards hold
  // disjoint rid sets, so this is the global rid order — the same
  // concatenation order a single-table build would use).
  edge_scratch_.clear();
  using CacheIter =
      std::map<lock::ResourceId, GraphBuilder::ResourceCache>::const_iterator;
  std::vector<std::pair<CacheIter, CacheIter>> fronts;
  fronts.reserve(builders_.size());
  for (const GraphBuilder& builder : builders_) {
    fronts.emplace_back(builder.cached_resources().begin(),
                        builder.cached_resources().end());
  }
  for (;;) {
    size_t best = fronts.size();
    for (size_t i = 0; i < fronts.size(); ++i) {
      if (fronts[i].first == fronts[i].second) continue;
      if (best == fronts.size() ||
          fronts[i].first->first < fronts[best].first->first) {
        best = i;
      }
    }
    if (best == fronts.size()) break;
    const GraphBuilder::ResourceCache& entry = fronts[best].first->second;
    edge_scratch_.insert(edge_scratch_.end(), entry.edges.begin(),
                         entry.edges.end());
    ++fronts[best].first;
  }

  // Per-shard mirrors are captured one shard at a time, so a transaction
  // granted on one shard and re-blocked on another between captures can
  // appear waiting in two mirrors at once — two W edges for one vertex,
  // which a consistent table can never produce (Axiom 1) and which
  // Tst::Assemble rejects.  Keep the first W edge in global rid order
  // (deterministic) and drop the rest: the walk runs on a self-consistent
  // TST, and any resolution decided on the stale wait is rejected by the
  // version-validated apply and retried next pass.
  if (builders_.size() > 1) {
    w_seen_.clear();
    size_t kept = 0;
    for (size_t j = 0; j < edge_scratch_.size(); ++j) {
      const TwbgEdge& e = edge_scratch_[j];
      if (e.IsW() && !w_seen_.insert(e.from).second) continue;
      edge_scratch_[kept++] = e;
    }
    edge_scratch_.resize(kept);
  }

  txn_scratch_.clear();
  for (const GraphBuilder& builder : builders_) {
    txn_scratch_.insert(txn_scratch_.end(), builder.txns().begin(),
                        builder.txns().end());
  }
  std::sort(txn_scratch_.begin(), txn_scratch_.end());
  txn_scratch_.erase(std::unique(txn_scratch_.begin(), txn_scratch_.end()),
                     txn_scratch_.end());

  tst_.Assemble(edge_scratch_, txn_scratch_);
  return tst_;
}

ResolutionReport ParallelPeriodicDetector::RunPass(
    lock::LockManager& manager, CostTable& costs) {
  ManagerParallelHost walk_host(manager);
  LockManagerResolutionHost resolution_host(manager);
  return RunPassImpl({&manager.table()}, walk_host, resolution_host, costs);
}

ResolutionReport ParallelPeriodicDetector::RunPass(
    ShardedDetectionHost& host, CostTable& costs) {
  std::vector<const lock::LockTable*> tables;
  tables.reserve(host.num_shards());
  for (size_t shard = 0; shard < host.num_shards(); ++shard) {
    tables.push_back(&host.shard_table(shard));
  }
  return RunPassImpl(tables, host, host, costs);
}

ParallelPeriodicDetector::DetectOutcome ParallelPeriodicDetector::RunDetect(
    const std::vector<const lock::LockTable*>& tables,
    ParallelWalkHost& walk_host, CostTable& costs, obs::EventBus* bus,
    common::Stopwatch& clock) {
  const bool observing = obs::Enabled(bus);
  // The walk emits through whatever bus the caller hands us, which may be
  // a local recording bus rather than options_.event_bus.
  DetectorOptions walk_options = options_;
  walk_options.event_bus = bus;
  if (observing) {
    obs::Event start;
    start.kind = obs::EventKind::kPassStart;
    start.a = 1;  // periodic
    bus->Emit(start);
  }

  // Step 1: per-shard cache refresh + k-way merge.  A non-incremental
  // pass uses a throwaway builder (full rebuild every time) and reports
  // no cache statistics, matching the sequential from-scratch build.
  ShardedTstBuilder scratch_builder;
  ShardedTstBuilder& builder =
      options_.incremental_build ? builder_ : scratch_builder;
  Tst& tst = builder.RefreshTst(tables, pool_);
  DetectOutcome outcome;
  outcome.num_transactions = tst.size();
  outcome.num_edges = tst.NumEdges();
  outcome.incremental = options_.incremental_build;
  outcome.cache = builder.stats();
  outcome.step1_ns = observing ? clock.ElapsedNanos() : 0;
  if (observing) {
    obs::Event step1;
    step1.kind = obs::EventKind::kStep1;
    if (options_.incremental_build) {
      step1.a = builder.stats().num_dirty_resources;
      step1.b = builder.stats().num_cached_resources;
    }
    step1.value = static_cast<double>(outcome.step1_ns);
    bus->Emit(step1);
  }

  // Step 2: component-parallel walk.
  outcome.walk = RunWalkComponentParallel(
      tst, walk_host, costs, walk_options, pool_, &last_num_components_);
  if (observing) {
    obs::Event step2;
    step2.kind = obs::EventKind::kStep2;
    step2.a = outcome.walk.cycles;
    step2.b = outcome.walk.steps;
    step2.value =
        static_cast<double>(clock.ElapsedNanos() - outcome.step1_ns);
    bus->Emit(step2);
  }
  return outcome;
}

ResolutionReport ParallelPeriodicDetector::RunPassImpl(
    const std::vector<const lock::LockTable*>& tables,
    ParallelWalkHost& walk_host, ResolutionHost& resolution_host,
    CostTable& costs) {
  obs::EventBus* bus = options_.event_bus;
  const bool observing = obs::Enabled(bus);
  common::Stopwatch pass_clock;
  DetectOutcome detect =
      RunDetect(tables, walk_host, costs, bus, pass_clock);

  // Step 3: confirm aborts and grants.
  ResolutionReport report = ApplyResolution(std::move(detect.walk),
                                            resolution_host, costs, options_);
  report.num_transactions = detect.num_transactions;
  report.num_edges = detect.num_edges;
  if (detect.incremental) {
    report.num_dirty_resources = detect.cache.num_dirty_resources;
    report.num_cached_resources = detect.cache.num_cached_resources;
    report.edges_rebuilt = detect.cache.edges_rebuilt;
    report.edges_reused = detect.cache.edges_reused;
  }
  if (observing) {
    obs::Event end;
    end.kind = obs::EventKind::kPassEnd;
    end.a = report.cycles_detected;
    end.b = report.aborted.size();
    end.value = static_cast<double>(pass_clock.ElapsedNanos());
    bus->Emit(end);
  }
  return report;
}

}  // namespace twbg::core
