// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// The periodic pass (§5) over sharded lock state, with both halves
// parallelized on an optional worker pool:
//
//   Step 1  every shard's incremental GraphBuilder refreshes its own ECR
//           edge cache concurrently (shards own disjoint resources), then
//           the per-shard caches are k-way merged by ascending rid into
//           one flat TST — byte-identical to a single-table build of the
//           union state, since cache concatenation order is rid order.
//   Step 2  the component-parallel walk of core/parallel_engine.h.
//   Step 3  the standard abortion-list / change-list reconciliation,
//           routed through a ResolutionHost.
//
// The pass assumes the tables it is handed are frozen for its duration —
// either because the caller holds every shard lock (the stop-the-world
// strategy) or because the tables are a detector-owned sealed epoch
// snapshot nobody else writes (the pauseless strategy; see
// txn/epoch_snapshot.h).  Either way plain reads from worker threads are
// safe.  Reports are byte-identical to PeriodicDetector::RunPass over
// the same aggregate state — the differential suite proves it.

#ifndef TWBG_CORE_PARALLEL_DETECTOR_H_
#define TWBG_CORE_PARALLEL_DETECTOR_H_

#include <set>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/graph_builder.h"
#include "core/parallel_engine.h"

namespace twbg::core {

/// Step 1 over N shard tables: one GraphBuilder per shard, refreshed in
/// parallel, assembled serially by a k-way rid merge.  With one table
/// this reduces to GraphBuilder::RefreshTst exactly.
class ShardedTstBuilder {
 public:
  /// Refreshes every shard's cache (over `pool` when non-null; tables are
  /// disjoint so the refreshes share nothing) and assembles the unified
  /// TST.  The reference stays valid until the next call.
  Tst& RefreshTst(const std::vector<const lock::LockTable*>& tables,
                  common::ThreadPool* pool);

  /// Refresh statistics aggregated (summed) across shards.
  const GraphCacheStats& stats() const { return stats_; }

 private:
  std::vector<GraphBuilder> builders_;  // one per shard, index-stable
  std::vector<TwbgEdge> edge_scratch_;
  std::vector<lock::TransactionId> txn_scratch_;
  // Scratch for the cross-shard capture-skew W-edge dedup (see RefreshTst).
  std::set<lock::TransactionId> w_seen_;
  Tst tst_;
  GraphCacheStats stats_;
};

/// What the sharded pass needs from its owner (txn::ConcurrentLockService
/// over its shard set): the shard tables for Step 1, the parallel-walk
/// lock-state interface for Step 2, and release/reschedule for Step 3.
/// All methods are called with every shard lock held by the pass.
class ShardedDetectionHost : public ParallelWalkHost,
                             public ResolutionHost {
 public:
  /// Number of shards; tables are indexed [0, num_shards()).
  virtual size_t num_shards() const = 0;
  /// Lock table of shard `shard`.
  virtual const lock::LockTable& shard_table(size_t shard) const = 0;
};

/// Periodic detector whose Step 1 and Step 2 run on a worker pool.  Emits
/// the same kPassStart/kStep1/kStep2/.../kPassEnd stream as
/// PeriodicDetector and produces byte-identical reports.
class ParallelPeriodicDetector {
 public:
  /// `pool` (not owned, may be null = run the pass on the calling thread)
  /// sizes the parallelism of both steps.
  explicit ParallelPeriodicDetector(DetectorOptions options = {},
                                    common::ThreadPool* pool = nullptr)
      : options_(options), pool_(pool) {}

  /// One pass over a single lock manager — the differential-parity entry
  /// point, drop-in comparable with PeriodicDetector::RunPass.
  ResolutionReport RunPass(lock::LockManager& manager, CostTable& costs);

  /// One pass over sharded state.  The caller must hold all shard locks.
  ResolutionReport RunPass(ShardedDetectionHost& host, CostTable& costs);

  /// Steps 1 + 2 only, decoupled from resolution: everything the caller
  /// needs to run Step 3 itself.  The pauseless engine detects against a
  /// sealed epoch snapshot (this call), then validates and applies the
  /// resulting change-list against the live shards on its own terms.
  struct DetectOutcome {
    WalkOutcome walk;
    size_t num_transactions = 0;
    size_t num_edges = 0;
    /// Step 1 cache statistics; meaningful when `incremental` is set.
    GraphCacheStats cache;
    bool incremental = false;
    int64_t step1_ns = 0;
  };

  /// Runs Step 1 (TST build) and Step 2 (walk) over `tables`, emitting
  /// kPassStart / kStep1 / kStep2 — and, via the walk, kCycleResolved /
  /// kUprReposition / kCyclePostMortem — on `bus` (which may differ from
  /// options().event_bus: the pauseless engine records onto a local bus
  /// and replays at apply time).  `clock` times the steps and should keep
  /// running for the caller's kPassEnd.  TDR-2 mutations go through
  /// `walk_host`; nothing here touches a ResolutionHost.
  DetectOutcome RunDetect(const std::vector<const lock::LockTable*>& tables,
                          ParallelWalkHost& walk_host, CostTable& costs,
                          obs::EventBus* bus, common::Stopwatch& clock);

  const DetectorOptions& options() const { return options_; }

  /// Weakly-connected components of the most recent pass's TST.
  size_t last_num_components() const { return last_num_components_; }

 private:
  ResolutionReport RunPassImpl(
      const std::vector<const lock::LockTable*>& tables,
      ParallelWalkHost& walk_host, ResolutionHost& resolution_host,
      CostTable& costs);

  DetectorOptions options_;
  common::ThreadPool* pool_;
  ShardedTstBuilder builder_;
  size_t last_num_components_ = 0;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_PARALLEL_DETECTOR_H_
