// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Shared option and report types for the periodic and continuous
// detection-resolution algorithms.

#ifndef TWBG_CORE_DETECTOR_H_
#define TWBG_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "lock/types.h"
#include "obs/bus.h"

namespace twbg::core {

/// How the resolver breaks a cycle (§4, Definition 4.1).
enum class VictimKind {
  /// TDR-1: abort the junction transaction.
  kAbort,
  /// TDR-2: reposition the incompatible queue prefix (ST) after the
  /// compatible one (AV) — no transaction is aborted.
  kReposition,
};

/// One victim candidate of a detected cycle, with the paper's cost model:
/// TDR-1 candidates cost Cost(T); TDR-2 candidates cost sum(Cost(ST))/2
/// (ST members are merely delayed, not aborted).
struct VictimCandidate {
  VictimKind kind = VictimKind::kAbort;
  /// The TRRP junction this candidate acts at; for TDR-1 also the
  /// transaction to abort.
  lock::TransactionId junction = lock::kInvalidTransaction;
  double cost = 0.0;
  /// TDR-2 only: the resource whose queue is repositioned and the split.
  lock::ResourceId resource = 0;
  std::vector<lock::TransactionId> st;
  std::vector<lock::TransactionId> av;

  std::string ToString() const;
};

/// The resolution decided for one detected cycle.
struct VictimDecision {
  /// Cycle vertices in walk order (starts at the vertex the closing edge
  /// re-entered).
  std::vector<lock::TransactionId> cycle;
  /// Every candidate that was considered, in enumeration order.
  std::vector<VictimCandidate> candidates;
  /// Index into `candidates` of the chosen victim.
  size_t chosen = 0;

  const VictimCandidate& victim() const { return candidates[chosen]; }
  std::string ToString() const;
};

/// Order in which Step 3 processes the abortion list.  The paper leaves
/// this open; its Example 5.1 walks the list in an order that lets an
/// earlier abort spare a later victim, which kReverseInsertion maximizes
/// (victims of inner cycles are examined first).
enum class AbortOrder {
  kReverseInsertion,
  kInsertion,
  kCostDescending,
  kCostAscending,
};

/// Tuning knobs of the detection-resolution algorithm.
struct DetectorOptions {
  /// Offer TDR-2 (resolution without abort).  Disabling yields a pure
  /// TDR-1 resolver — the ablation baseline.
  bool enable_tdr2 = true;
  /// TDR-2 candidate cost = sum(Cost(ST)) / divisor (paper uses 2).
  double tdr2_cost_divisor = 2.0;
  /// Step 3 abortion-list processing order.
  AbortOrder abort_order = AbortOrder::kReverseInsertion;
  /// After a TDR-2, each ST member's cost := cost * multiplier + increment
  /// ("incremented by some value", §5) so it is not postponed forever.
  double st_cost_multiplier = 2.0;
  double st_cost_increment = 0.0;
  /// Continuous detector only: build the TST scoped to the blocked
  /// transaction's reachable region (the COMPSAC '91 companion
  /// optimization) instead of the whole table.  Observably identical;
  /// cost scales with the wait neighbourhood.
  bool scoped_continuous_build = true;
  /// Build the pass's TST through the incremental per-resource ECR edge
  /// cache (core::GraphBuilder) instead of from scratch.  Observably
  /// identical (the differential test proves it); a pass after k
  /// mutations recomputes edges for k resources only.  Disable to get
  /// the from-scratch Step 1 (the benchmark's comparison baseline).
  bool incremental_build = true;
  /// Structured-event bus the detectors emit kPassStart / kStep1 /
  /// kStep2 / kCycleResolved / kPassEnd to.  Null (the default) disables
  /// emission and the per-pass timing that feeds it; the only residual
  /// cost is one pointer test per pass.  Not owned.
  obs::EventBus* event_bus = nullptr;
};

/// Outcome of one detection-resolution pass.
struct ResolutionReport {
  /// Cycles the walk actually detected and resolved (the paper's c').
  size_t cycles_detected = 0;
  /// Per-cycle resolution decisions in detection order.
  std::vector<VictimDecision> decisions;
  /// Transactions aborted at Step 3 (after sparing) — their locks are
  /// already released; the caller must terminate/restart them.
  std::vector<lock::TransactionId> aborted;
  /// Victims removed from the abortion list because an earlier abort
  /// already unblocked them (Step 3 grant-list check).
  std::vector<lock::TransactionId> spared;
  /// Transactions whose blocked request was granted during Step 3.
  std::vector<lock::TransactionId> granted;
  /// Resources whose queues were repositioned by TDR-2 (change list).
  std::vector<lock::ResourceId> repositioned;
  /// Walk loop iterations — proxy for the O(n + e(c'+1)) time bound.
  size_t steps = 0;
  /// Vertices and edges of the TST the pass ran over (n and e).
  size_t num_transactions = 0;
  size_t num_edges = 0;
  /// Step 1 graph-cache statistics (all zero for from-scratch builds):
  /// resources whose ECR edges were recomputed vs served from cache, and
  /// the edge counts on each side.  See core::GraphCacheStats.
  size_t num_dirty_resources = 0;
  size_t num_cached_resources = 0;
  size_t edges_rebuilt = 0;
  size_t edges_reused = 0;

  /// True when the pass found any deadlock.
  bool found_deadlock() const { return cycles_detected > 0; }

  std::string ToString() const;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_DETECTOR_H_
