// Copyright (c) the twbg authors. Licensed under the MIT license.
//
// Shared option and report types for the periodic and continuous
// detection-resolution algorithms.

#ifndef TWBG_CORE_DETECTOR_H_
#define TWBG_CORE_DETECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/ecr.h"
#include "lock/types.h"
#include "obs/bus.h"
#include "obs/span.h"

namespace twbg::lock {
class ResourceState;
struct TxnLockInfo;
}  // namespace twbg::lock

namespace twbg::core {

/// Read-only lookup of live per-resource lock state.  Implemented by
/// whatever owns the state a detection pass runs against — a single
/// lock table (lock::LockManager) or a sharded set of tables
/// (txn::ConcurrentLockService) — so victim enumeration and post-mortem
/// assembly need not know where resources live.
class ResourceLookup {
 public:
  virtual ~ResourceLookup() = default;
  /// State of `rid`, or nullptr when the resource is unknown/free.
  virtual const lock::ResourceState* FindResource(lock::ResourceId rid)
      const = 0;
};

/// Read-only lookup of per-transaction wait bookkeeping (blocked_on /
/// blocked_mode / wait_span / wait_started), the post-mortem side of
/// ResourceLookup.  For sharded owners this returns the info of the shard
/// the transaction is blocked in (any shard's info when runnable).
class WaitInfoLookup {
 public:
  virtual ~WaitInfoLookup() = default;
  /// Wait info of `tid`, or nullptr when the transaction is unknown.
  virtual const lock::TxnLockInfo* FindWaitInfo(lock::TransactionId tid)
      const = 0;
};

/// How the resolver breaks a cycle (§4, Definition 4.1).
enum class VictimKind {
  /// TDR-1: abort the junction transaction.
  kAbort,
  /// TDR-2: reposition the incompatible queue prefix (ST) after the
  /// compatible one (AV) — no transaction is aborted.
  kReposition,
};

/// One victim candidate of a detected cycle, with the paper's cost model:
/// TDR-1 candidates cost Cost(T); TDR-2 candidates cost sum(Cost(ST))/2
/// (ST members are merely delayed, not aborted).
struct VictimCandidate {
  VictimKind kind = VictimKind::kAbort;
  /// The TRRP junction this candidate acts at; for TDR-1 also the
  /// transaction to abort.
  lock::TransactionId junction = lock::kInvalidTransaction;
  double cost = 0.0;
  /// TDR-2 only: the resource whose queue is repositioned and the split.
  lock::ResourceId resource = 0;
  std::vector<lock::TransactionId> st;
  std::vector<lock::TransactionId> av;

  std::string ToString() const;
};

/// The resolution decided for one detected cycle.
struct VictimDecision {
  /// Cycle vertices in walk order (starts at the vertex the closing edge
  /// re-entered).
  std::vector<lock::TransactionId> cycle;
  /// Every candidate that was considered, in enumeration order.
  std::vector<VictimCandidate> candidates;
  /// Index into `candidates` of the chosen victim.
  size_t chosen = 0;
  /// Version stamps of the evidence this decision was derived from —
  /// every distinct resource on the cycle with its pre-resolution
  /// ResourceState::version().  Populated only under
  /// DetectorOptions::capture_evidence; the pauseless apply phase
  /// re-checks these stamps against the live shards and drops the
  /// decision as stale on any mismatch (kResolutionRejected).
  std::vector<std::pair<lock::ResourceId, uint64_t>> evidence;
  /// capture_evidence + TDR-2 only: the repositioned resource's version
  /// *after* ApplyTdr2 ran against the snapshot, so a validated live
  /// replay can record what the mirror will look like (version stamps are
  /// process-wide, so replaying the same mutation yields a fresh stamp).
  uint64_t applied_version = 0;

  const VictimCandidate& victim() const { return candidates[chosen]; }
  std::string ToString() const;
};

/// One transaction on a resolved cycle, with the wait state it had at
/// resolution time (see CyclePostMortem).
struct PostMortemMember {
  /// The cycle vertex.
  lock::TransactionId tid = lock::kInvalidTransaction;
  /// The TWBG edge the walk took out of this vertex (H or W labeled).
  TwbgEdge edge;
  /// Resource the member was blocked on at resolution time (nullopt for
  /// pure holders — H-edge tails that are runnable).
  std::optional<lock::ResourceId> blocked_on;
  /// Mode the member was blocked for (kNL when runnable).
  lock::LockMode blocked_mode = lock::LockMode::kNL;
  /// The member's wait-span id (0 when it never blocked).
  uint64_t wait_span = 0;
  /// Logical time the member had spent blocked when the cycle was
  /// resolved (0 for runnable members or bus-less runs).
  uint64_t time_in_queue = 0;

  /// One-line rendering: "T8 -W(R2)-> T2 [blocked X on R2, span=5, ...]".
  std::string ToString() const;
};

/// Forensic record of one resolved cycle, assembled at resolution time
/// while the evidence is live (core::BuildPostMortem): the wait chain
/// with per-member spans and queue ages, the TDR rule applied, the full
/// candidate rationale, and queue snapshots of the cycle's resources.
/// kCycleResolved says *that* a cycle was broken; the post-mortem says
/// *why it existed* and *what it cost whom*.
struct CyclePostMortem {
  /// Logical bus time of the resolution (0 for bus-less runs).
  uint64_t time = 0;
  /// Cycle members in walk order, starting at the re-entered vertex.
  std::vector<PostMortemMember> members;
  /// TDR rule applied.
  VictimKind rule = VictimKind::kAbort;
  /// Junction the chosen candidate acted at (TDR-1: also the victim).
  lock::TransactionId junction = lock::kInvalidTransaction;
  /// TDR-2 only: the repositioned resource (0 for TDR-1).
  lock::ResourceId resource = 0;
  /// The chosen candidate's cost.
  double cost = 0.0;
  /// Every candidate considered, chosen one bracketed — the victim
  /// rationale (same rendering as VictimDecision).
  std::string rationale;
  /// ResourceState::ToString of every distinct resource on the cycle,
  /// captured after the resolution was applied, in edge order.
  std::vector<std::string> queue_snapshots;

  /// Multi-line human-readable report (REPL `postmortem` command).
  std::string ToString() const;

  /// Compact single-line rendering used as the kCyclePostMortem event's
  /// `detail` payload: wait chain with spans, rule, rationale.
  std::string Summary() const;
};

/// Order in which Step 3 processes the abortion list.  The paper leaves
/// this open; its Example 5.1 walks the list in an order that lets an
/// earlier abort spare a later victim, which kReverseInsertion maximizes
/// (victims of inner cycles are examined first).
enum class AbortOrder {
  kReverseInsertion,
  kInsertion,
  kCostDescending,
  kCostAscending,
};

/// Tuning knobs of the detection-resolution algorithm.
struct DetectorOptions {
  /// Offer TDR-2 (resolution without abort).  Disabling yields a pure
  /// TDR-1 resolver — the ablation baseline.
  bool enable_tdr2 = true;
  /// TDR-2 candidate cost = sum(Cost(ST)) / divisor (paper uses 2).
  double tdr2_cost_divisor = 2.0;
  /// Step 3 abortion-list processing order.
  AbortOrder abort_order = AbortOrder::kReverseInsertion;
  /// After a TDR-2, each ST member's cost := cost * multiplier + increment
  /// ("incremented by some value", §5) so it is not postponed forever.
  double st_cost_multiplier = 2.0;
  double st_cost_increment = 0.0;
  /// Continuous detector only: build the TST scoped to the blocked
  /// transaction's reachable region (the COMPSAC '91 companion
  /// optimization) instead of the whole table.  Observably identical;
  /// cost scales with the wait neighbourhood.
  bool scoped_continuous_build = true;
  /// Build the pass's TST through the incremental per-resource ECR edge
  /// cache (core::GraphBuilder) instead of from scratch.  Observably
  /// identical (the differential test proves it); a pass after k
  /// mutations recomputes edges for k resources only.  Disable to get
  /// the from-scratch Step 1 (the benchmark's comparison baseline).
  bool incremental_build = true;
  /// Structured-event bus the detectors emit kPassStart / kStep1 /
  /// kStep2 / kCycleResolved / kCyclePostMortem / kPassEnd to.  Null (the
  /// default) disables emission and the per-pass timing that feeds it;
  /// the only residual cost is one pointer test per pass.  Not owned.
  obs::EventBus* event_bus = nullptr;
  /// Span tracer the sequential detectors open kPass / kStep1 / kStep2
  /// spans on, with one kResolution child span per resolved cycle (its
  /// id stamped into the matching kCyclePostMortem event's `span` field).
  /// Null disables span emission at one pointer test per pass.  The
  /// tracer must share the bus's writer serialization; the parallel
  /// sharded pass leaves this null and lets the concurrent service emit
  /// its own pass/publish/apply spans instead (obs/span.h).  Not owned.
  obs::SpanTracer* span_tracer = nullptr;
  /// Assemble a forensic core::CyclePostMortem for every resolved cycle
  /// and store it in ResolutionReport::post_mortems.  Post-mortems are
  /// also assembled — and emitted as kCyclePostMortem events — whenever
  /// an active event_bus is attached, regardless of this flag.
  bool collect_post_mortems = false;
  /// Record each decision's evidence stamps (VictimDecision::evidence /
  /// applied_version) so a pass run against a sealed snapshot can be
  /// validated against the live shards before its resolutions apply.  Off
  /// by default: stop-the-world and sequential passes mutate live state
  /// in-walk and need no validation.
  bool capture_evidence = false;
};

/// Outcome of one detection-resolution pass.
struct ResolutionReport {
  /// Cycles the walk actually detected and resolved (the paper's c').
  size_t cycles_detected = 0;
  /// Per-cycle resolution decisions in detection order.
  std::vector<VictimDecision> decisions;
  /// Forensic per-cycle post-mortems, parallel to `decisions`.  Populated
  /// when DetectorOptions::collect_post_mortems is set or an active
  /// event_bus is attached; deliberately NOT rendered by ToString() so
  /// differential byte-for-byte report comparisons stay stable.
  std::vector<CyclePostMortem> post_mortems;
  /// Transactions aborted at Step 3 (after sparing) — their locks are
  /// already released; the caller must terminate/restart them.
  std::vector<lock::TransactionId> aborted;
  /// Victims removed from the abortion list because an earlier abort
  /// already unblocked them (Step 3 grant-list check).
  std::vector<lock::TransactionId> spared;
  /// Transactions whose blocked request was granted during Step 3.
  std::vector<lock::TransactionId> granted;
  /// Resources whose queues were repositioned by TDR-2 (change list).
  std::vector<lock::ResourceId> repositioned;
  /// Walk loop iterations — proxy for the O(n + e(c'+1)) time bound.
  size_t steps = 0;
  /// Vertices and edges of the TST the pass ran over (n and e).
  size_t num_transactions = 0;
  size_t num_edges = 0;
  /// Step 1 graph-cache statistics (all zero for from-scratch builds):
  /// resources whose ECR edges were recomputed vs served from cache, and
  /// the edge counts on each side.  See core::GraphCacheStats.
  size_t num_dirty_resources = 0;
  size_t num_cached_resources = 0;
  size_t edges_rebuilt = 0;
  size_t edges_reused = 0;
  /// Pauseless passes only: decisions dropped at apply time because their
  /// evidence stamps no longer matched the live shards (each re-derived
  /// by a later pass if the cycle persists).  Always 0 for stop-the-world
  /// and sequential passes, and omitted from ToString() when 0 so
  /// differential byte-for-byte comparisons stay stable.
  size_t rejected = 0;

  /// True when the pass found any deadlock.
  bool found_deadlock() const { return cycles_detected > 0; }

  std::string ToString() const;
};

}  // namespace twbg::core

#endif  // TWBG_CORE_DETECTOR_H_
